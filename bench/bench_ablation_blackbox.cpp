// E11 -- Ablation: Algorithm 5's black-box choice. The class-greedy box
// (delta ~ 1/4 in polylog rounds, our stand-in for the PODC 2007 1/5-MWM)
// vs the locally-dominant box (delta = 1/2 but Theta(n) worst-case rounds).
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "graph/seq_matching.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E11", "Algorithm 5 black-box ablation");

  Table table({"workload", "box", "weight / greedy", "iterations", "rounds",
               "msgs"});
  struct Workload {
    const char* name;
    Graph graph;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"gnp(128, .06) uniform w",
       gen::with_uniform_weights(gen::gnp(128, 0.06, 1), 1.0, 50.0, 2)});
  workloads.push_back(
      {"gnp(128, .06) heavy-tail w",
       gen::with_exponential_weights(gen::gnp(128, 0.06, 3), 1e4, 4)});
  // Decreasing weight chain: the locally-dominant box's worst case.
  {
    std::vector<Edge> chain;
    for (NodeId v = 0; v + 1 < 128; ++v) {
      chain.push_back({v, static_cast<NodeId>(v + 1),
                       1000.0 - static_cast<double>(v)});
    }
    workloads.push_back({"decreasing chain(128)",
                         Graph::from_edges(128, std::move(chain))});
  }

  for (const Workload& w : workloads) {
    const double greedy = greedy_mwm(w.graph).weight(w.graph);
    for (const auto box : {HalfMwmOptions::BlackBox::kClassGreedy,
                           HalfMwmOptions::BlackBox::kLocallyDominant}) {
      HalfMwmOptions options;
      options.black_box = box;
      options.epsilon = 0.1;
      options.seed = 9;
      const auto result = approx_mwm(w.graph, options);
      table.row()
          .cell(w.name)
          .cell(box == HalfMwmOptions::BlackBox::kClassGreedy
                    ? "class-greedy"
                    : "locally-dominant")
          .cell(result.matching.weight(w.graph) / greedy, 4)
          .cell(std::int64_t{result.iterations})
          .cell(result.stats.rounds)
          .cell(result.stats.messages);
    }
  }
  table.print(std::cout);
  bench::footer(
      "Reading: the locally-dominant box gives slightly better weight per\n"
      "iteration (delta = 1/2 vs ~1/4) and fewer iterations, but the "
      "chain\nworkload exposes its Theta(n) round blow-up -- the reason "
      "Theorem 4.5\nneeds a polylog-round box like the PODC 2007 algorithm "
      "(or our\nclass-greedy stand-in).");
  return 0;
}
