// E6 -- Theorem 4.5 round complexity: O(log(1/eps) * log n) shape: rounds
// grow logarithmically in n at fixed eps and logarithmically in 1/eps at
// fixed n (our class-greedy box adds one extra log n factor; see DESIGN.md
// note 5 -- the shape in each variable is what is under test).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E6", "(1/2 - eps)-MWM rounds: log(1/eps) x polylog(n) shape");

  const int seeds = 3;
  {
    std::cout << "Rounds vs n (eps = 0.1):\n";
    Table table({"n", "avg rounds", "rounds / log2^2(n)", "iterations"});
    for (const NodeId n : {32, 64, 128, 256, 512}) {
      double rounds = 0;
      int iters = 0;
      for (int s = 0; s < seeds; ++s) {
        const Graph g = gen::with_uniform_weights(
            gen::gnp(n, 8.0 / n, static_cast<std::uint64_t>(s)), 1.0, 64.0,
            static_cast<std::uint64_t>(s) + 3);
        HalfMwmOptions options;
        options.epsilon = 0.1;
        options.seed = static_cast<std::uint64_t>(s) + 80;
        const auto result = approx_mwm(g, options);
        rounds += static_cast<double>(result.stats.rounds);
        iters = result.iterations;
      }
      const double l = std::log2(static_cast<double>(n));
      table.row()
          .cell(std::int64_t{n})
          .cell(rounds / seeds, 1)
          .cell(rounds / seeds / (l * l), 3)
          .cell(std::int64_t{iters});
    }
    table.print(std::cout);
  }

  std::cout << "\nRounds vs eps (n = 128, full fixed schedule -- no early "
               "exit):\n";
  {
    Table table({"eps", "budget (3/2d)ln(2/eps)", "avg rounds",
                 "rounds / ln(2/eps)"});
    for (const double eps : {0.4, 0.2, 0.1, 0.05, 0.02, 0.01}) {
      double rounds = 0;
      int budget = 0;
      for (int s = 0; s < seeds; ++s) {
        const Graph g = gen::with_uniform_weights(
            gen::gnp(128, 0.06, static_cast<std::uint64_t>(s) + 5), 1.0,
            64.0, static_cast<std::uint64_t>(s) + 6);
        HalfMwmOptions options;
        options.epsilon = eps;
        options.seed = static_cast<std::uint64_t>(s) + 81;
        options.stop_when_no_gain = false;  // run the paper's schedule
        const auto result = approx_mwm(g, options);
        rounds += static_cast<double>(result.stats.rounds);
        budget = result.iterations;
      }
      table.row()
          .cell(eps, 2)
          .cell(std::int64_t{budget})
          .cell(rounds / seeds, 1)
          .cell(rounds / seeds / std::log(2.0 / eps), 1);
    }
    table.print(std::cout);
  }
  bench::footer(
      "Reading: the fixed schedule's iteration count grows as ln(2/eps), "
      "exactly\nTheorem 4.5's budget. Total rounds are affine in that "
      "budget: the\nproductive prefix dominates, and each already-converged "
      "iteration adds\nonly its idle gain-exchange round. Per-n growth "
      "(first table) is\npolylogarithmic.");
  return 0;
}
