// E16 -- convergence curves (the "figure" behind Lemma 3.3): how the
// approximation ratio improves phase by phase (bipartite) and iteration
// by iteration (general reduction).
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E16", "ratio vs phase / iteration (Lemma 3.3 in action)");

  std::cout << "Bipartite phases (n = 128 per side, p = 0.06, avg of 5 "
               "seeds):\n";
  {
    Table table({"after phase ell", "guarantee 1-2/(ell+3)", "avg ratio",
                 "cumulative rounds"});
    const int seeds = 5;
    const int max_ell = 9;
    std::vector<double> ratio(static_cast<std::size_t>(max_ell) / 2 + 1, 0);
    std::vector<double> rounds(ratio.size(), 0);
    for (int s = 0; s < seeds; ++s) {
      const Graph g =
          gen::bipartite_gnp(128, 128, 0.06, static_cast<std::uint64_t>(s));
      const auto side = *g.bipartition();
      const std::size_t opt = hopcroft_karp(g).size();
      congest::Network net(g, congest::Model::kCongest,
                           static_cast<std::uint64_t>(s) + 400);
      double total_rounds = 0;
      for (int ell = 1, idx = 0; ell <= max_ell; ell += 2, ++idx) {
        const PhaseResult pr = run_phase(net, side, ell, PhaseOptions{});
        total_rounds += static_cast<double>(pr.stats.rounds);
        ratio[static_cast<std::size_t>(idx)] +=
            static_cast<double>(net.extract_matching().size()) /
            static_cast<double>(opt);
        rounds[static_cast<std::size_t>(idx)] += total_rounds;
      }
    }
    for (int ell = 1, idx = 0; ell <= max_ell; ell += 2, ++idx) {
      // After exhausting length <= ell, shortest augmenting path is
      // >= ell + 2 = 2k - 1 with k = (ell + 3) / 2, so Lemma 3.3 gives
      // 1 - 1/k = 1 - 2/(ell + 3).
      table.row()
          .cell(std::int64_t{ell})
          .cell(1.0 - 2.0 / (ell + 3), 4)
          .cell(ratio[static_cast<std::size_t>(idx)] / seeds, 4)
          .cell(rounds[static_cast<std::size_t>(idx)] / seeds, 1);
    }
    table.print(std::cout);
  }

  std::cout << "\nAlgorithm 4 outer iterations (n = 80, p = 0.05, k = 3, "
               "one seed):\n";
  {
    const Graph g = gen::gnp(80, 0.05, 9);
    const std::size_t opt = blossom_mcm(g).size();
    Table table({"iterations", "ratio"});
    for (const int budget : {1, 2, 4, 8, 16, 32, 64}) {
      GeneralMcmOptions options;
      options.k = 3;
      options.seed = 10;
      options.budget = GeneralMcmOptions::Budget::kFixedPaper;
      options.max_iterations = budget;
      const auto result = general_mcm(g, options);
      table.row()
          .cell(std::int64_t{budget})
          .cell(opt ? static_cast<double>(result.matching.size()) / opt : 1.0,
                4);
    }
    table.print(std::cout);
  }
  bench::footer(
      "Reading: each bipartite phase pushes the certified bound along "
      "Lemma 3.3's\nschedule 1 - 2/(ell+3) while measured ratios run ahead "
      "of it; the general\nreduction converges geometrically in sampling "
      "iterations (Lemma 3.13's\ncontraction), with most of the matching "
      "found in the first few.");
  return 0;
}
