// E4 -- Theorem 3.15 iteration budget: the paper prescribes
// 2^(2k+1)(k+1) ln k sampling iterations; adaptively-terminated runs show
// how conservative that w.h.p. budget is in practice.
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E4",
                "Algorithm 4 sampling iterations: paper budget vs adaptive");

  Table table({"k", "paper budget 2^(2k+1)(k+1)ln k", "adaptive iterations",
               "productive", "ratio achieved"});
  const int seeds = 3;
  for (const int k : {2, 3, 4}) {
    double iters = 0;
    double productive = 0;
    double ratio = 0;
    for (int s = 0; s < seeds; ++s) {
      const Graph g = gen::gnp(60, 0.08, static_cast<std::uint64_t>(s));
      const std::size_t opt = blossom_mcm(g).size();
      GeneralMcmOptions options;
      options.k = k;
      options.seed = static_cast<std::uint64_t>(s) + 23;
      const auto result = approx_mcm_general(g, options);
      iters += result.iterations;
      productive += result.productive_iterations;
      ratio += opt ? static_cast<double>(result.matching.size()) / opt : 1.0;
    }
    table.row()
        .cell(std::int64_t{k})
        .cell(std::int64_t{general_mcm_paper_budget(k)})
        .cell(iters / seeds, 1)
        .cell(productive / seeds, 1)
        .cell(ratio / seeds, 4);
  }
  table.print(std::cout);
  bench::footer(
      "Reading: the exponential-in-k paper budget is a worst-case "
      "guarantee;\nadaptive runs (which stop only after the oracle certifies "
      "no short\naugmenting path remains) finish orders of magnitude "
      "earlier, yet the\n2^(2k) growth trend in needed samples is visible as "
      "k rises.");
  return 0;
}
