// E7 -- The Israeli-Itai baseline: 1/2-MCM in O(log n) rounds, and the
// cardinality improvement the paper's algorithms buy over it on the same
// instances.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E7",
                "Israeli-Itai baseline: ratio, O(log n) rounds, and the "
                "improvement of (1-1/k)-MCM over it");

  const int seeds = 5;
  Table table({"n", "II avg ratio", "II min ratio", "II rounds",
               "rounds/log2 n", "ours(k=4) ratio", "deficit shrink"});
  for (const NodeId n : {64, 128, 256, 512, 1024}) {
    double ii_sum = 0;
    double ii_min = 1.0;
    double ii_rounds = 0;
    double ours_sum = 0;
    for (int s = 0; s < seeds; ++s) {
      const Graph g = gen::gnp(n, 6.0 / n, static_cast<std::uint64_t>(s));
      const std::size_t opt = blossom_mcm(g).size();
      if (opt == 0) continue;

      const auto ii = maximal_matching(g, static_cast<std::uint64_t>(s) + 1);
      const double r =
          static_cast<double>(ii.matching.size()) / static_cast<double>(opt);
      ii_sum += r;
      ii_min = std::min(ii_min, r);
      ii_rounds += static_cast<double>(ii.stats.rounds);

      GeneralMcmOptions options;
      options.k = 4;
      options.seed = static_cast<std::uint64_t>(s) + 2;
      const auto ours = approx_mcm_general(g, options);
      ours_sum += static_cast<double>(ours.matching.size()) /
                  static_cast<double>(opt);
    }
    const double ii_avg = ii_sum / seeds;
    const double ours_avg = ours_sum / seeds;
    table.row()
        .cell(std::int64_t{n})
        .cell(ii_avg, 4)
        .cell(ii_min, 4)
        .cell(ii_rounds / seeds, 1)
        .cell(ii_rounds / seeds / std::log2(static_cast<double>(n)), 2)
        .cell(ours_avg, 4)
        .cell((1.0 - ii_avg) / std::max(1e-9, 1.0 - ours_avg), 1);
  }
  table.print(std::cout);
  bench::footer(
      "Reading: II sits around 0.85-0.95 of optimum (its guarantee is only\n"
      "1/2) with rounds growing as log n; the (1-1/k) algorithm shrinks "
      "the\nremaining deficit by the factor in the last column.");
  return 0;
}
