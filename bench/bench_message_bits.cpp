// E8 -- CONGEST compliance: the largest message each algorithm ever sends,
// against the O(log n) cap, across n. The LOCAL generic algorithm is the
// deliberate outlier (Lemma 3.4 vs Theorem 3.10).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E8", "max message bits vs the CONGEST cap");

  Table table({"algorithm", "n", "max msg bits", "cap (48 log n)",
               "bits / log2 n"});
  for (const NodeId n : {64, 256, 1024}) {
    const double log_n = std::log2(static_cast<double>(n));
    const Graph bip =
        gen::bipartite_gnp(n / 2, n / 2, 12.0 / n, 1);
    congest::Network ref(bip, congest::Model::kCongest, 0);

    const auto ii = maximal_matching(bip, 2);
    table.row()
        .cell("Israeli-Itai")
        .cell(std::int64_t{n})
        .cell(std::uint64_t{ii.stats.max_message_bits})
        .cell(std::uint64_t{ref.message_cap_bits()})
        .cell(ii.stats.max_message_bits / log_n, 2);

    const auto bmcm = approx_mcm_bipartite(bip, 3);
    table.row()
        .cell("bipartite (1-1/k)-MCM")
        .cell(std::int64_t{n})
        .cell(std::uint64_t{bmcm.stats.max_message_bits})
        .cell(std::uint64_t{ref.message_cap_bits()})
        .cell(bmcm.stats.max_message_bits / log_n, 2);

    const Graph wg = gen::with_uniform_weights(
        gen::gnp(n, 8.0 / n, 4), 1.0, 50.0, 5);
    HalfMwmOptions mwm_options;
    mwm_options.epsilon = 0.1;
    mwm_options.seed = 6;
    const auto mwm = approx_mwm(wg, mwm_options);
    table.row()
        .cell("(1/2-eps)-MWM")
        .cell(std::int64_t{n})
        .cell(std::uint64_t{mwm.stats.max_message_bits})
        .cell(std::uint64_t{ref.message_cap_bits()})
        .cell(mwm.stats.max_message_bits / log_n, 2);

    if (n <= 64) {
      const Graph lg = gen::gnp(n / 2, 0.15, 7);
      LocalGenericOptions local_options;
      local_options.epsilon = 0.51;
      local_options.seed = 8;
      const auto local = local_generic_mcm(lg, local_options);
      table.row()
          .cell("LOCAL generic (Thm 3.7)")
          .cell(std::int64_t{n / 2})
          .cell(std::uint64_t{local.stats.max_message_bits})
          .cell(std::uint64_t{ref.message_cap_bits()})
          .cell(local.stats.max_message_bits / log_n, 2);
    }
  }
  table.print(std::cout);
  bench::footer(
      "Reading: every CONGEST algorithm's max message is a small constant\n"
      "number of machine words -- flat in bits/log2(n) as n grows -- while "
      "the\nLOCAL generic algorithm floods entire neighborhood views, "
      "orders of\nmagnitude past the cap.");
  return 0;
}
