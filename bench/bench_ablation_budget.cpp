// E12 -- Ablation: iteration budgets. Adaptive (oracle-checked) vs the
// paper's fixed w.h.p. budgets, for the bipartite phases (Lemma 3.9's
// c log N MIS iterations) and Algorithm 4's outer sampling loop.
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E12", "adaptive vs fixed iteration budgets");

  std::cout << "Bipartite phases (k = 4, n = 96 per side):\n";
  {
    Table table({"termination", "iterations", "rounds", "ratio"});
    for (const bool fixed : {false, true}) {
      double iters = 0;
      double rounds = 0;
      double ratio = 0;
      const int seeds = 3;
      for (int s = 0; s < seeds; ++s) {
        const Graph g =
            gen::bipartite_gnp(96, 96, 0.08, static_cast<std::uint64_t>(s));
        const std::size_t opt = hopcroft_karp(g).size();
        BipartiteMcmOptions options;
        options.k = 4;
        options.phase.termination =
            fixed ? PhaseOptions::Termination::kFixedBudget
                  : PhaseOptions::Termination::kAdaptiveOracle;
        const auto result = approx_mcm_bipartite(
            g, static_cast<std::uint64_t>(s) + 60, options);
        iters += result.iterations;
        rounds += static_cast<double>(result.stats.rounds);
        ratio += opt ? static_cast<double>(result.matching.size()) / opt : 1;
      }
      table.row()
          .cell(fixed ? "fixed c*log N (paper)" : "adaptive oracle")
          .cell(iters / seeds, 1)
          .cell(rounds / seeds, 1)
          .cell(ratio / seeds, 4);
    }
    table.print(std::cout);
  }

  std::cout << "\nAlgorithm 4 outer loop (k = 3, n = 40):\n";
  {
    Table table({"budget", "iterations", "rounds", "|M|"});
    for (const bool fixed : {false, true}) {
      const Graph g = gen::gnp(40, 0.12, 9);
      GeneralMcmOptions options;
      options.k = 3;
      options.seed = 10;
      options.budget = fixed ? GeneralMcmOptions::Budget::kFixedPaper
                             : GeneralMcmOptions::Budget::kAdaptive;
      const auto result = approx_mcm_general(g, options);
      table.row()
          .cell(fixed ? "paper 2^(2k+1)(k+1)ln k" : "adaptive + oracle")
          .cell(std::int64_t{result.iterations})
          .cell(result.stats.rounds)
          .cell(static_cast<double>(result.matching.size()), 0);
    }
    table.print(std::cout);
  }
  bench::footer(
      "Reading: fixed budgets deliver the same quality at a large constant\n"
      "round premium -- they are what the w.h.p. statements in Theorems "
      "3.10\nand 3.15 pay for not having a termination oracle.");
  return 0;
}
