// E18 -- simulator throughput: nodes stepped per second vs. engine thread
// count. The round engine is a BSP superstep executor; this bench measures
// raw engine scaling (a fixed-round flooding protocol, so algorithmic
// randomness does not perturb the work per round) on G(n, p) with constant
// expected degree 8, n in {1e4, 1e5}. Alongside the table it emits one
// machine-readable JSON line per configuration for plotting/CI tracking.
#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"
#include "support/wire.hpp"

using namespace dmatch;

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Model;
using congest::Network;
using congest::Process;
using congest::RunStats;

/// Floods a small message on every port for a fixed number of rounds, so
/// every node is stepped in every round and the engine does n steps and
/// ~n*deg message routings per round.
class Flood final : public Process {
 public:
  explicit Flood(int rounds) : rounds_(rounds) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    (void)inbox;
    if (ctx.round() < rounds_) {
      BitWriter w;
      w.write(static_cast<std::uint64_t>(ctx.round()), 32);
      const Message msg = Message::from_writer(std::move(w));
      for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
    }
    halted_ = ctx.round() >= rounds_;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  int rounds_;
  bool halted_ = false;
};

struct Sample {
  double seconds = 0;
  RunStats stats;
};

Sample run_once(const Graph& g, unsigned threads, int rounds) {
  Network net(g, Model::kLocal, 1, 48, Network::Options{threads});
  const auto start = std::chrono::steady_clock::now();
  Sample s;
  s.stats = net.run(
      [rounds](NodeId, const Graph&) { return std::make_unique<Flood>(rounds); },
      rounds + 2);
  s.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  return s;
}

}  // namespace

int main() {
  bench::banner("E18", "round-engine throughput scales with worker threads");

  const int rounds = 10;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  bench::JsonReport report("round_engine");
  Table table({"n", "threads", "rounds", "messages", "seconds",
               "node steps/s", "speedup vs 1T"});
  for (const NodeId n : {10000, 100000}) {
    const Graph g = gen::gnp(n, 8.0 / n, 7);
    double base_seconds = 0;
    for (const unsigned threads : thread_counts) {
      // Warm-up run builds the pool and faults in the mailboxes; the
      // second run is the measured one.
      run_once(g, threads, 2);
      const Sample s = run_once(g, threads, rounds);
      if (threads == 1) base_seconds = s.seconds;
      const double steps =
          static_cast<double>(n) * static_cast<double>(s.stats.rounds);
      const double steps_per_sec = steps / s.seconds;
      const double speedup = base_seconds / s.seconds;
      table.row()
          .cell(std::int64_t{n})
          .cell(std::int64_t{threads})
          .cell(static_cast<std::int64_t>(s.stats.rounds))
          .cell(static_cast<std::int64_t>(s.stats.messages))
          .cell(s.seconds, 3)
          .cell(steps_per_sec, 0)
          .cell(speedup, 2);
      std::ostringstream cell;
      cell << "{\"bench\":\"round_engine\",\"n\":" << n
           << ",\"threads\":" << threads << ",\"rounds\":" << s.stats.rounds
           << ",\"messages\":" << s.stats.messages
           << ",\"seconds\":" << s.seconds
           << ",\"node_steps_per_sec\":" << steps_per_sec
           << ",\"speedup_vs_1t\":" << speedup
           << ",\"hardware_concurrency\":" << hw << "}";
      std::cout << cell.str() << "\n";
      report.cell(cell.str());
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "\nwrote " << written << "\n";

  bench::footer(
      "Reading: node steps/s should scale with threads up to the machine's "
      "core count (speedup >= 2x at 4 threads on n = 1e5 when >= 4 cores "
      "are available); identical `rounds`/`messages` columns across thread "
      "counts witness the engine's determinism contract.");
  return 0;
}
