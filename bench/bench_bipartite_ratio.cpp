// E1 -- Theorem 3.10 approximation quality: the bipartite CONGEST
// algorithm must deliver |M| >= (1 - 1/k) |M*| for every k; measured
// ratios should sit well above the bound and reach 1 for moderate k.
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E1",
                "bipartite (1 - 1/k)-MCM ratio vs Hopcroft-Karp optimum");

  Table table({"n per side", "p", "k", "bound 1-1/k", "min ratio",
               "avg ratio", "avg |M*|"});
  const int seeds = 5;
  for (const NodeId nx : {64, 128}) {
    for (const double p : {0.05, 0.2}) {
      for (const int k : {2, 3, 5, 8}) {
        double min_ratio = 1.0;
        double sum_ratio = 0.0;
        double sum_opt = 0.0;
        for (int s = 0; s < seeds; ++s) {
          const Graph g = gen::bipartite_gnp(nx, nx, p,
                                             static_cast<std::uint64_t>(s));
          const std::size_t opt = hopcroft_karp(g).size();
          if (opt == 0) continue;
          BipartiteMcmOptions options;
          options.k = k;
          const auto result = approx_mcm_bipartite(
              g, static_cast<std::uint64_t>(s) + 100, options);
          const double ratio = static_cast<double>(result.matching.size()) /
                               static_cast<double>(opt);
          min_ratio = std::min(min_ratio, ratio);
          sum_ratio += ratio;
          sum_opt += static_cast<double>(opt);
        }
        table.row()
            .cell(std::int64_t{nx})
            .cell(p, 2)
            .cell(std::int64_t{k})
            .cell(1.0 - 1.0 / k, 3)
            .cell(min_ratio, 4)
            .cell(sum_ratio / seeds, 4)
            .cell(sum_opt / seeds, 1);
      }
    }
  }
  table.print(std::cout);
  bench::footer(
      "Reading: min ratio always >= the 1-1/k bound (deterministically, via "
      "the\nexhaustive phase oracle), and in practice near 1 from k=5 on.");
  return 0;
}
