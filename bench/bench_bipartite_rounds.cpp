// E2 -- Theorem 3.10 round complexity: O(k^3 log Delta + k^2 log n).
// Two sweeps: rounds vs n at fixed k (logarithmic growth) and rounds vs k
// at fixed n (polynomial growth).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E2", "bipartite rounds scale as O(k^3 log D + k^2 log n)");

  const int seeds = 3;
  {
    Table table({"n per side", "k", "avg rounds", "rounds / log2(n)",
                 "normalized rounds", "avg iterations"});
    const int k = 4;
    for (const NodeId nx : {32, 64, 128, 256, 512, 1024, 2048}) {
      double rounds = 0;
      double norm = 0;
      double iters = 0;
      for (int s = 0; s < seeds; ++s) {
        // Constant expected degree keeps Delta roughly fixed as n grows.
        const double p = 8.0 / nx;
        const Graph g =
            gen::bipartite_gnp(nx, nx, p, static_cast<std::uint64_t>(s));
        BipartiteMcmOptions options;
        options.k = k;
        const auto result = approx_mcm_bipartite(
            g, static_cast<std::uint64_t>(s) + 9, options);
        congest::Network ref(g, congest::Model::kCongest, 0);
        rounds += static_cast<double>(result.stats.rounds);
        norm += static_cast<double>(
            result.stats.normalized_rounds(ref.message_cap_bits()));
        iters += result.iterations;
      }
      table.row()
          .cell(std::int64_t{nx})
          .cell(std::int64_t{k})
          .cell(rounds / seeds, 1)
          .cell(rounds / seeds / std::log2(2.0 * nx), 2)
          .cell(norm / seeds, 1)
          .cell(iters / seeds, 1);
    }
    table.print(std::cout);
  }

  std::cout << "\n";
  {
    Table table({"k", "avg rounds", "rounds / k^2", "avg iterations"});
    const NodeId nx = 128;
    for (const int k : {2, 3, 4, 6, 8}) {
      double rounds = 0;
      double iters = 0;
      for (int s = 0; s < seeds; ++s) {
        const Graph g = gen::bipartite_gnp(nx, nx, 8.0 / nx,
                                           static_cast<std::uint64_t>(s));
        BipartiteMcmOptions options;
        options.k = k;
        const auto result = approx_mcm_bipartite(
            g, static_cast<std::uint64_t>(s) + 9, options);
        rounds += static_cast<double>(result.stats.rounds);
        iters += result.iterations;
      }
      table.row()
          .cell(std::int64_t{k})
          .cell(rounds / seeds, 1)
          .cell(rounds / seeds / (k * k), 2)
          .cell(iters / seeds, 1);
    }
    table.print(std::cout);
  }
  bench::footer(
      "Reading: at fixed k, rounds/log2(n) stays flat (logarithmic growth); "
      "at\nfixed n, rounds grow polynomially in k and flatten once k exceeds "
      "the\nlongest useful augmenting path.");
  return 0;
}
