// E10 -- the Figure 1 application: an input-queued switch scheduled by
// (a) maximum matching, (b) Israeli-Itai (the II/PIM/iSLIP family), and
// (c) our bipartite (1-1/k)-MCM, under rising offered load.
#include <iostream>

#include "bench_util.hpp"
#include "support/table.hpp"
#include "switchsim/switch_sim.hpp"

using namespace dmatch;
using switchsim::TrafficConfig;

int main() {
  bench::banner("E10", "switch scheduling: delay/backlog vs offered load");

  const int ports = 16;
  const int cycles = 3000;
  Table table({"pattern", "load", "scheduler", "throughput", "mean delay",
               "backlog"});
  for (const auto pattern :
       {TrafficConfig::Pattern::kUniform, TrafficConfig::Pattern::kBursty}) {
    for (const double load : {0.7, 0.9, 0.98}) {
      TrafficConfig traffic;
      traffic.pattern = pattern;
      traffic.load = load;
      const auto run = [&](const char* name, const switchsim::Scheduler& s) {
        const auto stats =
            switchsim::simulate_switch(ports, cycles, traffic, s, 99);
        table.row()
            .cell(pattern == TrafficConfig::Pattern::kUniform ? "uniform"
                                                              : "bursty")
            .cell(load, 2)
            .cell(name)
            .cell(stats.throughput(), 4)
            .cell(stats.mean_delay(), 2)
            .cell(stats.backlog);
      };
      run("maximum (HK)", switchsim::schedule_maximum);
      run("Israeli-Itai", [](const Graph& g, int cycle) {
        return switchsim::schedule_israeli_itai(g, cycle, 7);
      });
      switchsim::IslipScheduler islip(ports);
      run("iSLIP(3)", [&islip](const Graph& g, int cycle) {
        return islip(g, cycle);
      });
      run("ours k=4", [](const Graph& g, int cycle) {
        return switchsim::schedule_bipartite_mcm(g, cycle, 4, 7);
      });
      run("max-weight (Hungarian)", switchsim::schedule_max_weight);
      run("ours MWM eps=.1", [](const Graph& g, int cycle) {
        return switchsim::schedule_half_mwm(g, cycle, 0.1, 7);
      });
    }
  }
  table.print(std::cout);
  bench::footer(
      "Reading: at light load all schedulers look alike; near saturation "
      "the\nmatching-quality gap turns into delay and backlog -- our "
      "scheduler\ntracks the centralized maximum, II drifts away. This is "
      "the throughput\nargument the paper's introduction makes for better "
      "matchings in switch\nfabrics.");
  return 0;
}
