// E22 -- sharded async executor throughput: delivery events processed per
// second vs. worker thread count. The alpha synchronizer's event loop is
// a conservative-window parallel discrete-event simulator; this bench
// drives it with the same fixed-round flooding protocol E18 uses for the
// round engine (so work per virtual round is layout-independent) on
// G(n, p) with constant expected degree 8, and also times the parallel
// Network construction + extract_matching path over the same graphs.
// Emits one machine-readable JSON line per configuration.
#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "congest/async.hpp"
#include "congest/network.hpp"
#include "core/israeli_itai.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"
#include "support/wire.hpp"

using namespace dmatch;

namespace {

using congest::AsyncOptions;
using congest::AsyncStats;
using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Model;
using congest::Network;
using congest::Process;

/// Same shape as E18's Flood: every node sends on every port for a fixed
/// number of simulated rounds, so each virtual round moves ~n*deg DATA
/// events plus the synchronizer's ACK/SAFE control plane.
class Flood final : public Process {
 public:
  explicit Flood(int rounds) : rounds_(rounds) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    (void)inbox;
    if (ctx.round() < rounds_) {
      BitWriter w;
      w.write(static_cast<std::uint64_t>(ctx.round()), 32);
      const Message msg = Message::from_writer(std::move(w));
      for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
    }
    halted_ = ctx.round() >= rounds_;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  int rounds_;
  bool halted_ = false;
};

struct Sample {
  double seconds = 0;
  AsyncStats stats;
};

Sample run_once(const Graph& g, unsigned threads, int rounds) {
  AsyncOptions options;
  options.num_threads = threads;
  std::vector<int> mates(static_cast<std::size_t>(g.node_count()), -1);
  const auto start = std::chrono::steady_clock::now();
  Sample s;
  s.stats = congest::run_synchronized(
      g,
      [rounds](NodeId, const Graph&) { return std::make_unique<Flood>(rounds); },
      mates, 1, rounds + 2, options);
  s.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  return s;
}

double time_build_extract(const Graph& g, unsigned threads) {
  const auto start = std::chrono::steady_clock::now();
  Network net(g, Model::kCongest, 5, 48, Network::Options{threads});
  (void)israeli_itai(net);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  bench::banner("E22", "sharded async executor throughput vs worker threads");

  const int rounds = 6;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  bench::JsonReport report("async_scaling");
  Table table({"n", "threads", "events", "virtual rounds", "seconds",
               "events/s", "speedup vs 1T", "build+run+extract s"});
  for (const NodeId n : {2000, 20000}) {
    const Graph g = gen::gnp(n, 8.0 / n, 7);
    double base_seconds = 0;
    for (const unsigned threads : thread_counts) {
      run_once(g, threads, 2);  // warm-up: pool + queue growth
      const Sample s = run_once(g, threads, rounds);
      if (threads == 1) base_seconds = s.seconds;
      const double events_per_sec =
          static_cast<double>(s.stats.events) / s.seconds;
      const double speedup = base_seconds / s.seconds;
      const double pipeline_seconds = time_build_extract(g, threads);
      table.row()
          .cell(std::int64_t{n})
          .cell(std::int64_t{threads})
          .cell(static_cast<std::int64_t>(s.stats.events))
          .cell(static_cast<std::int64_t>(s.stats.virtual_rounds))
          .cell(s.seconds, 3)
          .cell(events_per_sec, 0)
          .cell(speedup, 2)
          .cell(pipeline_seconds, 3);
      std::ostringstream cell;
      cell << "{\"bench\":\"async_scaling\",\"n\":" << n
           << ",\"threads\":" << threads << ",\"events\":" << s.stats.events
           << ",\"virtual_rounds\":" << s.stats.virtual_rounds
           << ",\"seconds\":" << s.seconds
           << ",\"events_per_sec\":" << events_per_sec
           << ",\"speedup_vs_1t\":" << speedup
           << ",\"build_run_extract_seconds\":" << pipeline_seconds
           << ",\"hardware_concurrency\":" << hw << "}";
      std::cout << cell.str() << "\n";
      report.cell(cell.str());
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "\nwrote " << written << "\n";

  bench::footer(
      "Reading: events/s should scale with threads up to the core count; "
      "identical `events`/`virtual rounds` columns across thread counts "
      "witness the executor's bit-identical determinism contract. On a "
      "single-core container every speedup is <= 1 (sharding overhead); "
      "the determinism columns are the load-bearing check there.");
  return 0;
}
