// E17 -- extension: capacitated (b-)matching via the Tutte gadget, the
// c-matching generalization from the paper's related work and the object
// behind its cellular-coverage application.
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E17", "capacitated matching: quality vs capacity and k");

  Table table({"topology", "capacity", "k", "exact", "approx", "ratio",
               "gadget nodes", "rounds"});
  struct Workload {
    const char* name;
    Graph graph;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"gnp(40, 0.12)", gen::gnp(40, 0.12, 1)});
  workloads.push_back({"bip(30, 6, 0.4)", gen::bipartite_gnp(30, 6, 0.4, 2)});
  workloads.push_back({"ba(40, 2)", gen::barabasi_albert(40, 2, 3)});

  for (const Workload& w : workloads) {
    for (const int cap : {1, 2, 4}) {
      std::vector<int> capacity(
          static_cast<std::size_t>(w.graph.node_count()), cap);
      const std::size_t exact = exact_max_b_matching_size(w.graph, capacity);
      for (const int k : {2, 3}) {
        GeneralMcmOptions options;
        options.k = k;
        options.seed = 21;
        const BMatchingResult result =
            approx_max_b_matching(w.graph, capacity, options);
        table.row()
            .cell(w.name)
            .cell(std::int64_t{cap})
            .cell(std::int64_t{k})
            .cell(exact)
            .cell(result.selected.size())
            .cell(exact == 0 ? 1.0
                             : static_cast<double>(result.selected.size()) /
                                   static_cast<double>(exact),
                  4)
            .cell(std::int64_t{result.gadget_nodes})
            .cell(result.stats.rounds);
      }
    }
  }
  table.print(std::cout);
  bench::footer(
      "Reading: the reduction preserves the matcher's quality (ratios track "
      "the\nplain-matching experiments) at the cost of a constant-factor "
      "larger\nsimulated graph -- the gadget has n*cap + 2m nodes.");
  return 0;
}
