// E13 -- Micro-benchmarks of the centralized reference solvers (google
// benchmark): they must stay fast enough to serve as oracles inside the
// experiment sweeps.
#include <benchmark/benchmark.h>

#include "congest/network.hpp"
#include "core/israeli_itai.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/hungarian.hpp"
#include "graph/seq_matching.hpp"

namespace dmatch {
namespace {

void BM_HopcroftKarp(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::bipartite_gnp(n, n, 8.0 / n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hopcroft_karp(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_HopcroftKarp)->Range(64, 2048)->Complexity();

void BM_Blossom(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::gnp(n, 8.0 / n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blossom_mcm(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Blossom)->Range(64, 1024)->Complexity();

void BM_Hungarian(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::with_uniform_weights(
      gen::bipartite_gnp(n, n, 8.0 / n, 3), 1.0, 100.0, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hungarian_mwm(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Hungarian)->Range(32, 256)->Complexity();

void BM_GreedyMwm(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::with_uniform_weights(gen::gnp(n, 8.0 / n, 5), 1.0,
                                            100.0, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_mwm(g));
  }
}
BENCHMARK(BM_GreedyMwm)->Range(64, 4096);

void BM_PathGrowing(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::with_uniform_weights(gen::gnp(n, 8.0 / n, 7), 1.0,
                                            100.0, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(path_growing_mwm(g));
  }
}
BENCHMARK(BM_PathGrowing)->Range(64, 4096);

void BM_SimulatorIsraeliItai(benchmark::State& state) {
  // End-to-end simulator throughput: one full II run per iteration.
  const auto n = static_cast<NodeId>(state.range(0));
  const Graph g = gen::gnp(n, 8.0 / n, 9);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    congest::Network net(g, congest::Model::kCongest, ++seed);
    benchmark::DoNotOptimize(israeli_itai(net));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SimulatorIsraeliItai)->Range(64, 1024)->Complexity();

void BM_GnpGeneration(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::gnp(n, 8.0 / n, ++seed));
  }
}
BENCHMARK(BM_GnpGeneration)->Range(64, 4096);

}  // namespace
}  // namespace dmatch

BENCHMARK_MAIN();
