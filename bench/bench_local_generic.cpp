// E9 -- Theorem 3.7: the LOCAL generic algorithm's quality and the
// message-size price it pays (O((|V|+|E|) log n)-bit floods, Lemma 3.4).
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E9", "LOCAL generic (1-eps)-MCM: quality vs message blow-up");

  Table table({"n", "eps", "ratio", "rounds", "max msg bits", "CONGEST cap",
               "phase retries"});
  for (const NodeId n : {16, 32, 48}) {
    for (const double eps : {0.51, 0.34}) {
      const Graph g = gen::gnp(n, 4.0 / n, static_cast<std::uint64_t>(n));
      const std::size_t opt = blossom_mcm(g).size();
      LocalGenericOptions options;
      options.epsilon = eps;
      options.seed = static_cast<std::uint64_t>(n) + 5;
      const auto result = local_generic_mcm(g, options);
      congest::Network ref(g, congest::Model::kCongest, 0);
      table.row()
          .cell(std::int64_t{n})
          .cell(eps, 2)
          .cell(opt ? static_cast<double>(result.matching.size()) / opt : 1.0,
                4)
          .cell(result.stats.rounds)
          .cell(std::uint64_t{result.stats.max_message_bits})
          .cell(std::uint64_t{ref.message_cap_bits()})
          .cell(std::int64_t{result.phase_retries});
    }
  }
  table.print(std::cout);
  bench::footer(
      "Reading: quality matches the CONGEST version (both implement "
      "Algorithm 1),\nbut messages grow with the local view -- the gap to "
      "the cap column is\nexactly why Sections 3.2-3.3 exist.");
  return 0;
}
