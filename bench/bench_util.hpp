// Shared helpers for the experiment binaries.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace dmatch::bench {

/// Standard experiment banner: ties a binary to its EXPERIMENTS.md entry.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "### " << id << ": " << claim << "\n\n";
}

inline void footer(const std::string& reading) {
  std::cout << "\n" << reading << "\n\n";
}

/// First line of `cmd`'s stdout, "" on any failure.
inline std::string shell_line(const char* cmd) {
  FILE* pipe = ::popen(cmd, "r");
  if (pipe == nullptr) return "";
  char buf[256] = {};
  std::string out;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

/// Machine-readable result file: collects one JSON object per measured
/// cell and writes `BENCH_<name>.json` at the repo root (where
/// tools/regen_experiments.py picks it up), schema
/// `{"bench": ..., "commit": ..., "cells": [...]}`. The commit is read
/// from git at run time; if the binary runs outside the work tree the
/// file lands in the current directory with an empty commit instead.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  /// Add one cell; `json_object` must be a complete JSON object
  /// (typically the same text the bench prints as a JSON line).
  void cell(const std::string& json_object) { cells_.push_back(json_object); }

  /// Write the file; returns the path written ("" on failure).
  std::string write() const {
    const std::string root = shell_line("git rev-parse --show-toplevel 2>/dev/null");
    const std::string commit = shell_line("git rev-parse --short HEAD 2>/dev/null");
    const std::string path =
        (root.empty() ? std::string{} : root + "/") + "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out.good()) return "";
    out << "{\"bench\": \"" << name_ << "\", \"commit\": \"" << commit
        << "\", \"cells\": [\n";
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      out << "  " << cells_[i] << (i + 1 < cells_.size() ? "," : "") << "\n";
    }
    out << "]}\n";
    return out.good() ? path : "";
  }

 private:
  std::string name_;
  std::vector<std::string> cells_;
};

}  // namespace dmatch::bench
