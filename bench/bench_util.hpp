// Shared helpers for the experiment binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace dmatch::bench {

/// Standard experiment banner: ties a binary to its EXPERIMENTS.md entry.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "### " << id << ": " << claim << "\n\n";
}

inline void footer(const std::string& reading) {
  std::cout << "\n" << reading << "\n\n";
}

}  // namespace dmatch::bench
