// Shared helpers for the experiment binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/sched.hpp"

namespace dmatch::bench {

/// Standard experiment banner: ties a binary to its EXPERIMENTS.md entry.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "### " << id << ": " << claim << "\n\n";
}

inline void footer(const std::string& reading) {
  std::cout << "\n" << reading << "\n\n";
}

/// First line of `cmd`'s stdout, "" on any failure.
inline std::string shell_line(const char* cmd) {
  FILE* pipe = ::popen(cmd, "r");
  if (pipe == nullptr) return "";
  char buf[256] = {};
  std::string out;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

/// JSON object describing the machine and scheduler configuration a bench
/// ran under. Every BENCH_*.json embeds one as its "machine" key so a
/// result file is interpretable without knowing which box produced it
/// (timing numbers from a 1-core CI container and a 32-core workstation
/// are not comparable; the determinism columns are).
inline std::string machine_context_json(
    const support::SchedOptions& sched = {}) {
  std::ostringstream o;
  o << "{\"hardware_concurrency\":" << std::thread::hardware_concurrency()
    << ", \"pinning_supported\": "
    << (support::Scheduler::pinning_supported() ? "true" : "false")
    << ", \"sched_mode\": \"" << support::to_string(sched.mode) << "\""
    << ", \"pin_threads\": " << (sched.pin_threads ? "true" : "false") << "}";
  return o.str();
}

/// Warm-up + min-of-N timing: run `body` `warmup` times untimed (faults in
/// mailboxes, page tables, thread pools), then `reps` measured repetitions
/// and return the minimum wall-clock seconds. The minimum is the standard
/// robust estimator for "how fast can this go" — it rejects one-sided OS
/// scheduling noise that inflates means and medians on shared machines.
template <typename F>
double min_seconds(F&& body, int reps = 5, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) body();
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s < best) best = s;
  }
  return best;
}

/// Machine-readable result file: collects one JSON object per measured
/// cell and writes `BENCH_<name>.json` at the repo root (where
/// tools/regen_experiments.py picks it up), schema
/// `{"bench": ..., "commit": ..., "cells": [...]}`. The commit is read
/// from git at run time; if the binary runs outside the work tree the
/// file lands in the current directory with an empty commit instead.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  /// Add one cell; `json_object` must be a complete JSON object
  /// (typically the same text the bench prints as a JSON line).
  void cell(const std::string& json_object) { cells_.push_back(json_object); }

  /// Override the embedded machine context (e.g. to record the sched
  /// mode / pinning the bench actually ran with). Defaults to
  /// machine_context_json({}).
  void set_machine(std::string json_object) {
    machine_ = std::move(json_object);
  }

  /// Write the file; returns the path written ("" on failure).
  std::string write() const {
    const std::string root = shell_line("git rev-parse --show-toplevel 2>/dev/null");
    const std::string commit = shell_line("git rev-parse --short HEAD 2>/dev/null");
    const std::string path =
        (root.empty() ? std::string{} : root + "/") + "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out.good()) return "";
    out << "{\"bench\": \"" << name_ << "\", \"commit\": \"" << commit
        << "\",\n \"machine\": "
        << (machine_.empty() ? machine_context_json() : machine_)
        << ",\n \"cells\": [\n";
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      out << "  " << cells_[i] << (i + 1 < cells_.size() ? "," : "") << "\n";
    }
    out << "]}\n";
    return out.good() ? path : "";
  }

 private:
  std::string name_;
  std::string machine_;
  std::vector<std::string> cells_;
};

}  // namespace dmatch::bench
