// E21 -- observability overhead: wall time of engine workloads with no
// Observer attached vs a fully enabled Observer (metrics + trace + link
// profiler). The claim (docs/PROTOCOLS.md "Telemetry"): full
// observation slows the round loop of the paper's protocols by < 5%, an
// unattached Observer costs one branch per round (indistinguishable
// from baseline), and -DDMATCH_OBS_DISABLED removes every hook at
// preprocessing time -- the compiled-out arm is reported here when the
// binary is built that way, and is zero-cost by construction.
//
// Two workloads:
//  * protocol -- Israeli-Itai maximal matching, the representative
//    round loop the < 5% claim is about (real per-node compute, real
//    message mix);
//  * flood -- every node sends on every port every round, an
//    adversarial lower bound on per-message baseline work that isolates
//    the hook's raw cost (reported for transparency; it may exceed the
//    protocol number since the baseline does almost nothing per
//    message).
#include <chrono>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "congest/network.hpp"
#include "core/israeli_itai.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "support/table.hpp"
#include "support/wire.hpp"

using namespace dmatch;

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Model;
using congest::Network;
using congest::Process;

/// Same flooding workload as E18: every node sends on every port each
/// round, so the run is dominated by the per-message path the observer
/// hooks (routing + link profiling + bits histogram).
class Flood final : public Process {
 public:
  explicit Flood(int rounds) : rounds_(rounds) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    (void)inbox;
    if (ctx.round() < rounds_) {
      BitWriter w;
      w.write(static_cast<std::uint64_t>(ctx.round()), 32);
      const Message msg = Message::from_writer(std::move(w));
      for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
    }
    halted_ = ctx.round() >= rounds_;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  int rounds_;
  bool halted_ = false;
};

Network::Options observed_options(obs::Observer* observer) {
  Network::Options opt;
  opt.num_threads = 1;
#ifndef DMATCH_OBS_DISABLED
  opt.observer = observer;
#else
  (void)observer;
#endif
  return opt;
}

double flood_once(const Graph& g, int rounds, obs::Observer* observer) {
  Network net(g, Model::kLocal, 1, 48, observed_options(observer));
  const auto start = std::chrono::steady_clock::now();
  (void)net.run(
      [rounds](NodeId, const Graph&) { return std::make_unique<Flood>(rounds); },
      rounds + 2);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double protocol_once(const Graph& g, obs::Observer* observer) {
  Network net(g, Model::kCongest, 21, 48, observed_options(observer));
  const auto start = std::chrono::steady_clock::now();
  (void)israeli_itai(net);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Min over `reps` timed runs of each arm (after one warm-up),
/// interleaved base/observed so slow drift on a shared machine hits
/// both arms equally; min-of-N is the usual noise-resistant point
/// estimate for a deterministic workload.
struct Pair {
  double base = 1e100;
  double observed = 1e100;
};
Pair best_of(int reps, obs::Observer* observer,
             const std::function<double(obs::Observer*)>& run) {
  run(nullptr);  // warm-up: pool, mailboxes, allocator
  Pair best;
  for (int i = 0; i < reps; ++i) {
    best.base = std::min(best.base, run(nullptr));
    best.observed = std::min(best.observed, run(observer));
  }
  return best;
}

}  // namespace

int main() {
  bench::banner("E21",
                "full observation slows the protocol round loop by < 5%");
  bench::JsonReport report("obs_overhead");

#ifdef DMATCH_OBS_DISABLED
  std::cout << "built with -DDMATCH_OBS_DISABLED: every hook is compiled "
               "out,\noverhead is 0% by construction (both arms below run "
               "the identical\nbaseline path).\n\n";
#endif

  const int reps = 5;

  struct CellSpec {
    const char* workload;
    NodeId n;
    std::function<double(obs::Observer*)> run;
  };
  std::vector<CellSpec> cells;
  for (const NodeId n : {100000, 300000}) {
    const auto g = std::make_shared<Graph>(gen::gnp(n, 8.0 / n, 7));
    cells.push_back(
        {"protocol", n, [g](obs::Observer* ob) { return protocol_once(*g, ob); }});
  }
  for (const NodeId n : {20000, 60000}) {
    const auto g = std::make_shared<Graph>(gen::gnp(n, 8.0 / n, 7));
    cells.push_back({"flood", n, [g](obs::Observer* ob) {
                       return flood_once(*g, 12, ob);
                     }});
  }

  Table table({"workload", "n", "baseline s", "observed s", "overhead",
               "events", "messages"});
  for (const CellSpec& spec : cells) {
    // Fresh fully enabled Observer per cell so buffers do not carry
    // over between measurements.
    obs::Observer ob;
    const Pair t = best_of(reps, &ob, spec.run);
    const double overhead = t.observed / t.base - 1.0;
    const std::uint64_t events = ob.trace_sink().event_count();
    const std::uint64_t messages =
        ob.metrics().merged_value(ob.ids().engine_messages);

    table.row()
        .cell(spec.workload)
        .cell(std::int64_t{spec.n})
        .cell(t.base, 4)
        .cell(t.observed, 4)
        .cell(overhead, 4)
        .cell(static_cast<std::int64_t>(events))
        .cell(static_cast<std::int64_t>(messages));
    std::ostringstream cell;
    cell << "{\"experiment\":\"E21\",\"workload\":\"" << spec.workload
         << "\",\"n\":" << spec.n << ",\"baseline_seconds\":" << t.base
         << ",\"observed_seconds\":" << t.observed
         << ",\"overhead\":" << overhead << ",\"trace_events\":" << events
         << ",\"observed_messages\":" << messages << ",\"compiled_out\":"
#ifdef DMATCH_OBS_DISABLED
         << "true"
#else
         << "false"
#endif
         << "}";
    std::cout << cell.str() << "\n";
    report.cell(cell.str());
  }
  std::cout << "\n";
  table.print(std::cout);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "\nwrote " << written << "\n";
  bench::footer(
      "Reading: the protocol rows stay below 0.05 (the per-message hook is "
      "three\nadds on pre-resolved slab pointers); the flood rows bound the "
      "hook's raw\ncost against a baseline that does almost nothing per "
      "message. The warm-up\nrun and interleaved best-of-5 repeats keep "
      "allocator and scheduler noise\nout of the ratio. An unattached "
      "Observer is a single branch per round and\nmeasures as baseline.");
  return 0;
}
