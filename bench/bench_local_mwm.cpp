// E14 -- Section 4's Remark: (1 - eps)-MWM in the LOCAL model
// (Hougardy-Vinkemeier adaptation). Compares quality against the
// exact optimum and against Algorithm 5's (1/2 - eps) CONGEST result,
// and shows the LOCAL message price.
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/exact_small.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E14",
                "(1 - eps)-MWM (LOCAL remark) vs (1/2 - eps)-MWM (CONGEST)");

  Table table({"n", "eps", "guarantee k/(k+1)", "LOCAL ratio",
               "Alg5 ratio", "LOCAL sweeps", "LOCAL max msg bits"});
  const int seeds = 3;
  for (const NodeId n : {12, 16, 20}) {
    for (const double eps : {0.51, 0.34, 0.26}) {
      double local_ratio = 0;
      double alg5_ratio = 0;
      double guarantee = 0;
      double sweeps = 0;
      std::uint64_t msg_bits = 0;
      int counted = 0;
      for (int s = 0; s < seeds; ++s) {
        const Graph g = gen::with_uniform_weights(
            gen::gnp(n, 0.3, static_cast<std::uint64_t>(s) + 300), 1.0, 50.0,
            static_cast<std::uint64_t>(s) + 301);
        const double opt = exact_mwm_value(g);
        if (opt == 0) continue;
        ++counted;

        LocalMwmOptions local_options;
        local_options.epsilon = eps;
        local_options.seed = static_cast<std::uint64_t>(s) + 302;
        const auto local = local_one_minus_eps_mwm(g, local_options);
        local_ratio += local.matching.weight(g) / opt;
        guarantee = local.guarantee;
        sweeps += local.sweeps;
        msg_bits = std::max(
            msg_bits, std::uint64_t{local.stats.max_message_bits});

        HalfMwmOptions alg5_options;
        alg5_options.epsilon = eps / 2;
        alg5_options.seed = static_cast<std::uint64_t>(s) + 303;
        const auto alg5 = approx_mwm(g, alg5_options);
        alg5_ratio += alg5.matching.weight(g) / opt;
      }
      if (counted == 0) continue;
      table.row()
          .cell(std::int64_t{n})
          .cell(eps, 2)
          .cell(guarantee, 3)
          .cell(local_ratio / counted, 4)
          .cell(alg5_ratio / counted, 4)
          .cell(sweeps / counted, 1)
          .cell(msg_bits);
    }
  }
  table.print(std::cout);
  bench::footer(
      "Reading: the LOCAL algorithm certifies k/(k+1) of the optimum "
      "(Lemma 4.2\napplied to its stopping condition) and in practice lands "
      "at ~1.0,\nbeating Algorithm 5 -- but pays with view-sized messages, "
      "which is why\nthe paper leaves sub-O(log n)-bit (1-eps)-MWM as an "
      "open problem.");
  return 0;
}
