// E5 -- Theorem 4.5 approximation quality: (1/2 - eps)-MWM for shrinking
// eps, against the Hungarian optimum (bipartite) and the exponential
// oracle (small general graphs).
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/exact_small.hpp"
#include "graph/generators.hpp"
#include "graph/hungarian.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E5", "(1/2 - eps)-MWM ratio vs exact optimum");

  const int seeds = 4;
  {
    std::cout << "Bipartite, uniform weights, vs Hungarian:\n";
    Table table({"eps", "bound 1/2-eps", "iterations", "min ratio",
                 "avg ratio"});
    for (const double eps : {0.25, 0.1, 0.05, 0.01}) {
      double min_ratio = 1.0;
      double sum_ratio = 0;
      int iters = 0;
      for (int s = 0; s < seeds; ++s) {
        const Graph g = gen::with_uniform_weights(
            gen::bipartite_gnp(48, 48, 0.1, static_cast<std::uint64_t>(s)),
            1.0, 100.0, static_cast<std::uint64_t>(s) + 7);
        const double opt = hungarian_mwm(g).weight(g);
        if (opt == 0) continue;
        HalfMwmOptions options;
        options.epsilon = eps;
        options.seed = static_cast<std::uint64_t>(s) + 70;
        const auto result = approx_mwm(g, options);
        const double ratio = result.matching.weight(g) / opt;
        min_ratio = std::min(min_ratio, ratio);
        sum_ratio += ratio;
        iters = result.iterations;
      }
      table.row()
          .cell(eps, 2)
          .cell(0.5 - eps, 3)
          .cell(std::int64_t{iters})
          .cell(min_ratio, 4)
          .cell(sum_ratio / seeds, 4);
    }
    table.print(std::cout);
  }

  std::cout << "\nSmall general graphs, heavy-tailed weights, vs the "
               "exponential oracle:\n";
  {
    Table table({"eps", "bound 1/2-eps", "min ratio", "avg ratio"});
    for (const double eps : {0.25, 0.05}) {
      double min_ratio = 1.0;
      double sum_ratio = 0;
      int counted = 0;
      for (int s = 0; s < 2 * seeds; ++s) {
        const Graph g = gen::with_exponential_weights(
            gen::gnp(16, 0.35, static_cast<std::uint64_t>(s) + 40), 1000.0,
            static_cast<std::uint64_t>(s) + 41);
        const double opt = exact_mwm_value(g);
        if (opt == 0) continue;
        HalfMwmOptions options;
        options.epsilon = eps;
        options.seed = static_cast<std::uint64_t>(s) + 71;
        const auto result = approx_mwm(g, options);
        const double ratio = result.matching.weight(g) / opt;
        min_ratio = std::min(min_ratio, ratio);
        sum_ratio += ratio;
        ++counted;
      }
      table.row()
          .cell(eps, 2)
          .cell(0.5 - eps, 3)
          .cell(min_ratio, 4)
          .cell(sum_ratio / counted, 4);
    }
    table.print(std::cout);
  }
  bench::footer(
      "Reading: measured ratios exceed the (1/2 - eps) guarantee by a wide\n"
      "margin (typically >= 0.9): each Algorithm 5 iteration applies *all*\n"
      "non-conflicting positive-gain 3-augmentations, and real instances\n"
      "rarely exhibit the adversarial series-path structure of the "
      "1/2\nbarrier (Section 4's closing remark).");
  return 0;
}
