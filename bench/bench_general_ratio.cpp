// E3 -- Theorem 3.15 approximation quality on general graphs: the
// red/blue reduction must reach (1 - 1/k) |M*| on non-bipartite inputs
// (odd cycles, cliques, power-law graphs), measured against Blossom.
#include <iostream>

#include "bench_util.hpp"
#include "core/api.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

namespace {

struct Workload {
  const char* name;
  Graph graph;
};

}  // namespace

int main() {
  bench::banner("E3", "general-graph (1 - 1/k)-MCM ratio vs Blossom optimum");

  std::vector<Workload> workloads;
  workloads.push_back({"gnp(100, 0.05)", gen::gnp(100, 0.05, 1)});
  workloads.push_back({"gnp(100, 0.2)", gen::gnp(100, 0.2, 2)});
  workloads.push_back({"near_regular(100, 4)", gen::near_regular(100, 4, 3)});
  workloads.push_back({"barabasi_albert(100, 2)",
                       gen::barabasi_albert(100, 2, 4)});
  workloads.push_back({"cycle(101)", gen::cycle(101)});
  workloads.push_back({"complete(41)", gen::complete(41)});

  Table table({"workload", "k", "bound", "|M*|", "|M|", "ratio", "rounds"});
  for (const Workload& w : workloads) {
    const std::size_t opt = blossom_mcm(w.graph).size();
    for (const int k : {2, 3}) {
      GeneralMcmOptions options;
      options.k = k;
      options.seed = 17;
      const auto result = approx_mcm_general(w.graph, options);
      table.row()
          .cell(w.name)
          .cell(std::int64_t{k})
          .cell(1.0 - 1.0 / k, 3)
          .cell(opt)
          .cell(result.matching.size())
          .cell(opt ? static_cast<double>(result.matching.size()) / opt : 1.0,
                4)
          .cell(result.stats.rounds);
    }
  }
  table.print(std::cout);
  bench::footer(
      "Reading: every ratio clears its bound; odd structures (cycles, "
      "cliques)\nare handled because the random 2-coloring exposes augmenting "
      "paths with\nconstant probability per iteration (Observation 3.12).");
  return 0;
}
