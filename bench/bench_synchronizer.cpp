// E15 -- footnote 2: synchrony is WLOG. Runs the protocols over the
// asynchronous executor through the alpha synchronizer and reports the
// overhead relative to the synchronous runs (identical results by
// construction; the tests assert bit-equality).
#include <iostream>

#include "bench_util.hpp"
#include "congest/async.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main() {
  bench::banner("E15",
                "alpha synchronizer: overhead of running the protocols "
                "asynchronously");

  Table table({"n", "sync rounds", "async virtual rounds", "payload msgs",
               "control msgs (ACK+SAFE)", "overhead factor", "same result"});
  for (const NodeId n : {32, 64, 128, 256}) {
    const Graph g = gen::gnp(n, 8.0 / n, static_cast<std::uint64_t>(n));

    congest::Network sync_net(g, congest::Model::kCongest, 5);
    const IsraeliItaiResult sync_result = israeli_itai(sync_net);

    const auto async_result =
        congest::run_synchronized(g, israeli_itai_factory(), 5, 1 << 14);

    const double overhead =
        async_result.stats.payload_messages == 0
            ? 0.0
            : static_cast<double>(async_result.stats.control_messages) /
                  static_cast<double>(async_result.stats.payload_messages);
    table.row()
        .cell(std::int64_t{n})
        .cell(sync_result.stats.rounds)
        .cell(async_result.stats.virtual_rounds)
        .cell(async_result.stats.payload_messages)
        .cell(async_result.stats.control_messages)
        .cell(overhead, 2)
        .cell(async_result.matching == sync_result.matching ? "yes" : "NO");
  }
  table.print(std::cout);
  bench::footer(
      "Reading: the synchronizer reproduces the synchronous execution "
      "exactly\n(last column) while paying one ACK per payload message plus "
      "one SAFE per\nedge per simulated round -- the alpha synchronizer's "
      "O(|E|) messages per\npulse, traded for zero extra latency, exactly "
      "as [Awerbuch 1985]\ndescribes.");
  return 0;
}
