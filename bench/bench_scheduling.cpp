// E23 -- scheduler dispatch overhead, shard load balance, and
// mode-independence of results.
//
// The round engine's dispatcher (support/sched.hpp) offers three
// scheduling modes -- static, work-stealing, rapid-start -- that may only
// differ in wall-clock behavior, never in results. This bench measures
// the three claims separately:
//   A. dispatch overhead: wall time of an empty run_tasks() fan-out per
//      mode and thread count (the fixed cost every engine round pays);
//   B. shard service-time balance: per-shard busy-ns min/median/max under
//      a uniform-degree G(n,p) vs a power-law Barabasi-Albert graph, for
//      static vs work-stealing dispatch (stealing should cap the max on
//      skewed work when real cores are available);
//   C. end-to-end engine throughput (rounds/s) per mode;
//   D. determinism sweep: the Israeli-Itai matching is hashed across
//      every mode x thread count, fault-free and under a fault plan --
//      all hashes must be identical. On a 1-core container A-C degenerate
//      (no parallelism to observe) and D plus the embedded machine
//      context is the load-bearing output.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "congest/network.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "support/sched.hpp"
#include "support/table.hpp"
#include "support/wire.hpp"

using namespace dmatch;

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Model;
using congest::Network;
using congest::Process;
using support::SchedMode;
using support::SchedOptions;
using support::Scheduler;

constexpr SchedMode kModes[] = {SchedMode::kStatic, SchedMode::kWorkSteal,
                                SchedMode::kRapidStart};

/// Flood protocol from E18: every node sends on every port each round, so
/// per-shard work is proportional to the shard's degree sum.
class Flood final : public Process {
 public:
  explicit Flood(int rounds) : rounds_(rounds) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    (void)inbox;
    if (ctx.round() < rounds_) {
      BitWriter w;
      w.write(static_cast<std::uint64_t>(ctx.round()), 32);
      const Message msg = Message::from_writer(std::move(w));
      for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
    }
    halted_ = ctx.round() >= rounds_;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  int rounds_;
  bool halted_ = false;
};

congest::ProcessFactory flood_factory(int rounds) {
  return [rounds](NodeId, const Graph&) {
    return std::make_unique<Flood>(rounds);
  };
}

std::uint64_t matching_hash(const Graph& g, const Matching& m) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (EdgeId e : m.edges(g)) {
    mix(static_cast<std::uint64_t>(g.edge(e).u));
    mix(static_cast<std::uint64_t>(g.edge(e).v));
  }
  return h;
}

struct ServiceStats {
  double min_ms = 0, median_ms = 0, max_ms = 0;
};

ServiceStats service_stats(const std::vector<std::uint64_t>& ns) {
  ServiceStats s;
  if (ns.empty()) return s;
  std::vector<std::uint64_t> sorted = ns;
  std::sort(sorted.begin(), sorted.end());
  s.min_ms = static_cast<double>(sorted.front()) / 1e6;
  s.median_ms = static_cast<double>(sorted[sorted.size() / 2]) / 1e6;
  s.max_ms = static_cast<double>(sorted.back()) / 1e6;
  return s;
}

}  // namespace

int main() {
  bench::banner("E23",
                "scheduling modes change wall-clock behavior only: dispatch "
                "cost and balance differ, results are bit-identical");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  bench::JsonReport report("scheduling");
  report.set_machine(bench::machine_context_json());

  // --- A. dispatch overhead ------------------------------------------
  {
    Table table({"mode", "threads", "tasks", "dispatch us (min of N)"});
    constexpr int kBatch = 1000;
    for (const SchedMode mode : kModes) {
      for (const unsigned threads : thread_counts) {
        SchedOptions opts;
        opts.mode = mode;
        Scheduler sched(threads, opts);
        const unsigned tasks = sched.plan_tasks(1u << 20);
        const auto noop = [](unsigned) {};
        const double secs = bench::min_seconds(
            [&] {
              for (int i = 0; i < kBatch; ++i) sched.run_tasks(tasks, noop);
            },
            5, 1);
        const double us = secs / kBatch * 1e6;
        table.row()
            .cell(std::string(support::to_string(mode)))
            .cell(std::int64_t{threads})
            .cell(std::int64_t{tasks})
            .cell(us, 3);
        std::ostringstream cell;
        cell << "{\"section\":\"dispatch\",\"mode\":\""
             << support::to_string(mode) << "\",\"threads\":" << threads
             << ",\"tasks\":" << tasks << ",\"dispatch_us\":" << us << "}";
        std::cout << cell.str() << "\n";
        report.cell(cell.str());
      }
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- B. shard service balance, uniform vs power-law ----------------
  {
    const NodeId n = 20000;
    const int rounds = 8;
    struct Workload {
      const char* name;
      Graph g;
    };
    const Workload loads[] = {
        {"gnp_uniform", gen::gnp(n, 8.0 / n, 11)},
        {"ba_powerlaw", gen::barabasi_albert(n, 4, 11)},
    };
    Table table({"graph", "mode", "threads", "shards", "min ms", "median ms",
                 "max ms", "max/median"});
    for (const Workload& wl : loads) {
      for (const SchedMode mode : {SchedMode::kStatic, SchedMode::kWorkSteal}) {
        Network::Options opt;
        opt.num_threads = hw;
        opt.sched.mode = mode;
        opt.sched.profile = true;
        Network net(wl.g, Model::kLocal, 1, 48, opt);
        net.run(flood_factory(rounds), rounds + 2);
        const ServiceStats s =
            service_stats(net.scheduler().task_service_ns());
        const double ratio =
            s.median_ms > 0 ? s.max_ms / s.median_ms : 0;
        table.row()
            .cell(std::string(wl.name))
            .cell(std::string(support::to_string(mode)))
            .cell(std::int64_t{hw})
            .cell(std::int64_t{net.num_shards()})
            .cell(s.min_ms, 3)
            .cell(s.median_ms, 3)
            .cell(s.max_ms, 3)
            .cell(ratio, 2);
        std::ostringstream cell;
        cell << "{\"section\":\"balance\",\"graph\":\"" << wl.name
             << "\",\"mode\":\"" << support::to_string(mode)
             << "\",\"threads\":" << hw
             << ",\"shards\":" << net.num_shards()
             << ",\"service_min_ms\":" << s.min_ms
             << ",\"service_median_ms\":" << s.median_ms
             << ",\"service_max_ms\":" << s.max_ms
             << ",\"max_over_median\":" << ratio << "}";
        std::cout << cell.str() << "\n";
        report.cell(cell.str());
      }
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- C. end-to-end engine throughput per mode ----------------------
  {
    const NodeId n = 20000;
    const int rounds = 10;
    const Graph g = gen::gnp(n, 8.0 / n, 7);
    Table table({"mode", "threads", "pin", "seconds (min of N)", "rounds/s"});
    for (const SchedMode mode : kModes) {
      for (const unsigned threads : thread_counts) {
        SchedOptions sched;
        sched.mode = mode;
        // Pin only the largest fan-out; pinning a 1-thread run is a no-op
        // and the contrast is what the column is for.
        sched.pin_threads =
            threads == thread_counts.back() && Scheduler::pinning_supported();
        Network::Options opt;
        opt.num_threads = threads;
        opt.sched = sched;
        const double secs = bench::min_seconds(
            [&] {
              Network net(g, Model::kLocal, 1, 48, opt);
              net.run(flood_factory(rounds), rounds + 2);
            },
            3, 1);
        const double rps = static_cast<double>(rounds) / secs;
        table.row()
            .cell(std::string(support::to_string(mode)))
            .cell(std::int64_t{threads})
            .cell(std::int64_t{sched.pin_threads ? 1 : 0})
            .cell(secs, 4)
            .cell(rps, 1);
        std::ostringstream cell;
        cell << "{\"section\":\"throughput\",\"mode\":\""
             << support::to_string(mode) << "\",\"threads\":" << threads
             << ",\"pin\":" << (sched.pin_threads ? "true" : "false")
             << ",\"seconds\":" << secs << ",\"rounds_per_sec\":" << rps
             << "}";
        std::cout << cell.str() << "\n";
        report.cell(cell.str());
      }
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  // --- D. determinism sweep ------------------------------------------
  bool all_identical = true;
  {
    const Graph g = gen::gnp(4000, 10.0 / 4000, 3);
    congest::FaultPlan faults;
    faults.drop_prob = 0.02;
    faults.duplicate_prob = 0.01;
    faults.delay_prob = 0.02;
    faults.crash_prob = 0.002;
    faults.restart_prob = 0.5;
    faults.seed = 99;
    Table table({"faults", "mode", "threads", "matching hash", "identical"});
    for (const bool faulty : {false, true}) {
      std::uint64_t reference = 0;
      bool have_reference = false;
      for (const SchedMode mode : kModes) {
        for (const unsigned threads : {1u, 2u, 8u}) {
          Network::Options opt;
          opt.num_threads = threads;
          opt.sched.mode = mode;
          if (faulty) opt.fault = faults;
          const auto result = maximal_matching(g, 17, 48, opt);
          const std::uint64_t h = matching_hash(g, result.matching);
          if (!have_reference) {
            reference = h;
            have_reference = true;
          }
          const bool same = h == reference;
          all_identical = all_identical && same;
          table.row()
              .cell(std::int64_t{faulty ? 1 : 0})
              .cell(std::string(support::to_string(mode)))
              .cell(std::int64_t{threads})
              .cell(static_cast<std::int64_t>(h))
              .cell(std::string(same ? "yes" : "NO"));
          std::ostringstream cell;
          cell << "{\"section\":\"determinism\",\"faults\":"
               << (faulty ? "true" : "false") << ",\"mode\":\""
               << support::to_string(mode) << "\",\"threads\":" << threads
               << ",\"matching_hash\":" << h
               << ",\"identical\":" << (same ? "true" : "false") << "}";
          std::cout << cell.str() << "\n";
          report.cell(cell.str());
        }
      }
    }
    std::cout << "\n";
    table.print(std::cout);
  }

  const std::string written = report.write();
  if (!written.empty()) std::cout << "\nwrote " << written << "\n";

  bench::footer(
      "Reading: every determinism row must say identical=yes (the modes' "
      "bit-identity contract; this is the hard claim and holds on any "
      "machine). With >= 2 real cores, dispatch cost should stay in the "
      "low tens of microseconds per fan-out, and on ba_powerlaw the "
      "work-stealing max/median service ratio should not exceed the "
      "static one.");
  return all_identical ? 0 : 1;
}
