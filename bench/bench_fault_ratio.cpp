// E19 -- graceful degradation: approximation quality of the bipartite and
// general MCM drivers as a function of injected message-drop and
// node-crash rates. Emits one JSON line per (algorithm, drop, crash)
// cell so the sweep can be post-processed, plus a human-readable table.
//
// The bipartite ratio is measured against the optimum of the *surviving*
// subgraph (crashed nodes are unmatchable for any algorithm); the general
// driver owns its networks internally, so its ratio is reported against
// the full-graph optimum and is therefore a lower bound on the fair one.
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "congest/resilient.hpp"
#include "core/api.hpp"
#include "core/verify.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

namespace {

struct Cell {
  int runs = 0;
  double sum_ratio = 0;
  double min_ratio = 1.0;
  double sum_crashed = 0;
  int degraded = 0;
  int budget_exhausted = 0;
  int contract_tripped = 0;
  int invalid = 0;

  void add(const MatchingInvariantReport& report,
           const congest::DegradationReport& degradation) {
    ++runs;
    sum_ratio += report.ratio;
    min_ratio = std::min(min_ratio, report.ratio);
    sum_crashed += static_cast<double>(degradation.crashed_nodes);
    degraded += degradation.degraded() ? 1 : 0;
    budget_exhausted += degradation.budget_exhausted ? 1 : 0;
    contract_tripped += degradation.contract_tripped ? 1 : 0;
    invalid += report.ok() ? 0 : 1;
  }

  [[nodiscard]] std::string json(const char* algo, double drop,
                                 double crash) const {
    std::ostringstream out;
    out << "{\"experiment\": \"E19\", \"algo\": \"" << algo
        << "\", \"drop\": " << drop << ", \"crash\": " << crash
        << ", \"runs\": " << runs << ", \"avg_ratio\": " << sum_ratio / runs
        << ", \"min_ratio\": " << min_ratio
        << ", \"avg_crashed_nodes\": " << sum_crashed / runs
        << ", \"degraded_runs\": " << degraded
        << ", \"budget_exhausted_runs\": " << budget_exhausted
        << ", \"contract_tripped_runs\": " << contract_tripped
        << ", \"invalid_runs\": " << invalid << "}";
    return out.str();
  }
};

congest::FaultPlan make_plan(double drop, double crash, std::uint64_t seed) {
  congest::FaultPlan plan;
  plan.drop_prob = drop;
  plan.crash_prob = crash;
  plan.crash_round_bound = 64;
  plan.restart_prob = 0.0;
  plan.seed = seed;
  return plan;
}

}  // namespace

int main() {
  bench::banner("E19",
                "matching quality under injected drop and crash faults");
  bench::JsonReport report("fault_ratio");

  const double kDropRates[] = {0.0, 0.01, 0.05, 0.1};
  const double kCrashRates[] = {0.0, 0.01};
  const int seeds = 3;

  Table table({"algo", "drop", "crash", "avg ratio", "min ratio",
               "avg dead", "degraded", "invalid"});
  for (const double crash : kCrashRates) {
    for (const double drop : kDropRates) {
      Cell bip;
      for (int s = 0; s < seeds; ++s) {
        const auto seed = static_cast<std::uint64_t>(s) + 1;
        const Graph g = gen::bipartite_gnp(48, 48, 0.1, seed);
        const auto side = g.bipartition();
        congest::Network::Options net_options;
        net_options.fault = make_plan(drop, crash, seed * 977);
        congest::Network net(g, congest::Model::kCongest, seed + 40, 48,
                             net_options);
        BipartiteMcmOptions options;
        options.k = 5;
        const BipartiteMcmResult result = bipartite_mcm(net, *side, options);
        bip.add(verify_matching_invariants(g, result.matching, &net, true),
                result.degradation);
      }
      const std::string bip_json = bip.json("bipartite_mcm", drop, crash);
      std::cout << bip_json << "\n";
      report.cell(bip_json);
      table.row()
          .cell("bipartite")
          .cell(drop, 2)
          .cell(crash, 2)
          .cell(bip.sum_ratio / bip.runs, 4)
          .cell(bip.min_ratio, 4)
          .cell(bip.sum_crashed / bip.runs, 1)
          .cell(std::int64_t{bip.degraded})
          .cell(std::int64_t{bip.invalid});

      Cell gen_cell;
      for (int s = 0; s < seeds; ++s) {
        const auto seed = static_cast<std::uint64_t>(s) + 1;
        const Graph g = gen::gnp(64, 0.06, seed);
        GeneralMcmOptions options;
        options.k = 3;
        options.patience = 8;
        options.seed = seed + 60;
        options.fault = make_plan(drop, crash, seed * 1409);
        const GeneralMcmResult result = general_mcm(g, options);
        MatchingInvariantReport report =
            verify_matching_invariants(g, result.matching);
        const std::size_t opt = blossom_mcm(g).size();
        report.optimal_size = opt;
        report.ratio = opt == 0 ? 1.0
                                : static_cast<double>(report.size) /
                                      static_cast<double>(opt);
        gen_cell.add(report, result.degradation);
      }
      const std::string gen_json = gen_cell.json("general_mcm", drop, crash);
      std::cout << gen_json << "\n";
      report.cell(gen_json);
      table.row()
          .cell("general")
          .cell(drop, 2)
          .cell(crash, 2)
          .cell(gen_cell.sum_ratio / gen_cell.runs, 4)
          .cell(gen_cell.min_ratio, 4)
          .cell(gen_cell.sum_crashed / gen_cell.runs, 1)
          .cell(std::int64_t{gen_cell.degraded})
          .cell(std::int64_t{gen_cell.invalid});
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  bench::footer(
      "Reading: ratios stay near 1-1/k at drop <= 0.05 with no crashes "
      "(the\nresilient layer masks message loss), dip with crashes roughly "
      "by the dead\nfraction (general MCM: full-graph denominator), and "
      "invalid runs stay 0\neverywhere -- degradation is graceful, never "
      "corrupt.");

  // E20 -- ARQ round overhead: real rounds of the resilient link layer
  // (selective repeat, windows 8 and 16) against the fault-free baseline
  // and the window-1 stop-and-wait degenerate, over the E19 drop
  // schedules. The window-16 arm answers whether doubling the window
  // (the full 16-bit SACK field) closes the drop = 0.1 gap of window 8.
  bench::banner("E20",
                "selective-repeat ARQ round overhead vs stop-and-wait");
  Table t20({"drop", "baseline", "w8", "w8 ovh", "w16", "w16 ovh",
             "stop-wait", "sw ovh"});
  for (const double drop : kDropRates) {
    double base_rounds = 0;
    double w8_rounds = 0;
    double w16_rounds = 0;
    double sw_rounds = 0;
    for (int s = 0; s < seeds; ++s) {
      const auto seed = static_cast<std::uint64_t>(s) + 1;
      const Graph g = gen::gnp(96, 0.05, seed);
      congest::Network plain(g, congest::Model::kCongest, seed + 70, 48);
      base_rounds += static_cast<double>(
          plain.run(israeli_itai_factory(), 1 << 12).rounds);
      for (const int window : {8, 16, 1}) {
        congest::Network::Options net_options;
        net_options.fault = make_plan(drop, 0.0, seed * 557);
        congest::Network net(g, congest::Model::kCongest, seed + 70, 48,
                             net_options);
        congest::ResilientOptions ropts;
        ropts.window = window;
        const congest::RunStats stats =
            net.run(congest::resilient_factory(israeli_itai_factory(), ropts),
                    congest::resilient_round_budget(1 << 12));
        double& acc =
            window == 8 ? w8_rounds : (window == 16 ? w16_rounds : sw_rounds);
        acc += static_cast<double>(stats.rounds);
      }
    }
    base_rounds /= seeds;
    w8_rounds /= seeds;
    w16_rounds /= seeds;
    sw_rounds /= seeds;
    std::ostringstream cell;
    cell << "{\"experiment\": \"E20\", \"drop\": " << drop
         << ", \"runs\": " << seeds << ", \"baseline_rounds\": " << base_rounds
         << ", \"selective_repeat_rounds\": " << w8_rounds
         << ", \"selective_repeat_overhead\": " << w8_rounds / base_rounds
         << ", \"window16_rounds\": " << w16_rounds
         << ", \"window16_overhead\": " << w16_rounds / base_rounds
         << ", \"stop_and_wait_rounds\": " << sw_rounds
         << ", \"stop_and_wait_overhead\": " << sw_rounds / base_rounds << "}";
    std::cout << cell.str() << "\n";
    report.cell(cell.str());
    t20.row()
        .cell(drop, 2)
        .cell(base_rounds, 1)
        .cell(w8_rounds, 1)
        .cell(w8_rounds / base_rounds, 2)
        .cell(w16_rounds, 1)
        .cell(w16_rounds / base_rounds, 2)
        .cell(sw_rounds, 1)
        .cell(sw_rounds / base_rounds, 2);
  }
  std::cout << "\n";
  t20.print(std::cout);
  const std::string written = report.write();
  if (!written.empty()) std::cout << "wrote " << written << "\n";
  bench::footer(
      "Reading: selective repeat pipelines a window per RTT, so it adds "
      "almost\nnothing without loss (~1.03x) and stays around 2x through "
      "drop = 0.05;\nstop-and-wait pays a full RTT per virtual round from "
      "the start (~2x) and\ncollapses at drop = 0.1, where serial "
      "per-frame timeouts compound. The\nwindow-16 column records whether "
      "the wider window closes the drop = 0.1\ngap (see EXPERIMENTS.md "
      "E20 for the measured answer).");
  return 0;
}
