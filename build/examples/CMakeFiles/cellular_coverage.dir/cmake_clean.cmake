file(REMOVE_RECURSE
  "CMakeFiles/cellular_coverage.dir/cellular_coverage.cpp.o"
  "CMakeFiles/cellular_coverage.dir/cellular_coverage.cpp.o.d"
  "cellular_coverage"
  "cellular_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellular_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
