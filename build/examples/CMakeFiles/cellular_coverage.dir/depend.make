# Empty dependencies file for cellular_coverage.
# This may be replaced when dependencies are built.
