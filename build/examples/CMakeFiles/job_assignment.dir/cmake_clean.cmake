file(REMOVE_RECURSE
  "CMakeFiles/job_assignment.dir/job_assignment.cpp.o"
  "CMakeFiles/job_assignment.dir/job_assignment.cpp.o.d"
  "job_assignment"
  "job_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
