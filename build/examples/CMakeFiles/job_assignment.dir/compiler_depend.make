# Empty compiler generated dependencies file for job_assignment.
# This may be replaced when dependencies are built.
