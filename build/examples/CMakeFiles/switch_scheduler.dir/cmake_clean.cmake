file(REMOVE_RECURSE
  "CMakeFiles/switch_scheduler.dir/switch_scheduler.cpp.o"
  "CMakeFiles/switch_scheduler.dir/switch_scheduler.cpp.o.d"
  "switch_scheduler"
  "switch_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
