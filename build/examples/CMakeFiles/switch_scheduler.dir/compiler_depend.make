# Empty compiler generated dependencies file for switch_scheduler.
# This may be replaced when dependencies are built.
