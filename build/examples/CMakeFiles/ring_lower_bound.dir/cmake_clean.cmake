file(REMOVE_RECURSE
  "CMakeFiles/ring_lower_bound.dir/ring_lower_bound.cpp.o"
  "CMakeFiles/ring_lower_bound.dir/ring_lower_bound.cpp.o.d"
  "ring_lower_bound"
  "ring_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
