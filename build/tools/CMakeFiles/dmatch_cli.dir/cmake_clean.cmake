file(REMOVE_RECURSE
  "CMakeFiles/dmatch_cli.dir/dmatch_cli.cpp.o"
  "CMakeFiles/dmatch_cli.dir/dmatch_cli.cpp.o.d"
  "dmatch_cli"
  "dmatch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmatch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
