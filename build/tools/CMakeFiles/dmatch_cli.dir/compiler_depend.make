# Empty compiler generated dependencies file for dmatch_cli.
# This may be replaced when dependencies are built.
