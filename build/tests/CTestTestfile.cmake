# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_matching[1]_include.cmake")
include("/root/repo/build/tests/test_augmenting[1]_include.cmake")
include("/root/repo/build/tests/test_exact_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_congest[1]_include.cmake")
include("/root/repo/build/tests/test_network_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_wire_contract[1]_include.cmake")
include("/root/repo/build/tests/test_async[1]_include.cmake")
include("/root/repo/build/tests/test_mis[1]_include.cmake")
include("/root/repo/build/tests/test_israeli_itai[1]_include.cmake")
include("/root/repo/build/tests/test_bipartite_mcm[1]_include.cmake")
include("/root/repo/build/tests/test_counting[1]_include.cmake")
include("/root/repo/build/tests/test_general_mcm[1]_include.cmake")
include("/root/repo/build/tests/test_b_matching[1]_include.cmake")
include("/root/repo/build/tests/test_weighted[1]_include.cmake")
include("/root/repo/build/tests/test_local_generic[1]_include.cmake")
include("/root/repo/build/tests/test_local_mwm[1]_include.cmake")
include("/root/repo/build/tests/test_switchsim[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_torture[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
