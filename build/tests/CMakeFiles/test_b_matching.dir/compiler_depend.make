# Empty compiler generated dependencies file for test_b_matching.
# This may be replaced when dependencies are built.
