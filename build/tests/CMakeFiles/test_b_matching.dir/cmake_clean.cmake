file(REMOVE_RECURSE
  "CMakeFiles/test_b_matching.dir/test_b_matching.cpp.o"
  "CMakeFiles/test_b_matching.dir/test_b_matching.cpp.o.d"
  "test_b_matching"
  "test_b_matching.pdb"
  "test_b_matching[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_b_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
