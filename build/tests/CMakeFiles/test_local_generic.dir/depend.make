# Empty dependencies file for test_local_generic.
# This may be replaced when dependencies are built.
