file(REMOVE_RECURSE
  "CMakeFiles/test_local_generic.dir/test_local_generic.cpp.o"
  "CMakeFiles/test_local_generic.dir/test_local_generic.cpp.o.d"
  "test_local_generic"
  "test_local_generic.pdb"
  "test_local_generic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_generic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
