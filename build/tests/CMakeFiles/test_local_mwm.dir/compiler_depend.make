# Empty compiler generated dependencies file for test_local_mwm.
# This may be replaced when dependencies are built.
