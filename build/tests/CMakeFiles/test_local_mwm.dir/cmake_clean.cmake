file(REMOVE_RECURSE
  "CMakeFiles/test_local_mwm.dir/test_local_mwm.cpp.o"
  "CMakeFiles/test_local_mwm.dir/test_local_mwm.cpp.o.d"
  "test_local_mwm"
  "test_local_mwm.pdb"
  "test_local_mwm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_mwm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
