# Empty compiler generated dependencies file for test_mis.
# This may be replaced when dependencies are built.
