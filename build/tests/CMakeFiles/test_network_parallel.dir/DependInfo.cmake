
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_network_parallel.cpp" "tests/CMakeFiles/test_network_parallel.dir/test_network_parallel.cpp.o" "gcc" "tests/CMakeFiles/test_network_parallel.dir/test_network_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmatch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmatch_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmatch_mis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmatch_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmatch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
