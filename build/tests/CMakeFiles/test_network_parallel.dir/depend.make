# Empty dependencies file for test_network_parallel.
# This may be replaced when dependencies are built.
