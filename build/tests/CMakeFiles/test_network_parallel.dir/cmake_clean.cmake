file(REMOVE_RECURSE
  "CMakeFiles/test_network_parallel.dir/test_network_parallel.cpp.o"
  "CMakeFiles/test_network_parallel.dir/test_network_parallel.cpp.o.d"
  "test_network_parallel"
  "test_network_parallel.pdb"
  "test_network_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
