file(REMOVE_RECURSE
  "CMakeFiles/test_augmenting.dir/test_augmenting.cpp.o"
  "CMakeFiles/test_augmenting.dir/test_augmenting.cpp.o.d"
  "test_augmenting"
  "test_augmenting.pdb"
  "test_augmenting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_augmenting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
