# Empty dependencies file for test_augmenting.
# This may be replaced when dependencies are built.
