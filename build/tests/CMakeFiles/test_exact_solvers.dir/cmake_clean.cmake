file(REMOVE_RECURSE
  "CMakeFiles/test_exact_solvers.dir/test_exact_solvers.cpp.o"
  "CMakeFiles/test_exact_solvers.dir/test_exact_solvers.cpp.o.d"
  "test_exact_solvers"
  "test_exact_solvers.pdb"
  "test_exact_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
