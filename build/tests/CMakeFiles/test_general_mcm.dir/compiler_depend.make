# Empty compiler generated dependencies file for test_general_mcm.
# This may be replaced when dependencies are built.
