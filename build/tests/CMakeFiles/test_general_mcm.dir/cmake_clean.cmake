file(REMOVE_RECURSE
  "CMakeFiles/test_general_mcm.dir/test_general_mcm.cpp.o"
  "CMakeFiles/test_general_mcm.dir/test_general_mcm.cpp.o.d"
  "test_general_mcm"
  "test_general_mcm.pdb"
  "test_general_mcm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_general_mcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
