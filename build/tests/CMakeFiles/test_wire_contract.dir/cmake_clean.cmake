file(REMOVE_RECURSE
  "CMakeFiles/test_wire_contract.dir/test_wire_contract.cpp.o"
  "CMakeFiles/test_wire_contract.dir/test_wire_contract.cpp.o.d"
  "test_wire_contract"
  "test_wire_contract.pdb"
  "test_wire_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
