# Empty dependencies file for test_wire_contract.
# This may be replaced when dependencies are built.
