# Empty dependencies file for test_israeli_itai.
# This may be replaced when dependencies are built.
