file(REMOVE_RECURSE
  "CMakeFiles/test_israeli_itai.dir/test_israeli_itai.cpp.o"
  "CMakeFiles/test_israeli_itai.dir/test_israeli_itai.cpp.o.d"
  "test_israeli_itai"
  "test_israeli_itai.pdb"
  "test_israeli_itai[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_israeli_itai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
