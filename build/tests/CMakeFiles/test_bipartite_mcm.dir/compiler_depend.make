# Empty compiler generated dependencies file for test_bipartite_mcm.
# This may be replaced when dependencies are built.
