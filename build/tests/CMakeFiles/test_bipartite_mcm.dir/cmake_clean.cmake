file(REMOVE_RECURSE
  "CMakeFiles/test_bipartite_mcm.dir/test_bipartite_mcm.cpp.o"
  "CMakeFiles/test_bipartite_mcm.dir/test_bipartite_mcm.cpp.o.d"
  "test_bipartite_mcm"
  "test_bipartite_mcm.pdb"
  "test_bipartite_mcm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bipartite_mcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
