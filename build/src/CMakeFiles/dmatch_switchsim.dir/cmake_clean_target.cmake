file(REMOVE_RECURSE
  "libdmatch_switchsim.a"
)
