file(REMOVE_RECURSE
  "CMakeFiles/dmatch_switchsim.dir/switchsim/switch_sim.cpp.o"
  "CMakeFiles/dmatch_switchsim.dir/switchsim/switch_sim.cpp.o.d"
  "libdmatch_switchsim.a"
  "libdmatch_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmatch_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
