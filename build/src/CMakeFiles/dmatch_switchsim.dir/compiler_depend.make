# Empty compiler generated dependencies file for dmatch_switchsim.
# This may be replaced when dependencies are built.
