
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/augmenting.cpp" "src/CMakeFiles/dmatch_graph.dir/graph/augmenting.cpp.o" "gcc" "src/CMakeFiles/dmatch_graph.dir/graph/augmenting.cpp.o.d"
  "/root/repo/src/graph/blossom.cpp" "src/CMakeFiles/dmatch_graph.dir/graph/blossom.cpp.o" "gcc" "src/CMakeFiles/dmatch_graph.dir/graph/blossom.cpp.o.d"
  "/root/repo/src/graph/exact_small.cpp" "src/CMakeFiles/dmatch_graph.dir/graph/exact_small.cpp.o" "gcc" "src/CMakeFiles/dmatch_graph.dir/graph/exact_small.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/dmatch_graph.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/dmatch_graph.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/dmatch_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/dmatch_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/hopcroft_karp.cpp" "src/CMakeFiles/dmatch_graph.dir/graph/hopcroft_karp.cpp.o" "gcc" "src/CMakeFiles/dmatch_graph.dir/graph/hopcroft_karp.cpp.o.d"
  "/root/repo/src/graph/hungarian.cpp" "src/CMakeFiles/dmatch_graph.dir/graph/hungarian.cpp.o" "gcc" "src/CMakeFiles/dmatch_graph.dir/graph/hungarian.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/dmatch_graph.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/dmatch_graph.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/matching.cpp" "src/CMakeFiles/dmatch_graph.dir/graph/matching.cpp.o" "gcc" "src/CMakeFiles/dmatch_graph.dir/graph/matching.cpp.o.d"
  "/root/repo/src/graph/seq_matching.cpp" "src/CMakeFiles/dmatch_graph.dir/graph/seq_matching.cpp.o" "gcc" "src/CMakeFiles/dmatch_graph.dir/graph/seq_matching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmatch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
