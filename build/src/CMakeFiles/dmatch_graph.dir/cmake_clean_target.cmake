file(REMOVE_RECURSE
  "libdmatch_graph.a"
)
