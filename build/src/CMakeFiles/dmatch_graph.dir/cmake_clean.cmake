file(REMOVE_RECURSE
  "CMakeFiles/dmatch_graph.dir/graph/augmenting.cpp.o"
  "CMakeFiles/dmatch_graph.dir/graph/augmenting.cpp.o.d"
  "CMakeFiles/dmatch_graph.dir/graph/blossom.cpp.o"
  "CMakeFiles/dmatch_graph.dir/graph/blossom.cpp.o.d"
  "CMakeFiles/dmatch_graph.dir/graph/exact_small.cpp.o"
  "CMakeFiles/dmatch_graph.dir/graph/exact_small.cpp.o.d"
  "CMakeFiles/dmatch_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/dmatch_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/dmatch_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/dmatch_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/dmatch_graph.dir/graph/hopcroft_karp.cpp.o"
  "CMakeFiles/dmatch_graph.dir/graph/hopcroft_karp.cpp.o.d"
  "CMakeFiles/dmatch_graph.dir/graph/hungarian.cpp.o"
  "CMakeFiles/dmatch_graph.dir/graph/hungarian.cpp.o.d"
  "CMakeFiles/dmatch_graph.dir/graph/io.cpp.o"
  "CMakeFiles/dmatch_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/dmatch_graph.dir/graph/matching.cpp.o"
  "CMakeFiles/dmatch_graph.dir/graph/matching.cpp.o.d"
  "CMakeFiles/dmatch_graph.dir/graph/seq_matching.cpp.o"
  "CMakeFiles/dmatch_graph.dir/graph/seq_matching.cpp.o.d"
  "libdmatch_graph.a"
  "libdmatch_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmatch_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
