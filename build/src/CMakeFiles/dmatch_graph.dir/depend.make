# Empty dependencies file for dmatch_graph.
# This may be replaced when dependencies are built.
