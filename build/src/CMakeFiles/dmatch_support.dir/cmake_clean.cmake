file(REMOVE_RECURSE
  "CMakeFiles/dmatch_support.dir/support/rng.cpp.o"
  "CMakeFiles/dmatch_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/dmatch_support.dir/support/table.cpp.o"
  "CMakeFiles/dmatch_support.dir/support/table.cpp.o.d"
  "CMakeFiles/dmatch_support.dir/support/thread_pool.cpp.o"
  "CMakeFiles/dmatch_support.dir/support/thread_pool.cpp.o.d"
  "CMakeFiles/dmatch_support.dir/support/wire.cpp.o"
  "CMakeFiles/dmatch_support.dir/support/wire.cpp.o.d"
  "libdmatch_support.a"
  "libdmatch_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmatch_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
