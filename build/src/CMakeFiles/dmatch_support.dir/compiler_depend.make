# Empty compiler generated dependencies file for dmatch_support.
# This may be replaced when dependencies are built.
