file(REMOVE_RECURSE
  "libdmatch_support.a"
)
