file(REMOVE_RECURSE
  "CMakeFiles/dmatch_mis.dir/mis/luby.cpp.o"
  "CMakeFiles/dmatch_mis.dir/mis/luby.cpp.o.d"
  "libdmatch_mis.a"
  "libdmatch_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmatch_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
