# Empty dependencies file for dmatch_mis.
# This may be replaced when dependencies are built.
