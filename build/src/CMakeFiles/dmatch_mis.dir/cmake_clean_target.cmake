file(REMOVE_RECURSE
  "libdmatch_mis.a"
)
