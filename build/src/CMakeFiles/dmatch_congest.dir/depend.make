# Empty dependencies file for dmatch_congest.
# This may be replaced when dependencies are built.
