file(REMOVE_RECURSE
  "CMakeFiles/dmatch_congest.dir/congest/async.cpp.o"
  "CMakeFiles/dmatch_congest.dir/congest/async.cpp.o.d"
  "CMakeFiles/dmatch_congest.dir/congest/message.cpp.o"
  "CMakeFiles/dmatch_congest.dir/congest/message.cpp.o.d"
  "CMakeFiles/dmatch_congest.dir/congest/network.cpp.o"
  "CMakeFiles/dmatch_congest.dir/congest/network.cpp.o.d"
  "libdmatch_congest.a"
  "libdmatch_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmatch_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
