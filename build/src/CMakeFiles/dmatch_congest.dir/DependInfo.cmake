
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/congest/async.cpp" "src/CMakeFiles/dmatch_congest.dir/congest/async.cpp.o" "gcc" "src/CMakeFiles/dmatch_congest.dir/congest/async.cpp.o.d"
  "/root/repo/src/congest/message.cpp" "src/CMakeFiles/dmatch_congest.dir/congest/message.cpp.o" "gcc" "src/CMakeFiles/dmatch_congest.dir/congest/message.cpp.o.d"
  "/root/repo/src/congest/network.cpp" "src/CMakeFiles/dmatch_congest.dir/congest/network.cpp.o" "gcc" "src/CMakeFiles/dmatch_congest.dir/congest/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmatch_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmatch_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
