file(REMOVE_RECURSE
  "libdmatch_congest.a"
)
