# Empty compiler generated dependencies file for dmatch_core.
# This may be replaced when dependencies are built.
