file(REMOVE_RECURSE
  "CMakeFiles/dmatch_core.dir/core/b_matching.cpp.o"
  "CMakeFiles/dmatch_core.dir/core/b_matching.cpp.o.d"
  "CMakeFiles/dmatch_core.dir/core/bipartite_mcm.cpp.o"
  "CMakeFiles/dmatch_core.dir/core/bipartite_mcm.cpp.o.d"
  "CMakeFiles/dmatch_core.dir/core/delta_mwm.cpp.o"
  "CMakeFiles/dmatch_core.dir/core/delta_mwm.cpp.o.d"
  "CMakeFiles/dmatch_core.dir/core/general_mcm.cpp.o"
  "CMakeFiles/dmatch_core.dir/core/general_mcm.cpp.o.d"
  "CMakeFiles/dmatch_core.dir/core/half_mwm.cpp.o"
  "CMakeFiles/dmatch_core.dir/core/half_mwm.cpp.o.d"
  "CMakeFiles/dmatch_core.dir/core/israeli_itai.cpp.o"
  "CMakeFiles/dmatch_core.dir/core/israeli_itai.cpp.o.d"
  "CMakeFiles/dmatch_core.dir/core/local_generic_mcm.cpp.o"
  "CMakeFiles/dmatch_core.dir/core/local_generic_mcm.cpp.o.d"
  "CMakeFiles/dmatch_core.dir/core/local_mwm.cpp.o"
  "CMakeFiles/dmatch_core.dir/core/local_mwm.cpp.o.d"
  "CMakeFiles/dmatch_core.dir/core/wrap_gain.cpp.o"
  "CMakeFiles/dmatch_core.dir/core/wrap_gain.cpp.o.d"
  "libdmatch_core.a"
  "libdmatch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmatch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
