
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/b_matching.cpp" "src/CMakeFiles/dmatch_core.dir/core/b_matching.cpp.o" "gcc" "src/CMakeFiles/dmatch_core.dir/core/b_matching.cpp.o.d"
  "/root/repo/src/core/bipartite_mcm.cpp" "src/CMakeFiles/dmatch_core.dir/core/bipartite_mcm.cpp.o" "gcc" "src/CMakeFiles/dmatch_core.dir/core/bipartite_mcm.cpp.o.d"
  "/root/repo/src/core/delta_mwm.cpp" "src/CMakeFiles/dmatch_core.dir/core/delta_mwm.cpp.o" "gcc" "src/CMakeFiles/dmatch_core.dir/core/delta_mwm.cpp.o.d"
  "/root/repo/src/core/general_mcm.cpp" "src/CMakeFiles/dmatch_core.dir/core/general_mcm.cpp.o" "gcc" "src/CMakeFiles/dmatch_core.dir/core/general_mcm.cpp.o.d"
  "/root/repo/src/core/half_mwm.cpp" "src/CMakeFiles/dmatch_core.dir/core/half_mwm.cpp.o" "gcc" "src/CMakeFiles/dmatch_core.dir/core/half_mwm.cpp.o.d"
  "/root/repo/src/core/israeli_itai.cpp" "src/CMakeFiles/dmatch_core.dir/core/israeli_itai.cpp.o" "gcc" "src/CMakeFiles/dmatch_core.dir/core/israeli_itai.cpp.o.d"
  "/root/repo/src/core/local_generic_mcm.cpp" "src/CMakeFiles/dmatch_core.dir/core/local_generic_mcm.cpp.o" "gcc" "src/CMakeFiles/dmatch_core.dir/core/local_generic_mcm.cpp.o.d"
  "/root/repo/src/core/local_mwm.cpp" "src/CMakeFiles/dmatch_core.dir/core/local_mwm.cpp.o" "gcc" "src/CMakeFiles/dmatch_core.dir/core/local_mwm.cpp.o.d"
  "/root/repo/src/core/wrap_gain.cpp" "src/CMakeFiles/dmatch_core.dir/core/wrap_gain.cpp.o" "gcc" "src/CMakeFiles/dmatch_core.dir/core/wrap_gain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dmatch_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmatch_mis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmatch_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dmatch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
