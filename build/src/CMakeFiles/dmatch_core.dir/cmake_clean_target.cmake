file(REMOVE_RECURSE
  "libdmatch_core.a"
)
