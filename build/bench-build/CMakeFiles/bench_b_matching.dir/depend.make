# Empty dependencies file for bench_b_matching.
# This may be replaced when dependencies are built.
