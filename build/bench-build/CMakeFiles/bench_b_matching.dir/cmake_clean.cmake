file(REMOVE_RECURSE
  "../bench/bench_b_matching"
  "../bench/bench_b_matching.pdb"
  "CMakeFiles/bench_b_matching.dir/bench_b_matching.cpp.o"
  "CMakeFiles/bench_b_matching.dir/bench_b_matching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
