file(REMOVE_RECURSE
  "../bench/bench_bipartite_ratio"
  "../bench/bench_bipartite_ratio.pdb"
  "CMakeFiles/bench_bipartite_ratio.dir/bench_bipartite_ratio.cpp.o"
  "CMakeFiles/bench_bipartite_ratio.dir/bench_bipartite_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bipartite_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
