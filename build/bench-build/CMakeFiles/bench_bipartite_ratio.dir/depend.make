# Empty dependencies file for bench_bipartite_ratio.
# This may be replaced when dependencies are built.
