file(REMOVE_RECURSE
  "../bench/bench_weighted_ratio"
  "../bench/bench_weighted_ratio.pdb"
  "CMakeFiles/bench_weighted_ratio.dir/bench_weighted_ratio.cpp.o"
  "CMakeFiles/bench_weighted_ratio.dir/bench_weighted_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weighted_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
