# Empty dependencies file for bench_weighted_ratio.
# This may be replaced when dependencies are built.
