# Empty dependencies file for bench_round_engine.
# This may be replaced when dependencies are built.
