file(REMOVE_RECURSE
  "../bench/bench_round_engine"
  "../bench/bench_round_engine.pdb"
  "CMakeFiles/bench_round_engine.dir/bench_round_engine.cpp.o"
  "CMakeFiles/bench_round_engine.dir/bench_round_engine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_round_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
