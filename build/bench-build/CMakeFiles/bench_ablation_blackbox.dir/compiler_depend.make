# Empty compiler generated dependencies file for bench_ablation_blackbox.
# This may be replaced when dependencies are built.
