file(REMOVE_RECURSE
  "../bench/bench_ablation_blackbox"
  "../bench/bench_ablation_blackbox.pdb"
  "CMakeFiles/bench_ablation_blackbox.dir/bench_ablation_blackbox.cpp.o"
  "CMakeFiles/bench_ablation_blackbox.dir/bench_ablation_blackbox.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blackbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
