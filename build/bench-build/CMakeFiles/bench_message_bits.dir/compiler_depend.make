# Empty compiler generated dependencies file for bench_message_bits.
# This may be replaced when dependencies are built.
