file(REMOVE_RECURSE
  "../bench/bench_message_bits"
  "../bench/bench_message_bits.pdb"
  "CMakeFiles/bench_message_bits.dir/bench_message_bits.cpp.o"
  "CMakeFiles/bench_message_bits.dir/bench_message_bits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_message_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
