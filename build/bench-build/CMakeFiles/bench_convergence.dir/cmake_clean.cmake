file(REMOVE_RECURSE
  "../bench/bench_convergence"
  "../bench/bench_convergence.pdb"
  "CMakeFiles/bench_convergence.dir/bench_convergence.cpp.o"
  "CMakeFiles/bench_convergence.dir/bench_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
