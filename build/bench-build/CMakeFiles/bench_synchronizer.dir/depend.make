# Empty dependencies file for bench_synchronizer.
# This may be replaced when dependencies are built.
