file(REMOVE_RECURSE
  "../bench/bench_synchronizer"
  "../bench/bench_synchronizer.pdb"
  "CMakeFiles/bench_synchronizer.dir/bench_synchronizer.cpp.o"
  "CMakeFiles/bench_synchronizer.dir/bench_synchronizer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synchronizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
