file(REMOVE_RECURSE
  "../bench/bench_general_ratio"
  "../bench/bench_general_ratio.pdb"
  "CMakeFiles/bench_general_ratio.dir/bench_general_ratio.cpp.o"
  "CMakeFiles/bench_general_ratio.dir/bench_general_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_general_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
