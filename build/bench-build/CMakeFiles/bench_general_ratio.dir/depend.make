# Empty dependencies file for bench_general_ratio.
# This may be replaced when dependencies are built.
