file(REMOVE_RECURSE
  "../bench/bench_switch"
  "../bench/bench_switch.pdb"
  "CMakeFiles/bench_switch.dir/bench_switch.cpp.o"
  "CMakeFiles/bench_switch.dir/bench_switch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
