# Empty dependencies file for bench_baseline_ii.
# This may be replaced when dependencies are built.
