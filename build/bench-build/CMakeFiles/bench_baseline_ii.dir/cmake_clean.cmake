file(REMOVE_RECURSE
  "../bench/bench_baseline_ii"
  "../bench/bench_baseline_ii.pdb"
  "CMakeFiles/bench_baseline_ii.dir/bench_baseline_ii.cpp.o"
  "CMakeFiles/bench_baseline_ii.dir/bench_baseline_ii.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_ii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
