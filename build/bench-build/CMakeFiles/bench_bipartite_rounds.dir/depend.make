# Empty dependencies file for bench_bipartite_rounds.
# This may be replaced when dependencies are built.
