file(REMOVE_RECURSE
  "../bench/bench_bipartite_rounds"
  "../bench/bench_bipartite_rounds.pdb"
  "CMakeFiles/bench_bipartite_rounds.dir/bench_bipartite_rounds.cpp.o"
  "CMakeFiles/bench_bipartite_rounds.dir/bench_bipartite_rounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bipartite_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
