# Empty dependencies file for bench_weighted_rounds.
# This may be replaced when dependencies are built.
