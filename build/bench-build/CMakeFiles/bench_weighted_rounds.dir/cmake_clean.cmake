file(REMOVE_RECURSE
  "../bench/bench_weighted_rounds"
  "../bench/bench_weighted_rounds.pdb"
  "CMakeFiles/bench_weighted_rounds.dir/bench_weighted_rounds.cpp.o"
  "CMakeFiles/bench_weighted_rounds.dir/bench_weighted_rounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weighted_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
