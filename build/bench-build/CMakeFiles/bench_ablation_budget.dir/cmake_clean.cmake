file(REMOVE_RECURSE
  "../bench/bench_ablation_budget"
  "../bench/bench_ablation_budget.pdb"
  "CMakeFiles/bench_ablation_budget.dir/bench_ablation_budget.cpp.o"
  "CMakeFiles/bench_ablation_budget.dir/bench_ablation_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
