file(REMOVE_RECURSE
  "../bench/bench_general_iters"
  "../bench/bench_general_iters.pdb"
  "CMakeFiles/bench_general_iters.dir/bench_general_iters.cpp.o"
  "CMakeFiles/bench_general_iters.dir/bench_general_iters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_general_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
