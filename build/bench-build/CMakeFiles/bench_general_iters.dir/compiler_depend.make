# Empty compiler generated dependencies file for bench_general_iters.
# This may be replaced when dependencies are built.
