file(REMOVE_RECURSE
  "../bench/bench_local_generic"
  "../bench/bench_local_generic.pdb"
  "CMakeFiles/bench_local_generic.dir/bench_local_generic.cpp.o"
  "CMakeFiles/bench_local_generic.dir/bench_local_generic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_generic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
