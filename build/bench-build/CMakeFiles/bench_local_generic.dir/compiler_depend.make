# Empty compiler generated dependencies file for bench_local_generic.
# This may be replaced when dependencies are built.
