# Empty dependencies file for bench_local_mwm.
# This may be replaced when dependencies are built.
