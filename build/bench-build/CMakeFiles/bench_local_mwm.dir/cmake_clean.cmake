file(REMOVE_RECURSE
  "../bench/bench_local_mwm"
  "../bench/bench_local_mwm.pdb"
  "CMakeFiles/bench_local_mwm.dir/bench_local_mwm.cpp.o"
  "CMakeFiles/bench_local_mwm.dir/bench_local_mwm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_mwm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
