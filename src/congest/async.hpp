// Asynchronous execution and Awerbuch's alpha synchronizer.
//
// The paper assumes a synchronous network and notes (footnote 2) that this
// is without loss of generality via a synchronizer. This module makes that
// concrete: an event-driven asynchronous network in which every message
// suffers an arbitrary (seeded, bounded) delay, plus an adapter that runs
// any synchronous congest::Process on top of it using the alpha
// synchronizer [Awerbuch 1985]:
//
//   * a node executing simulated round R stamps its payload messages DATA(R);
//   * every DATA is acknowledged; once all of a node's DATA(R) are acked it
//     announces SAFE(R) to all neighbors;
//   * a node starts round R+1 once it has executed round R and heard
//     SAFE(R) from every neighbor (all round-R messages addressed to it
//     have then been delivered).
//
// run_synchronized() returns the same per-node results as the synchronous
// Network for the same node RNG streams -- asserted by the test suite.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "congest/network.hpp"
#include "congest/process.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch::congest {

struct AsyncStats {
  std::uint64_t events = 0;          // message deliveries processed
  std::uint64_t payload_messages = 0;
  std::uint64_t control_messages = 0;  // ACK + SAFE overhead
  std::uint64_t virtual_rounds = 0;    // max simulated round executed
  double completion_time = 0;          // async time of the last delivery
  bool completed = true;
};

/// Runs the synchronous protocol built by `factory` over an asynchronous
/// network with per-message delays drawn uniformly from [min_delay,
/// max_delay]. The matching registers live in `mate_ports` (size n,
/// -1 = unmatched), exactly like Network's registers; pass a vector
/// initialized to the starting matching.
AsyncStats run_synchronized(const Graph& g, const ProcessFactory& factory,
                            std::vector<int>& mate_ports, std::uint64_t seed,
                            int max_virtual_rounds, double min_delay = 0.1,
                            double max_delay = 3.0);

/// Convenience: run on an empty matching and return it (validated).
struct AsyncRunResult {
  Matching matching;
  AsyncStats stats;
};
AsyncRunResult run_synchronized(const Graph& g, const ProcessFactory& factory,
                                std::uint64_t seed, int max_virtual_rounds);

}  // namespace dmatch::congest
