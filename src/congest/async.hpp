// Asynchronous execution and Awerbuch's alpha synchronizer.
//
// The paper assumes a synchronous network and notes (footnote 2) that this
// is without loss of generality via a synchronizer. This module makes that
// concrete: an event-driven asynchronous network in which every message
// suffers an arbitrary (seeded, bounded) delay, plus an adapter that runs
// any synchronous congest::Process on top of it using the alpha
// synchronizer [Awerbuch 1985]:
//
//   * a node executing simulated round R stamps its payload messages DATA(R);
//   * every DATA is acknowledged; once all of a node's DATA(R) are acked it
//     announces SAFE(R) to all neighbors;
//   * a node starts round R+1 once it has executed round R and heard
//     SAFE(R) from every neighbor (all round-R messages addressed to it
//     have then been delivered).
//
// run_synchronized() returns the same per-node results as the synchronous
// Network for the same node RNG streams -- asserted by the test suite.
//
// Execution model (see docs/PROTOCOLS.md, "Sharded async executor"):
// nodes are partitioned into contiguous shards, one per worker of a
// support/thread_pool, and each shard owns a local event queue ordered
// by the canonical event key (timestamp, destination, kind, port,
// round, synthetic-copy flag). Per-event delivery delays are pure
// hashes of that key, never draws from a shared stream, and the
// executor advances in conservative time windows of width `min_delay`:
// every event inside a window was already queued when the window
// opened (anything an in-window event spawns lands at least min_delay
// later), and in-window events addressed to different nodes touch
// disjoint state, so the shard-parallel execution is *bit-identical*
// to the sequential one for any AsyncOptions::num_threads — matchings,
// AsyncStats, fault counters, and observability output all agree.
//
// Fault awareness: AsyncOptions carries the same FaultPlan the round
// engine takes, and the executor injects the same seed-hashed fault
// history — every drop/duplicate/delay/reorder decision is the identical
// mix(run_seed, round, slot) hash the engine draws, and the crash
// schedule is the identical compute_crash_schedule() table — so a
// protocol run under a plan agrees between the two executors round for
// round. Faults act on the *payload plane* only: a dropped DATA message
// still traverses the network as a synchronizer event and is
// acknowledged (the alpha synchronizer's control plane is reliable, as
// in Awerbuch's model), but its payload never reaches the inbox. A
// delayed payload is filed for a later simulated round; a duplicate adds
// a synthetic second delivery that generates no acknowledgement. Crashed
// nodes stop executing their protocol but keep synchronizing (they
// acknowledge and announce SAFE with no data) so their neighbors never
// deadlock, and crash-restarts resurrect them with fresh protocol state
// and a cleared output register — exactly the engine's semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "congest/fault.hpp"
#include "congest/network.hpp"
#include "congest/process.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch::congest {

struct AsyncOptions {
  /// Per-message delivery delay bounds (uniform, seeded). min_delay is
  /// also the executor's conservative parallel window width: smaller
  /// values mean more synchronization barriers per simulated second.
  double min_delay = 0.1;
  double max_delay = 3.0;
  /// Worker count of the sharded event loop. 0 = hardware concurrency;
  /// 1 = fully sequential (no OS threads are created). Any value
  /// produces bit-identical runs.
  unsigned num_threads = 1;
  /// Scheduling mode / pinning / profiling for the wave dispatcher (see
  /// support/sched.hpp). Like num_threads, every mode is bit-identical:
  /// shard geometry is frozen from the scheduler's task plan before the
  /// first event executes, and all cross-shard merges are canonical.
  support::SchedOptions sched;
  /// Fault plan with the round engine's semantics. Inactive by default.
  FaultPlan fault;
  /// Observability sink (not owned; must outlive the run). Virtual
  /// rounds advance the Observer's clock just like engine rounds, so an
  /// async run slots into the same trace timeline; nullptr or
  /// -DDMATCH_OBS_DISABLED keeps the executor unobserved.
  obs::Observer* observer = nullptr;
};

struct AsyncStats {
  std::uint64_t events = 0;          // message deliveries processed
  std::uint64_t payload_messages = 0;
  std::uint64_t control_messages = 0;  // ACK + SAFE overhead
  std::uint64_t virtual_rounds = 0;    // max simulated round executed
  double completion_time = 0;          // async time of the last delivery
  bool completed = true;
  /// Payload messages sent by nodes executing simulated round r
  /// (degenerate crashed rounds contribute zero, like the engine's
  /// unstepped dead nodes). The async counterpart of
  /// RunStats.round_messages: sum(round_payloads) == payload_messages,
  /// cross-checked by core/verify's verify_round_accounting.
  std::vector<std::uint64_t> round_payloads;

  // Fault counters, mirroring RunStats so sync/async histories can be
  // compared directly. All zero without an active plan.
  std::uint64_t dropped_messages = 0;
  std::uint64_t duplicated_messages = 0;
  std::uint64_t delayed_messages = 0;
  std::uint64_t reordered_inboxes = 0;
  std::uint64_t crashed_nodes = 0;
  std::uint64_t restarted_nodes = 0;
};

/// Runs the synchronous protocol built by `factory` over an asynchronous
/// network with per-message delays drawn uniformly from
/// [options.min_delay, options.max_delay], injecting options.fault. The
/// matching registers live in `mate_ports` (size n, -1 = unmatched),
/// exactly like Network's registers; pass a vector initialized to the
/// starting matching. If `dead_out` is non-null it receives the
/// end-of-run dead-node mask (size n, all zero without a plan).
AsyncStats run_synchronized(const Graph& g, const ProcessFactory& factory,
                            std::vector<int>& mate_ports, std::uint64_t seed,
                            int max_virtual_rounds,
                            const AsyncOptions& options = {},
                            std::vector<char>* dead_out = nullptr);

/// Positional compatibility overload (fault-free).
AsyncStats run_synchronized(const Graph& g, const ProcessFactory& factory,
                            std::vector<int>& mate_ports, std::uint64_t seed,
                            int max_virtual_rounds, double min_delay,
                            double max_delay);

/// Convenience: run on an empty matching and return it. Without an
/// active plan the registers must be strictly consistent (asserted);
/// with one, the same register healing Network applies is performed
/// here — dead/torn registers are cleared and reported — so the
/// returned matching is always valid over the surviving nodes.
struct AsyncRunResult {
  Matching matching;
  AsyncStats stats;
  DegradationReport degradation;
  std::vector<char> dead_nodes;  // dead at end of run; empty w/o plan
};
AsyncRunResult run_synchronized(const Graph& g, const ProcessFactory& factory,
                                std::uint64_t seed, int max_virtual_rounds,
                                const AsyncOptions& options = {});

}  // namespace dmatch::congest
