// The node-program interface of the synchronous message-passing model.
//
// One Process instance runs at each node. In every round the Network calls
// on_round with the messages that neighbors sent in the previous round; the
// process may send messages through the Context, update its local state,
// and update its matching output register. A protocol terminates when every
// process reports halted and no message is in flight.
#pragma once

#include <span>

#include "congest/message.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace dmatch::obs {
class ShardObs;
}  // namespace dmatch::obs

namespace dmatch::congest {

/// Per-node view of the network, provided by the simulator. Exposes only
/// information a CONGEST node legitimately has: its id, its ports, the ids
/// and edge weights of its neighbors, a global bound on n (standard
/// assumption: nodes know W_max with log W_max = O(log n)), a private
/// random stream, and its output register.
class Context {
 public:
  virtual ~Context() = default;

  [[nodiscard]] virtual NodeId id() const = 0;
  [[nodiscard]] virtual int degree() const = 0;
  [[nodiscard]] virtual NodeId neighbor_id(int port) const = 0;
  [[nodiscard]] virtual Weight edge_weight(int port) const = 0;

  /// Common upper bound on the number of nodes / identifier values.
  [[nodiscard]] virtual NodeId n_bound() const = 0;

  /// Current round number (0-based within the running protocol).
  [[nodiscard]] virtual int round() const = 0;

  /// This node's private randomness.
  virtual Rng& rng() = 0;

  /// Queue a message for delivery to the neighbor on `port` next round.
  /// At most one message per port per round; over-cap messages throw in
  /// CONGEST mode.
  virtual void send(int port, Message msg) = 0;

  /// Matching output register: the port of the matched edge, or -1.
  [[nodiscard]] virtual int mate_port() const = 0;
  virtual void set_mate_port(int port) = 0;
  virtual void clear_mate() = 0;

  /// Observability handle of the shard executing this node, or nullptr
  /// when no Observer is attached. Not part of the CONGEST model —
  /// wrappers (e.g. the resilient transport) use it to emit trace events
  /// without widening the protocol interface.
  [[nodiscard]] virtual obs::ShardObs* obs() noexcept { return nullptr; }
};

class Process {
 public:
  virtual ~Process() = default;

  /// Execute one synchronous round. `inbox` holds the messages sent to this
  /// node in the previous round, in ascending port order.
  virtual void on_round(Context& ctx, std::span<const Envelope> inbox) = 0;

  /// True once this node will neither send nor change state again.
  [[nodiscard]] virtual bool halted() const = 0;
};

}  // namespace dmatch::congest
