#include "congest/resilient.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"
#include "support/wire.hpp"

namespace dmatch::congest {

namespace {

constexpr unsigned kVrBits = 20;
constexpr unsigned kAckBits = 20;
constexpr unsigned kSackBits = 16;
constexpr std::uint32_t kVrMax = (std::uint32_t{1} << kVrBits) - 1;

void append_payload(BitWriter& w, const Message& msg) {
  BitReader r = msg.reader();
  while (r.remaining() > 0) {
    const unsigned take = std::min(64u, r.remaining());
    w.write(r.read(take), take);
  }
}

Message read_payload(BitReader& r) {
  BitWriter w;
  while (r.remaining() > 0) {
    const unsigned take = std::min(64u, r.remaining());
    w.write(r.read(take), take);
  }
  return Message::from_writer(std::move(w));
}

/// Context handed to the wrapped process: identical to the real one
/// except that time is the virtual-round clock and sends are captured
/// for framing instead of hitting the wire directly.
class ResilientContext final : public Context {
 public:
  ResilientContext(Context& real, int vround,
                   std::vector<std::pair<bool, Message>>& out)
      : real_(real), vround_(vround), out_(out) {}

  [[nodiscard]] NodeId id() const override { return real_.id(); }
  [[nodiscard]] int degree() const override { return real_.degree(); }
  [[nodiscard]] NodeId neighbor_id(int port) const override {
    return real_.neighbor_id(port);
  }
  [[nodiscard]] Weight edge_weight(int port) const override {
    return real_.edge_weight(port);
  }
  [[nodiscard]] NodeId n_bound() const override { return real_.n_bound(); }
  [[nodiscard]] int round() const override { return vround_; }
  Rng& rng() override { return real_.rng(); }

  void send(int port, Message msg) override {
    DMATCH_EXPECTS(port >= 0 &&
                   port < static_cast<int>(out_.size()));
    DMATCH_EXPECTS(!out_[static_cast<std::size_t>(port)].first);
    out_[static_cast<std::size_t>(port)] = {true, std::move(msg)};
  }

  [[nodiscard]] int mate_port() const override { return real_.mate_port(); }
  void set_mate_port(int port) override { real_.set_mate_port(port); }
  void clear_mate() override { real_.clear_mate(); }
  [[nodiscard]] obs::ShardObs* obs() noexcept override { return real_.obs(); }

 private:
  Context& real_;
  int vround_;
  std::vector<std::pair<bool, Message>>& out_;
};

}  // namespace

ResilientProcess::ResilientProcess(std::unique_ptr<Process> inner, int degree,
                                   ResilientOptions opts)
    : inner_(std::move(inner)), opts_(opts) {
  DMATCH_EXPECTS(inner_ != nullptr);
  DMATCH_EXPECTS(degree >= 0);
  opts_.window = std::clamp(opts_.window, 1, static_cast<int>(kSackBits));
  opts_.min_rto = std::max(opts_.min_rto, 1);
  opts_.initial_rto = std::max(opts_.initial_rto, opts_.min_rto);
  opts_.max_timeout = std::max(opts_.max_timeout, opts_.initial_rto);
  ports_.resize(static_cast<std::size_t>(degree));
  // A process born halted is never scheduled by the engine; it only ever
  // wakes when a frame arrives, and then announces its halt reactively.
  reactive_ = inner_->halted();
  inner_halted_ = reactive_;
}

bool ResilientProcess::halted() const { return reactive_ || done_; }

void ResilientProcess::rtt_sample(PortState& p, int sample) {
  // BSD fixed point: srtt is the smoothed RTT × 8, rttvar the mean
  // deviation × 4, so the EWMA gains 1/8 and 1/4 survive integer math
  // at round-scale magnitudes.
  if (!p.have_rtt) {
    p.srtt = sample << 3;
    p.rttvar = sample << 1;
    p.have_rtt = true;
    return;
  }
  int err = sample - (p.srtt >> 3);
  p.srtt += err;
  if (p.srtt < 1) p.srtt = 1;
  if (err < 0) err = -err;
  p.rttvar += err - (p.rttvar >> 2);
}

int ResilientProcess::port_rto(const PortState& p) const {
  if (!p.have_rtt) return opts_.initial_rto;
  const int rto = (p.srtt >> 3) + std::max(1, (p.rttvar >> 2) * 2);
  return std::clamp(rto, opts_.min_rto, opts_.max_timeout);
}

int ResilientProcess::frame_timeout(const PortState& p,
                                    const OutFrame& f) const {
  // Exponential backoff per retransmission, capped.
  const int shift = std::min(f.retries, 16);
  const long long t = static_cast<long long>(port_rto(p)) << shift;
  return t >= opts_.max_timeout ? opts_.max_timeout : static_cast<int>(t);
}

void ResilientProcess::accept_data(PortState& p, std::uint32_t vr, bool halt,
                                   bool has_payload, BitReader& r) {
  p.owe_ack = true;  // every data frame is (re-)acked
  if (halt && !p.peer_halted) {
    p.peer_halted = true;
    p.peer_halt_vr = vr;
  }
  if (vr < p.next_vr) return;  // duplicate: discard, idempotent receive
  if (vr == p.next_vr) {
    InFrame f;
    f.vr = vr;
    f.has_payload = has_payload;
    if (has_payload) f.payload = read_payload(r);
    p.inq.push_back(std::move(f));
    ++p.next_vr;
    // The gap just closed: drain every buffered successor in order.
    auto it = p.ooo.begin();
    while (it != p.ooo.end() && it->vr == p.next_vr) {
      p.inq.push_back(std::move(*it));
      ++p.next_vr;
      ++it;
    }
    p.ooo.erase(p.ooo.begin(), it);
    return;
  }
  if (vr - p.next_vr > kSackBits) {
    // Beyond any legal sender window, so this is not reordering: one
    // side restarted. Skip ahead — the gap vrounds are lost — and drop
    // the stale reorder buffer.
    p.ooo.clear();
    InFrame f;
    f.vr = vr;
    f.has_payload = has_payload;
    if (has_payload) f.payload = read_payload(r);
    p.inq.push_back(std::move(f));
    p.next_vr = vr + 1;
    return;
  }
  // In-window, out of order: buffer once, advertise in the sack bitmap.
  auto it = p.ooo.begin();
  while (it != p.ooo.end() && it->vr < vr) ++it;
  if (it != p.ooo.end() && it->vr == vr) return;  // already held
  InFrame f;
  f.vr = vr;
  f.has_payload = has_payload;
  if (has_payload) f.payload = read_payload(r);
  p.ooo.insert(it, std::move(f));
}

void ResilientProcess::absorb_frame(const Envelope& env) {
  PortState& p = ports_[static_cast<std::size_t>(env.port)];
  if (p.dead) return;
  p.silence = 0;
  BitReader r = env.msg.reader();
  if (r.read_bool()) {
    const auto ack = static_cast<std::uint32_t>(r.read(kAckBits));
    const auto sack = static_cast<std::uint32_t>(r.read(kSackBits));
    if (ack > p.last_ack) {
      // Fresh cumulative progress: everything below `ack` arrived.
      while (!p.outq.empty() && p.outq.front().vr < ack) {
        const OutFrame& f = p.outq.front();
        if (f.txed && f.rtt_eligible) rtt_sample(p, f.since_tx + 1);
        p.outq.pop_front();
      }
      p.last_ack = ack;
      p.dup_acks = 0;
      p.fast_pending = false;
    } else if (ack == p.last_ack && !p.outq.empty() &&
               p.outq.front().txed && p.outq.front().vr == ack) {
      // The peer re-acked without progress while our oldest frame is in
      // flight: evidence it is missing.
      ++p.dup_acks;
    }
    if (ack == p.last_ack) {
      // Sack bits are relative to this cumulative ack; a stale ack's
      // bitmap would mislabel frames, so only the current one counts.
      bool sacked_any = false;
      for (unsigned i = 0; i < kSackBits; ++i) {
        if (((sack >> i) & 1u) == 0) continue;
        const std::uint32_t sv = ack + 1 + i;
        for (OutFrame& f : p.outq) {
          if (f.vr > sv) break;
          if (f.vr == sv) {
            if (f.txed && !f.acked) {
              f.acked = true;
              f.rtt_eligible = false;  // arrival time now unknowable
            }
            sacked_any = true;
            break;
          }
        }
      }
      if (!p.outq.empty() && p.outq.front().txed &&
          p.outq.front().vr == ack &&
          (sacked_any || p.dup_acks >= opts_.dupack_threshold)) {
        p.fast_pending = true;
      }
    }
  }
  if (!r.read_bool()) return;
  const auto vr = static_cast<std::uint32_t>(r.read(kVrBits));
  const bool halt = r.read_bool();
  const bool has_payload = r.read_bool();
  accept_data(p, vr, halt, has_payload, r);
}

bool ResilientProcess::can_advance() const {
  if (inner_halted_) return false;
  const std::uint32_t v = vround_;
  if (v == 0) return true;  // round 0 consumes no input
  for (const PortState& p : ports_) {
    if (p.dead) continue;
    if (!p.inq.empty()) continue;
    if (p.peer_halted && v - 1 > p.peer_halt_vr) continue;  // silent by halt
    return false;
  }
  return true;
}

void ResilientProcess::advance_inner(Context& ctx) {
  const std::uint32_t v = vround_;
  DMATCH_EXPECTS(v < kVrMax);
  const auto deg = ports_.size();
  inner_inbox_.clear();
  if (v > 0) {
    for (std::size_t port = 0; port < deg; ++port) {
      PortState& p = ports_[port];
      if (p.inq.empty()) continue;
      InFrame f = std::move(p.inq.front());
      p.inq.pop_front();
      if (f.has_payload) {
        inner_inbox_.push_back({static_cast<int>(port), std::move(f.payload)});
      }
    }
  }
  std::vector<std::pair<bool, Message>> outs(deg);
  ResilientContext ictx(ctx, static_cast<int>(v), outs);
  inner_->on_round(ictx, inner_inbox_);
  vround_ = v + 1;
  inner_halted_ = inner_->halted();
  for (std::size_t port = 0; port < deg; ++port) {
    PortState& p = ports_[port];
    // Dead links get nothing; halted peers cannot change state anyway.
    if (p.dead || p.peer_halted) continue;
    OutFrame f;
    f.vr = v;
    f.halt = inner_halted_;
    f.has_payload = outs[port].first;
    if (f.has_payload) f.payload = std::move(outs[port].second);
    p.outq.push_back(std::move(f));
  }
}

void ResilientProcess::transmit(Context& ctx) {
  DMATCH_OBS(obs::ShardObs* const o = ctx.obs();)
  const auto deg = ports_.size();
  for (std::size_t port = 0; port < deg; ++port) {
    PortState& p = ports_[port];
    if (p.dead) continue;
    if (p.peer_halted) {
      p.outq.clear();
      p.fast_pending = false;
      p.dup_acks = 0;
    }
    for (OutFrame& f : p.outq) {
      if (f.txed && !f.acked) ++f.since_tx;
    }
    // At most one data frame per real round (the engine's one message
    // per port per round), chosen by urgency: fast retransmit, then the
    // oldest timed-out frame, then the next fresh frame in the window.
    OutFrame* send = nullptr;
    bool timeout_retx = false;
    if (p.fast_pending) {
      p.fast_pending = false;
      p.dup_acks = 0;
      if (!p.outq.empty() && p.outq.front().txed) {
        send = &p.outq.front();
        DMATCH_OBS(if (o != nullptr) {
          o->trace(obs::EventType::kArqFastRetransmit,
                   static_cast<std::uint32_t>(ctx.id()), port, send->vr);
          o->count(o->ids().arq_fast_retransmits);
        })
      }
    }
    if (send == nullptr) {
      for (OutFrame& f : p.outq) {
        if (!f.txed || f.acked) continue;
        if (f.since_tx < frame_timeout(p, f)) continue;
        if (f.retries >= opts_.max_retries) {
          // Peer unresponsive: give the link up for dead.
          p.dead = true;
          DMATCH_OBS(if (o != nullptr) {
            o->trace(obs::EventType::kArqLinkDead,
                     static_cast<std::uint32_t>(ctx.id()), port, 0);
            o->count(o->ids().arq_dead_links);
          })
          break;
        }
        send = &f;
        timeout_retx = true;
        DMATCH_OBS(if (o != nullptr) {
          o->trace(obs::EventType::kArqTimeoutRetransmit,
                   static_cast<std::uint32_t>(ctx.id()), port, f.vr);
          o->count(o->ids().arq_timeout_retransmits);
        })
        break;
      }
      if (p.dead) {
        p.outq.clear();
        continue;
      }
    }
    if (send == nullptr && !p.outq.empty()) {
      // Frames go out strictly in vr order, so the first untransmitted
      // frame is the only launch candidate; the window (measured from
      // the oldest unacked frame) gates it.
      const std::uint32_t limit =
          p.outq.front().vr + static_cast<std::uint32_t>(opts_.window);
      for (OutFrame& f : p.outq) {
        if (f.txed) continue;
        if (f.vr < limit) send = &f;
        break;
      }
    }
    const bool send_data = send != nullptr;
    if (!send_data && !p.owe_ack) continue;
    BitWriter w;
    w.write_bool(p.owe_ack);
    if (p.owe_ack) {
      std::uint32_t sack = 0;
      for (const InFrame& f : p.ooo) {
        const std::uint32_t idx = f.vr - p.next_vr - 1;
        if (idx < kSackBits) sack |= std::uint32_t{1} << idx;
      }
      w.write(p.next_vr, kAckBits);
      w.write(sack, kSackBits);
    }
    w.write_bool(send_data);
    if (send_data) {
      w.write(send->vr, kVrBits);
      w.write_bool(send->halt);
      w.write_bool(send->has_payload);
      if (send->has_payload) append_payload(w, send->payload);
      if (send->txed) send->rtt_eligible = false;  // Karn: ambiguous ack
      if (timeout_retx) ++send->retries;
      send->txed = true;
      send->since_tx = 0;
    }
    p.owe_ack = false;
    ctx.send(static_cast<int>(port), Message::from_writer(std::move(w)));
  }
}

void ResilientProcess::reactive_round(Context& ctx,
                                      std::span<const Envelope> inbox) {
  // Under faults one port can appear twice in the inbox (a delayed or
  // duplicated frame next to a regular one), but the engine allows one
  // send per port per round — coalesce to a single reply per port.
  for (const Envelope& env : inbox) {
    PortState& p = ports_[static_cast<std::size_t>(env.port)];
    BitReader r = env.msg.reader();
    if (r.read_bool()) {  // acks need no reply
      r.read(kAckBits);
      r.read(kSackBits);
    }
    if (!r.read_bool()) continue;
    const auto vr = static_cast<std::uint32_t>(r.read(kVrBits));
    if (vr >= p.next_vr) p.next_vr = vr + 1;
    p.owe_ack = true;
  }
  for (std::size_t port = 0; port < ports_.size(); ++port) {
    PortState& p = ports_[port];
    if (!p.owe_ack) continue;
    p.owe_ack = false;
    // Combined ack + "halted since virtual round 0" announcement.
    BitWriter w;
    w.write_bool(true);
    w.write(p.next_vr, kAckBits);
    w.write(0, kSackBits);
    w.write_bool(true);
    w.write(0, kVrBits);
    w.write_bool(true);   // halt
    w.write_bool(false);  // no payload
    ctx.send(static_cast<int>(port), Message::from_writer(std::move(w)));
  }
}

void ResilientProcess::post_done_round(Context& ctx,
                                       std::span<const Envelope> inbox) {
  // Our last frame is acked and our queues are empty; all that remains
  // is re-acking peers whose view of us is behind (lost acks, restarts).
  for (const Envelope& env : inbox) {
    PortState& p = ports_[static_cast<std::size_t>(env.port)];
    if (p.dead) continue;
    BitReader r = env.msg.reader();
    if (r.read_bool()) {
      r.read(kAckBits);
      r.read(kSackBits);
    }
    if (!r.read_bool()) continue;
    const auto vr = static_cast<std::uint32_t>(r.read(kVrBits));
    if (vr >= p.next_vr) p.next_vr = vr + 1;
    p.owe_ack = true;
  }
  // One reply per port even if faults put two frames from it in this
  // inbox (the engine rejects a second same-port send in one round).
  for (std::size_t port = 0; port < ports_.size(); ++port) {
    PortState& p = ports_[port];
    if (!p.owe_ack) continue;
    p.owe_ack = false;
    BitWriter w;
    w.write_bool(true);
    w.write(p.next_vr, kAckBits);
    w.write(0, kSackBits);
    w.write_bool(false);
    ctx.send(static_cast<int>(port), Message::from_writer(std::move(w)));
  }
}

void ResilientProcess::on_round(Context& ctx,
                                std::span<const Envelope> inbox) {
  if (reactive_) {
    reactive_round(ctx, inbox);
    return;
  }
  if (done_) {
    post_done_round(ctx, inbox);
    return;
  }
  for (const Envelope& env : inbox) absorb_frame(env);
  if (can_advance()) advance_inner(ctx);
  transmit(ctx);
  // Silence accounting: a port that blocks the next virtual round
  // without ever delivering a frame is eventually written off.
  if (!inner_halted_ && vround_ > 0) {
    for (std::size_t port = 0; port < ports_.size(); ++port) {
      PortState& p = ports_[port];
      if (p.dead || !p.inq.empty()) continue;
      if (p.peer_halted && vround_ - 1 > p.peer_halt_vr) continue;
      if (++p.silence > opts_.silence_limit) {
        p.dead = true;
        DMATCH_OBS(if (obs::ShardObs* const o = ctx.obs(); o != nullptr) {
          o->trace(obs::EventType::kArqLinkDead,
                   static_cast<std::uint32_t>(ctx.id()), port, 1);
          o->count(o->ids().arq_dead_links);
        })
      }
    }
  }
  if (inner_halted_) {
    done_ = true;
    for (const PortState& p : ports_) {
      if (!p.dead && !p.outq.empty()) {
        done_ = false;
        break;
      }
    }
  }
}

ProcessFactory resilient_factory(ProcessFactory inner, ResilientOptions opts) {
  return [inner = std::move(inner), opts](NodeId v, const Graph& g) {
    return std::make_unique<ResilientProcess>(inner(v, g), g.degree(v), opts);
  };
}

int resilient_round_budget(int inner_budget) {
  if (inner_budget <= 0) return 256;
  const long long budget = 2LL * inner_budget + 256;
  return budget > 1'000'000'000LL ? 1'000'000'000
                                  : static_cast<int>(budget);
}

}  // namespace dmatch::congest
