#include "congest/resilient.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"
#include "support/wire.hpp"

namespace dmatch::congest {

namespace {

constexpr unsigned kVrBits = 20;
constexpr unsigned kAckBits = 20;
constexpr std::uint32_t kVrMax = (std::uint32_t{1} << kVrBits) - 1;

void append_payload(BitWriter& w, const Message& msg) {
  BitReader r = msg.reader();
  while (r.remaining() > 0) {
    const unsigned take = std::min(64u, r.remaining());
    w.write(r.read(take), take);
  }
}

Message read_payload(BitReader& r) {
  BitWriter w;
  while (r.remaining() > 0) {
    const unsigned take = std::min(64u, r.remaining());
    w.write(r.read(take), take);
  }
  return Message::from_writer(std::move(w));
}

/// Context handed to the wrapped process: identical to the real one
/// except that time is the virtual-round clock and sends are captured
/// for framing instead of hitting the wire directly.
class ResilientContext final : public Context {
 public:
  ResilientContext(Context& real, int vround,
                   std::vector<std::pair<bool, Message>>& out)
      : real_(real), vround_(vround), out_(out) {}

  [[nodiscard]] NodeId id() const override { return real_.id(); }
  [[nodiscard]] int degree() const override { return real_.degree(); }
  [[nodiscard]] NodeId neighbor_id(int port) const override {
    return real_.neighbor_id(port);
  }
  [[nodiscard]] Weight edge_weight(int port) const override {
    return real_.edge_weight(port);
  }
  [[nodiscard]] NodeId n_bound() const override { return real_.n_bound(); }
  [[nodiscard]] int round() const override { return vround_; }
  Rng& rng() override { return real_.rng(); }

  void send(int port, Message msg) override {
    DMATCH_EXPECTS(port >= 0 &&
                   port < static_cast<int>(out_.size()));
    DMATCH_EXPECTS(!out_[static_cast<std::size_t>(port)].first);
    out_[static_cast<std::size_t>(port)] = {true, std::move(msg)};
  }

  [[nodiscard]] int mate_port() const override { return real_.mate_port(); }
  void set_mate_port(int port) override { real_.set_mate_port(port); }
  void clear_mate() override { real_.clear_mate(); }

 private:
  Context& real_;
  int vround_;
  std::vector<std::pair<bool, Message>>& out_;
};

}  // namespace

ResilientProcess::ResilientProcess(std::unique_ptr<Process> inner, int degree,
                                   ResilientOptions opts)
    : inner_(std::move(inner)), opts_(opts) {
  DMATCH_EXPECTS(inner_ != nullptr);
  DMATCH_EXPECTS(degree >= 0);
  ports_.resize(static_cast<std::size_t>(degree));
  // A process born halted is never scheduled by the engine; it only ever
  // wakes when a frame arrives, and then announces its halt reactively.
  reactive_ = inner_->halted();
  inner_halted_ = reactive_;
}

bool ResilientProcess::halted() const { return reactive_ || done_; }

void ResilientProcess::absorb_frame(const Envelope& env) {
  PortState& p = ports_[static_cast<std::size_t>(env.port)];
  if (p.dead) return;
  p.silence = 0;
  BitReader r = env.msg.reader();
  if (r.read_bool()) {
    const auto ack = static_cast<std::uint32_t>(r.read(kAckBits));
    while (!p.outq.empty() && p.outq.front().vr < ack) {
      p.outq.pop_front();
      p.since_tx = 0;
      p.retries = 0;
      p.timeout = opts_.ack_timeout;
    }
  }
  if (!r.read_bool()) return;
  const auto vr = static_cast<std::uint32_t>(r.read(kVrBits));
  const bool halt = r.read_bool();
  const bool has_payload = r.read_bool();
  if (halt && !p.peer_halted) {
    p.peer_halted = true;
    p.peer_halt_vr = vr;
  }
  p.owe_ack = true;       // every data frame is (re-)acked
  if (vr < p.next_vr) return;  // duplicate: discard, idempotent receive
  // Accept. vr > next_vr only happens across a peer restart; skipping
  // ahead keeps both sides progressing (the skipped vrounds were lost).
  p.next_vr = vr + 1;
  InFrame f;
  f.vr = vr;
  f.has_payload = has_payload;
  if (has_payload) f.payload = read_payload(r);
  p.inq.push_back(std::move(f));
}

bool ResilientProcess::can_advance() const {
  if (inner_halted_) return false;
  const std::uint32_t v = vround_;
  if (v == 0) return true;  // round 0 consumes no input
  for (const PortState& p : ports_) {
    if (p.dead) continue;
    if (!p.inq.empty()) continue;
    if (p.peer_halted && v - 1 > p.peer_halt_vr) continue;  // silent by halt
    return false;
  }
  return true;
}

void ResilientProcess::advance_inner(Context& ctx) {
  const std::uint32_t v = vround_;
  DMATCH_EXPECTS(v < kVrMax);
  const auto deg = ports_.size();
  inner_inbox_.clear();
  if (v > 0) {
    for (std::size_t port = 0; port < deg; ++port) {
      PortState& p = ports_[port];
      if (p.inq.empty()) continue;
      InFrame f = std::move(p.inq.front());
      p.inq.pop_front();
      if (f.has_payload) {
        inner_inbox_.push_back({static_cast<int>(port), std::move(f.payload)});
      }
    }
  }
  std::vector<std::pair<bool, Message>> outs(deg);
  ResilientContext ictx(ctx, static_cast<int>(v), outs);
  inner_->on_round(ictx, inner_inbox_);
  vround_ = v + 1;
  inner_halted_ = inner_->halted();
  for (std::size_t port = 0; port < deg; ++port) {
    PortState& p = ports_[port];
    // Dead links get nothing; halted peers cannot change state anyway.
    if (p.dead || p.peer_halted) continue;
    OutFrame f;
    f.vr = v;
    f.halt = inner_halted_;
    f.has_payload = outs[port].first;
    if (f.has_payload) f.payload = std::move(outs[port].second);
    p.outq.push_back(std::move(f));
  }
}

void ResilientProcess::transmit(Context& ctx) {
  const auto deg = ports_.size();
  for (std::size_t port = 0; port < deg; ++port) {
    PortState& p = ports_[port];
    if (p.dead) continue;
    if (p.peer_halted) p.outq.clear();
    if (!p.outq.empty() && p.outq.front().txed) ++p.since_tx;
    bool send_data = false;
    bool is_retx = false;
    if (!p.outq.empty()) {
      const OutFrame& f = p.outq.front();
      if (!f.txed) {
        send_data = true;
      } else if (p.since_tx >= p.timeout) {
        if (p.retries >= opts_.max_retries) {
          // Peer unresponsive: give the link up for dead.
          p.dead = true;
          p.outq.clear();
          continue;
        }
        send_data = true;
        is_retx = true;
      }
    }
    if (!send_data && !p.owe_ack) continue;
    BitWriter w;
    w.write_bool(p.owe_ack);
    if (p.owe_ack) w.write(p.next_vr, kAckBits);
    w.write_bool(send_data);
    if (send_data) {
      OutFrame& f = p.outq.front();
      w.write(f.vr, kVrBits);
      w.write_bool(f.halt);
      w.write_bool(f.has_payload);
      if (f.has_payload) append_payload(w, f.payload);
      f.txed = true;
      if (is_retx) {
        ++p.retries;
        p.timeout = std::min(p.timeout * 2, opts_.max_timeout);
      } else {
        p.retries = 0;
        p.timeout = opts_.ack_timeout;
      }
      p.since_tx = 0;
    }
    p.owe_ack = false;
    ctx.send(static_cast<int>(port), Message::from_writer(std::move(w)));
  }
}

void ResilientProcess::reactive_round(Context& ctx,
                                      std::span<const Envelope> inbox) {
  for (const Envelope& env : inbox) {
    PortState& p = ports_[static_cast<std::size_t>(env.port)];
    BitReader r = env.msg.reader();
    if (r.read_bool()) r.read(kAckBits);  // acks need no reply
    if (!r.read_bool()) continue;
    const auto vr = static_cast<std::uint32_t>(r.read(kVrBits));
    if (vr >= p.next_vr) p.next_vr = vr + 1;
    // Combined ack + "halted since virtual round 0" announcement.
    BitWriter w;
    w.write_bool(true);
    w.write(p.next_vr, kAckBits);
    w.write_bool(true);
    w.write(0, kVrBits);
    w.write_bool(true);   // halt
    w.write_bool(false);  // no payload
    ctx.send(env.port, Message::from_writer(std::move(w)));
  }
}

void ResilientProcess::post_done_round(Context& ctx,
                                       std::span<const Envelope> inbox) {
  // Our last frame is acked and our queues are empty; all that remains
  // is re-acking peers whose view of us is behind (lost acks, restarts).
  for (const Envelope& env : inbox) {
    PortState& p = ports_[static_cast<std::size_t>(env.port)];
    if (p.dead) continue;
    BitReader r = env.msg.reader();
    if (r.read_bool()) r.read(kAckBits);
    if (!r.read_bool()) continue;
    const auto vr = static_cast<std::uint32_t>(r.read(kVrBits));
    if (vr >= p.next_vr) p.next_vr = vr + 1;
    BitWriter w;
    w.write_bool(true);
    w.write(p.next_vr, kAckBits);
    w.write_bool(false);
    ctx.send(env.port, Message::from_writer(std::move(w)));
  }
}

void ResilientProcess::on_round(Context& ctx,
                                std::span<const Envelope> inbox) {
  if (reactive_) {
    reactive_round(ctx, inbox);
    return;
  }
  if (done_) {
    post_done_round(ctx, inbox);
    return;
  }
  for (const Envelope& env : inbox) absorb_frame(env);
  if (can_advance()) advance_inner(ctx);
  transmit(ctx);
  // Silence accounting: a port that blocks the next virtual round
  // without ever delivering a frame is eventually written off.
  if (!inner_halted_ && vround_ > 0) {
    for (PortState& p : ports_) {
      if (p.dead || !p.inq.empty()) continue;
      if (p.peer_halted && vround_ - 1 > p.peer_halt_vr) continue;
      if (++p.silence > opts_.silence_limit) p.dead = true;
    }
  }
  if (inner_halted_) {
    done_ = true;
    for (const PortState& p : ports_) {
      if (!p.dead && !p.outq.empty()) {
        done_ = false;
        break;
      }
    }
  }
}

ProcessFactory resilient_factory(ProcessFactory inner, ResilientOptions opts) {
  return [inner = std::move(inner), opts](NodeId v, const Graph& g) {
    return std::make_unique<ResilientProcess>(inner(v, g), g.degree(v), opts);
  };
}

int resilient_round_budget(int inner_budget) {
  if (inner_budget <= 0) return 128;
  const long long budget = 8LL * inner_budget + 128;
  return budget > 1'000'000'000LL ? 1'000'000'000
                                  : static_cast<int>(budget);
}

}  // namespace dmatch::congest
