// Deterministic fault model for the CONGEST simulator.
//
// A FaultPlan (attached through Network::Options) describes which
// adversarial events the round engine injects: per-message drops,
// duplicates, k-round delays and per-receiver inbox reorderings, plus
// node crashes and crash-restarts. Every probabilistic decision is a
// pure hash of (plan seed, run nonce, round, slot/node), never a draw
// from a shared stream, so a faulty run is bit-identical for any
// Options::num_threads — the same contract the fault-free engine gives.
//
// Crash schedules are drawn once per node from the plan seed (so every
// Network built with the same plan agrees on who dies when), with
// explicit scheduled CrashEvents layered on top. Rounds in crash
// schedules are *lifetime* rounds: they accumulate over every run() a
// Network executes, which lets a driver that composes many protocol
// runs on one Network see a consistent failure history.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dmatch::congest {

/// Round number that never arrives (no crash / no restart).
inline constexpr std::uint64_t kRoundNever = ~std::uint64_t{0};

/// An explicitly scheduled crash: `node` dies at lifetime round `round`
/// (it executes no step from that round on) and, if `restart_round` is
/// set, comes back at that round with fresh protocol state and a cleared
/// output register.
struct CrashEvent {
  NodeId node = 0;
  std::uint64_t round = 0;
  std::uint64_t restart_round = kRoundNever;
};

struct FaultPlan {
  // --- Per-message faults (decided per delivery attempt) ---
  /// Probability a message is lost in transit.
  double drop_prob = 0;
  /// Probability a message is delivered twice; the extra copy arrives
  /// 1..max_delay rounds after the original.
  double duplicate_prob = 0;
  /// Probability a message is late: its only copy arrives 1..max_delay
  /// rounds after the normal delivery round.
  double delay_prob = 0;
  /// Largest extra delay, in rounds (for both delays and duplicates).
  int max_delay = 3;
  /// Probability that a receiver's inbox for one round is handed to the
  /// process in a scrambled (but seed-deterministic) order instead of
  /// the engine's ascending-port order.
  double reorder_prob = 0;

  // --- Node crashes ---
  /// Per-node probability of crashing at all (drawn once per node from
  /// the plan seed; the crash round is uniform in [0, crash_round_bound)).
  double crash_prob = 0;
  std::uint64_t crash_round_bound = 64;
  /// Probability that a crashing node restarts (crash-restart fault)
  /// `restart_delay` rounds later, with fresh state.
  double restart_prob = 0;
  std::uint64_t restart_delay = 8;
  /// Scheduled crashes, applied after the probabilistic draw (a node
  /// listed here gets exactly the listed schedule).
  std::vector<CrashEvent> crashes;

  /// Seed of the fault stream. Independent of the protocol seed: the
  /// same protocol run can be replayed under different fault histories
  /// and vice versa.
  std::uint64_t seed = 0;

  /// True if any fault can ever fire. A default-constructed plan is
  /// inactive and leaves the engine's behavior byte-for-byte unchanged.
  [[nodiscard]] bool any() const noexcept {
    return drop_prob > 0 || duplicate_prob > 0 || delay_prob > 0 ||
           reorder_prob > 0 || crash_prob > 0 || !crashes.empty();
  }
};

/// What a self-healing driver had to give up to return a valid matching
/// under a FaultPlan. All-zero/false means the run degraded nowhere.
struct DegradationReport {
  /// A protocol run hit its real-round watchdog budget before quiescing.
  bool budget_exhausted = false;
  /// A protocol invariant threw under faults; the run was abandoned and
  /// the registers healed (never surfaces without an active plan).
  bool contract_tripped = false;
  /// Nodes dead at extraction time.
  std::uint64_t crashed_nodes = 0;
  /// Registers cleared because the partner did not point back (torn,
  /// e.g. an augmentation whose trace-back a fault cut short).
  std::uint64_t torn_registers_healed = 0;
  /// Registers cleared because they sat on (or pointed at) a dead node.
  std::uint64_t dead_registers_healed = 0;

  [[nodiscard]] bool degraded() const noexcept {
    return budget_exhausted || contract_tripped || crashed_nodes > 0 ||
           torn_registers_healed > 0 || dead_registers_healed > 0;
  }

  void merge(const DegradationReport& o) noexcept {
    budget_exhausted = budget_exhausted || o.budget_exhausted;
    contract_tripped = contract_tripped || o.contract_tripped;
    crashed_nodes = std::max(crashed_nodes, o.crashed_nodes);
    torn_registers_healed += o.torn_registers_healed;
    dead_registers_healed += o.dead_registers_healed;
  }
};

namespace fault_detail {

/// Stateless mix of up to four words into one hash (SplitMix64 finalizer
/// chain). The basis of every per-message / per-node fault decision.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                  std::uint64_t d) noexcept;

/// Map a hash to a uniform double in [0, 1).
inline double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Salt words separating the independent per-message / per-node fault
// decisions derived from one (seed, nonce, round, slot) hash. Shared by
// the synchronous round engine and the asynchronous executor so both
// draw *identical* fault histories from the same plan.
inline constexpr std::uint64_t kSaltDrop = 0xd509;
inline constexpr std::uint64_t kSaltDelay = 0xde1a;
inline constexpr std::uint64_t kSaltDelayAmount = 0xde1b;
inline constexpr std::uint64_t kSaltDup = 0xd0b1;
inline constexpr std::uint64_t kSaltDupAmount = 0xd0b2;
inline constexpr std::uint64_t kSaltReorder = 0x5eff;
inline constexpr std::uint64_t kSaltCrash = 0xc4a5;
inline constexpr std::uint64_t kSaltCrashRound = 0xc4a6;
inline constexpr std::uint64_t kSaltRestart = 0xc4a7;

/// Per-run fault-stream seed: decorrelates the message-fault draws of
/// successive run() invocations on one plan (`nonce` = run index).
inline std::uint64_t run_seed(std::uint64_t plan_seed,
                              std::uint64_t nonce) noexcept {
  return mix(plan_seed, 0x5eedf417, nonce, 0);
}

/// Precomputed per-node crash schedule. crash_at[v] / restart_at[v] are
/// lifetime rounds (kRoundNever = never); the node executes no step in
/// [crash_at, restart_at).
struct CrashSchedule {
  std::vector<std::uint64_t> crash_at;
  std::vector<std::uint64_t> restart_at;

  [[nodiscard]] bool dead_at(NodeId v, std::uint64_t round) const noexcept {
    const auto vi = static_cast<std::size_t>(v);
    return crash_at[vi] <= round && round < restart_at[vi];
  }
};

/// Draw the full crash schedule for `n` nodes from the plan seed, then
/// layer the explicitly scheduled CrashEvents on top — every executor
/// built with the same plan agrees on who dies when, before a single
/// round runs. Requires all scheduled nodes < n and restart > crash.
CrashSchedule compute_crash_schedule(const FaultPlan& plan, NodeId n);

}  // namespace fault_detail

}  // namespace dmatch::congest
