#include "congest/network.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <tuple>
#include <utility>

#include "support/assert.hpp"
#include "support/wire.hpp"

namespace dmatch::congest {

namespace {

// Per-message / per-node fault decision salts live in fault_detail so
// the asynchronous executor draws identical histories from a plan.
using fault_detail::kSaltDelay;
using fault_detail::kSaltDelayAmount;
using fault_detail::kSaltDrop;
using fault_detail::kSaltDup;
using fault_detail::kSaltDupAmount;
using fault_detail::kSaltReorder;

/// A faulty (delayed or duplicated) delivery parked until its round.
/// `origin_round` keys the canonical per-receiver ordering, so delivery
/// order never depends on the shard layout.
struct ExtraMsg {
  NodeId node;        // receiver
  int port;           // receiver-side port
  int origin_round;   // run-local round the message was sent in
  Message msg;
};

/// Renormalization threshold for the packed 32-bit mailbox epochs: far
/// below wrap, far above any round budget a single run can execute
/// between two renormalization checks.
constexpr std::uint32_t kEpochRenorm = 0xFFFF0000u;

/// ExtraMsg in transit between shards, tagged with its delivery round.
struct FaultLaneMsg {
  NodeId node;
  int port;
  int deliver_round;  // run-local
  int origin_round;
  Message msg;
};

/// Concrete per-node Context bound to the Network's state for one round.
class NodeContext final : public Context {
 public:
  NodeContext(const Graph& g, NodeId id, NodeId n_bound, int round, Rng& rng,
              int& mate_port, Model model, std::uint32_t cap_bits,
              std::vector<Envelope>& outbox, RunStats& stats)
      : g_(g),
        id_(id),
        n_bound_(n_bound),
        round_(round),
        rng_(rng),
        mate_port_(mate_port),
        model_(model),
        cap_bits_(cap_bits),
        outbox_(outbox),
        stats_(stats) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] int degree() const override { return g_.degree(id_); }
  [[nodiscard]] NodeId neighbor_id(int port) const override {
    return g_.neighbor(id_, port);
  }
  [[nodiscard]] Weight edge_weight(int port) const override {
    return g_.weight(
        g_.incident_edges(id_)[static_cast<std::size_t>(port)]);
  }
  [[nodiscard]] NodeId n_bound() const override { return n_bound_; }
  [[nodiscard]] int round() const override { return round_; }
  Rng& rng() override { return rng_; }

  void send(int port, Message msg) override {
    DMATCH_EXPECTS(port >= 0 && port < degree());
    if (model_ == Model::kCongest && msg.bits > cap_bits_) {
      throw MessageTooLarge("message of " + std::to_string(msg.bits) +
                            " bits exceeds CONGEST cap of " +
                            std::to_string(cap_bits_) + " bits");
    }
    ++stats_.messages;
    stats_.total_bits += msg.bits;
    stats_.max_message_bits = std::max(stats_.max_message_bits, msg.bits);
    DMATCH_OBS(if (obs_ != nullptr) {
      obs_->link_message(obs_base_ + static_cast<std::size_t>(port), msg.bits);
    })
    outbox_.push_back({port, std::move(msg)});
  }

  [[nodiscard]] int mate_port() const override { return mate_port_; }
  void set_mate_port(int port) override {
    DMATCH_EXPECTS(port >= 0 && port < degree());
    mate_port_ = port;
  }
  void clear_mate() override { mate_port_ = -1; }

#ifndef DMATCH_OBS_DISABLED
  [[nodiscard]] obs::ShardObs* obs() noexcept override { return obs_; }
  void attach_obs(obs::ShardObs* o, std::size_t base_slot) noexcept {
    obs_ = o;
    obs_base_ = base_slot;
  }
#endif

 private:
#ifndef DMATCH_OBS_DISABLED
  obs::ShardObs* obs_ = nullptr;
  std::size_t obs_base_ = 0;  // this node's first sender-side slot
#endif
  const Graph& g_;
  NodeId id_;
  NodeId n_bound_;
  int round_;
  Rng& rng_;
  int& mate_port_;
  Model model_;
  std::uint32_t cap_bits_;
  std::vector<Envelope>& outbox_;
  RunStats& stats_;
};

/// Per-shard run state. Everything here has exactly one writer (the
/// owning worker), so the engine's only synchronization is the two
/// barriers of the round. Cache-line aligned so neighboring shards'
/// stats counters don't ping-pong a line.
struct alignas(64) ShardState {
  std::vector<NodeId> active;        // nodes to step this round (any order)
  std::vector<NodeId> next_active;   // being built for the next round
  RunStats stats;                    // private accumulator, merged at the end
  std::vector<Envelope> inbox;       // scratch, reused across nodes
  std::vector<Envelope> outbox;      // scratch, reused across nodes
  std::exception_ptr error;          // first throw from this shard
  // Delay ring (faulty runs only): bucket [r % window] holds the delayed
  // and duplicated deliveries due at run-local round r, for this shard's
  // nodes. Buckets are canonically sorted at the preceding route phase.
  std::vector<std::vector<ExtraMsg>> ring;
  std::uint64_t pending_extras = 0;  // entries parked across all buckets
};

}  // namespace

Network::Network(const Graph& g, Model model, std::uint64_t seed,
                 std::uint32_t congest_factor)
    : Network(g, model, seed, congest_factor, Options()) {}

Network::Network(const Graph& g, Model model, std::uint64_t seed,
                 std::uint32_t congest_factor, Options options)
    : g_(&g), model_(model), options_(std::move(options)) {
  const auto n = static_cast<std::size_t>(g.node_count());
  unsigned log_n = 1;
  while ((NodeId{1} << log_n) < g.node_count()) ++log_n;
  cap_bits_ = congest_factor * std::max(log_n, 4u);

  num_threads_ = options_.num_threads != 0
                     ? options_.num_threads
                     : std::max(1u, std::thread::hardware_concurrency());
  sched_ = std::make_unique<support::Scheduler>(num_threads_, options_.sched);
  // Shard count is frozen here: one shard per worker under static and
  // rapid-start dispatch, several stealable blocks per worker under
  // work-stealing. Results are shard-layout independent, so modes with
  // different shard counts still produce bit-identical runs.
  num_shards_ = sched_->plan_tasks(n);

  // Slot-offset prefix sums stay sequential (a scan), but the per-node
  // RNG forks and the cross-endpoint peer tables are embarrassingly
  // parallel: each worker fills contiguous node shards, and every entry
  // is a pure function of (seed, graph), so the tables are identical for
  // any worker count.
  const Rng root(seed);
  node_rng_.reset(n, num_shards_, Rng(0));
  mate_port_.reset(n, num_shards_, -1);

  // Cross-endpoint port tables: one lookup per message on the hot path
  // instead of a Graph::port_of_edge call.
  slot_offset_.assign(n + 1, 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    slot_offset_[static_cast<std::size_t>(v) + 1] =
        slot_offset_[static_cast<std::size_t>(v)] +
        static_cast<std::size_t>(g.degree(v));
  }
  const std::size_t slots = slot_offset_[n];
  peer_slot_.resize(slots);
  peer_node_.resize(slots);
  const auto build_chunk = [this, &g, &root](unsigned s) {
    Rng* const rngs = node_rng_.shard_view(s);
    const auto [vb, ve] = node_rng_.range(s);
    for (std::size_t vi = vb; vi < ve; ++vi) {
      const auto v = static_cast<NodeId>(vi);
      rngs[vi] = root.fork(static_cast<std::uint64_t>(v));
      const auto edges = g.incident_edges(v);
      for (std::size_t p = 0; p < edges.size(); ++p) {
        const EdgeId e = edges[p];
        const NodeId u = g.other_endpoint(e, v);
        const std::size_t i = slot_offset_[vi] + p;
        peer_node_[i] = u;
        peer_slot_[i] = static_cast<std::uint32_t>(
            slot_offset_[static_cast<std::size_t>(u)] +
            static_cast<std::size_t>(g.port_of_edge(u, e)));
      }
    }
  };
  sched_->run_tasks(num_shards_, build_chunk);

  cur_msg_.resize(slots);
  nxt_msg_.resize(slots);
  cur_stamp_.assign(slots, 0);
  nxt_stamp_.assign(slots, 0);
  gates_.reset(n, num_shards_, NodeGate{});

  // Precompute the whole crash schedule from the plan seed so every
  // Network built with the same plan — at any thread count — agrees on
  // who dies when, before a single round executes.
  fault_active_ = options_.fault.any();
  if (fault_active_) {
    fault_detail::CrashSchedule sched =
        fault_detail::compute_crash_schedule(options_.fault, g.node_count());
    crash_at_ = std::move(sched.crash_at);
    restart_at_ = std::move(sched.restart_at);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (crash_at_[vi] != kRoundNever && restart_at_[vi] != kRoundNever) {
        restart_events_.emplace_back(restart_at_[vi], v);
      }
    }
    std::sort(restart_events_.begin(), restart_events_.end());
    respawn_pending_.assign(n, 0);
    restart_cleared_.assign(n, 0);
  }
}

RunStats Network::run(const ProcessFactory& factory, int max_rounds) {
  DMATCH_EXPECTS(max_rounds >= 0);
  const Graph& g = *g_;
  const auto n = static_cast<std::size_t>(g.node_count());

  // Fault-injection setup. Every probabilistic decision below is a pure
  // hash of (fseed, round, slot-or-node), so the injected history is a
  // function of the plan alone — identical for every thread count.
  const bool faults = fault_active_;
  const FaultPlan& plan = options_.fault;
  const std::uint64_t base_round = lifetime_rounds_;
  const std::uint64_t fseed =
      faults ? fault_detail::run_seed(plan.seed, fault_nonce_++) : 0;
  const int max_d = faults ? std::max(1, plan.max_delay) : 0;
  // Ring width: a message sent at round r is parked for round r+2 ..
  // r+1+max_d, and buckets r and r+1 are in use, so max_d+2 never wraps
  // a live bucket onto one being filled.
  const int delay_window = faults ? max_d + 2 : 0;

  // Packed 32-bit epochs alias only after ~2^32 rounds; renormalize the
  // stamp space long before that (cold: once per ~4e9 rounds / runs).
  if (epoch_ >= kEpochRenorm) renormalize_epochs();
  if (options_.sched.profile) sched_->reset_profile();

  const unsigned num_shards = num_shards_;
  const auto shard_of = [n, num_shards](NodeId v) {
    return support::balanced_part_of(n, num_shards,
                                     static_cast<std::size_t>(v));
  };

  std::vector<ShardState> shards(num_shards);
  if (faults) {
    for (ShardState& shard : shards) {
      shard.ring.resize(static_cast<std::size_t>(delay_window));
    }
  }
  // Activity lanes: lane(src, dst) carries the ids of nodes in shard dst
  // that shard src delivered a message to; the payloads themselves go
  // straight into the port slots. Drained by dst at the routing barrier.
  std::vector<std::vector<NodeId>> lanes(
      static_cast<std::size_t>(num_shards) * num_shards);
  const auto lane = [&](unsigned src, unsigned dst) -> std::vector<NodeId>& {
    return lanes[static_cast<std::size_t>(src) * num_shards + dst];
  };
  // Same shape for faulty (delayed / duplicated) deliveries, which carry
  // their payload with them because they bypass the port slots.
  std::vector<std::vector<FaultLaneMsg>> fault_lanes(
      faults ? static_cast<std::size_t>(num_shards) * num_shards : 0);
  const auto fault_lane =
      [&](unsigned src, unsigned dst) -> std::vector<FaultLaneMsg>& {
    return fault_lanes[static_cast<std::size_t>(src) * num_shards + dst];
  };

  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(n);
  // Shard-major construction: shards are contiguous ascending node
  // ranges, so this visits nodes in the same global ascending order as
  // before while touching each register segment exactly once.
  for (unsigned s = 0; s < num_shards; ++s) {
    int* const regs = mate_port_.shard_view(s);
    const auto [vb, ve] = mate_port_.range(s);
    for (std::size_t vi = vb; vi < ve; ++vi) {
      const auto v = static_cast<NodeId>(vi);
      if (faults) {
        respawn_pending_[vi] = 0;
        // A crash-restart interval that completed before this run began:
        // the node comes back with a cleared output register, once.
        if (restart_at_[vi] <= base_round && !restart_cleared_[vi]) {
          regs[vi] = -1;
          restart_cleared_[vi] = 1;
        }
      }
      procs.push_back(factory(v, g));
      DMATCH_ENSURES(procs.back() != nullptr);
      // A process that starts out halted is never stepped (and, with no
      // messages in flight yet, cannot be woken) until someone contacts
      // it. Currently dead nodes likewise wait for their restart event.
      if (!procs.back()->halted() && !(faults && dead_at(v, base_round))) {
        shards[s].active.push_back(v);
      }
    }
  }

  RunStats stats;
  std::atomic<bool> failed{false};
  std::uint64_t routed_before = 0;

#ifndef DMATCH_OBS_DISABLED
  // Observability attach: per-shard single-writer handles, a `profiled`
  // flag saying whether this run's graph feeds the link profiler, and
  // (under faults only) per-round snapshots so an aborted partial round
  // never leaks shard-layout-dependent events or counts.
  obs::Observer* const observer = options_.observer;
  const bool profiled =
      observer != nullptr && observer->begin_run(num_shards, g);
  std::vector<obs::ShardObs*> sobs(num_shards, nullptr);
  const std::uint64_t run_start_clock =
      observer != nullptr ? observer->clock() : 0;
  if (observer != nullptr) {
    for (unsigned s = 0; s < num_shards; ++s) sobs[s] = observer->shard(s);
  }
  std::uint64_t obs_bits_before = 0;
  std::vector<std::vector<std::uint64_t>> obs_slab_snap;
  std::vector<obs::TraceSink::Mark> obs_trace_marks(num_shards);
  obs::CongestionProfiler::LinkSnapshot obs_link_snap;
#endif

  const auto for_each_shard = [&](const std::function<void(unsigned)>& fn) {
    sched_->run_tasks(num_shards, fn);
  };

  // On every exit (including exceptions) jump the epoch past both mailbox
  // buffers so no stale message or pending mark can leak into a later run.
  const auto invalidate_state = [&] {
    epoch_ += 2;
    gates_.fill(NodeGate{});
  };

  const auto step_shard = [&](int round) {
    return [&, round](unsigned s) {
      ShardState& shard = shards[s];
      // Shard-local slab views: all per-node accesses below stay inside
      // this shard's 64-byte-aligned segments.
      int* const regs = mate_port_.shard_view(s);
      Rng* const rngs = node_rng_.shard_view(s);
      Network::NodeGate* const gates = gates_.shard_view(s);
      try {
        const std::uint32_t next_epoch = epoch_ + 1;
        const std::uint64_t life_round =
            base_round + static_cast<std::uint64_t>(round);
        for (const NodeId v : shard.active) {
          if (failed.load(std::memory_order_relaxed)) break;
          const auto vi = static_cast<std::size_t>(v);
          const std::size_t base = slot_offset_[vi];

          if (faults) {
            if (dead_at(v, life_round)) {
              // Dead node: consume and discard everything addressed to
              // it. Delayed deliveries stay parked; the route phase
              // clears the bucket wholesale after this round.
              shard.stats.dropped_messages += gates[vi].rcv;
              gates[vi].rcv = 0;
              const auto& bucket =
                  shard.ring[static_cast<std::size_t>(round % delay_window)];
              auto it = std::lower_bound(
                  bucket.begin(), bucket.end(), v,
                  [](const ExtraMsg& e, NodeId node) { return e.node < node; });
              for (; it != bucket.end() && it->node == v; ++it) {
                ++shard.stats.dropped_messages;
              }
              continue;
            }
            if (respawn_pending_[vi]) {
              // Crash-restart: fresh protocol state, cleared register.
              respawn_pending_[vi] = 0;
              restart_cleared_[vi] = 1;
              regs[vi] = -1;
              procs[vi] = factory(v, g);
              DMATCH_ENSURES(procs[vi] != nullptr);
            }
          }

          // Gather the inbox from the port slots; slots are visited in
          // port order, so no sort is needed, and the receive counter
          // cuts the scan short.
          shard.inbox.clear();
          std::uint32_t remaining = gates[vi].rcv;
          gates[vi].rcv = 0;
          const std::size_t slot_end = slot_offset_[vi + 1];
          for (std::size_t slot = base; remaining > 0 && slot < slot_end;
               ++slot) {
            if (cur_stamp_[slot] == epoch_) {
              shard.inbox.push_back({static_cast<int>(slot - base),
                                     std::move(cur_msg_[slot])});
              --remaining;
            }
          }
          DMATCH_ASSERT(remaining == 0);

          if (faults) {
            // Append delayed / duplicated deliveries due this round. The
            // bucket was sorted by (node, port, origin round) at the last
            // route phase, so this order is shard-layout independent.
            auto& bucket =
                shard.ring[static_cast<std::size_t>(round % delay_window)];
            auto it = std::lower_bound(
                bucket.begin(), bucket.end(), v,
                [](const ExtraMsg& e, NodeId node) { return e.node < node; });
            for (; it != bucket.end() && it->node == v; ++it) {
              shard.inbox.push_back({it->port, std::move(it->msg)});
            }
          }

          if (procs[vi]->halted() && shard.inbox.empty()) continue;

          if (faults && plan.reorder_prob > 0 && shard.inbox.size() > 1) {
            const std::uint64_t h =
                fault_detail::mix(fseed, kSaltReorder, life_round, v);
            if (fault_detail::to_unit(h) < plan.reorder_prob) {
              std::uint64_t state = h;
              for (std::size_t i = shard.inbox.size() - 1; i > 0; --i) {
                const auto j =
                    static_cast<std::size_t>(splitmix64(state) % (i + 1));
                std::swap(shard.inbox[i], shard.inbox[j]);
              }
              ++shard.stats.reordered_inboxes;
              DMATCH_OBS(if (sobs[s] != nullptr) {
                sobs[s]->trace(obs::EventType::kFaultReorder,
                               static_cast<std::uint32_t>(v));
              })
            }
          }

          shard.outbox.clear();
          NodeContext ctx(g, v, g.node_count(), round, rngs[vi], regs[vi],
                          model_, cap_bits_, shard.outbox, shard.stats);
          DMATCH_OBS(ctx.attach_obs(sobs[s], base);)
          procs[vi]->on_round(ctx, shard.inbox);

          for (Envelope& env : shard.outbox) {
            const std::size_t out_slot =
                base + static_cast<std::size_t>(env.port);
            const std::size_t in_slot = peer_slot_[out_slot];
            const NodeId u = peer_node_[out_slot];
            if (faults) {
              const std::uint64_t h =
                  fault_detail::mix(fseed, life_round, in_slot, 0);
              if (plan.drop_prob > 0 &&
                  fault_detail::to_unit(fault_detail::mix(h, kSaltDrop, 0, 0)) <
                      plan.drop_prob) {
                ++shard.stats.dropped_messages;
                DMATCH_OBS(if (sobs[s] != nullptr) {
                  sobs[s]->trace(obs::EventType::kFaultDrop,
                                 static_cast<std::uint32_t>(u), in_slot);
                })
                continue;
              }
              const bool dup =
                  plan.duplicate_prob > 0 &&
                  fault_detail::to_unit(fault_detail::mix(h, kSaltDup, 0, 0)) <
                      plan.duplicate_prob;
              const bool late =
                  plan.delay_prob > 0 &&
                  fault_detail::to_unit(
                      fault_detail::mix(h, kSaltDelay, 0, 0)) < plan.delay_prob;
              if (dup || late) {
                const int rport = static_cast<int>(
                    in_slot - slot_offset_[static_cast<std::size_t>(u)]);
                if (dup) {
                  const int d =
                      1 + static_cast<int>(
                              fault_detail::mix(h, kSaltDupAmount, 0, 0) %
                              static_cast<std::uint64_t>(max_d));
                  ++shard.stats.duplicated_messages;
                  DMATCH_OBS(if (sobs[s] != nullptr) {
                    sobs[s]->trace(obs::EventType::kFaultDuplicate,
                                   static_cast<std::uint32_t>(u), in_slot,
                                   static_cast<std::uint64_t>(d));
                  })
                  fault_lane(s, shard_of(u))
                      .push_back({u, rport, round + 1 + d, round, env.msg});
                }
                if (late) {
                  // The only copy arrives late, through the delay ring.
                  const int d =
                      1 + static_cast<int>(
                              fault_detail::mix(h, kSaltDelayAmount, 0, 0) %
                              static_cast<std::uint64_t>(max_d));
                  ++shard.stats.delayed_messages;
                  DMATCH_OBS(if (sobs[s] != nullptr) {
                    sobs[s]->trace(obs::EventType::kFaultDelay,
                                   static_cast<std::uint32_t>(u), in_slot,
                                   static_cast<std::uint64_t>(d));
                  })
                  fault_lane(s, shard_of(u))
                      .push_back(
                          {u, rport, round + 1 + d, round, std::move(env.msg)});
                  continue;
                }
              }
            }
            // At most one message per port per round; a second send would
            // silently overwrite the first.
            DMATCH_EXPECTS(nxt_stamp_[in_slot] != next_epoch);
            nxt_msg_[in_slot] = std::move(env.msg);
            nxt_stamp_[in_slot] = next_epoch;
            lane(s, shard_of(u)).push_back(u);
          }
          if (!procs[vi]->halted()) {
            shard.next_active.push_back(v);
            gates[vi].mark = next_epoch;
          }
        }
      } catch (...) {
        shard.error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    };
  };

  const auto route_shard = [&](int round) {
    return [&, round](unsigned t) {
      ShardState& shard = shards[t];
      Network::NodeGate* const gates = gates_.shard_view(t);
      const std::uint32_t next_epoch = epoch_ + 1;
      for (unsigned s = 0; s < num_shards; ++s) {
        std::vector<NodeId>& box = lane(s, t);
        for (const NodeId u : box) {
          // One packed 8-byte gate record per delivered node: the count
          // bump and the scheduling mark share a cache line touch.
          const auto ui = static_cast<std::size_t>(u);
          ++gates[ui].rcv;
          if (gates[ui].mark != next_epoch) {
            gates[ui].mark = next_epoch;
            shard.next_active.push_back(u);
          }
        }
        box.clear();
      }
      if (!faults) return;

      // Park this round's delayed / duplicated sends in the delay ring.
      for (unsigned s = 0; s < num_shards; ++s) {
        std::vector<FaultLaneMsg>& box = fault_lane(s, t);
        for (FaultLaneMsg& fm : box) {
          shard
              .ring[static_cast<std::size_t>(fm.deliver_round % delay_window)]
              .push_back({fm.node, fm.port, fm.origin_round, std::move(fm.msg)});
          ++shard.pending_extras;
        }
        box.clear();
      }
      // The bucket due this round was consumed at the step phase.
      auto& done = shard.ring[static_cast<std::size_t>(round % delay_window)];
      shard.pending_extras -= done.size();
      done.clear();
      // Canonicalize next round's bucket and wake its receivers. Sorted
      // by (node, port, origin round), the delivery order is a function
      // of the plan alone, never of which shard parked each message.
      auto& next =
          shard.ring[static_cast<std::size_t>((round + 1) % delay_window)];
      std::sort(next.begin(), next.end(),
                [](const ExtraMsg& a, const ExtraMsg& b) {
                  return std::tie(a.node, a.port, a.origin_round) <
                         std::tie(b.node, b.port, b.origin_round);
                });
      for (const ExtraMsg& e : next) {
        const auto ui = static_cast<std::size_t>(e.node);
        if (gates[ui].mark != next_epoch) {
          gates[ui].mark = next_epoch;
          shard.next_active.push_back(e.node);
        }
      }
      // Wake this shard's nodes whose restart round is next round.
      const std::uint64_t wake =
          base_round + static_cast<std::uint64_t>(round) + 1;
      auto lo = std::lower_bound(restart_events_.begin(),
                                 restart_events_.end(),
                                 std::make_pair(wake, NodeId{0}));
      for (; lo != restart_events_.end() && lo->first == wake; ++lo) {
        const NodeId u = lo->second;
        if (shard_of(u) != t) continue;
        const auto ui = static_cast<std::size_t>(u);
        respawn_pending_[ui] = 1;
        ++shard.stats.restarted_nodes;
        if (gates[ui].mark != next_epoch) {
          gates[ui].mark = next_epoch;
          shard.next_active.push_back(u);
        }
      }
    };
  };

  // Quiescent = nothing scheduled and (under faults) nothing parked in
  // a delay ring.
  const auto all_idle = [&] {
    return std::all_of(shards.begin(), shards.end(), [](const auto& s) {
      return s.active.empty() && s.pending_extras == 0;
    });
  };

  // Under faults, a protocol abort (its invariants may legitimately break)
  // must leave deterministic registers: shards step independently until the
  // barrier, so the aborted round's partial writes depend on the shard
  // layout. Snapshot at round start and roll back on abort.
  std::vector<int> reg_snapshot;

  int executed = 0;
  bool quiesced = false;
  for (; executed < max_rounds; ++executed) {
    quiesced = all_idle();
    if (quiesced) break;
    // Between rounds is the other safe renormalization point (live state
    // is the current inbox + receive counters, both preserved), covering
    // single runs long enough to approach the 32-bit epoch ceiling.
    if (epoch_ >= kEpochRenorm) renormalize_epochs();

#ifndef DMATCH_OBS_DISABLED
    if (observer != nullptr) {
      const std::uint64_t now = observer->clock();
      std::uint64_t scheduled = 0;
      for (unsigned s = 0; s < num_shards; ++s) {
        sobs[s]->now = now;
        scheduled += shards[s].active.size();
      }
      if (faults) {
        // Snapshot before emitting anything, so an aborted round rolls
        // back to a state with no trace of the round at all.
        obs_slab_snap = observer->metrics().snapshot();
        for (unsigned s = 0; s < num_shards; ++s) {
          obs_trace_marks[s] = observer->trace_sink().mark(s);
        }
        if (profiled) obs_link_snap = observer->profiler().snapshot_links();
      }
      sobs[0]->trace(obs::EventType::kRoundStart, 0, scheduled);
    }
#endif

    if (faults) mate_port_.copy_to(reg_snapshot);
    for_each_shard(step_shard(executed));
    if (failed.load(std::memory_order_relaxed)) {
      if (faults) mate_port_.assign_from(reg_snapshot);
#ifndef DMATCH_OBS_DISABLED
      if (observer != nullptr && faults) {
        observer->metrics().restore(obs_slab_snap);
        for (unsigned s = 0; s < num_shards; ++s) {
          observer->trace_sink().rewind(s, std::move(obs_trace_marks[s]));
        }
        if (profiled) observer->profiler().restore_links(obs_link_snap);
      }
#endif
      invalidate_state();
      lifetime_rounds_ = base_round + static_cast<std::uint64_t>(executed);
      for (const ShardState& shard : shards) {
        if (shard.error != nullptr) std::rethrow_exception(shard.error);
      }
    }
    for_each_shard(route_shard(executed));

    std::uint64_t routed = 0;
    for (const ShardState& shard : shards) routed += shard.stats.messages;
    const std::uint64_t sent = routed - routed_before;
    stats.round_messages.push_back(sent);
    routed_before = routed;
    ++stats.rounds;

#ifndef DMATCH_OBS_DISABLED
    if (observer != nullptr) {
      std::uint64_t bits = 0;
      for (const ShardState& shard : shards) bits += shard.stats.total_bits;
      sobs[0]->trace(obs::EventType::kRoundEnd, 0, sent,
                     bits - obs_bits_before);
      sobs[0]->observe(sobs[0]->ids().engine_round_messages_hist, sent);
      sobs[0]->bits_hist_totals(sent, bits - obs_bits_before);
      observer->profiler().round_end(sent, bits - obs_bits_before);
      obs_bits_before = bits;
      observer->advance_clock();
    }
#endif

    std::swap(cur_msg_, nxt_msg_);
    std::swap(cur_stamp_, nxt_stamp_);
    ++epoch_;
    for (ShardState& shard : shards) {
      std::swap(shard.active, shard.next_active);
      shard.next_active.clear();
    }
  }

  if (!quiesced) {
    // Budget exhausted: completed only if nothing is pending.
    quiesced = all_idle();
  }
  stats.completed = quiesced;
  if (faults) {
    // Deliveries still parked when the budget ran out are lost: the next
    // run starts with fresh rings.
    for (ShardState& shard : shards) {
      shard.stats.dropped_messages += shard.pending_extras;
    }
    // Count the crash events that fired inside this run's round window
    // (restarts were counted at their route-phase wakeups).
    const std::uint64_t end_round =
        base_round + static_cast<std::uint64_t>(executed);
    for (std::size_t vi = 0; vi < n; ++vi) {
      if (crash_at_[vi] >= base_round && crash_at_[vi] < end_round) {
        ++stats.crashed_nodes;
      }
    }
  }
  for (const ShardState& shard : shards) stats.merge(shard.stats);

#ifndef DMATCH_OBS_DISABLED
  if (observer != nullptr) {
    obs::ShardObs* const o = sobs[0];
    if (faults) {
      // Reconstruct crash/restart instants on this run's clock window —
      // the same windows the RunStats counters use.
      const std::uint64_t end_round =
          base_round + static_cast<std::uint64_t>(executed);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (crash_at_[vi] >= base_round && crash_at_[vi] < end_round) {
          o->trace_at(run_start_clock + (crash_at_[vi] - base_round),
                      obs::EventType::kCrash, static_cast<std::uint32_t>(v));
        }
        if (restart_at_[vi] > base_round && restart_at_[vi] <= end_round) {
          o->trace_at(run_start_clock + (restart_at_[vi] - base_round),
                      obs::EventType::kRestart, static_cast<std::uint32_t>(v));
        }
      }
    }
    // Import the run's totals into the registry off the hot path.
    const obs::StdMetricIds& mid = o->ids();
    o->count(mid.engine_runs, 1);
    o->count(mid.engine_rounds, stats.rounds);
    o->count(mid.engine_messages, stats.messages);
    o->count(mid.engine_bits, stats.total_bits);
    o->gauge_max(mid.engine_max_message_bits, stats.max_message_bits);
    o->count(mid.fault_dropped, stats.dropped_messages);
    o->count(mid.fault_duplicated, stats.duplicated_messages);
    o->count(mid.fault_delayed, stats.delayed_messages);
    o->count(mid.fault_reordered, stats.reordered_inboxes);
    o->count(mid.fault_crashed, stats.crashed_nodes);
    o->count(mid.fault_restarted, stats.restarted_nodes);
    // Engine-side half of the round-accounting cross-check (the full
    // check lives in core/verify): the profiler's curve tail must
    // replicate RunStats.round_messages exactly.
    const auto& curve = observer->profiler().round_messages();
    DMATCH_ASSERT(curve.size() >= stats.round_messages.size());
    const std::size_t tail = curve.size() - stats.round_messages.size();
    for (std::size_t i = 0; i < stats.round_messages.size(); ++i) {
      DMATCH_ASSERT(curve[tail + i] == stats.round_messages[i]);
    }
    // Scheduling profile export. Wall-clock service times are inherently
    // non-deterministic, so this is opt-in: without sched.profile the
    // deterministic-artifact guarantee (byte-identical traces/metrics
    // across thread counts and modes) holds unconditionally.
    if (options_.sched.profile) {
      const auto& service = sched_->task_service_ns();
      for (unsigned t = 0; t < num_shards && t < service.size(); ++t) {
        o->trace(obs::EventType::kSchedShard, t, service[t]);
        o->observe(mid.sched_shard_service_ns, service[t]);
      }
    }
  }
#endif

  invalidate_state();
  lifetime_rounds_ = base_round + static_cast<std::uint64_t>(executed);
  total_.merge(stats);
  return stats;
}

Matching Network::extract_matching() const {
  const Graph& g = *g_;
  Matching m(g.node_count());
  // Parallel scan, deterministic reduction: each task checks and
  // collects the matched edges (as seen from their lower endpoint) of
  // its contiguous node shard; the driver then applies the per-shard
  // lists in shard order, which is exactly the sequential v-ascending
  // order. Contract trips are captured per shard and rethrown lowest
  // shard first (the scheduler's contract), so the thrown violation is
  // thread-count-independent. The scan reads a flat register snapshot:
  // the consistency check follows v -> mate -> back, crossing shard
  // boundaries, and a flat copy keeps that random access cheap.
  const unsigned tasks = num_shards_;
  std::vector<int> reg;
  mate_port_.copy_to(reg);
  std::vector<std::vector<EdgeId>> found(tasks);
  const auto scan = [&](unsigned w) {
    const auto [vb, ve] = support::balanced_range(
        static_cast<std::size_t>(g.node_count()), tasks, w);
    for (std::size_t vi = vb; vi < ve; ++vi) {
      const auto v = static_cast<NodeId>(vi);
      const int port = reg[vi];
      if (port < 0) continue;
      DMATCH_EXPECTS(port < g.degree(v));
      const EdgeId e = g.incident_edges(v)[static_cast<std::size_t>(port)];
      const NodeId u = g.other_endpoint(e, v);
      // Register consistency: u must point back along the same edge.
      const int uport = reg[static_cast<std::size_t>(u)];
      DMATCH_EXPECTS(uport >= 0);
      DMATCH_EXPECTS(
          g.incident_edges(u)[static_cast<std::size_t>(uport)] == e);
      if (v < u) found[w].push_back(e);
    }
  };
  sched_->run_tasks(tasks, scan);
  for (unsigned w = 0; w < tasks; ++w) {
    for (const EdgeId e : found[w]) m.add(g, e);
  }
  DMATCH_ENSURES(m.is_valid(g));
  return m;
}

Matching Network::extract_matching_resilient(DegradationReport* report) const {
  const Graph& g = *g_;
  Matching m(g.node_count());
  DegradationReport scratch;
  DegradationReport& rep = report != nullptr ? *report : scratch;
  // Same parallel scan + shard-ordered reduction as extract_matching;
  // never throws. The heal tallies are sums, so adding the per-shard
  // partials in any fixed order reproduces the sequential counts.
  const unsigned workers = num_shards_;
  std::vector<int> reg;
  mate_port_.copy_to(reg);
  std::vector<std::vector<EdgeId>> found(workers);
  std::vector<std::uint64_t> dead_part(workers, 0);
  std::vector<std::uint64_t> dead_healed_part(workers, 0);
  std::vector<std::uint64_t> torn_healed_part(workers, 0);
  const auto scan = [&, this](unsigned w) {
    const auto [vb, ve] = support::balanced_range(
        static_cast<std::size_t>(g.node_count()), workers, w);
    for (std::size_t vi = vb; vi < ve; ++vi) {
      const auto v = static_cast<NodeId>(vi);
      if (node_dead(v)) {
        ++dead_part[w];
        if (reg[vi] >= 0) ++dead_healed_part[w];
        continue;
      }
      const int port = reg[vi];
      if (port < 0) continue;
      const EdgeId e = g.incident_edges(v)[static_cast<std::size_t>(port)];
      const NodeId u = g.other_endpoint(e, v);
      if (node_dead(u)) {
        ++dead_healed_part[w];
        continue;
      }
      const int uport = reg[static_cast<std::size_t>(u)];
      const bool consistent =
          uport >= 0 &&
          g.incident_edges(u)[static_cast<std::size_t>(uport)] == e;
      if (!consistent) {
        ++torn_healed_part[w];
        continue;
      }
      if (v < u) found[w].push_back(e);
    }
  };
  sched_->run_tasks(workers, scan);
  // crashed_nodes is a high-water mark (a dead node stays dead), so count
  // this pass locally and max it in; repeated extractions must not inflate.
  std::uint64_t dead_now = 0;
  for (unsigned w = 0; w < workers; ++w) {
    dead_now += dead_part[w];
    rep.dead_registers_healed += dead_healed_part[w];
    rep.torn_registers_healed += torn_healed_part[w];
    for (const EdgeId e : found[w]) m.add(g, e);
  }
  rep.crashed_nodes = std::max(rep.crashed_nodes, dead_now);
  DMATCH_ENSURES(m.is_valid(g));
  return m;
}

void Network::heal_registers(DegradationReport* report) {
  const Graph& g = *g_;
  DegradationReport scratch;
  DegradationReport& rep = report != nullptr ? *report : scratch;
  const auto n = static_cast<std::size_t>(g.node_count());
  // Decide against a frozen flat snapshot, then clear: clearing v in
  // place would make a consistent partner look torn within the same
  // pass. The cleared snapshot is written back to the slabs wholesale.
  std::vector<int> reg;
  mate_port_.copy_to(reg);
  std::vector<char> dead(n, 0);
  std::uint64_t dead_now = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (node_dead(v)) {
      dead[static_cast<std::size_t>(v)] = 1;
      ++dead_now;
    }
  }
  rep.crashed_nodes = std::max(rep.crashed_nodes, dead_now);
  std::vector<char> clear(n, 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const int port = reg[vi];
    if (port < 0) continue;
    if (dead[vi]) {
      clear[vi] = 1;
      ++rep.dead_registers_healed;
      continue;
    }
    const EdgeId e = g.incident_edges(v)[static_cast<std::size_t>(port)];
    const NodeId u = g.other_endpoint(e, v);
    if (dead[static_cast<std::size_t>(u)]) {
      clear[vi] = 1;
      ++rep.dead_registers_healed;
      continue;
    }
    const int uport = reg[static_cast<std::size_t>(u)];
    const bool consistent =
        uport >= 0 &&
        g.incident_edges(u)[static_cast<std::size_t>(uport)] == e;
    if (!consistent) {
      clear[vi] = 1;
      ++rep.torn_registers_healed;
    }
  }
  for (std::size_t vi = 0; vi < n; ++vi) {
    if (clear[vi]) reg[vi] = -1;
  }
  mate_port_.assign_from(reg);
}

void Network::set_matching(const Matching& m) {
  const Graph& g = *g_;
  DMATCH_EXPECTS(m.node_count() == g.node_count());
  DMATCH_EXPECTS(m.is_valid(g));
  std::vector<int> reg(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const EdgeId e = m.matched_edge(v);
    reg[static_cast<std::size_t>(v)] =
        e == kNoEdge ? -1 : g.port_of_edge(v, e);
  }
  mate_port_.assign_from(reg);
}

void Network::renormalize_epochs() {
  // Remap the 32-bit stamp space so epochs restart at 2 without touching
  // message payloads. Callable only between rounds (the run loop's top)
  // or between runs: live state is then exactly the current-round inbox
  // (cur stamps equal to epoch_) and the receive counters, which are
  // kept; scheduling marks and nxt stamps are stale by construction at
  // those points and collapse to 0.
  for (std::size_t i = 0; i < cur_stamp_.size(); ++i) {
    cur_stamp_[i] = cur_stamp_[i] == epoch_ ? 2u : 0u;
    nxt_stamp_[i] = 0;
  }
  for (unsigned s = 0; s < gates_.shards(); ++s) {
    NodeGate* const gates = gates_.shard_view(s);
    const auto [vb, ve] = gates_.range(s);
    for (std::size_t vi = vb; vi < ve; ++vi) gates[vi].mark = 0;
  }
  epoch_ = 2;
}

}  // namespace dmatch::congest
