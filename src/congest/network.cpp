#include "congest/network.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "support/assert.hpp"
#include "support/wire.hpp"

namespace dmatch::congest {

namespace {

/// Concrete per-node Context bound to the Network's state for one round.
class NodeContext final : public Context {
 public:
  NodeContext(const Graph& g, NodeId id, NodeId n_bound, int round, Rng& rng,
              int& mate_port, Model model, std::uint32_t cap_bits,
              std::vector<Envelope>& outbox, RunStats& stats)
      : g_(g),
        id_(id),
        n_bound_(n_bound),
        round_(round),
        rng_(rng),
        mate_port_(mate_port),
        model_(model),
        cap_bits_(cap_bits),
        outbox_(outbox),
        stats_(stats) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] int degree() const override { return g_.degree(id_); }
  [[nodiscard]] NodeId neighbor_id(int port) const override {
    return g_.neighbor(id_, port);
  }
  [[nodiscard]] Weight edge_weight(int port) const override {
    return g_.weight(
        g_.incident_edges(id_)[static_cast<std::size_t>(port)]);
  }
  [[nodiscard]] NodeId n_bound() const override { return n_bound_; }
  [[nodiscard]] int round() const override { return round_; }
  Rng& rng() override { return rng_; }

  void send(int port, Message msg) override {
    DMATCH_EXPECTS(port >= 0 && port < degree());
    if (model_ == Model::kCongest && msg.bits > cap_bits_) {
      throw MessageTooLarge("message of " + std::to_string(msg.bits) +
                            " bits exceeds CONGEST cap of " +
                            std::to_string(cap_bits_) + " bits");
    }
    ++stats_.messages;
    stats_.total_bits += msg.bits;
    stats_.max_message_bits = std::max(stats_.max_message_bits, msg.bits);
    outbox_.push_back({port, std::move(msg)});
  }

  [[nodiscard]] int mate_port() const override { return mate_port_; }
  void set_mate_port(int port) override {
    DMATCH_EXPECTS(port >= 0 && port < degree());
    mate_port_ = port;
  }
  void clear_mate() override { mate_port_ = -1; }

 private:
  const Graph& g_;
  NodeId id_;
  NodeId n_bound_;
  int round_;
  Rng& rng_;
  int& mate_port_;
  Model model_;
  std::uint32_t cap_bits_;
  std::vector<Envelope>& outbox_;
  RunStats& stats_;
};

/// Per-shard run state. Everything here has exactly one writer (the
/// owning worker), so the engine's only synchronization is the two
/// barriers of the round. Cache-line aligned so neighboring shards'
/// stats counters don't ping-pong a line.
struct alignas(64) ShardState {
  std::vector<NodeId> active;        // nodes to step this round (any order)
  std::vector<NodeId> next_active;   // being built for the next round
  RunStats stats;                    // private accumulator, merged at the end
  std::vector<Envelope> inbox;       // scratch, reused across nodes
  std::vector<Envelope> outbox;      // scratch, reused across nodes
  std::exception_ptr error;          // first throw from this shard
};

}  // namespace

Network::Network(const Graph& g, Model model, std::uint64_t seed,
                 std::uint32_t congest_factor)
    : Network(g, model, seed, congest_factor, Options()) {}

Network::Network(const Graph& g, Model model, std::uint64_t seed,
                 std::uint32_t congest_factor, Options options)
    : g_(&g), model_(model) {
  const auto n = static_cast<std::size_t>(g.node_count());
  unsigned log_n = 1;
  while ((NodeId{1} << log_n) < g.node_count()) ++log_n;
  cap_bits_ = congest_factor * std::max(log_n, 4u);

  num_threads_ = options.num_threads != 0
                     ? options.num_threads
                     : std::max(1u, std::thread::hardware_concurrency());

  Rng root(seed);
  node_rng_.reserve(n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    node_rng_.push_back(root.fork(static_cast<std::uint64_t>(v)));
  }
  mate_port_.assign(n, -1);

  // Cross-endpoint port tables: one lookup per message on the hot path
  // instead of a Graph::port_of_edge call.
  slot_offset_.assign(n + 1, 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    slot_offset_[static_cast<std::size_t>(v) + 1] =
        slot_offset_[static_cast<std::size_t>(v)] +
        static_cast<std::size_t>(g.degree(v));
  }
  const std::size_t slots = slot_offset_[n];
  peer_slot_.resize(slots);
  peer_node_.resize(slots);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto edges = g.incident_edges(v);
    for (std::size_t p = 0; p < edges.size(); ++p) {
      const EdgeId e = edges[p];
      const NodeId u = g.other_endpoint(e, v);
      const std::size_t i = slot_offset_[static_cast<std::size_t>(v)] + p;
      peer_node_[i] = u;
      peer_slot_[i] = static_cast<std::uint32_t>(
          slot_offset_[static_cast<std::size_t>(u)] +
          static_cast<std::size_t>(g.port_of_edge(u, e)));
    }
  }

  cur_msg_.resize(slots);
  nxt_msg_.resize(slots);
  cur_stamp_.assign(slots, 0);
  nxt_stamp_.assign(slots, 0);
  pending_mark_.assign(n, 0);
  rcv_count_.assign(n, 0);
}

RunStats Network::run(const ProcessFactory& factory, int max_rounds) {
  DMATCH_EXPECTS(max_rounds >= 0);
  const Graph& g = *g_;
  const auto n = static_cast<std::size_t>(g.node_count());

  const unsigned num_shards = num_threads_;
  if (num_shards > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<support::ThreadPool>(num_shards);
  }
  const NodeId shard_len = static_cast<NodeId>(
      (g.node_count() + static_cast<NodeId>(num_shards) - 1) /
      static_cast<NodeId>(num_shards));
  const auto shard_of = [shard_len](NodeId v) {
    return shard_len == 0 ? 0u : static_cast<unsigned>(v / shard_len);
  };

  std::vector<ShardState> shards(num_shards);
  // Activity lanes: lane(src, dst) carries the ids of nodes in shard dst
  // that shard src delivered a message to; the payloads themselves go
  // straight into the port slots. Drained by dst at the routing barrier.
  std::vector<std::vector<NodeId>> lanes(
      static_cast<std::size_t>(num_shards) * num_shards);
  const auto lane = [&](unsigned src, unsigned dst) -> std::vector<NodeId>& {
    return lanes[static_cast<std::size_t>(src) * num_shards + dst];
  };

  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    procs.push_back(factory(v, g));
    DMATCH_ENSURES(procs.back() != nullptr);
    // A process that starts out halted is never stepped (and, with no
    // messages in flight yet, cannot be woken) until someone contacts it.
    if (!procs.back()->halted()) shards[shard_of(v)].active.push_back(v);
  }

  RunStats stats;
  std::atomic<bool> failed{false};
  std::uint64_t routed_before = 0;

  const auto for_each_shard = [&](auto&& fn) {
    if (num_shards == 1) {
      fn(0u);
    } else {
      pool_->run(fn);
    }
  };

  // On every exit (including exceptions) jump the epoch past both mailbox
  // buffers so no stale message or pending mark can leak into a later run.
  const auto invalidate_state = [&] {
    epoch_ += 2;
    rcv_count_.assign(n, 0);
  };

  const auto step_shard = [&](int round) {
    return [&, round](unsigned s) {
      ShardState& shard = shards[s];
      try {
        const std::uint64_t next_epoch = epoch_ + 1;
        for (const NodeId v : shard.active) {
          if (failed.load(std::memory_order_relaxed)) break;
          const auto vi = static_cast<std::size_t>(v);
          const std::size_t base = slot_offset_[vi];

          // Gather the inbox from the port slots; slots are visited in
          // port order, so no sort is needed, and the receive counter
          // cuts the scan short.
          shard.inbox.clear();
          std::uint32_t remaining = rcv_count_[vi];
          rcv_count_[vi] = 0;
          const std::size_t slot_end = slot_offset_[vi + 1];
          for (std::size_t slot = base; remaining > 0 && slot < slot_end;
               ++slot) {
            if (cur_stamp_[slot] == epoch_) {
              shard.inbox.push_back({static_cast<int>(slot - base),
                                     std::move(cur_msg_[slot])});
              --remaining;
            }
          }
          DMATCH_ASSERT(remaining == 0);

          if (procs[vi]->halted() && shard.inbox.empty()) continue;

          shard.outbox.clear();
          NodeContext ctx(g, v, g.node_count(), round, node_rng_[vi],
                          mate_port_[vi], model_, cap_bits_, shard.outbox,
                          shard.stats);
          procs[vi]->on_round(ctx, shard.inbox);

          for (Envelope& env : shard.outbox) {
            const std::size_t out_slot =
                base + static_cast<std::size_t>(env.port);
            const std::size_t in_slot = peer_slot_[out_slot];
            // At most one message per port per round; a second send would
            // silently overwrite the first.
            DMATCH_EXPECTS(nxt_stamp_[in_slot] != next_epoch);
            nxt_msg_[in_slot] = std::move(env.msg);
            nxt_stamp_[in_slot] = next_epoch;
            const NodeId u = peer_node_[out_slot];
            lane(s, shard_of(u)).push_back(u);
          }
          if (!procs[vi]->halted()) {
            shard.next_active.push_back(v);
            pending_mark_[vi] = next_epoch;
          }
        }
      } catch (...) {
        shard.error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    };
  };

  const auto route_shard = [&](unsigned t) {
    ShardState& shard = shards[t];
    const std::uint64_t next_epoch = epoch_ + 1;
    for (unsigned s = 0; s < num_shards; ++s) {
      std::vector<NodeId>& box = lane(s, t);
      for (const NodeId u : box) {
        const auto ui = static_cast<std::size_t>(u);
        ++rcv_count_[ui];
        if (pending_mark_[ui] != next_epoch) {
          pending_mark_[ui] = next_epoch;
          shard.next_active.push_back(u);
        }
      }
      box.clear();
    }
  };

  int executed = 0;
  bool quiesced = false;
  for (; executed < max_rounds; ++executed) {
    quiesced = std::all_of(shards.begin(), shards.end(), [](const auto& s) {
      return s.active.empty();
    });
    if (quiesced) break;

    for_each_shard(step_shard(executed));
    if (failed.load(std::memory_order_relaxed)) {
      invalidate_state();
      for (const ShardState& shard : shards) {
        if (shard.error != nullptr) std::rethrow_exception(shard.error);
      }
    }
    for_each_shard(route_shard);

    std::uint64_t routed = 0;
    for (const ShardState& shard : shards) routed += shard.stats.messages;
    stats.round_messages.push_back(routed - routed_before);
    routed_before = routed;
    ++stats.rounds;

    std::swap(cur_msg_, nxt_msg_);
    std::swap(cur_stamp_, nxt_stamp_);
    ++epoch_;
    for (ShardState& shard : shards) {
      std::swap(shard.active, shard.next_active);
      shard.next_active.clear();
    }
  }

  if (!quiesced) {
    // Budget exhausted: completed only if nothing is pending.
    quiesced = std::all_of(shards.begin(), shards.end(), [](const auto& s) {
      return s.active.empty();
    });
  }
  stats.completed = quiesced;
  for (const ShardState& shard : shards) stats.merge(shard.stats);
  invalidate_state();
  total_.merge(stats);
  return stats;
}

Matching Network::extract_matching() const {
  const Graph& g = *g_;
  Matching m(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const int port = mate_port_[static_cast<std::size_t>(v)];
    if (port < 0) continue;
    DMATCH_EXPECTS(port < g.degree(v));
    const EdgeId e = g.incident_edges(v)[static_cast<std::size_t>(port)];
    const NodeId u = g.other_endpoint(e, v);
    // Register consistency: u must point back along the same edge.
    const int uport = mate_port_[static_cast<std::size_t>(u)];
    DMATCH_EXPECTS(uport >= 0);
    DMATCH_EXPECTS(g.incident_edges(u)[static_cast<std::size_t>(uport)] == e);
    if (v < u) m.add(g, e);
  }
  DMATCH_ENSURES(m.is_valid(g));
  return m;
}

void Network::set_matching(const Matching& m) {
  const Graph& g = *g_;
  DMATCH_EXPECTS(m.node_count() == g.node_count());
  DMATCH_EXPECTS(m.is_valid(g));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const EdgeId e = m.matched_edge(v);
    mate_port_[static_cast<std::size_t>(v)] =
        e == kNoEdge ? -1 : g.port_of_edge(v, e);
  }
}

}  // namespace dmatch::congest
