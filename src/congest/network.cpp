#include "congest/network.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/wire.hpp"

namespace dmatch::congest {

namespace {

/// Concrete per-node Context bound to the Network's state for one round.
class NodeContext final : public Context {
 public:
  NodeContext(const Graph& g, NodeId id, NodeId n_bound, int round, Rng& rng,
              int& mate_port, Model model, std::uint32_t cap_bits,
              std::vector<Envelope>& outbox, RunStats& stats)
      : g_(g),
        id_(id),
        n_bound_(n_bound),
        round_(round),
        rng_(rng),
        mate_port_(mate_port),
        model_(model),
        cap_bits_(cap_bits),
        outbox_(outbox),
        stats_(stats) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] int degree() const override { return g_.degree(id_); }
  [[nodiscard]] NodeId neighbor_id(int port) const override {
    return g_.neighbor(id_, port);
  }
  [[nodiscard]] Weight edge_weight(int port) const override {
    return g_.weight(
        g_.incident_edges(id_)[static_cast<std::size_t>(port)]);
  }
  [[nodiscard]] NodeId n_bound() const override { return n_bound_; }
  [[nodiscard]] int round() const override { return round_; }
  Rng& rng() override { return rng_; }

  void send(int port, Message msg) override {
    DMATCH_EXPECTS(port >= 0 && port < degree());
    if (model_ == Model::kCongest && msg.bits > cap_bits_) {
      throw MessageTooLarge("message of " + std::to_string(msg.bits) +
                            " bits exceeds CONGEST cap of " +
                            std::to_string(cap_bits_) + " bits");
    }
    ++stats_.messages;
    stats_.total_bits += msg.bits;
    stats_.max_message_bits = std::max(stats_.max_message_bits, msg.bits);
    outbox_.push_back({port, std::move(msg)});
  }

  [[nodiscard]] int mate_port() const override { return mate_port_; }
  void set_mate_port(int port) override {
    DMATCH_EXPECTS(port >= 0 && port < degree());
    mate_port_ = port;
  }
  void clear_mate() override { mate_port_ = -1; }

 private:
  const Graph& g_;
  NodeId id_;
  NodeId n_bound_;
  int round_;
  Rng& rng_;
  int& mate_port_;
  Model model_;
  std::uint32_t cap_bits_;
  std::vector<Envelope>& outbox_;
  RunStats& stats_;
};

}  // namespace

Network::Network(const Graph& g, Model model, std::uint64_t seed,
                 std::uint32_t congest_factor)
    : g_(&g), model_(model) {
  const auto n = static_cast<std::size_t>(g.node_count());
  unsigned log_n = 1;
  while ((NodeId{1} << log_n) < g.node_count()) ++log_n;
  cap_bits_ = congest_factor * std::max(log_n, 4u);

  Rng root(seed);
  node_rng_.reserve(n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    node_rng_.push_back(root.fork(static_cast<std::uint64_t>(v)));
  }
  mate_port_.assign(n, -1);
}

RunStats Network::run(const ProcessFactory& factory, int max_rounds) {
  DMATCH_EXPECTS(max_rounds >= 0);
  const Graph& g = *g_;
  const auto n = static_cast<std::size_t>(g.node_count());

  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    procs.push_back(factory(v, g));
    DMATCH_ENSURES(procs.back() != nullptr);
  }

  RunStats stats;
  std::vector<std::vector<Envelope>> inbox(n);
  std::vector<std::vector<Envelope>> next_inbox(n);
  std::vector<Envelope> outbox;

  for (int round = 0; round < max_rounds; ++round) {
    bool all_quiet = true;
    for (const auto& box : inbox) {
      if (!box.empty()) {
        all_quiet = false;
        break;
      }
    }
    if (all_quiet && round > 0) {
      all_quiet = std::all_of(procs.begin(), procs.end(),
                              [](const auto& p) { return p->halted(); });
      if (all_quiet) {
        stats.completed = true;
        total_.merge(stats);
        return stats;
      }
    }

    for (auto& box : next_inbox) box.clear();
    std::uint64_t round_messages = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (procs[vi]->halted() && inbox[vi].empty()) continue;
      outbox.clear();
      NodeContext ctx(g, v, g.node_count(), round, node_rng_[vi],
                      mate_port_[vi], model_, cap_bits_, outbox, stats);
      // Deliver in ascending port order for determinism.
      std::sort(inbox[vi].begin(), inbox[vi].end(),
                [](const Envelope& a, const Envelope& b) {
                  return a.port < b.port;
                });
      procs[vi]->on_round(ctx, inbox[vi]);
      for (Envelope& env : outbox) {
        const EdgeId e =
            g.incident_edges(v)[static_cast<std::size_t>(env.port)];
        const NodeId u = g.other_endpoint(e, v);
        const int their_port = g.port_of_edge(u, e);
        next_inbox[static_cast<std::size_t>(u)].push_back(
            {their_port, std::move(env.msg)});
        ++round_messages;
      }
    }
    std::swap(inbox, next_inbox);
    ++stats.rounds;
    (void)round_messages;
  }

  // Budget exhausted: completed only if nothing is pending.
  stats.completed =
      std::all_of(procs.begin(), procs.end(),
                  [](const auto& p) { return p->halted(); }) &&
      std::all_of(inbox.begin(), inbox.end(),
                  [](const auto& box) { return box.empty(); });
  total_.merge(stats);
  return stats;
}

Matching Network::extract_matching() const {
  const Graph& g = *g_;
  Matching m(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const int port = mate_port_[static_cast<std::size_t>(v)];
    if (port < 0) continue;
    DMATCH_EXPECTS(port < g.degree(v));
    const EdgeId e = g.incident_edges(v)[static_cast<std::size_t>(port)];
    const NodeId u = g.other_endpoint(e, v);
    // Register consistency: u must point back along the same edge.
    const int uport = mate_port_[static_cast<std::size_t>(u)];
    DMATCH_EXPECTS(uport >= 0);
    DMATCH_EXPECTS(g.incident_edges(u)[static_cast<std::size_t>(uport)] == e);
    if (v < u) m.add(g, e);
  }
  DMATCH_ENSURES(m.is_valid(g));
  return m;
}

void Network::set_matching(const Matching& m) {
  const Graph& g = *g_;
  DMATCH_EXPECTS(m.node_count() == g.node_count());
  DMATCH_EXPECTS(m.is_valid(g));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const EdgeId e = m.matched_edge(v);
    mate_port_[static_cast<std::size_t>(v)] =
        e == kNoEdge ? -1 : g.port_of_edge(v, e);
  }
}

}  // namespace dmatch::congest
