// Reliable-delivery wrapper for synchronous CONGEST processes.
//
// ResilientProcess runs any congest::Process over lossy links by
// simulating its rounds as *virtual rounds* of a per-link ARQ protocol,
// in the spirit of the alpha synchronizer (congest/async.hpp) but built
// for an adversarial engine: messages may be dropped, duplicated,
// delayed or reordered (congest/fault.hpp), and neighbors may crash.
//
// The ARQ is a per-port selective-repeat sliding window. Per real round
// and per port the wrapper sends at most one *frame* combining the
// current cumulative + selective ack with at most one data payload:
//
//   ack_flag(1) [cum_ack(20) sack_bitmap(16)]
//   data_flag(1) [vround(20) halt(1) has_payload(1) payload...]
//
// i.e. at most 60 header bits on top of the wrapped payload — within the
// CONGEST cap for every protocol in this repository (see PROTOCOLS.md).
// Up to `window` frames ride the link unacknowledged (window = 1
// degenerates to the PR 2 stop-and-wait), so in the fault-free steady
// state a virtual round costs ONE real round, not a full round trip.
// The receiver accepts frames out of order into a reorder buffer and
// advertises them in the sack bitmap; the sender retransmits a missing
// frame as soon as duplicate cumulative acks (or any sack above it)
// prove the gap — fast retransmit — and otherwise on an adaptive
// RTT-estimated timeout with exponential backoff. Receive is idempotent
// (frames below the cumulative counter are re-acked and discarded), so
// duplicates and reordering are absorbed. The inner process advances to
// virtual round V+1 only when every port has either delivered its
// vround-V frame, announced halt at an earlier vround, or been declared
// dead (retransmissions exhausted, or prolonged silence while blocking).
//
// Guarantees: with an inactive FaultPlan the wrapped protocol computes
// exactly the fault-free matching (the inner process sees identical
// inboxes and RNG draws); under message faults without crashes it still
// computes that matching unless a link is falsely declared dead; under
// crashes it degrades gracefully — surviving nodes keep making progress
// and the Network's register healing restores a valid matching.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "congest/message.hpp"
#include "congest/network.hpp"
#include "congest/process.hpp"
#include "graph/graph.hpp"

namespace dmatch::congest {

struct ResilientOptions {
  /// Frames that may ride a link unacknowledged. 1 = stop-and-wait
  /// (the PR 2 protocol); capped at the 16-bit sack bitmap width.
  /// Exposed on the CLI as --arq-window; see EXPERIMENTS.md E20 for the
  /// measured window-8 vs window-16 loss-recovery trade-off.
  int window = 8;
  /// Floor / ceiling of the adaptive retransmission timeout, in real
  /// rounds. The estimator is Jacobson-style (srtt + 2·rttvar), seeded
  /// with initial_rto until the first RTT sample arrives; per-frame
  /// timeouts back off exponentially up to max_timeout.
  int min_rto = 2;
  int initial_rto = 3;
  int max_timeout = 48;
  /// Timeout retransmissions of one frame before the port is declared
  /// dead (fast retransmits do not count: the peer just proved alive).
  int max_retries = 12;
  /// Non-advancing cumulative acks that trigger a fast retransmit of
  /// the oldest unacked frame (a sack above it triggers immediately).
  int dupack_threshold = 2;
  /// Real rounds a port may block the virtual round without delivering
  /// any frame before it is declared dead. Catches live-but-mute peers
  /// (their data always lost while our frames are acked).
  int silence_limit = 96;
};

class ResilientProcess final : public Process {
 public:
  ResilientProcess(std::unique_ptr<Process> inner, int degree,
                   ResilientOptions opts);

  void on_round(Context& ctx, std::span<const Envelope> inbox) override;
  [[nodiscard]] bool halted() const override;

 private:
  struct OutFrame {
    Message payload;
    bool has_payload = false;
    bool halt = false;  // sender's last frame: treat later vrounds as empty
    bool txed = false;
    bool acked = false;  // selectively acked; retained until cum-acked
    bool rtt_eligible = true;  // Karn: never retransmitted, safe to sample
    std::uint32_t vr = 0;
    int since_tx = 0;  // real rounds since this frame last went out
    int retries = 0;   // timeout retransmissions so far
  };
  struct InFrame {
    Message payload;
    bool has_payload = false;
    std::uint32_t vr = 0;
  };
  struct PortState {
    // Sender side. front() is the oldest unacknowledged frame; frames
    // are transmitted in order, at most `window` in flight, and popped
    // on cumulative acks only (sacked frames are retained, marked).
    std::deque<OutFrame> outq;
    int srtt = 0;    // smoothed RTT, BSD fixed point (real rounds × 8)
    int rttvar = 0;  // RTT variance estimate (real rounds × 4)
    bool have_rtt = false;
    std::uint32_t last_ack = 0;  // highest cumulative ack seen
    int dup_acks = 0;
    bool fast_pending = false;  // front() proven missing: retransmit now
    // Receiver side: inq holds frames accepted *in order* but not yet
    // consumed by the inner process; ooo buffers out-of-order arrivals
    // (sorted by vr, advertised in the sack bitmap) until the gap fills.
    std::deque<InFrame> inq;
    std::vector<InFrame> ooo;
    std::uint32_t next_vr = 0;  // cumulative frames accepted == ack value
    bool owe_ack = false;
    int silence = 0;  // rounds this port has blocked without any frame
    // Link status.
    bool peer_halted = false;
    std::uint32_t peer_halt_vr = 0;  // peer sends nothing at vr > this
    bool dead = false;
  };

  void absorb_frame(const Envelope& env);
  void accept_data(PortState& p, std::uint32_t vr, bool halt, bool has_payload,
                   BitReader& r);
  static void rtt_sample(PortState& p, int sample);
  [[nodiscard]] int port_rto(const PortState& p) const;
  [[nodiscard]] int frame_timeout(const PortState& p,
                                  const OutFrame& f) const;
  [[nodiscard]] bool can_advance() const;
  void advance_inner(Context& ctx);
  void transmit(Context& ctx);
  void reactive_round(Context& ctx, std::span<const Envelope> inbox);
  void post_done_round(Context& ctx, std::span<const Envelope> inbox);

  std::unique_ptr<Process> inner_;
  ResilientOptions opts_;
  std::vector<PortState> ports_;
  std::uint32_t vround_ = 0;  // virtual rounds the inner has executed
  bool inner_halted_ = false;
  bool reactive_ = false;  // inner was born halted: only ever respond
  bool done_ = false;
  std::vector<Envelope> inner_inbox_;  // scratch for the inner context
};

/// Wrap a factory so every node runs its process under ResilientProcess.
[[nodiscard]] ProcessFactory resilient_factory(ProcessFactory inner,
                                               ResilientOptions opts = {});

/// Real-round budget for a protocol whose fault-free budget is
/// `inner_budget` virtual rounds: the selective-repeat pipeline runs one
/// real round per virtual round in the steady state, with 2× headroom
/// for retransmissions plus a constant for tail drain and backoff.
[[nodiscard]] int resilient_round_budget(int inner_budget);

}  // namespace dmatch::congest
