// Reliable-delivery wrapper for synchronous CONGEST processes.
//
// ResilientProcess runs any congest::Process over lossy links by
// simulating its rounds as *virtual rounds* of a per-link ARQ protocol,
// in the spirit of the alpha synchronizer (congest/async.hpp) but built
// for an adversarial engine: messages may be dropped, duplicated,
// delayed or reordered (congest/fault.hpp), and neighbors may crash.
//
// Per real round and per port the wrapper sends at most one *frame*
// combining a cumulative ack with the current data payload:
//
//   ack_flag(1) [ack_count(20)]
//   data_flag(1) [vround(20) halt(1) has_payload(1) payload...]
//
// i.e. at most 44 header bits on top of the wrapped payload — within the
// CONGEST cap for every protocol in this repository (see PROTOCOLS.md).
// Data frames use stop-and-wait per port: frame V+1 is withheld until V
// is acked, retransmitting on a doubling timeout. Receive is idempotent
// (frames below the cumulative counter are re-acked and discarded), so
// duplicates and reordering are absorbed. The inner process advances to
// virtual round V+1 only when every port has either delivered its
// vround-V frame, announced halt at an earlier vround, or been declared
// dead (retransmissions exhausted, or prolonged silence while blocking).
//
// Guarantees: with an inactive FaultPlan the wrapped protocol computes
// exactly the fault-free matching (the inner process sees identical
// inboxes and RNG draws, two real rounds per virtual round); under
// message faults without crashes it still computes that matching unless
// a link is falsely declared dead; under crashes it degrades gracefully
// — surviving nodes keep making progress and the Network's register
// healing restores a valid matching.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "congest/message.hpp"
#include "congest/network.hpp"
#include "congest/process.hpp"
#include "graph/graph.hpp"

namespace dmatch::congest {

struct ResilientOptions {
  /// Real rounds to wait for an ack before the first retransmission;
  /// doubles per retry up to max_timeout.
  int ack_timeout = 3;
  int max_timeout = 48;
  /// Retransmissions of one frame before the port is declared dead.
  int max_retries = 12;
  /// Real rounds a port may block the virtual round without delivering
  /// any frame before it is declared dead. Catches live-but-mute peers
  /// (their data always lost while our frames are acked).
  int silence_limit = 96;
};

class ResilientProcess final : public Process {
 public:
  ResilientProcess(std::unique_ptr<Process> inner, int degree,
                   ResilientOptions opts);

  void on_round(Context& ctx, std::span<const Envelope> inbox) override;
  [[nodiscard]] bool halted() const override;

 private:
  struct OutFrame {
    Message payload;
    bool has_payload = false;
    bool halt = false;  // sender's last frame: treat later vrounds as empty
    bool txed = false;
    std::uint32_t vr = 0;
  };
  struct InFrame {
    Message payload;
    bool has_payload = false;
    std::uint32_t vr = 0;
  };
  struct PortState {
    // Sender side. front() is the in-flight frame (stop-and-wait); later
    // entries wait their turn. The queue stays shallow — a peer cannot
    // run more than a couple of virtual rounds ahead of its slowest link.
    std::deque<OutFrame> outq;
    int since_tx = 0;  // real rounds since front() last went out
    int timeout = 0;
    int retries = 0;
    // Receiver side: frames accepted (acked) but not yet consumed by the
    // inner process — acks precede consumption when another port blocks.
    std::deque<InFrame> inq;
    std::uint32_t next_vr = 0;  // cumulative frames accepted == ack value
    bool owe_ack = false;
    int silence = 0;  // rounds this port has blocked without any frame
    // Link status.
    bool peer_halted = false;
    std::uint32_t peer_halt_vr = 0;  // peer sends nothing at vr > this
    bool dead = false;
  };

  void absorb_frame(const Envelope& env);
  [[nodiscard]] bool can_advance() const;
  void advance_inner(Context& ctx);
  void transmit(Context& ctx);
  void reactive_round(Context& ctx, std::span<const Envelope> inbox);
  void post_done_round(Context& ctx, std::span<const Envelope> inbox);

  std::unique_ptr<Process> inner_;
  ResilientOptions opts_;
  std::vector<PortState> ports_;
  std::uint32_t vround_ = 0;  // virtual rounds the inner has executed
  bool inner_halted_ = false;
  bool reactive_ = false;  // inner was born halted: only ever respond
  bool done_ = false;
  std::vector<Envelope> inner_inbox_;  // scratch for the inner context
};

/// Wrap a factory so every node runs its process under ResilientProcess.
[[nodiscard]] ProcessFactory resilient_factory(ProcessFactory inner,
                                               ResilientOptions opts = {});

/// Real-round budget for a protocol whose fault-free budget is
/// `inner_budget` virtual rounds: two real rounds per virtual round in
/// the steady state, with headroom for retransmission backoff.
[[nodiscard]] int resilient_round_budget(int inner_budget);

}  // namespace dmatch::congest
