#include "congest/async.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <map>
#include <queue>
#include <thread>
#include <tuple>
#include <utility>

#include "support/arena.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/sched.hpp"

namespace dmatch::congest {

namespace {

enum class EventKind : std::uint8_t { kData = 0, kAck = 1, kSafe = 2 };

struct Event {
  double time = 0;
  NodeId dst = kNoNode;
  int dst_port = -1;  // port at the destination the message arrives on
  EventKind kind = EventKind::kData;
  int round = 0;       // sender's simulated round (DATA) / referenced round
  int file_round = 0;  // simulated round the payload is due (>= round + 1)
  bool dropped = false;  // payload lost in transit; still acked
  bool synth = false;    // synthetic duplicate: delivers, never acks
  Message payload;
};

/// Canonical event key. (dst, kind, dst_port, round, synth) is unique per
/// run — the executor enforces at most one DATA per directed port per
/// round, each DATA begets at most one ACK, and a node announces SAFE(r)
/// to each neighbor once — so this is a strict total order on the events
/// of a run and pop order never depends on insertion order or shard
/// layout. Delivery delays are pure hashes of the same key, so event
/// timestamps are also independent of execution order.
[[nodiscard]] std::tuple<double, NodeId, int, int, int, bool> event_key(
    const Event& e) {
  return {e.time, e.dst,  static_cast<int>(e.kind),
          e.dst_port, e.round, e.synth};
}

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    return event_key(a) > event_key(b);
  }
};

/// Context handed to the wrapped synchronous process; captures sends.
/// Per-round outbox, arena-backed: the buffer comes from the shard's
/// bump arena and is reclaimed wholesale at the next execute_round.
using Outbox = support::ArenaVector<std::pair<int, Message>>;

class AsyncContext final : public Context {
 public:
  AsyncContext(const Graph& g, NodeId id, int round, Rng& rng, int& mate_port,
               Outbox& outbox)
      : g_(g),
        id_(id),
        round_(round),
        rng_(rng),
        mate_port_(mate_port),
        outbox_(outbox) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] int degree() const override { return g_.degree(id_); }
  [[nodiscard]] NodeId neighbor_id(int port) const override {
    return g_.neighbor(id_, port);
  }
  [[nodiscard]] Weight edge_weight(int port) const override {
    return g_.weight(g_.incident_edges(id_)[static_cast<std::size_t>(port)]);
  }
  [[nodiscard]] NodeId n_bound() const override { return g_.node_count(); }
  [[nodiscard]] int round() const override { return round_; }
  Rng& rng() override { return rng_; }
  void send(int port, Message msg) override {
    DMATCH_EXPECTS(port >= 0 && port < degree());
    outbox_.emplace_back(port, std::move(msg));
  }
  [[nodiscard]] int mate_port() const override { return mate_port_; }
  void set_mate_port(int port) override {
    DMATCH_EXPECTS(port >= 0 && port < degree());
    mate_port_ = port;
  }
  void clear_mate() override { mate_port_ = -1; }

#ifndef DMATCH_OBS_DISABLED
  [[nodiscard]] obs::ShardObs* obs() noexcept override { return obs_; }
  void attach_obs(obs::ShardObs* o) noexcept { obs_ = o; }
#endif

 private:
  const Graph& g_;
  NodeId id_;
  int round_;
  Rng& rng_;
  int& mate_port_;
  Outbox& outbox_;
#ifndef DMATCH_OBS_DISABLED
  obs::ShardObs* obs_ = nullptr;
#endif
};

/// A payload due on a later simulated round than sender_round + 1
/// (delayed original or synthetic duplicate). Mirrors the engine's delay
/// ring entries, including their (port, origin round) delivery order.
struct ExtraEnvelope {
  int port = -1;
  int origin_round = 0;
  Message msg;
};

/// Per-node synchronizer state. Written only by the shard owning the node.
struct NodeState {
  std::unique_ptr<Process> proc;
  Rng rng{0};
  int executed_round = -1;            // highest simulated round run so far
  std::map<int, std::vector<Envelope>> inbox;  // keyed by delivery round
  std::map<int, std::vector<ExtraEnvelope>> extras;  // late/dup deliveries
  std::map<int, int> safe_count;      // SAFE(r) messages received
  int pending_acks = 0;               // for the DATA of executed_round
  bool announced_safe = false;        // SAFE(executed_round) already sent
  bool respawned = false;             // crash-restart already performed
};

/// Per-shard state of the wave executor. Everything here has a single
/// writer (the worker owning the shard); the driver reads it only while
/// the pool is parked (the pool handshake gives happens-before).
struct alignas(64) AsyncShard {
  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  AsyncStats stats;           // shard-local accumulators, merged at the end
  double max_time = 0;        // folded into stats.completion_time
  std::int64_t inflight_delta = 0;  // DATA sent minus DATA delivered
  std::exception_ptr error;
  std::uint64_t stamp_token = 0;    // for the one-message-per-port contract
  std::vector<std::uint64_t> port_stamp;
  // Bump arena for per-round transient buffers (the outbox); reset at
  // every execute_round, so steady-state rounds make no heap calls for
  // scratch. Strictly shard-private, like everything else here.
  support::Arena arena;
#ifndef DMATCH_OBS_DISABLED
  obs::ShardObs* sobs = nullptr;
  std::vector<std::uint64_t> round_bits;  // parallels stats.round_payloads
#endif
};

class AlphaSynchronizerRun {
 public:
  AlphaSynchronizerRun(const Graph& g, const ProcessFactory& factory,
                       std::vector<int>& mate_ports, std::uint64_t seed,
                       int max_rounds, const AsyncOptions& options)
      : g_(g),
        factory_(factory),
        mate_ports_(mate_ports),
        max_rounds_(max_rounds),
        options_(options),
        fault_(options.fault.any()),
        dseed_(fault_detail::mix(seed, 0xd37a11ce5ULL, 0, 0)) {
    DMATCH_EXPECTS(mate_ports_.size() ==
                   static_cast<std::size_t>(g.node_count()));
    const unsigned threads =
        options.num_threads != 0
            ? options.num_threads
            : std::max(1u, std::thread::hardware_concurrency());
    const auto n = static_cast<std::size_t>(g.node_count());
    dispatcher_ = std::make_unique<support::Scheduler>(threads, options.sched);
    // Shard geometry is frozen from the scheduler's task plan before any
    // event executes; results are shard-layout independent, so modes
    // with different shard counts still agree bit for bit.
    num_shards_ = dispatcher_->plan_tasks(n);
    n_ = n;
    shards_.resize(num_shards_);
    lanes_.resize(static_cast<std::size_t>(num_shards_) * num_shards_);
    int max_degree = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      max_degree = std::max(max_degree, g.degree(v));
    }
    for (AsyncShard& sh : shards_) {
      sh.port_stamp.assign(static_cast<std::size_t>(max_degree), 0);
    }

    Rng root(seed);
    nodes_.resize(n);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      auto& node = nodes_[static_cast<std::size_t>(v)];
      node.proc = factory(v, g);
      node.rng = root.fork(static_cast<std::uint64_t>(v));
    }
    if (fault_) {
      // Same crash table and per-message hash stream as the round engine
      // (first run on a fresh Network, nonce 0), so a plan produces one
      // fault history regardless of which executor replays it.
      sched_ = fault_detail::compute_crash_schedule(options_.fault,
                                                    g.node_count());
      fseed_ = fault_detail::run_seed(options_.fault.seed, 0);
      build_slot_offsets();
    }
    DMATCH_OBS(if (options_.observer != nullptr) {
      (void)options_.observer->begin_run(num_shards_, g);
      for (unsigned s = 0; s < num_shards_; ++s) {
        shards_[s].sobs = options_.observer->shard(s);
      }
      clock_base_ = options_.observer->clock();
      if (slot_offset_.empty()) build_slot_offsets();
    })
  }

  AsyncStats run(std::vector<char>* dead_out) {
    // Round 0 and isolated-node spin-up, shard-parallel: each node's
    // bootstrap touches only its own state and the outgoing lanes.
    for_each_shard([this](unsigned s) { bootstrap(s); });
    rethrow_shard_errors();
    for_each_shard([this](unsigned s) { merge_wave(s); });
    collect_inflight();

    // Conservative wave loop: all events with time in [T_min, T_min +
    // min_delay) were queued before the wave opened (anything a wave
    // event spawns lands >= min_delay later), and concurrent events
    // address distinct nodes (one shard each), so processing a wave
    // shard-parallel is order-equivalent to the sequential pop loop.
    for (;;) {
      double t_min = std::numeric_limits<double>::infinity();
      for (const AsyncShard& sh : shards_) {
        if (!sh.queue.empty()) t_min = std::min(t_min, sh.queue.top().time);
      }
      if (t_min == std::numeric_limits<double>::infinity()) break;
      if (quiescent()) break;
      const double t_end = t_min + options_.min_delay;
      for_each_shard([this, t_end](unsigned s) { process_wave(s, t_end); });
      rethrow_shard_errors();
      for_each_shard([this](unsigned s) { merge_wave(s); });
      collect_inflight();
    }

    merge_stats();
    // Completion means genuine protocol quiescence (all node programs
    // halted, nothing undelivered) -- drained event queues alone can also
    // mean the round budget cut the synchronizer off mid-protocol.
    stats_.completed = quiescent();
    if (fault_) {
      finish_faults(dead_out);
    } else if (dead_out != nullptr) {
      dead_out->assign(static_cast<std::size_t>(g_.node_count()), 0);
    }
    DMATCH_OBS(if (options_.observer != nullptr) finish_obs();)
    return stats_;
  }

 private:
  // --- shard geometry -------------------------------------------------

  [[nodiscard]] unsigned shard_of(NodeId v) const {
    return support::balanced_part_of(n_, num_shards_,
                                     static_cast<std::size_t>(v));
  }
  [[nodiscard]] NodeId shard_begin(unsigned s) const {
    return static_cast<NodeId>(
        support::balanced_range(n_, num_shards_, s).begin);
  }
  [[nodiscard]] NodeId shard_end(unsigned s) const {
    return static_cast<NodeId>(support::balanced_range(n_, num_shards_, s).end);
  }
  [[nodiscard]] std::vector<Event>& lane(unsigned src, unsigned dst) {
    return lanes_[static_cast<std::size_t>(src) * num_shards_ + dst];
  }

  void for_each_shard(const std::function<void(unsigned)>& task) {
    dispatcher_->run_tasks(num_shards_, task);
  }

  void rethrow_shard_errors() {
    // Lowest shard first: deterministic pick when several shards threw.
    for (AsyncShard& sh : shards_) {
      if (sh.error) std::rethrow_exception(sh.error);
    }
  }

  void collect_inflight() {
    for (AsyncShard& sh : shards_) {
      data_in_flight_ += sh.inflight_delta;
      sh.inflight_delta = 0;
    }
    DMATCH_ASSERT(data_in_flight_ >= 0);
  }

  void build_slot_offsets() {
    slot_offset_.resize(static_cast<std::size_t>(g_.node_count()) + 1, 0);
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      slot_offset_[static_cast<std::size_t>(v) + 1] =
          slot_offset_[static_cast<std::size_t>(v)] +
          static_cast<std::uint64_t>(g_.degree(v));
    }
  }

  // --- wave phases (worker-side) --------------------------------------

  void bootstrap(unsigned s) {
    try {
      for (NodeId v = shard_begin(s); v < shard_end(s); ++v) {
        execute_round(s, v, 0, 0.0);
      }
      // Isolated nodes receive no events, so no dispatch ever advances
      // them: spin them forward now (they halt on their own or burn the
      // round budget, exactly like their engine execution).
      for (NodeId v = shard_begin(s); v < shard_end(s); ++v) {
        if (g_.degree(v) == 0) try_advance(s, 0.0, v);
      }
    } catch (...) {
      shards_[s].error = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }

  void process_wave(unsigned s, double t_end) {
    AsyncShard& shard = shards_[s];
    try {
      while (!shard.queue.empty() && shard.queue.top().time < t_end) {
        if (failed_.load(std::memory_order_relaxed)) return;
        Event ev = shard.queue.top();
        shard.queue.pop();
        ++shard.stats.events;
        shard.max_time = std::max(shard.max_time, ev.time);
        dispatch(s, std::move(ev));
      }
    } catch (...) {
      shard.error = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }

  void merge_wave(unsigned t) {
    AsyncShard& shard = shards_[t];
    for (unsigned s = 0; s < num_shards_; ++s) {
      std::vector<Event>& box = lane(s, t);
      for (Event& ev : box) shard.queue.push(std::move(ev));
      box.clear();
    }
  }

  // --- quiescence / teardown (driver-side, workers parked) ------------

  [[nodiscard]] bool settled_dead(NodeId v) const {
    if (!fault_) return false;
    const auto vi = static_cast<std::size_t>(v);
    const auto& node = nodes_[vi];
    return sched_.restart_at[vi] == kRoundNever && node.executed_round >= 0 &&
           sched_.crash_at[vi] <=
               static_cast<std::uint64_t>(node.executed_round);
  }

  [[nodiscard]] bool quiescent() const {
    if (data_in_flight_ > 0) return false;
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      const NodeState& node = nodes_[static_cast<std::size_t>(v)];
      // A node that died for good absorbs whatever is still addressed
      // to it (counted as drops at the end) and never acts again.
      if (settled_dead(v)) continue;
      if (!node.proc->halted()) return false;
      for (const auto& [round, box] : node.inbox) {
        if (!box.empty() && round > node.executed_round) return false;
      }
      for (const auto& [round, box] : node.extras) {
        if (!box.empty() && round > node.executed_round) return false;
      }
    }
    return true;
  }

  void merge_stats() {
    for (AsyncShard& sh : shards_) {
      stats_.events += sh.stats.events;
      stats_.payload_messages += sh.stats.payload_messages;
      stats_.control_messages += sh.stats.control_messages;
      stats_.virtual_rounds =
          std::max(stats_.virtual_rounds, sh.stats.virtual_rounds);
      stats_.completion_time = std::max(stats_.completion_time, sh.max_time);
      stats_.dropped_messages += sh.stats.dropped_messages;
      stats_.duplicated_messages += sh.stats.duplicated_messages;
      stats_.delayed_messages += sh.stats.delayed_messages;
      stats_.reordered_inboxes += sh.stats.reordered_inboxes;
      stats_.restarted_nodes += sh.stats.restarted_nodes;
      if (sh.stats.round_payloads.size() > stats_.round_payloads.size()) {
        stats_.round_payloads.resize(sh.stats.round_payloads.size(), 0);
      }
      for (std::size_t r = 0; r < sh.stats.round_payloads.size(); ++r) {
        stats_.round_payloads[r] += sh.stats.round_payloads[r];
      }
      DMATCH_OBS(
          if (sh.round_bits.size() > obs_round_bits_.size()) {
            obs_round_bits_.resize(sh.round_bits.size(), 0);
          } for (std::size_t r = 0; r < sh.round_bits.size(); ++r) {
            obs_round_bits_[r] += sh.round_bits[r];
          })
    }
  }

  void finish_faults(std::vector<char>* dead_out) {
    // Residual payloads parked for rounds a permanently dead node will
    // never execute are lost — the engine counts the same messages as
    // drops when the dead node's round comes up or the run ends.
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      if (!settled_dead(v)) continue;
      NodeState& node = nodes_[static_cast<std::size_t>(v)];
      for (auto& [round, box] : node.inbox) {
        if (round > node.executed_round) {
          stats_.dropped_messages += box.size();
        }
      }
      for (auto& [round, box] : node.extras) {
        if (round > node.executed_round) {
          stats_.dropped_messages += box.size();
        }
      }
      node.inbox.clear();
      node.extras.clear();
    }
    // Crash events that fired inside the simulated window, and the
    // end-of-run dead mask (the engine's node_dead at lifetime end).
    const std::uint64_t end_round = stats_.virtual_rounds + 1;
    if (dead_out != nullptr) {
      dead_out->assign(static_cast<std::size_t>(g_.node_count()), 0);
    }
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (sched_.crash_at[vi] < end_round) ++stats_.crashed_nodes;
      if (dead_out != nullptr && sched_.dead_at(v, end_round)) {
        (*dead_out)[vi] = 1;
      }
    }
  }

  // --- event plumbing (worker-side, shard-local) ----------------------

  /// Delivery delay as a pure hash of the canonical event identity: the
  /// same event gets the same delay no matter which shard sends it or
  /// when — the keystone of cross-thread-count determinism. Uniform in
  /// [min_delay, max_delay) like the old shared-stream draw.
  [[nodiscard]] double delay_for(NodeId dst, int dst_port, EventKind kind,
                                 int round, bool synth) const {
    const auto a = static_cast<std::uint64_t>(dst);
    const std::uint64_t b =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst_port))
         << 3) |
        (static_cast<std::uint64_t>(kind) << 1) |
        static_cast<std::uint64_t>(synth);
    const std::uint64_t h =
        fault_detail::mix(dseed_, a, b, static_cast<std::uint64_t>(round));
    return options_.min_delay +
           (options_.max_delay - options_.min_delay) * fault_detail::to_unit(h);
  }

  void enqueue(unsigned s, double now, Event ev) {
    ev.time = now + delay_for(ev.dst, ev.dst_port, ev.kind, ev.round, ev.synth);
    lane(s, shard_of(ev.dst)).push_back(std::move(ev));
  }

  void enqueue_control(unsigned s, double now, NodeId dst, int dst_port,
                       EventKind kind, int round) {
    Event ev;
    ev.dst = dst;
    ev.dst_port = dst_port;
    ev.kind = kind;
    ev.round = round;
    enqueue(s, now, std::move(ev));
  }

  void dispatch(unsigned s, Event ev) {
    AsyncShard& shard = shards_[s];
    auto& node = nodes_[static_cast<std::size_t>(ev.dst)];
    switch (ev.kind) {
      case EventKind::kData: {
        --shard.inflight_delta;
        if (!ev.synth) {
          ++shard.stats.payload_messages;
          // Acknowledge to the sender. The control plane is reliable
          // (Awerbuch's model): even a dropped payload is acked, else
          // the sender would never announce SAFE and the synchronizer
          // would deadlock on a fault.
          const EdgeId e = g_.incident_edges(
              ev.dst)[static_cast<std::size_t>(ev.dst_port)];
          const NodeId sender = g_.other_endpoint(e, ev.dst);
          enqueue_control(s, ev.time, sender, g_.port_of_edge(sender, e),
                          EventKind::kAck, ev.round);
          ++shard.stats.control_messages;
        }
        if (!ev.dropped) {
          if (ev.file_round > ev.round + 1) {
            node.extras[ev.file_round].push_back(
                {ev.dst_port, ev.round, std::move(ev.payload)});
          } else {
            node.inbox[ev.file_round].push_back(
                {ev.dst_port, std::move(ev.payload)});
          }
        }
        break;
      }
      case EventKind::kAck: {
        if (ev.round == node.executed_round) {
          DMATCH_ASSERT(node.pending_acks > 0);
          if (--node.pending_acks == 0) announce_safe(s, ev.time, ev.dst);
        }
        try_advance(s, ev.time, ev.dst);
        break;
      }
      case EventKind::kSafe: {
        ++node.safe_count[ev.round];
        try_advance(s, ev.time, ev.dst);
        break;
      }
    }
    if (ev.kind == EventKind::kData) try_advance(s, ev.time, ev.dst);
  }

  void announce_safe(unsigned s, double now, NodeId v) {
    AsyncShard& shard = shards_[s];
    auto& node = nodes_[static_cast<std::size_t>(v)];
    if (node.announced_safe) return;
    node.announced_safe = true;
    for (int p = 0; p < g_.degree(v); ++p) {
      const NodeId u = g_.neighbor(v, p);
      const EdgeId e = g_.incident_edges(v)[static_cast<std::size_t>(p)];
      enqueue_control(s, now, u, g_.port_of_edge(u, e), EventKind::kSafe,
                      node.executed_round);
      ++shard.stats.control_messages;
    }
  }

  void try_advance(unsigned s, double now, NodeId v) {
    auto& node = nodes_[static_cast<std::size_t>(v)];
    const auto vi = static_cast<std::size_t>(v);
    for (;;) {
      const int r = node.executed_round;
      if (r + 1 > max_rounds_) return;
      if (!node.announced_safe) return;  // own messages not yet delivered
      if (g_.degree(v) > 0 && node.safe_count[r] < g_.degree(v)) return;
      if (g_.degree(v) == 0) {
        // An isolated halted node influences nobody: spinning it forward
        // only burns simulated rounds. Same for one that died for good.
        if (node.proc->halted()) return;
        if (fault_ && sched_.restart_at[vi] == kRoundNever &&
            sched_.crash_at[vi] <= static_cast<std::uint64_t>(r) + 1) {
          return;
        }
      }
      execute_round(s, v, r + 1, now);
    }
  }

  void execute_round(unsigned s, NodeId v, int round, double now) {
    AsyncShard& shard = shards_[s];
    auto& node = nodes_[static_cast<std::size_t>(v)];
    const auto vi = static_cast<std::size_t>(v);
    DMATCH_ASSERT(round == node.executed_round + 1);
    node.executed_round = round;
    node.safe_count.erase(round - 2);  // stale bookkeeping
    shard.stats.virtual_rounds = std::max(
        shard.stats.virtual_rounds, static_cast<std::uint64_t>(round));
    if (static_cast<std::size_t>(round) >= shard.stats.round_payloads.size()) {
      // Grown before the degenerate-crash return below so dead nodes'
      // silent rounds still appear (as zeros) in the per-round curve.
      shard.stats.round_payloads.resize(static_cast<std::size_t>(round) + 1,
                                        0);
      DMATCH_OBS(shard.round_bits.resize(shard.stats.round_payloads.size(),
                                         0);)
    }

    if (fault_ &&
        sched_.dead_at(v, static_cast<std::uint64_t>(round))) {
      // Crashed node: executes no protocol step and its round's payloads
      // are lost (the engine drops them at consumption), but it keeps
      // the synchronizer sound — no data, so SAFE goes out immediately.
      if (const auto it = node.inbox.find(round); it != node.inbox.end()) {
        shard.stats.dropped_messages += it->second.size();
        node.inbox.erase(it);
      }
      if (const auto it = node.extras.find(round); it != node.extras.end()) {
        shard.stats.dropped_messages += it->second.size();
        node.extras.erase(it);
      }
      node.pending_acks = 0;
      node.announced_safe = false;
      announce_safe(s, now, v);
      return;
    }
    if (fault_ && !node.respawned &&
        sched_.crash_at[vi] <= static_cast<std::uint64_t>(round)) {
      // Crash-restart: fresh protocol state, cleared output register,
      // same private RNG stream — the engine's respawn semantics.
      node.respawned = true;
      node.proc = factory_(v, g_);
      DMATCH_ENSURES(node.proc != nullptr);
      mate_ports_[vi] = -1;
      ++shard.stats.restarted_nodes;
    }

    std::vector<Envelope> inbox;
    if (const auto it = node.inbox.find(round); it != node.inbox.end()) {
      inbox = std::move(it->second);
      node.inbox.erase(it);
    }
    std::sort(inbox.begin(), inbox.end(),
              [](const Envelope& a, const Envelope& b) {
                return a.port < b.port;
              });
    if (fault_) {
      // Late/duplicate payloads follow the regular slots in the engine's
      // delay-ring order: sorted by (port, origin round).
      if (const auto it = node.extras.find(round); it != node.extras.end()) {
        std::sort(it->second.begin(), it->second.end(),
                  [](const ExtraEnvelope& a, const ExtraEnvelope& b) {
                    return std::tie(a.port, a.origin_round) <
                           std::tie(b.port, b.origin_round);
                  });
        for (ExtraEnvelope& e : it->second) {
          inbox.push_back({e.port, std::move(e.msg)});
        }
        node.extras.erase(it);
      }
      if (options_.fault.reorder_prob > 0 && inbox.size() > 1) {
        const std::uint64_t h = fault_detail::mix(
            fseed_, fault_detail::kSaltReorder,
            static_cast<std::uint64_t>(round), v);
        if (fault_detail::to_unit(h) < options_.fault.reorder_prob) {
          std::uint64_t state = h;
          for (std::size_t i = inbox.size() - 1; i > 0; --i) {
            const auto j =
                static_cast<std::size_t>(splitmix64(state) % (i + 1));
            std::swap(inbox[i], inbox[j]);
          }
          ++shard.stats.reordered_inboxes;
          DMATCH_OBS(if (shard.sobs != nullptr) {
            shard.sobs->trace_at(
                clock_base_ + static_cast<std::uint64_t>(round),
                obs::EventType::kFaultReorder, static_cast<std::uint32_t>(v));
          })
        }
      }
    }

    // Arena-backed outbox: reset reclaims the previous round's scratch
    // wholesale (nothing arena-backed outlives an execute_round call),
    // and the CONGEST one-message-per-port contract makes degree(v) an
    // exact reservation, so steady-state rounds never touch the heap.
    shard.arena.reset();
    Outbox outbox{support::ArenaAllocator<std::pair<int, Message>>(shard.arena)};
    outbox.reserve(static_cast<std::size_t>(g_.degree(v)));
    // Mirror Network::run: halted nodes with an empty inbox are skipped
    // (they still synchronize, sending SAFE with no data).
    if (!node.proc->halted() || !inbox.empty()) {
      AsyncContext ctx(g_, v, round, node.rng, mate_ports_[vi], outbox);
      DMATCH_OBS(if (shard.sobs != nullptr) {
        shard.sobs->now = clock_base_ + static_cast<std::uint64_t>(round);
        ctx.attach_obs(shard.sobs);
      })
      node.proc->on_round(ctx, inbox);
    }

    // CONGEST contract, enforced like the engine's port-slot mailboxes:
    // at most one message per port per round. Without it the canonical
    // event key would not be unique and pop order would be ambiguous.
    ++shard.stamp_token;
    for (const auto& [port, msg] : outbox) {
      auto& stamp = shard.port_stamp[static_cast<std::size_t>(port)];
      DMATCH_EXPECTS(stamp != shard.stamp_token);
      stamp = shard.stamp_token;
    }

    node.pending_acks = static_cast<int>(outbox.size());
    node.announced_safe = false;
    shard.stats.round_payloads[static_cast<std::size_t>(round)] +=
        static_cast<std::uint64_t>(outbox.size());
    for (auto& [port, msg] : outbox) {
      const EdgeId e = g_.incident_edges(v)[static_cast<std::size_t>(port)];
      const NodeId u = g_.other_endpoint(e, v);
      const int uport = g_.port_of_edge(u, e);
      DMATCH_OBS(if (shard.sobs != nullptr) {
        // Same sender-side slot the engine's NodeContext profiles.
        shard.sobs->link_message(
            static_cast<std::size_t>(
                slot_offset_[static_cast<std::size_t>(v)]) +
                static_cast<std::size_t>(port),
            msg.bits);
        shard.round_bits[static_cast<std::size_t>(round)] += msg.bits;
      })
      Event ev;
      ev.dst = u;
      ev.dst_port = uport;
      ev.kind = EventKind::kData;
      ev.round = round;
      ev.file_round = round + 1;
      if (fault_) {
        // The engine's exact per-message decision hash: (run seed,
        // sender round, receiver slot). Identical plan, identical fate.
        const std::uint64_t in_slot =
            slot_offset_[static_cast<std::size_t>(u)] +
            static_cast<std::uint64_t>(uport);
        const FaultPlan& plan = options_.fault;
        const std::uint64_t h = fault_detail::mix(
            fseed_, static_cast<std::uint64_t>(round), in_slot, 0);
        if (plan.drop_prob > 0 &&
            fault_detail::to_unit(fault_detail::mix(
                h, fault_detail::kSaltDrop, 0, 0)) < plan.drop_prob) {
          ev.dropped = true;
          ++shard.stats.dropped_messages;
          DMATCH_OBS(if (shard.sobs != nullptr) {
            shard.sobs->trace_at(
                clock_base_ + static_cast<std::uint64_t>(round),
                obs::EventType::kFaultDrop, static_cast<std::uint32_t>(u),
                in_slot);
          })
        } else {
          const int max_d = std::max(1, plan.max_delay);
          const bool dup =
              plan.duplicate_prob > 0 &&
              fault_detail::to_unit(fault_detail::mix(
                  h, fault_detail::kSaltDup, 0, 0)) < plan.duplicate_prob;
          const bool late =
              plan.delay_prob > 0 &&
              fault_detail::to_unit(fault_detail::mix(
                  h, fault_detail::kSaltDelay, 0, 0)) < plan.delay_prob;
          if (dup) {
            const int d =
                1 + static_cast<int>(
                        fault_detail::mix(h, fault_detail::kSaltDupAmount, 0,
                                          0) %
                        static_cast<std::uint64_t>(max_d));
            ++shard.stats.duplicated_messages;
            DMATCH_OBS(if (shard.sobs != nullptr) {
              shard.sobs->trace_at(
                  clock_base_ + static_cast<std::uint64_t>(round),
                  obs::EventType::kFaultDuplicate,
                  static_cast<std::uint32_t>(u), in_slot,
                  static_cast<std::uint64_t>(d));
            })
            Event copy;
            copy.dst = u;
            copy.dst_port = uport;
            copy.kind = EventKind::kData;
            copy.round = round;
            copy.file_round = round + 1 + d;
            copy.synth = true;
            copy.payload = msg;
            enqueue(s, now, std::move(copy));
            ++shard.inflight_delta;
          }
          if (late) {
            const int d =
                1 + static_cast<int>(
                        fault_detail::mix(h, fault_detail::kSaltDelayAmount,
                                          0, 0) %
                        static_cast<std::uint64_t>(max_d));
            ++shard.stats.delayed_messages;
            DMATCH_OBS(if (shard.sobs != nullptr) {
              shard.sobs->trace_at(
                  clock_base_ + static_cast<std::uint64_t>(round),
                  obs::EventType::kFaultDelay, static_cast<std::uint32_t>(u),
                  in_slot, static_cast<std::uint64_t>(d));
            })
            ev.file_round = round + 1 + d;
          }
        }
      }
      ev.payload = std::move(msg);
      enqueue(s, now, std::move(ev));
      ++shard.inflight_delta;
    }
    if (node.pending_acks == 0) announce_safe(s, now, v);
  }

#ifndef DMATCH_OBS_DISABLED
  // Emitted once at the end of the run on the driver thread (shard 0
  // handle, workers parked). Per-round records are reconstructed on the
  // virtual-round clock instead of streamed (virtual rounds interleave
  // across nodes and shards). Timestamps are clock_base_ + round — the
  // mapping the engine uses — so sync and async runs share one trace
  // timeline, and the reconstruction consumes only merged, shard-layout-
  // independent inputs, keeping the output byte-identical across
  // num_threads.
  void finish_obs() {
    obs::Observer& ob = *options_.observer;
    obs::ShardObs* sobs = shards_[0].sobs;
    const auto& ids = sobs->ids();
    const std::size_t rounds = stats_.round_payloads.size();
    obs_round_bits_.resize(rounds, 0);
    for (std::size_t r = 0; r < rounds; ++r) {
      const std::uint64_t t = clock_base_ + r;
      sobs->trace_at(t, obs::EventType::kRoundEnd, 0,
                     stats_.round_payloads[r], obs_round_bits_[r]);
      sobs->observe(ids.engine_round_messages_hist, stats_.round_payloads[r]);
      sobs->bits_hist_totals(stats_.round_payloads[r], obs_round_bits_[r]);
      ob.profiler().round_end(stats_.round_payloads[r], obs_round_bits_[r]);
    }
    if (fault_) {
      const std::uint64_t end_round = stats_.virtual_rounds + 1;
      for (NodeId v = 0; v < g_.node_count(); ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (sched_.crash_at[vi] < end_round) {
          sobs->trace_at(clock_base_ + sched_.crash_at[vi],
                         obs::EventType::kCrash,
                         static_cast<std::uint32_t>(v));
        }
        if (sched_.restart_at[vi] <= end_round) {
          sobs->trace_at(clock_base_ + sched_.restart_at[vi],
                         obs::EventType::kRestart,
                         static_cast<std::uint32_t>(v));
        }
      }
      sobs->count(ids.fault_dropped, stats_.dropped_messages);
      sobs->count(ids.fault_duplicated, stats_.duplicated_messages);
      sobs->count(ids.fault_delayed, stats_.delayed_messages);
      sobs->count(ids.fault_reordered, stats_.reordered_inboxes);
      sobs->count(ids.fault_crashed, stats_.crashed_nodes);
      sobs->count(ids.fault_restarted, stats_.restarted_nodes);
    }
    sobs->count(ids.async_events, stats_.events);
    sobs->count(ids.async_payload_messages, stats_.payload_messages);
    sobs->count(ids.async_control_messages, stats_.control_messages);
    sobs->count(ids.async_virtual_rounds, stats_.virtual_rounds);
    ob.advance_clock(rounds);
  }
#endif

  const Graph& g_;
  const ProcessFactory& factory_;
  std::vector<int>& mate_ports_;
  const int max_rounds_;
  const AsyncOptions options_;
  const bool fault_;
  const std::uint64_t dseed_;  // delay-hash seed (derived from run seed)

  unsigned num_shards_ = 1;
  std::size_t n_ = 0;
  std::unique_ptr<support::Scheduler> dispatcher_;
  std::vector<AsyncShard> shards_;
  std::vector<std::vector<Event>> lanes_;  // (src shard, dst shard) boxes
  std::atomic<bool> failed_{false};

  fault_detail::CrashSchedule sched_;
  std::uint64_t fseed_ = 0;
  std::vector<std::uint64_t> slot_offset_;

  std::vector<NodeState> nodes_;
  std::int64_t data_in_flight_ = 0;
  AsyncStats stats_;

#ifndef DMATCH_OBS_DISABLED
  std::uint64_t clock_base_ = 0;
  std::vector<std::uint64_t> obs_round_bits_;  // parallels round_payloads
#endif
};

}  // namespace

AsyncStats run_synchronized(const Graph& g, const ProcessFactory& factory,
                            std::vector<int>& mate_ports, std::uint64_t seed,
                            int max_virtual_rounds, const AsyncOptions& options,
                            std::vector<char>* dead_out) {
  DMATCH_EXPECTS(options.min_delay > 0 &&
                 options.max_delay >= options.min_delay);
  AlphaSynchronizerRun run(g, factory, mate_ports, seed, max_virtual_rounds,
                           options);
  return run.run(dead_out);
}

AsyncStats run_synchronized(const Graph& g, const ProcessFactory& factory,
                            std::vector<int>& mate_ports, std::uint64_t seed,
                            int max_virtual_rounds, double min_delay,
                            double max_delay) {
  AsyncOptions options;
  options.min_delay = min_delay;
  options.max_delay = max_delay;
  return run_synchronized(g, factory, mate_ports, seed, max_virtual_rounds,
                          options, nullptr);
}

AsyncRunResult run_synchronized(const Graph& g, const ProcessFactory& factory,
                                std::uint64_t seed, int max_virtual_rounds,
                                const AsyncOptions& options) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<int> mate_ports(n, -1);
  AsyncRunResult res;
  res.stats = run_synchronized(g, factory, mate_ports, seed,
                               max_virtual_rounds, options, &res.dead_nodes);
  Matching m(g.node_count());
  if (!options.fault.any()) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const int port = mate_ports[static_cast<std::size_t>(v)];
      if (port < 0) continue;
      const EdgeId e = g.incident_edges(v)[static_cast<std::size_t>(port)];
      const NodeId u = g.other_endpoint(e, v);
      const int uport = mate_ports[static_cast<std::size_t>(u)];
      DMATCH_EXPECTS(uport >= 0 &&
                     g.incident_edges(u)[static_cast<std::size_t>(uport)] == e);
      if (v < u) m.add(g, e);
    }
    res.matching = std::move(m);
    return res;
  }

  // Same register healing as Network::heal_registers, against the
  // end-of-run dead mask: decide on a frozen snapshot, then clear.
  res.degradation.budget_exhausted = !res.stats.completed;
  std::vector<char> clear(n, 0);
  std::uint64_t dead_now = 0;
  for (std::size_t vi = 0; vi < n; ++vi) {
    if (res.dead_nodes[vi]) ++dead_now;
  }
  res.degradation.crashed_nodes =
      std::max(res.degradation.crashed_nodes, dead_now);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const int port = mate_ports[vi];
    if (port < 0) continue;
    if (res.dead_nodes[vi]) {
      clear[vi] = 1;
      ++res.degradation.dead_registers_healed;
      continue;
    }
    const EdgeId e = g.incident_edges(v)[static_cast<std::size_t>(port)];
    const NodeId u = g.other_endpoint(e, v);
    if (res.dead_nodes[static_cast<std::size_t>(u)]) {
      clear[vi] = 1;
      ++res.degradation.dead_registers_healed;
      continue;
    }
    const int uport = mate_ports[static_cast<std::size_t>(u)];
    const bool consistent =
        uport >= 0 &&
        g.incident_edges(u)[static_cast<std::size_t>(uport)] == e;
    if (!consistent) {
      clear[vi] = 1;
      ++res.degradation.torn_registers_healed;
    }
  }
  for (std::size_t vi = 0; vi < n; ++vi) {
    if (clear[vi]) mate_ports[vi] = -1;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const int port = mate_ports[static_cast<std::size_t>(v)];
    if (port < 0) continue;
    const EdgeId e = g.incident_edges(v)[static_cast<std::size_t>(port)];
    const NodeId u = g.other_endpoint(e, v);
    if (v < u) m.add(g, e);
  }
  DMATCH_ENSURES(m.is_valid(g));
  res.matching = std::move(m);
  return res;
}

}  // namespace dmatch::congest
