#include "congest/async.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "support/assert.hpp"

namespace dmatch::congest {

namespace {

enum class EventKind : std::uint8_t { kData, kAck, kSafe };

struct Event {
  double time = 0;
  std::uint64_t seq = 0;  // tie-break for determinism
  NodeId dst = kNoNode;
  int dst_port = -1;  // port at the destination the message arrives on
  EventKind kind = EventKind::kData;
  int round = 0;
  Message payload;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Context handed to the wrapped synchronous process; captures sends.
class AsyncContext final : public Context {
 public:
  AsyncContext(const Graph& g, NodeId id, int round, Rng& rng, int& mate_port,
               std::vector<std::pair<int, Message>>& outbox)
      : g_(g),
        id_(id),
        round_(round),
        rng_(rng),
        mate_port_(mate_port),
        outbox_(outbox) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] int degree() const override { return g_.degree(id_); }
  [[nodiscard]] NodeId neighbor_id(int port) const override {
    return g_.neighbor(id_, port);
  }
  [[nodiscard]] Weight edge_weight(int port) const override {
    return g_.weight(g_.incident_edges(id_)[static_cast<std::size_t>(port)]);
  }
  [[nodiscard]] NodeId n_bound() const override { return g_.node_count(); }
  [[nodiscard]] int round() const override { return round_; }
  Rng& rng() override { return rng_; }
  void send(int port, Message msg) override {
    DMATCH_EXPECTS(port >= 0 && port < degree());
    outbox_.emplace_back(port, std::move(msg));
  }
  [[nodiscard]] int mate_port() const override { return mate_port_; }
  void set_mate_port(int port) override {
    DMATCH_EXPECTS(port >= 0 && port < degree());
    mate_port_ = port;
  }
  void clear_mate() override { mate_port_ = -1; }

 private:
  const Graph& g_;
  NodeId id_;
  int round_;
  Rng& rng_;
  int& mate_port_;
  std::vector<std::pair<int, Message>>& outbox_;
};

/// Per-node synchronizer state.
struct NodeState {
  std::unique_ptr<Process> proc;
  Rng rng{0};
  int executed_round = -1;            // highest simulated round run so far
  std::map<int, std::vector<Envelope>> inbox;  // keyed by delivery round
  std::map<int, int> safe_count;      // SAFE(r) messages received
  int pending_acks = 0;               // for the DATA of executed_round
  bool announced_safe = false;        // SAFE(executed_round) already sent
};

class AlphaSynchronizerRun {
 public:
  AlphaSynchronizerRun(const Graph& g, const ProcessFactory& factory,
                       std::vector<int>& mate_ports, std::uint64_t seed,
                       int max_rounds, double min_delay, double max_delay)
      : g_(g),
        mate_ports_(mate_ports),
        max_rounds_(max_rounds),
        min_delay_(min_delay),
        max_delay_(max_delay),
        delay_rng_(seed ^ 0xd37a11ce5ULL) {
    DMATCH_EXPECTS(mate_ports_.size() ==
                   static_cast<std::size_t>(g.node_count()));
    Rng root(seed);
    nodes_.resize(static_cast<std::size_t>(g.node_count()));
    for (NodeId v = 0; v < g.node_count(); ++v) {
      auto& node = nodes_[static_cast<std::size_t>(v)];
      node.proc = factory(v, g);
      node.rng = root.fork(static_cast<std::uint64_t>(v));
    }
  }

  AsyncStats run() {
    for (NodeId v = 0; v < g_.node_count(); ++v) execute_round(v, 0);
    while (!queue_.empty()) {
      if (quiescent()) break;
      Event ev = queue_.top();
      queue_.pop();
      ++stats_.events;
      stats_.completion_time = ev.time;
      dispatch(std::move(ev));
    }
    // Completion means genuine protocol quiescence (all node programs
    // halted, nothing undelivered) -- a drained event queue alone can also
    // mean the round budget cut the synchronizer off mid-protocol.
    stats_.completed = quiescent();
    return stats_;
  }

 private:
  [[nodiscard]] bool quiescent() const {
    if (data_in_flight_ > 0) return false;
    for (const NodeState& node : nodes_) {
      if (!node.proc->halted()) return false;
      for (const auto& [round, box] : node.inbox) {
        if (!box.empty() && round > node.executed_round) return false;
      }
    }
    return true;
  }

  double delay() {
    return min_delay_ + (max_delay_ - min_delay_) * delay_rng_.uniform01();
  }

  void enqueue(double now, NodeId dst, int dst_port, EventKind kind, int round,
               Message payload = {}) {
    queue_.push(Event{now + delay(), ++seq_, dst, dst_port, kind, round,
                      std::move(payload)});
  }

  void dispatch(Event ev) {
    auto& node = nodes_[static_cast<std::size_t>(ev.dst)];
    switch (ev.kind) {
      case EventKind::kData: {
        --data_in_flight_;
        ++stats_.payload_messages;
        node.inbox[ev.round + 1].push_back({ev.dst_port, std::move(ev.payload)});
        // Acknowledge to the sender.
        const EdgeId e = g_.incident_edges(
            ev.dst)[static_cast<std::size_t>(ev.dst_port)];
        const NodeId sender = g_.other_endpoint(e, ev.dst);
        enqueue(ev.time, sender, g_.port_of_edge(sender, e), EventKind::kAck,
                ev.round);
        ++stats_.control_messages;
        break;
      }
      case EventKind::kAck: {
        if (ev.round == node.executed_round) {
          DMATCH_ASSERT(node.pending_acks > 0);
          if (--node.pending_acks == 0) announce_safe(ev.time, ev.dst);
        }
        try_advance(ev.time, ev.dst);
        break;
      }
      case EventKind::kSafe: {
        ++node.safe_count[ev.round];
        try_advance(ev.time, ev.dst);
        break;
      }
    }
    if (ev.kind == EventKind::kData) try_advance(ev.time, ev.dst);
  }

  void announce_safe(double now, NodeId v) {
    auto& node = nodes_[static_cast<std::size_t>(v)];
    if (node.announced_safe) return;
    node.announced_safe = true;
    for (int p = 0; p < g_.degree(v); ++p) {
      const NodeId u = g_.neighbor(v, p);
      const EdgeId e = g_.incident_edges(v)[static_cast<std::size_t>(p)];
      enqueue(now, u, g_.port_of_edge(u, e), EventKind::kSafe,
              node.executed_round);
      ++stats_.control_messages;
    }
  }

  void try_advance(double now, NodeId v) {
    auto& node = nodes_[static_cast<std::size_t>(v)];
    for (;;) {
      const int r = node.executed_round;
      if (r + 1 > max_rounds_) return;
      if (!node.announced_safe) return;  // own messages not yet delivered
      if (g_.degree(v) > 0 && node.safe_count[r] < g_.degree(v)) return;
      // An isolated halted node influences nobody: spinning it forward
      // only burns simulated rounds.
      if (g_.degree(v) == 0 && node.proc->halted()) return;
      execute_round(v, r + 1);
      (void)now;
    }
  }

  void execute_round(NodeId v, int round) {
    auto& node = nodes_[static_cast<std::size_t>(v)];
    DMATCH_ASSERT(round == node.executed_round + 1);
    node.executed_round = round;
    node.safe_count.erase(round - 2);  // stale bookkeeping
    stats_.virtual_rounds = std::max(
        stats_.virtual_rounds, static_cast<std::uint64_t>(round));

    std::vector<Envelope> inbox;
    if (const auto it = node.inbox.find(round); it != node.inbox.end()) {
      inbox = std::move(it->second);
      node.inbox.erase(it);
    }
    std::sort(inbox.begin(), inbox.end(),
              [](const Envelope& a, const Envelope& b) {
                return a.port < b.port;
              });

    std::vector<std::pair<int, Message>> outbox;
    // Mirror Network::run: halted nodes with an empty inbox are skipped
    // (they still synchronize, sending SAFE with no data).
    if (!node.proc->halted() || !inbox.empty()) {
      AsyncContext ctx(g_, v, round, node.rng,
                       mate_ports_[static_cast<std::size_t>(v)], outbox);
      node.proc->on_round(ctx, inbox);
    }

    node.pending_acks = static_cast<int>(outbox.size());
    node.announced_safe = false;
    const double now = stats_.completion_time;
    for (auto& [port, msg] : outbox) {
      const EdgeId e = g_.incident_edges(v)[static_cast<std::size_t>(port)];
      const NodeId u = g_.other_endpoint(e, v);
      enqueue(now, u, g_.port_of_edge(u, e), EventKind::kData, round,
              std::move(msg));
      ++data_in_flight_;
    }
    if (node.pending_acks == 0) announce_safe(now, v);
  }

  const Graph& g_;
  std::vector<int>& mate_ports_;
  const int max_rounds_;
  const double min_delay_;
  const double max_delay_;
  Rng delay_rng_;

  std::vector<NodeState> nodes_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t seq_ = 0;
  std::uint64_t data_in_flight_ = 0;
  AsyncStats stats_;
};

}  // namespace

AsyncStats run_synchronized(const Graph& g, const ProcessFactory& factory,
                            std::vector<int>& mate_ports, std::uint64_t seed,
                            int max_virtual_rounds, double min_delay,
                            double max_delay) {
  DMATCH_EXPECTS(min_delay > 0 && max_delay >= min_delay);
  AlphaSynchronizerRun run(g, factory, mate_ports, seed, max_virtual_rounds,
                           min_delay, max_delay);
  return run.run();
}

AsyncRunResult run_synchronized(const Graph& g, const ProcessFactory& factory,
                                std::uint64_t seed, int max_virtual_rounds) {
  std::vector<int> mate_ports(static_cast<std::size_t>(g.node_count()), -1);
  AsyncStats stats =
      run_synchronized(g, factory, mate_ports, seed, max_virtual_rounds);
  Matching m(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const int port = mate_ports[static_cast<std::size_t>(v)];
    if (port < 0) continue;
    const EdgeId e = g.incident_edges(v)[static_cast<std::size_t>(port)];
    const NodeId u = g.other_endpoint(e, v);
    const int uport = mate_ports[static_cast<std::size_t>(u)];
    DMATCH_EXPECTS(uport >= 0 &&
                   g.incident_edges(u)[static_cast<std::size_t>(uport)] == e);
    if (v < u) m.add(g, e);
  }
  return {std::move(m), stats};
}

}  // namespace dmatch::congest
