// Synchronous network simulator for the CONGEST / LOCAL models.
//
// The Network owns the topology, the per-node random streams, the per-node
// matching output registers (which persist across protocol runs, so a
// driver can compose multi-stage algorithms), and the cost accounting
// (rounds, messages, bits, max message size). In Model::kCongest it
// enforces a hard per-message bit cap of congest_factor * ceil(log2 n);
// Model::kLocal only records sizes.
//
// Rounds execute on a sharded engine (see docs/PROTOCOLS.md, "Round
// engine"): nodes are partitioned into contiguous shards, one per worker
// of a persistent thread pool, and each round runs as step phase ->
// barrier -> route phase. Messages travel through port-indexed mailbox
// slots (one slot per directed edge endpoint), so delivery is always in
// ascending port order and no mutex sits on the hot path. Results —
// matchings, RunStats, every per-node RNG draw — are bit-identical for
// any Options::num_threads.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "congest/message.hpp"
#include "congest/process.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace dmatch::congest {

enum class Model { kCongest, kLocal };

/// Thrown when a protocol sends a message exceeding the CONGEST cap.
class MessageTooLarge : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct RunStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint32_t max_message_bits = 0;
  bool completed = true;  // all nodes halted before the round budget ran out
  /// Messages sent in each executed round (size == rounds); the per-round
  /// histogram behind `messages`, so sum(round_messages) == messages.
  std::vector<std::uint64_t> round_messages;

  void merge(const RunStats& other) {
    rounds += other.rounds;
    messages += other.messages;
    total_bits += other.total_bits;
    max_message_bits = std::max(max_message_bits, other.max_message_bits);
    completed = completed && other.completed;
    round_messages.insert(round_messages.end(), other.round_messages.begin(),
                          other.round_messages.end());
  }

  /// Rounds after charging over-cap messages as pipelined chunks: a
  /// round whose largest message used b bits counts as ceil(b / cap)
  /// rounds. This is how DESIGN.md normalizes the token messages.
  [[nodiscard]] std::uint64_t normalized_rounds(
      std::uint32_t cap_bits) const noexcept {
    if (cap_bits == 0 || max_message_bits <= cap_bits) return rounds;
    const std::uint64_t factor =
        (max_message_bits + cap_bits - 1) / cap_bits;
    return rounds * factor;
  }
};

using ProcessFactory =
    std::function<std::unique_ptr<Process>(NodeId, const Graph&)>;

class Network {
 public:
  struct Options {
    /// Worker count of the round engine. 0 = hardware concurrency;
    /// 1 = fully sequential (no OS threads are created). Any value
    /// produces bit-identical runs.
    unsigned num_threads = 0;
  };

  /// `congest_factor`: per-message cap in units of ceil(log2 n) bits
  /// (ceil(log2 n) is floored at 4 so toy graphs can still run protocols
  /// whose constants assume a few machine words).
  Network(const Graph& g, Model model, std::uint64_t seed,
          std::uint32_t congest_factor = 48);
  Network(const Graph& g, Model model, std::uint64_t seed,
          std::uint32_t congest_factor, Options options);

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] Model model() const noexcept { return model_; }
  [[nodiscard]] std::uint32_t message_cap_bits() const noexcept {
    return cap_bits_;
  }
  [[nodiscard]] unsigned num_threads() const noexcept { return num_threads_; }

  /// Run one protocol until every node halts with no message in flight, or
  /// until `max_rounds` rounds have executed. Returns the stats of this run
  /// and also accumulates them into total_stats().
  RunStats run(const ProcessFactory& factory, int max_rounds);

  /// Matching described by the nodes' output registers. Throws if the
  /// registers are inconsistent (one-sided pointers).
  [[nodiscard]] Matching extract_matching() const;

  /// Overwrite the output registers from an explicit matching.
  void set_matching(const Matching& m);

  [[nodiscard]] const RunStats& total_stats() const noexcept {
    return total_;
  }

 private:
  friend class NodeContext;

  const Graph* g_;
  Model model_;
  std::uint32_t cap_bits_;
  unsigned num_threads_;
  std::vector<Rng> node_rng_;
  std::vector<int> mate_port_;  // output registers; -1 = unmatched
  RunStats total_;

  // Routing tables, built once: slot i = slot_offset_[v] + p addresses
  // node v's port p. peer_slot_[i] is the slot of the same edge at the
  // other endpoint; peer_node_[i] is that endpoint.
  std::vector<std::size_t> slot_offset_;  // size n+1 (CSR offsets)
  std::vector<std::uint32_t> peer_slot_;  // size 2m
  std::vector<NodeId> peer_node_;         // size 2m

  // Double-buffered port-indexed mailboxes. A slot holds a live message
  // for the current round iff its stamp equals epoch_; epoch_ advances
  // every round (and past both buffers at the end of every run), so the
  // buffers never need clearing.
  std::vector<Message> cur_msg_, nxt_msg_;            // size 2m each
  std::vector<std::uint64_t> cur_stamp_, nxt_stamp_;  // size 2m each
  std::uint64_t epoch_ = 1;

  // Per-node engine bookkeeping, single-writer (the owning shard's
  // worker): pending_mark_[v] == e means v is already scheduled for the
  // round with epoch e; rcv_count_[v] counts messages awaiting v, which
  // lets the inbox builder stop scanning ports early.
  std::vector<std::uint64_t> pending_mark_;
  std::vector<std::uint32_t> rcv_count_;

  std::unique_ptr<support::ThreadPool> pool_;  // created on first use
};

}  // namespace dmatch::congest
