// Synchronous network simulator for the CONGEST / LOCAL models.
//
// The Network owns the topology, the per-node random streams, the per-node
// matching output registers (which persist across protocol runs, so a
// driver can compose multi-stage algorithms), and the cost accounting
// (rounds, messages, bits, max message size). In Model::kCongest it
// enforces a hard per-message bit cap of congest_factor * ceil(log2 n);
// Model::kLocal only records sizes.
//
// Rounds execute on a sharded engine (see docs/PROTOCOLS.md, "Round
// engine"): nodes are partitioned into contiguous balanced shards whose
// count is fixed at construction by the scheduler (one task per worker
// under static and rapid-start dispatch, several blocks per worker under
// work-stealing), and each round runs as step phase -> barrier -> route
// phase. Messages travel through port-indexed mailbox slots (one slot per
// directed edge endpoint), so delivery is always in ascending port order
// and no mutex sits on the hot path. Per-node hot state (registers, RNGs,
// receive gates) lives in 64-byte-aligned per-shard SoA slabs, so shards
// never share a cache line. Results — matchings, RunStats, every per-node
// RNG draw — are bit-identical for any Options::num_threads and any
// Options::sched mode.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "congest/fault.hpp"
#include "congest/message.hpp"
#include "congest/process.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"
#include "obs/obs.hpp"
#include "support/rng.hpp"
#include "support/sched.hpp"
#include "support/slab.hpp"

namespace dmatch::congest {

enum class Model { kCongest, kLocal };

/// Thrown when a protocol sends a message exceeding the CONGEST cap.
class MessageTooLarge : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct RunStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint32_t max_message_bits = 0;
  bool completed = true;  // all nodes halted before the round budget ran out
  /// Messages sent in each executed round (size == rounds); the per-round
  /// histogram behind `messages`, so sum(round_messages) == messages.
  std::vector<std::uint64_t> round_messages;

  // Fault-injection counters (all zero unless the Network carries an
  // active FaultPlan). Drops count messages lost in transit plus
  // deliveries discarded because the receiver was dead.
  std::uint64_t dropped_messages = 0;
  std::uint64_t duplicated_messages = 0;
  std::uint64_t delayed_messages = 0;
  std::uint64_t reordered_inboxes = 0;
  std::uint64_t crashed_nodes = 0;    // crash rounds inside this run
  std::uint64_t restarted_nodes = 0;  // restart rounds inside this run

  void merge(const RunStats& other) {
    rounds += other.rounds;
    messages += other.messages;
    total_bits += other.total_bits;
    max_message_bits = std::max(max_message_bits, other.max_message_bits);
    completed = completed && other.completed;
    round_messages.insert(round_messages.end(), other.round_messages.begin(),
                          other.round_messages.end());
    dropped_messages += other.dropped_messages;
    duplicated_messages += other.duplicated_messages;
    delayed_messages += other.delayed_messages;
    reordered_inboxes += other.reordered_inboxes;
    crashed_nodes += other.crashed_nodes;
    restarted_nodes += other.restarted_nodes;
  }

  /// Rounds after charging over-cap messages as pipelined chunks: a
  /// round whose largest message used b bits counts as ceil(b / cap)
  /// rounds. This is how DESIGN.md normalizes the token messages.
  [[nodiscard]] std::uint64_t normalized_rounds(
      std::uint32_t cap_bits) const noexcept {
    if (cap_bits == 0 || max_message_bits <= cap_bits) return rounds;
    const std::uint64_t factor =
        (max_message_bits + cap_bits - 1) / cap_bits;
    return rounds * factor;
  }
};

using ProcessFactory =
    std::function<std::unique_ptr<Process>(NodeId, const Graph&)>;

class Network {
 public:
  struct Options {
    /// Worker count of the round engine. 0 = hardware concurrency;
    /// 1 = fully sequential (no OS threads are created). Any value
    /// produces bit-identical runs.
    unsigned num_threads = 0;
    /// Scheduling mode, pinning and profiling knobs for the round
    /// engine's dispatcher (see support/sched.hpp). Every mode produces
    /// bit-identical runs; `sched.profile` additionally records
    /// wall-clock shard service times and, with an observer attached,
    /// emits them as (non-deterministic) kSchedShard trace events and a
    /// sched.shard_service_ns histogram.
    support::SchedOptions sched;
    /// Fault-injection plan. The default (inactive) plan leaves the
    /// engine byte-for-byte identical to the fault-free build; an active
    /// plan injects faults deterministically (see congest/fault.hpp) and
    /// is still bit-identical across num_threads values.
    FaultPlan fault;
    /// Observability sink (not owned; must outlive the Network). nullptr
    /// keeps every hook to a single predictable branch on the round loop
    /// and nothing on the per-message path; -DDMATCH_OBS_DISABLED
    /// compiles the hooks out entirely. Attaching an Observer never
    /// changes results: traces and metrics are derived from the same
    /// deterministic run.
    obs::Observer* observer = nullptr;
  };

  /// `congest_factor`: per-message cap in units of ceil(log2 n) bits
  /// (ceil(log2 n) is floored at 4 so toy graphs can still run protocols
  /// whose constants assume a few machine words).
  Network(const Graph& g, Model model, std::uint64_t seed,
          std::uint32_t congest_factor = 48);
  Network(const Graph& g, Model model, std::uint64_t seed,
          std::uint32_t congest_factor, Options options);

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] Model model() const noexcept { return model_; }
  [[nodiscard]] std::uint32_t message_cap_bits() const noexcept {
    return cap_bits_;
  }
  [[nodiscard]] unsigned num_threads() const noexcept { return num_threads_; }

  /// Shards the node set is partitioned into (fixed at construction;
  /// >= 1). Equals the scheduler's task plan for node_count() items.
  [[nodiscard]] unsigned num_shards() const noexcept { return num_shards_; }

  /// The engine's dispatcher. Exposes the scheduling options and, when
  /// Options::sched.profile is set, per-shard service-time counters.
  [[nodiscard]] const support::Scheduler& scheduler() const noexcept {
    return *sched_;
  }

  /// Run one protocol until every node halts with no message in flight, or
  /// until `max_rounds` rounds have executed. Returns the stats of this run
  /// and also accumulates them into total_stats().
  RunStats run(const ProcessFactory& factory, int max_rounds);

  /// Matching described by the nodes' output registers. Throws if the
  /// registers are inconsistent (one-sided pointers).
  [[nodiscard]] Matching extract_matching() const;

  /// Fault-tolerant extraction: never throws. Registers on dead nodes,
  /// registers pointing at dead nodes, and one-sided (torn) pointers are
  /// skipped — the result is always a valid matching over the surviving
  /// nodes. Repairs are tallied into `report` when provided.
  [[nodiscard]] Matching extract_matching_resilient(
      DegradationReport* report = nullptr) const;

  /// In-place self-healing of the output registers: clears exactly the
  /// registers extract_matching_resilient would skip, so that a strict
  /// extract_matching (and the next protocol run) sees a consistent
  /// matching. Tallies repairs into `report` when provided.
  void heal_registers(DegradationReport* report = nullptr);

  /// Overwrite the output registers from an explicit matching.
  void set_matching(const Matching& m);

  /// Attached Observer, or nullptr (always nullptr when observability
  /// is compiled out). Drivers use this to emit phase/checkpoint events.
  [[nodiscard]] obs::Observer* observer() const noexcept {
    DMATCH_OBS(return options_.observer;)
    return nullptr;
  }

  [[nodiscard]] const FaultPlan& fault_plan() const noexcept {
    return options_.fault;
  }
  [[nodiscard]] bool fault_active() const noexcept { return fault_active_; }

  /// True if v is dead (crashed, not yet restarted) at the current
  /// lifetime round.
  [[nodiscard]] bool node_dead(NodeId v) const noexcept {
    return fault_active_ && dead_at(v, lifetime_rounds_);
  }

  /// Rounds executed over this Network's whole lifetime (all runs).
  /// Crash schedules are expressed on this clock.
  [[nodiscard]] std::uint64_t lifetime_rounds() const noexcept {
    return lifetime_rounds_;
  }

  [[nodiscard]] const RunStats& total_stats() const noexcept {
    return total_;
  }

 private:
  friend class NodeContext;

  [[nodiscard]] bool dead_at(NodeId v, std::uint64_t round) const noexcept {
    const auto vi = static_cast<std::size_t>(v);
    return crash_at_[vi] <= round && round < restart_at_[vi];
  }

  const Graph* g_;
  Model model_;
  std::uint32_t cap_bits_;
  unsigned num_threads_;
  unsigned num_shards_ = 1;
  Options options_;
  // Per-node hot state as shard-indexed SoA slabs (support/slab.hpp):
  // each shard's values sit in their own 64-byte-aligned segment, so the
  // single-writer-per-shard discipline produces no false sharing.
  support::ShardSlab<Rng> node_rng_;
  support::ShardSlab<int> mate_port_;  // output registers; -1 = unmatched
  RunStats total_;

  // Routing tables, built once: slot i = slot_offset_[v] + p addresses
  // node v's port p. peer_slot_[i] is the slot of the same edge at the
  // other endpoint; peer_node_[i] is that endpoint.
  std::vector<std::size_t> slot_offset_;  // size n+1 (CSR offsets)
  std::vector<std::uint32_t> peer_slot_;  // size 2m
  std::vector<NodeId> peer_node_;         // size 2m

  // Double-buffered port-indexed mailboxes. A slot holds a live message
  // for the current round iff its stamp equals epoch_; epoch_ advances
  // every round (and past both buffers at the end of every run), so the
  // buffers never need clearing. Stamps are packed to 32 bits so the
  // step phase's port scan walks half the memory of the old u64 stamps;
  // epochs are renormalized long before wrap (see renormalize_epochs in
  // network.cpp), so 32 bits never alias.
  std::vector<Message> cur_msg_, nxt_msg_;  // size 2m each
  std::vector<std::uint32_t, support::AlignedAlloc<std::uint32_t>> cur_stamp_,
      nxt_stamp_;  // size 2m each
  std::uint32_t epoch_ = 1;

  // Per-node engine bookkeeping, single-writer (the owning shard's
  // worker), packed so the route phase touches one 8-byte record per
  // delivered node: mark == e means the node is already scheduled for
  // the round with epoch e; rcv counts messages awaiting the node, which
  // lets the inbox builder stop scanning ports early.
  struct NodeGate {
    std::uint32_t mark = 0;
    std::uint32_t rcv = 0;
  };
  support::ShardSlab<NodeGate> gates_;

  // Fault-injection state (all empty / inert without an active plan).
  // Crash schedules are per-node lifetime-round intervals, precomputed
  // at construction so every thread count sees the same failure history;
  // restart_events_ is the same schedule sorted by restart round so the
  // route phase can wake restarting nodes without scanning all n.
  bool fault_active_ = false;
  std::vector<std::uint64_t> crash_at_;    // kRoundNever = never crashes
  std::vector<std::uint64_t> restart_at_;  // kRoundNever = stays dead
  std::vector<std::pair<std::uint64_t, NodeId>> restart_events_;
  std::vector<char> respawn_pending_;  // restart observed; recreate process
  std::vector<char> restart_cleared_;  // register already reset for restart
  std::uint64_t lifetime_rounds_ = 0;
  std::uint64_t fault_nonce_ = 0;  // decorrelates fault draws across runs

  // Always present (a 1-worker scheduler spawns no OS threads); shared
  // by the round loop, the parallel table build, and the extraction
  // scans. num_shards_ is frozen from sched_->plan_tasks(n) at
  // construction so shard layout never depends on per-round scheduling.
  std::unique_ptr<support::Scheduler> sched_;

  void renormalize_epochs();
};

}  // namespace dmatch::congest
