// Synchronous network simulator for the CONGEST / LOCAL models.
//
// The Network owns the topology, the per-node random streams, the per-node
// matching output registers (which persist across protocol runs, so a
// driver can compose multi-stage algorithms), and the cost accounting
// (rounds, messages, bits, max message size). In Model::kCongest it
// enforces a hard per-message bit cap of congest_factor * ceil(log2 n);
// Model::kLocal only records sizes.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "congest/process.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"
#include "support/rng.hpp"

namespace dmatch::congest {

enum class Model { kCongest, kLocal };

/// Thrown when a protocol sends a message exceeding the CONGEST cap.
class MessageTooLarge : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct RunStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint32_t max_message_bits = 0;
  bool completed = true;  // all nodes halted before the round budget ran out

  void merge(const RunStats& other) noexcept {
    rounds += other.rounds;
    messages += other.messages;
    total_bits += other.total_bits;
    max_message_bits = std::max(max_message_bits, other.max_message_bits);
    completed = completed && other.completed;
  }

  /// Rounds after charging over-cap messages as pipelined chunks: a
  /// round whose largest message used b bits counts as ceil(b / cap)
  /// rounds. This is how DESIGN.md normalizes the token messages.
  [[nodiscard]] std::uint64_t normalized_rounds(
      std::uint32_t cap_bits) const noexcept {
    if (cap_bits == 0 || max_message_bits <= cap_bits) return rounds;
    const std::uint64_t factor =
        (max_message_bits + cap_bits - 1) / cap_bits;
    return rounds * factor;
  }
};

using ProcessFactory =
    std::function<std::unique_ptr<Process>(NodeId, const Graph&)>;

class Network {
 public:
  /// `congest_factor`: per-message cap in units of ceil(log2 n) bits
  /// (ceil(log2 n) is floored at 4 so toy graphs can still run protocols
  /// whose constants assume a few machine words).
  Network(const Graph& g, Model model, std::uint64_t seed,
          std::uint32_t congest_factor = 48);

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] Model model() const noexcept { return model_; }
  [[nodiscard]] std::uint32_t message_cap_bits() const noexcept {
    return cap_bits_;
  }

  /// Run one protocol until every node halts with no message in flight, or
  /// until `max_rounds` rounds have executed. Returns the stats of this run
  /// and also accumulates them into total_stats().
  RunStats run(const ProcessFactory& factory, int max_rounds);

  /// Matching described by the nodes' output registers. Throws if the
  /// registers are inconsistent (one-sided pointers).
  [[nodiscard]] Matching extract_matching() const;

  /// Overwrite the output registers from an explicit matching.
  void set_matching(const Matching& m);

  [[nodiscard]] const RunStats& total_stats() const noexcept {
    return total_;
  }

 private:
  friend class NodeContext;

  const Graph* g_;
  Model model_;
  std::uint32_t cap_bits_;
  std::vector<Rng> node_rng_;
  std::vector<int> mate_port_;  // output registers; -1 = unmatched
  RunStats total_;
};

}  // namespace dmatch::congest
