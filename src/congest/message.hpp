// Messages exchanged by simulated CONGEST processes.
//
// A Message is an opaque bit string with an exact bit count; the Network
// charges protocols for precisely the bits they write (support/wire.hpp),
// which is what CONGEST complexity statements are about.
#pragma once

#include <cstdint>
#include <vector>

#include "support/wire.hpp"

namespace dmatch::congest {

struct Message {
  std::vector<std::uint64_t> words;
  std::uint32_t bits = 0;

  Message() = default;

  /// Seal a writer into a message.
  static Message from_writer(BitWriter&& w) {
    Message m;
    m.bits = w.bit_count();
    m.words = std::move(w).take_words();
    return m;
  }

  [[nodiscard]] BitReader reader() const { return BitReader(words, bits); }
};

/// A delivered message: `port` is the *receiver's* port the message arrived
/// on (i.e. identifies the sending neighbor from the receiver's viewpoint).
struct Envelope {
  int port = -1;
  Message msg;
};

}  // namespace dmatch::congest
