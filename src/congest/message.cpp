// Intentionally empty: Message is header-only, but the translation unit
// keeps the library non-empty and gives the header a compile check.
#include "congest/message.hpp"
