#include "congest/fault.hpp"

namespace dmatch::congest::fault_detail {

namespace {

constexpr std::uint64_t finalize(std::uint64_t z) noexcept {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

}  // namespace

std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                  std::uint64_t d) noexcept {
  std::uint64_t h = finalize(a + 0x9e3779b97f4a7c15ULL);
  h = finalize(h ^ (b + 0x9e3779b97f4a7c15ULL));
  h = finalize(h ^ (c + 0x9e3779b97f4a7c15ULL));
  h = finalize(h ^ (d + 0x9e3779b97f4a7c15ULL));
  return h;
}

}  // namespace dmatch::congest::fault_detail
