#include "congest/fault.hpp"

#include "support/assert.hpp"

namespace dmatch::congest::fault_detail {

namespace {

constexpr std::uint64_t finalize(std::uint64_t z) noexcept {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

}  // namespace

std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                  std::uint64_t d) noexcept {
  std::uint64_t h = finalize(a + 0x9e3779b97f4a7c15ULL);
  h = finalize(h ^ (b + 0x9e3779b97f4a7c15ULL));
  h = finalize(h ^ (c + 0x9e3779b97f4a7c15ULL));
  h = finalize(h ^ (d + 0x9e3779b97f4a7c15ULL));
  return h;
}

CrashSchedule compute_crash_schedule(const FaultPlan& plan, NodeId n) {
  CrashSchedule sched;
  const auto nn = static_cast<std::size_t>(n);
  sched.crash_at.assign(nn, kRoundNever);
  sched.restart_at.assign(nn, kRoundNever);
  if (plan.crash_prob > 0) {
    const std::uint64_t bound =
        std::max<std::uint64_t>(1, plan.crash_round_bound);
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (to_unit(mix(plan.seed, kSaltCrash, v, 0)) >= plan.crash_prob) {
        continue;
      }
      sched.crash_at[vi] = mix(plan.seed, kSaltCrashRound, v, 0) % bound;
      if (plan.restart_prob > 0 &&
          to_unit(mix(plan.seed, kSaltRestart, v, 0)) < plan.restart_prob) {
        sched.restart_at[vi] =
            sched.crash_at[vi] + std::max<std::uint64_t>(1, plan.restart_delay);
      }
    }
  }
  for (const CrashEvent& ev : plan.crashes) {
    DMATCH_EXPECTS(ev.node < n);
    DMATCH_EXPECTS(ev.restart_round == kRoundNever ||
                   ev.restart_round > ev.round);
    const auto vi = static_cast<std::size_t>(ev.node);
    sched.crash_at[vi] = ev.round;
    sched.restart_at[vi] = ev.restart_round;
  }
  return sched;
}

}  // namespace dmatch::congest::fault_detail
