#include "graph/matching.hpp"

#include <algorithm>
#include <unordered_set>

namespace dmatch {

Matching Matching::from_edge_ids(const Graph& g,
                                 std::span<const EdgeId> edges) {
  Matching m(g.node_count());
  for (EdgeId e : edges) m.add(g, e);
  return m;
}

void Matching::add(const Graph& g, EdgeId e) {
  const Edge& ed = g.edge(e);
  DMATCH_EXPECTS(is_free(ed.u) && is_free(ed.v));
  mate_[static_cast<std::size_t>(ed.u)] = ed.v;
  mate_[static_cast<std::size_t>(ed.v)] = ed.u;
  matched_edge_[static_cast<std::size_t>(ed.u)] = e;
  matched_edge_[static_cast<std::size_t>(ed.v)] = e;
}

void Matching::remove(const Graph& g, EdgeId e) {
  const Edge& ed = g.edge(e);
  DMATCH_EXPECTS(contains(g, e));
  mate_[static_cast<std::size_t>(ed.u)] = kNoNode;
  mate_[static_cast<std::size_t>(ed.v)] = kNoNode;
  matched_edge_[static_cast<std::size_t>(ed.u)] = kNoEdge;
  matched_edge_[static_cast<std::size_t>(ed.v)] = kNoEdge;
}

std::size_t Matching::size() const noexcept {
  std::size_t matched_nodes = 0;
  for (NodeId m : mate_) matched_nodes += (m != kNoNode) ? 1 : 0;
  return matched_nodes / 2;
}

Weight Matching::weight(const Graph& g) const {
  Weight sum = 0;
  for (EdgeId e : edges(g)) sum += g.weight(e);
  return sum;
}

std::vector<EdgeId> Matching::edges(const Graph& g) const {
  std::vector<EdgeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    const EdgeId e = matched_edge_[static_cast<std::size_t>(v)];
    if (e != kNoEdge && g.edge(e).u == v) out.push_back(e);
  }
  return out;
}

std::vector<NodeId> Matching::free_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (is_free(v)) out.push_back(v);
  }
  return out;
}

void Matching::augment(const Graph& g, std::span<const EdgeId> path) {
  symmetric_difference(g, path);
}

void Matching::symmetric_difference(const Graph& g,
                                    std::span<const EdgeId> set) {
  // Two passes keep the intermediate state consistent: first drop the
  // matched edges of the set, then add the rest.
  std::vector<EdgeId> to_add;
  for (EdgeId e : set) {
    if (contains(g, e)) {
      remove(g, e);
    } else {
      to_add.push_back(e);
    }
  }
  for (EdgeId e : to_add) add(g, e);
}

bool Matching::is_valid(const Graph& g) const {
  if (node_count() != g.node_count()) return false;
  for (NodeId v = 0; v < node_count(); ++v) {
    const NodeId m = mate_[static_cast<std::size_t>(v)];
    const EdgeId e = matched_edge_[static_cast<std::size_t>(v)];
    if (m == kNoNode) {
      if (e != kNoEdge) return false;
      continue;
    }
    if (m < 0 || m >= node_count()) return false;
    if (mate_[static_cast<std::size_t>(m)] != v) return false;
    if (e == kNoEdge || e >= g.edge_count()) return false;
    const Edge& ed = g.edge(e);
    if (!((ed.u == v && ed.v == m) || (ed.v == v && ed.u == m))) return false;
  }
  return true;
}

bool Matching::is_maximal(const Graph& g) const {
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    if (is_free(ed.u) && is_free(ed.v)) return false;
  }
  return true;
}

}  // namespace dmatch
