// Centralized augmenting-path oracles.
//
// These are *verification* tools: the tests use them to check the phase
// invariant of Lemma 3.2 ("after phase ell no augmenting path of length
// <= ell remains"), and the LOCAL generic algorithm uses the enumerator on
// each leader's local view (where it is a legitimate local computation).
// General-graph enumeration is exponential in the path length, which is
// fine: the paper only ever looks at lengths up to 2*ceil(1/eps) - 1.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

/// All simple augmenting paths w.r.t. m of length <= max_len (edges),
/// each as a sequence of edge ids from one free endpoint to the other.
/// Each path is reported once (from its smaller-id endpoint). Enumeration
/// stops after max_count paths (0 = unlimited).
std::vector<std::vector<EdgeId>> enumerate_augmenting_paths(
    const Graph& g, const Matching& m, int max_len,
    std::size_t max_count = 0);

/// Length (edge count) of the shortest augmenting path w.r.t. m, searching
/// lengths 1, 3, ..., cap. nullopt if none of length <= cap exists.
std::optional<int> shortest_augmenting_path_length(const Graph& g,
                                                   const Matching& m,
                                                   int cap);

/// Exact shortest augmenting path length in a bipartite graph (layered BFS,
/// works at any scale). `side[v]` in {0,1}. nullopt if no augmenting path.
std::optional<int> bipartite_shortest_augmenting_path_length(
    const Graph& g, const std::vector<std::uint8_t>& side, const Matching& m);

/// Greedily select a maximal set of pairwise node-disjoint paths from
/// `paths` (used as a sequential reference for "maximal set of augmenting
/// paths" in tests).
std::vector<std::vector<EdgeId>> greedy_disjoint_paths(
    const Graph& g, const std::vector<std::vector<EdgeId>>& paths);

/// A weighted *augmentation* in the Hougardy-Vinkemeier sense (the paper's
/// Section 4 remark): an alternating path or cycle A such that M (+) A is
/// again a matching. Path ends are either free nodes (entered by a
/// non-matching edge) or get unmatched (path ends with their matched edge).
struct Augmentation {
  std::vector<EdgeId> edges;   // in path/cycle order
  std::vector<NodeId> nodes;   // canonical node sequence (cycles repeat the
                               // first node at the end)
  bool is_cycle = false;
};

/// Enumerate all alternating augmentations with at most max_len edges,
/// each reported once in canonical orientation. Requires max_len >= 1.
/// Enumeration stops after max_count augmentations (0 = unlimited).
std::vector<Augmentation> enumerate_alternating_augmentations(
    const Graph& g, const Matching& m, int max_len, std::size_t max_count = 0);

}  // namespace dmatch
