// Graph (de)serialization: a DIMACS-flavoured edge-list format and a
// Graphviz export, so downstream users can run the library on their own
// instances (see tools/dmatch_cli).
//
// Format:
//   c free-text comment
//   p edge <n> <m>
//   e <u> <v> [w]          (0-based endpoints; weight defaults to 1)
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

/// Parse the edge-list format above. Throws ContractViolation on malformed
/// input (unknown directive, endpoint out of range, wrong edge count).
Graph read_edge_list(std::istream& in);

/// Serialize g in the same format (weights always written).
void write_edge_list(std::ostream& out, const Graph& g);

/// Graphviz DOT export; matched edges (if a matching is given) are drawn
/// bold red.
std::string to_dot(const Graph& g, const Matching* matching = nullptr);

}  // namespace dmatch
