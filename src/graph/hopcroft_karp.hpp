// Hopcroft-Karp maximum cardinality matching for bipartite graphs.
//
// O(E * sqrt(V)). Reference optimum for the bipartite experiments (E1, E2)
// and the switch example.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

/// Maximum cardinality matching of a bipartite graph. `side[v]` in {0,1}
/// must be a proper 2-coloring (e.g. from Graph::bipartition()).
Matching hopcroft_karp(const Graph& g, const std::vector<std::uint8_t>& side);

/// Convenience overload: computes the bipartition itself; requires the
/// graph to be bipartite.
Matching hopcroft_karp(const Graph& g);

}  // namespace dmatch
