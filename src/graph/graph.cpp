#include "graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace dmatch {

Graph Graph::from_edges(NodeId n, std::vector<Edge> edges) {
  DMATCH_EXPECTS(n >= 0);
  Graph g;
  g.n_ = n;
  for (Edge& e : edges) {
    DMATCH_EXPECTS(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n);
    DMATCH_EXPECTS(e.u != e.v);
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  // Reject duplicates: sort a copy of (u,v) pairs and scan.
  {
    std::vector<std::pair<NodeId, NodeId>> keys;
    keys.reserve(edges.size());
    for (const Edge& e : edges) keys.emplace_back(e.u, e.v);
    std::sort(keys.begin(), keys.end());
    DMATCH_EXPECTS(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
  }
  g.edges_ = std::move(edges);

  std::vector<std::size_t> deg(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : g.edges_) {
    ++deg[static_cast<std::size_t>(e.u) + 1];
    ++deg[static_cast<std::size_t>(e.v) + 1];
  }
  g.adj_offset_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    g.adj_offset_[static_cast<std::size_t>(v) + 1] =
        g.adj_offset_[static_cast<std::size_t>(v)] +
        deg[static_cast<std::size_t>(v) + 1];
  }
  g.adj_edges_.assign(g.adj_offset_.back(), kNoEdge);
  g.port_in_u_.assign(g.edges_.size(), -1);
  g.port_in_v_.assign(g.edges_.size(), -1);

  std::vector<std::size_t> cursor(g.adj_offset_.begin(),
                                  g.adj_offset_.end() - 1);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edges_[static_cast<std::size_t>(e)];
    const std::size_t pu = cursor[static_cast<std::size_t>(ed.u)]++;
    const std::size_t pv = cursor[static_cast<std::size_t>(ed.v)]++;
    g.adj_edges_[pu] = e;
    g.adj_edges_[pv] = e;
    g.port_in_u_[static_cast<std::size_t>(e)] = static_cast<int>(
        pu - g.adj_offset_[static_cast<std::size_t>(ed.u)]);
    g.port_in_v_[static_cast<std::size_t>(e)] = static_cast<int>(
        pv - g.adj_offset_[static_cast<std::size_t>(ed.v)]);
  }
  for (NodeId v = 0; v < n; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  DMATCH_EXPECTS(u >= 0 && u < n_ && v >= 0 && v < n_);
  const NodeId probe = degree(u) <= degree(v) ? u : v;
  const NodeId target = probe == u ? v : u;
  for (EdgeId e : incident_edges(probe)) {
    if (other_endpoint(e, probe) == target) return e;
  }
  return kNoEdge;
}

Weight Graph::total_weight() const noexcept {
  Weight sum = 0;
  for (const Edge& e : edges_) sum += e.w;
  return sum;
}

Weight Graph::max_weight() const noexcept {
  Weight best = 0;
  for (const Edge& e : edges_) best = std::max(best, e.w);
  return best;
}

std::optional<std::vector<std::uint8_t>> Graph::bipartition() const {
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n_), 2);
  std::queue<NodeId> queue;
  for (NodeId root = 0; root < n_; ++root) {
    if (side[static_cast<std::size_t>(root)] != 2) continue;
    side[static_cast<std::size_t>(root)] = 0;
    queue.push(root);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      for (EdgeId e : incident_edges(v)) {
        const NodeId u = other_endpoint(e, v);
        auto& su = side[static_cast<std::size_t>(u)];
        if (su == 2) {
          su = static_cast<std::uint8_t>(
              1 - side[static_cast<std::size_t>(v)]);
          queue.push(u);
        } else if (su == side[static_cast<std::size_t>(v)]) {
          return std::nullopt;
        }
      }
    }
  }
  return side;
}

Graph::Subgraph Graph::edge_subgraph(const std::vector<char>& keep) const {
  DMATCH_EXPECTS(keep.size() == edges_.size());
  Subgraph out;
  std::vector<Edge> kept;
  for (EdgeId e = 0; e < edge_count(); ++e) {
    if (keep[static_cast<std::size_t>(e)]) {
      kept.push_back(edges_[static_cast<std::size_t>(e)]);
      out.original_edge.push_back(e);
    }
  }
  out.graph = Graph::from_edges(n_, std::move(kept));
  return out;
}

}  // namespace dmatch
