#include "graph/augmenting.hpp"

#include <algorithm>
#include <map>
#include <queue>

namespace dmatch {

namespace {

/// Depth-first enumeration of simple alternating paths starting at the free
/// node `start`. The next edge must be non-matching when the path length so
/// far is even, matching when odd.
class PathEnumerator {
 public:
  PathEnumerator(const Graph& g, const Matching& m, int max_len,
                 std::size_t max_count,
                 std::vector<std::vector<EdgeId>>& out)
      : g_(g),
        m_(m),
        max_len_(max_len),
        max_count_(max_count),
        out_(out),
        on_path_(static_cast<std::size_t>(g.node_count()), false) {}

  void run(NodeId start) {
    start_ = start;
    on_path_[static_cast<std::size_t>(start)] = true;
    extend(start);
    on_path_[static_cast<std::size_t>(start)] = false;
  }

  [[nodiscard]] bool full() const {
    return max_count_ != 0 && out_.size() >= max_count_;
  }

 private:
  void extend(NodeId v) {
    if (full()) return;
    const bool need_matching = (path_.size() % 2) == 1;
    if (need_matching) {
      // Exactly one way to continue: v's matched edge. A free v ends the
      // walk (it was already reported as an augmenting path endpoint).
      const EdgeId e = m_.matched_edge(v);
      if (e != kNoEdge) try_edge(v, e);
      return;
    }
    for (EdgeId e : g_.incident_edges(v)) {
      if (m_.contains(g_, e)) continue;
      try_edge(v, e);
      if (full()) return;
    }
  }

  void try_edge(NodeId v, EdgeId e) {
    const NodeId u = g_.other_endpoint(e, v);
    if (on_path_[static_cast<std::size_t>(u)]) return;
    path_.push_back(e);
    const bool odd_length = (path_.size() % 2) == 1;
    if (odd_length && m_.is_free(u)) {
      // Report each path once, from its smaller-id endpoint; a length-1
      // path has equal claim from both ends, so require start < u there
      // too (start != u since the edge is not a loop).
      if (start_ < u) out_.push_back(path_);
    }
    if (static_cast<int>(path_.size()) < max_len_) {
      on_path_[static_cast<std::size_t>(u)] = true;
      extend(u);
      on_path_[static_cast<std::size_t>(u)] = false;
    }
    path_.pop_back();
  }

  const Graph& g_;
  const Matching& m_;
  const int max_len_;
  const std::size_t max_count_;
  std::vector<std::vector<EdgeId>>& out_;
  std::vector<char> on_path_;
  std::vector<EdgeId> path_;
  NodeId start_ = kNoNode;
};

}  // namespace

std::vector<std::vector<EdgeId>> enumerate_augmenting_paths(
    const Graph& g, const Matching& m, int max_len, std::size_t max_count) {
  DMATCH_EXPECTS(max_len >= 1);
  std::vector<std::vector<EdgeId>> out;
  PathEnumerator enumerator(g, m, max_len, max_count, out);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!m.is_free(v)) continue;
    enumerator.run(v);
    if (enumerator.full()) break;
  }
  return out;
}

std::optional<int> shortest_augmenting_path_length(const Graph& g,
                                                   const Matching& m,
                                                   int cap) {
  for (int len = 1; len <= cap; len += 2) {
    const auto paths = enumerate_augmenting_paths(g, m, len, 1);
    if (!paths.empty()) return static_cast<int>(paths.front().size());
  }
  return std::nullopt;
}

std::optional<int> bipartite_shortest_augmenting_path_length(
    const Graph& g, const std::vector<std::uint8_t>& side, const Matching& m) {
  DMATCH_EXPECTS(side.size() == static_cast<std::size_t>(g.node_count()));
  // Layered BFS from all free side-0 nodes, alternating
  // non-matching (0 -> 1) and matching (1 -> 0) edges. The first free
  // side-1 node reached closes a shortest augmenting path.
  constexpr int kUnreached = -1;
  std::vector<int> dist(static_cast<std::size_t>(g.node_count()), kUnreached);
  std::queue<NodeId> queue;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (side[static_cast<std::size_t>(v)] == 0 && m.is_free(v)) {
      dist[static_cast<std::size_t>(v)] = 0;
      queue.push(v);
    }
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    const int d = dist[static_cast<std::size_t>(v)];
    if (side[static_cast<std::size_t>(v)] == 0) {
      for (EdgeId e : g.incident_edges(v)) {
        if (m.contains(g, e)) continue;
        const NodeId u = g.other_endpoint(e, v);
        if (dist[static_cast<std::size_t>(u)] != kUnreached) continue;
        dist[static_cast<std::size_t>(u)] = d + 1;
        if (m.is_free(u)) return d + 1;
        queue.push(u);
      }
    } else {
      const NodeId u = m.mate(v);
      DMATCH_ASSERT(u != kNoNode);
      if (dist[static_cast<std::size_t>(u)] == kUnreached) {
        dist[static_cast<std::size_t>(u)] = d + 1;
        queue.push(u);
      }
    }
  }
  return std::nullopt;
}

namespace {

/// DFS enumeration of alternating walks for
/// enumerate_alternating_augmentations. Walks are grown from every start
/// node; valid augmentations are canonicalized and deduplicated.
class AugmentationEnumerator {
 public:
  AugmentationEnumerator(const Graph& g, const Matching& m, int max_len,
                         std::size_t max_count)
      : g_(g),
        m_(m),
        max_len_(max_len),
        max_count_(max_count),
        on_path_(static_cast<std::size_t>(g.node_count()), false) {}

  std::vector<Augmentation> run() {
    for (NodeId s = 0; s < g_.node_count(); ++s) {
      start_ = s;
      on_path_[static_cast<std::size_t>(s)] = true;
      nodes_ = {s};
      // Branch on the first edge's type.
      const EdgeId matched = m_.matched_edge(s);
      if (matched != kNoEdge) {
        first_edge_matched_ = true;
        try_edge(s, matched);
      }
      if (m_.is_free(s)) {
        first_edge_matched_ = false;
        for (EdgeId e : g_.incident_edges(s)) {
          if (!m_.contains(g_, e)) try_edge(s, e);
          if (full()) break;
        }
      }
      on_path_[static_cast<std::size_t>(s)] = false;
      if (full()) break;
    }
    std::vector<Augmentation> out;
    out.reserve(seen_.size());
    for (const auto& [key, aug] : seen_) out.push_back(aug);
    return out;
  }

 private:
  [[nodiscard]] bool full() const {
    return max_count_ != 0 && seen_.size() >= max_count_;
  }

  void try_edge(NodeId v, EdgeId e) {
    if (full()) return;
    const NodeId u = g_.other_endpoint(e, v);
    const bool e_matched = m_.contains(g_, e);
    if (u == start_ && edges_.size() >= 2) {
      // Closing a cycle: alternation at the start node requires the
      // closing and first edges to differ in matched-status.
      if (e_matched != first_edge_matched_) {
        edges_.push_back(e);
        nodes_.push_back(u);
        record(true);
        nodes_.pop_back();
        edges_.pop_back();
      }
      return;
    }
    if (on_path_[static_cast<std::size_t>(u)]) return;

    edges_.push_back(e);
    nodes_.push_back(u);
    // End condition: a walk may stop here if its last edge is matched
    // (u gets unmatched) or u is free.
    if (e_matched || m_.is_free(u)) record(false);

    if (static_cast<int>(edges_.size()) < max_len_ && !full()) {
      on_path_[static_cast<std::size_t>(u)] = true;
      if (e_matched) {
        for (EdgeId next : g_.incident_edges(u)) {
          if (!m_.contains(g_, next)) try_edge(u, next);
          if (full()) break;
        }
      } else {
        const EdgeId next = m_.matched_edge(u);
        if (next != kNoEdge) try_edge(u, next);
      }
      on_path_[static_cast<std::size_t>(u)] = false;
    }
    nodes_.pop_back();
    edges_.pop_back();
  }

  void record(bool is_cycle) {
    // Walks of a single matched edge "augment" to a strictly smaller
    // matching; they are valid but useless, so skip them.
    if (edges_.size() == 1 && first_edge_matched_) return;
    std::vector<NodeId> canon = nodes_;
    if (is_cycle) {
      canon.pop_back();  // drop the repeated start
      // Rotate the minimum node to the front.
      const auto min_it = std::min_element(canon.begin(), canon.end());
      std::rotate(canon.begin(), min_it, canon.end());
      // Orient towards the smaller neighbor of the minimum.
      if (canon.size() > 2 && canon.back() < canon[1]) {
        std::reverse(canon.begin() + 1, canon.end());
      }
      canon.push_back(canon.front());
    } else {
      std::vector<NodeId> reversed(canon.rbegin(), canon.rend());
      if (reversed < canon) canon = std::move(reversed);
    }
    auto [it, inserted] = seen_.try_emplace(canon);
    if (!inserted) return;
    Augmentation& aug = it->second;
    aug.is_cycle = is_cycle;
    aug.nodes = canon;
    for (std::size_t i = 0; i + 1 < canon.size(); ++i) {
      const EdgeId e = g_.find_edge(canon[i], canon[i + 1]);
      DMATCH_ASSERT(e != kNoEdge);
      aug.edges.push_back(e);
    }
  }

  const Graph& g_;
  const Matching& m_;
  const int max_len_;
  const std::size_t max_count_;
  std::vector<char> on_path_;
  std::vector<EdgeId> edges_;
  std::vector<NodeId> nodes_;
  NodeId start_ = kNoNode;
  bool first_edge_matched_ = false;
  std::map<std::vector<NodeId>, Augmentation> seen_;
};

}  // namespace

std::vector<Augmentation> enumerate_alternating_augmentations(
    const Graph& g, const Matching& m, int max_len, std::size_t max_count) {
  DMATCH_EXPECTS(max_len >= 1);
  return AugmentationEnumerator(g, m, max_len, max_count).run();
}

std::vector<std::vector<EdgeId>> greedy_disjoint_paths(
    const Graph& g, const std::vector<std::vector<EdgeId>>& paths) {
  std::vector<char> used(static_cast<std::size_t>(g.node_count()), false);
  std::vector<std::vector<EdgeId>> chosen;
  for (const auto& p : paths) {
    bool ok = true;
    for (EdgeId e : p) {
      const Edge& ed = g.edge(e);
      if (used[static_cast<std::size_t>(ed.u)] ||
          used[static_cast<std::size_t>(ed.v)]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (EdgeId e : p) {
      const Edge& ed = g.edge(e);
      used[static_cast<std::size_t>(ed.u)] = true;
      used[static_cast<std::size_t>(ed.v)] = true;
    }
    chosen.push_back(p);
  }
  return chosen;
}

}  // namespace dmatch
