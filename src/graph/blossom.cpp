#include "graph/blossom.hpp"

#include <algorithm>
#include <queue>

namespace dmatch {

namespace {

/// Classic array-based blossom implementation: grow alternating trees from
/// each free vertex, contracting odd cycles (blossoms) on the fly via the
/// `base` array.
class Blossom {
 public:
  explicit Blossom(const Graph& g)
      : g_(g),
        n_(static_cast<std::size_t>(g.node_count())),
        mate_(n_, kNoNode),
        parent_(n_, kNoNode),
        base_(n_, 0),
        in_queue_(n_, false),
        in_blossom_(n_, false) {}

  Matching solve() {
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      if (mate_[static_cast<std::size_t>(v)] == kNoNode) find_augmenting_path(v);
    }
    std::vector<EdgeId> edges;
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      const NodeId m = mate_[static_cast<std::size_t>(v)];
      if (m != kNoNode && v < m) edges.push_back(g_.find_edge(v, m));
    }
    return Matching::from_edge_ids(g_, edges);
  }

 private:
  NodeId lowest_common_ancestor(NodeId a, NodeId b) {
    std::vector<char> used(n_, false);
    // Walk up from a marking bases, then walk up from b to the first mark.
    NodeId v = a;
    for (;;) {
      v = base_[static_cast<std::size_t>(v)];
      used[static_cast<std::size_t>(v)] = true;
      if (mate_[static_cast<std::size_t>(v)] == kNoNode) break;
      v = parent_[static_cast<std::size_t>(
          mate_[static_cast<std::size_t>(v)])];
    }
    v = b;
    for (;;) {
      v = base_[static_cast<std::size_t>(v)];
      if (used[static_cast<std::size_t>(v)]) return v;
      v = parent_[static_cast<std::size_t>(
          mate_[static_cast<std::size_t>(v)])];
    }
  }

  void mark_path(NodeId v, NodeId lca, NodeId child) {
    while (base_[static_cast<std::size_t>(v)] != lca) {
      const NodeId m = mate_[static_cast<std::size_t>(v)];
      in_blossom_[static_cast<std::size_t>(base_[static_cast<std::size_t>(v)])] =
          true;
      in_blossom_[static_cast<std::size_t>(base_[static_cast<std::size_t>(m)])] =
          true;
      parent_[static_cast<std::size_t>(v)] = child;
      child = m;
      v = parent_[static_cast<std::size_t>(m)];
    }
  }

  void contract(NodeId a, NodeId b, std::queue<NodeId>& queue) {
    const NodeId lca = lowest_common_ancestor(a, b);
    std::fill(in_blossom_.begin(), in_blossom_.end(), false);
    mark_path(a, lca, b);
    mark_path(b, lca, a);
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      if (!in_blossom_[static_cast<std::size_t>(
              base_[static_cast<std::size_t>(v)])]) {
        continue;
      }
      base_[static_cast<std::size_t>(v)] = lca;
      if (!in_queue_[static_cast<std::size_t>(v)]) {
        in_queue_[static_cast<std::size_t>(v)] = true;
        queue.push(v);
      }
    }
  }

  void find_augmenting_path(NodeId root) {
    std::fill(parent_.begin(), parent_.end(), kNoNode);
    std::fill(in_queue_.begin(), in_queue_.end(), false);
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      base_[static_cast<std::size_t>(v)] = v;
    }
    std::queue<NodeId> queue;
    queue.push(root);
    in_queue_[static_cast<std::size_t>(root)] = true;

    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      for (EdgeId e : g_.incident_edges(v)) {
        const NodeId u = g_.other_endpoint(e, v);
        if (base_[static_cast<std::size_t>(v)] ==
                base_[static_cast<std::size_t>(u)] ||
            mate_[static_cast<std::size_t>(v)] == u) {
          continue;  // same blossom or the matched edge itself
        }
        if (u == root ||
            (mate_[static_cast<std::size_t>(u)] != kNoNode &&
             parent_[static_cast<std::size_t>(
                 mate_[static_cast<std::size_t>(u)])] != kNoNode)) {
          // u is an even (outer) vertex: odd cycle found; contract.
          contract(v, u, queue);
        } else if (parent_[static_cast<std::size_t>(u)] == kNoNode) {
          // u unvisited and matched: extend the tree by two levels.
          parent_[static_cast<std::size_t>(u)] = v;
          const NodeId m = mate_[static_cast<std::size_t>(u)];
          if (m == kNoNode) {
            // u free: augmenting path root ~> v - u found.
            augment(u);
            return;
          }
          if (!in_queue_[static_cast<std::size_t>(m)]) {
            in_queue_[static_cast<std::size_t>(m)] = true;
            queue.push(m);
          }
        }
      }
    }
  }

  void augment(NodeId u) {
    // Flip matched status along the alternating path encoded by parent_.
    while (u != kNoNode) {
      const NodeId pv = parent_[static_cast<std::size_t>(u)];
      const NodeId ppv = mate_[static_cast<std::size_t>(pv)];
      mate_[static_cast<std::size_t>(u)] = pv;
      mate_[static_cast<std::size_t>(pv)] = u;
      u = ppv;
    }
  }

  const Graph& g_;
  std::size_t n_;
  std::vector<NodeId> mate_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> base_;
  std::vector<char> in_queue_;
  std::vector<char> in_blossom_;
};

}  // namespace

Matching blossom_mcm(const Graph& g) { return Blossom(g).solve(); }

}  // namespace dmatch
