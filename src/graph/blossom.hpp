// Edmonds' blossom algorithm: maximum cardinality matching in general
// graphs, O(V^3).
//
// Reference optimum for the general-graph experiments (E3, E4): Algorithm 4
// claims a (1 - 1/k)-MCM on arbitrary graphs, and this solver supplies |M*|.
#pragma once

#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

/// Maximum cardinality matching of an arbitrary simple graph.
Matching blossom_mcm(const Graph& g);

}  // namespace dmatch
