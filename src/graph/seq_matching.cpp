#include "graph/seq_matching.hpp"

#include <algorithm>
#include <numeric>

namespace dmatch {

Matching greedy_mwm(const Graph& g) {
  std::vector<EdgeId> order(static_cast<std::size_t>(g.edge_count()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    if (g.weight(a) != g.weight(b)) return g.weight(a) > g.weight(b);
    return a < b;
  });
  Matching m(g.node_count());
  for (EdgeId e : order) {
    const Edge& ed = g.edge(e);
    if (m.is_free(ed.u) && m.is_free(ed.v)) m.add(g, e);
  }
  return m;
}

Matching path_growing_mwm(const Graph& g) {
  // Grow vertex-disjoint paths, assigning edges alternately to two
  // candidate matchings M1/M2; return the heavier one. Each edge of the
  // graph is charged to a path edge at least half its weight.
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<char> removed(n, false);
  std::vector<EdgeId> m1;
  std::vector<EdgeId> m2;
  double w1 = 0;
  double w2 = 0;

  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (removed[static_cast<std::size_t>(start)]) continue;
    NodeId v = start;
    int parity = 0;
    for (;;) {
      EdgeId best = kNoEdge;
      double best_w = -1;
      for (EdgeId e : g.incident_edges(v)) {
        const NodeId u = g.other_endpoint(e, v);
        if (removed[static_cast<std::size_t>(u)]) continue;
        if (g.weight(e) > best_w ||
            (g.weight(e) == best_w && e < best)) {
          best = e;
          best_w = g.weight(e);
        }
      }
      removed[static_cast<std::size_t>(v)] = true;
      if (best == kNoEdge) break;
      if (parity == 0) {
        m1.push_back(best);
        w1 += best_w;
      } else {
        m2.push_back(best);
        w2 += best_w;
      }
      parity ^= 1;
      v = g.other_endpoint(best, v);
    }
  }

  const std::vector<EdgeId>& winner = w1 >= w2 ? m1 : m2;
  // Edges were added along vertex-disjoint paths with alternating parity,
  // so each candidate set is a matching.
  return Matching::from_edge_ids(g, winner);
}

}  // namespace dmatch
