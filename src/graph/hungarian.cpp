#include "graph/hungarian.hpp"

#include <algorithm>
#include <limits>

namespace dmatch {

namespace {

/// Solve min-cost assignment of `rows` rows into `cols >= rows` columns for
/// a dense cost matrix; returns col_of_row. Classic potential/augmenting
/// formulation (1-indexed internally).
std::vector<int> assignment(const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  const int m = n == 0 ? 0 : static_cast<int>(cost[0].size());
  DMATCH_EXPECTS(m >= n);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> u(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<std::size_t>(m) + 1, 0.0);
  std::vector<int> p(static_cast<std::size_t>(m) + 1, 0);
  std::vector<int> way(static_cast<std::size_t>(m) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<std::size_t>(m) + 1, kInf);
    std::vector<char> used(static_cast<std::size_t>(m) + 1, false);
    do {
      used[static_cast<std::size_t>(j0)] = true;
      const int i0 = p[static_cast<std::size_t>(j0)];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= m; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const double cur = cost[static_cast<std::size_t>(i0 - 1)]
                               [static_cast<std::size_t>(j - 1)] -
                           u[static_cast<std::size_t>(i0)] -
                           v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      DMATCH_ASSERT(j1 != -1);
      for (int j = 0; j <= m; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> col_of_row(static_cast<std::size_t>(n), -1);
  for (int j = 1; j <= m; ++j) {
    if (p[static_cast<std::size_t>(j)] != 0) {
      col_of_row[static_cast<std::size_t>(p[static_cast<std::size_t>(j)] - 1)] =
          j - 1;
    }
  }
  return col_of_row;
}

}  // namespace

Matching hungarian_mwm(const Graph& g, const std::vector<std::uint8_t>& side) {
  DMATCH_EXPECTS(side.size() == static_cast<std::size_t>(g.node_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    DMATCH_EXPECTS(g.weight(e) >= 0);
    DMATCH_EXPECTS(side[static_cast<std::size_t>(g.edge(e).u)] !=
                   side[static_cast<std::size_t>(g.edge(e).v)]);
  }
  // Collect the two sides; make side A the smaller one (rows).
  std::vector<NodeId> a_nodes;
  std::vector<NodeId> b_nodes;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    (side[static_cast<std::size_t>(v)] == 0 ? a_nodes : b_nodes).push_back(v);
  }
  if (a_nodes.size() > b_nodes.size()) std::swap(a_nodes, b_nodes);
  if (a_nodes.empty()) return Matching(g.node_count());

  std::vector<int> col_index(static_cast<std::size_t>(g.node_count()), -1);
  for (std::size_t j = 0; j < b_nodes.size(); ++j) {
    col_index[static_cast<std::size_t>(b_nodes[j])] = static_cast<int>(j);
  }

  // Profit matrix; missing pairs get profit 0 (equivalent to unmatched).
  std::vector<std::vector<double>> cost(
      a_nodes.size(), std::vector<double>(b_nodes.size(), 0.0));
  for (std::size_t i = 0; i < a_nodes.size(); ++i) {
    const NodeId x = a_nodes[i];
    for (EdgeId e : g.incident_edges(x)) {
      const NodeId y = g.other_endpoint(e, x);
      cost[i][static_cast<std::size_t>(
          col_index[static_cast<std::size_t>(y)])] = -g.weight(e);
    }
  }

  const std::vector<int> col_of_row = assignment(cost);
  std::vector<EdgeId> chosen;
  for (std::size_t i = 0; i < a_nodes.size(); ++i) {
    if (col_of_row[i] < 0) continue;
    const NodeId y = b_nodes[static_cast<std::size_t>(col_of_row[i])];
    const EdgeId e = g.find_edge(a_nodes[i], y);
    // Zero-profit filler cells correspond to "unmatched".
    if (e != kNoEdge && g.weight(e) > 0) chosen.push_back(e);
  }
  return Matching::from_edge_ids(g, chosen);
}

Matching hungarian_mwm(const Graph& g) {
  const auto side = g.bipartition();
  DMATCH_EXPECTS(side.has_value());
  return hungarian_mwm(g, *side);
}

}  // namespace dmatch
