// Sequential approximation baselines.
//
// The paper's introduction measures distributed algorithms against the
// classical sequential greedy (1/2-MWM); we also provide Drake & Hougardy's
// path-growing algorithm (1/2-MWM in linear time), which the related-work
// section cites. Both serve as baselines in the weighted benches and as
// upper-bound certificates: w(greedy) * 2 >= w(M*) for any graph.
#pragma once

#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

/// Global greedy: repeatedly take the heaviest remaining edge. 1/2-MWM.
/// Ties are broken by edge id, so the result is deterministic.
Matching greedy_mwm(const Graph& g);

/// Drake-Hougardy path-growing algorithm. 1/2-MWM in O(m).
Matching path_growing_mwm(const Graph& g);

}  // namespace dmatch
