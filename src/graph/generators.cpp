#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace dmatch::gen {

namespace {

/// Sample each candidate pair independently with probability p using
/// geometric skipping, so sparse graphs cost O(m) instead of O(n^2).
template <typename EmitPair>
void sample_pairs(std::uint64_t total_pairs, double p, Rng& rng,
                  EmitPair&& emit) {
  if (p <= 0.0 || total_pairs == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < total_pairs; ++i) emit(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  std::uint64_t i = 0;
  for (;;) {
    const double u = rng.uniform01();
    const double skip = std::floor(std::log1p(-u) / log1mp);
    if (skip >= static_cast<double>(total_pairs - i)) return;
    i += static_cast<std::uint64_t>(skip);
    emit(i);
    if (++i >= total_pairs) return;
  }
}

}  // namespace

Graph gnp(NodeId n, double p, std::uint64_t seed) {
  DMATCH_EXPECTS(n >= 0);
  Rng rng(seed);
  std::vector<Edge> edges;
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1) / 2;
  sample_pairs(n >= 2 ? total : 0, p, rng, [&](std::uint64_t index) {
    // Invert the row-major enumeration of pairs (u < v).
    const double row =
        std::floor((std::sqrt(8.0 * static_cast<double>(index) + 1.0) + 1.0) /
                   2.0);
    auto v = static_cast<NodeId>(row);
    auto u = static_cast<NodeId>(index -
                                 static_cast<std::uint64_t>(v) *
                                     (static_cast<std::uint64_t>(v) - 1) / 2);
    // Guard against floating point off-by-one at triangle boundaries.
    while (static_cast<std::uint64_t>(v) * (static_cast<std::uint64_t>(v) - 1) /
               2 >
           index) {
      --v;
    }
    while (static_cast<std::uint64_t>(v + 1) * static_cast<std::uint64_t>(v) /
               2 <=
           index) {
      ++v;
    }
    u = static_cast<NodeId>(index - static_cast<std::uint64_t>(v) *
                                        (static_cast<std::uint64_t>(v) - 1) /
                                        2);
    edges.push_back({u, v, 1.0});
  });
  return Graph::from_edges(n, std::move(edges));
}

Graph bipartite_gnp(NodeId nx, NodeId ny, double p, std::uint64_t seed) {
  DMATCH_EXPECTS(nx >= 0 && ny >= 0);
  Rng rng(seed);
  std::vector<Edge> edges;
  sample_pairs(static_cast<std::uint64_t>(nx) * static_cast<std::uint64_t>(ny),
               p, rng, [&](std::uint64_t index) {
                 const auto x = static_cast<NodeId>(
                     index / static_cast<std::uint64_t>(ny));
                 const auto y = static_cast<NodeId>(
                     index % static_cast<std::uint64_t>(ny));
                 edges.push_back({x, static_cast<NodeId>(nx + y), 1.0});
               });
  return Graph::from_edges(nx + ny, std::move(edges));
}

Graph cycle(NodeId n) {
  DMATCH_EXPECTS(n >= 3);
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<NodeId>((v + 1) % n), 1.0});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph path(NodeId n) {
  DMATCH_EXPECTS(n >= 1);
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.push_back({v, static_cast<NodeId>(v + 1), 1.0});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph grid(NodeId rows, NodeId cols) {
  DMATCH_EXPECTS(rows >= 1 && cols >= 1);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::vector<Edge> edges;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1), 1.0});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c), 1.0});
    }
  }
  return Graph::from_edges(rows * cols, std::move(edges));
}

Graph complete(NodeId n) {
  DMATCH_EXPECTS(n >= 1);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.push_back({u, v, 1.0});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph complete_bipartite(NodeId a, NodeId b) {
  DMATCH_EXPECTS(a >= 0 && b >= 0);
  std::vector<Edge> edges;
  for (NodeId x = 0; x < a; ++x) {
    for (NodeId y = 0; y < b; ++y) {
      edges.push_back({x, static_cast<NodeId>(a + y), 1.0});
    }
  }
  return Graph::from_edges(a + b, std::move(edges));
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  DMATCH_EXPECTS(n >= 1);
  if (n == 1) return Graph::from_edges(1, {});
  if (n == 2) return Graph::from_edges(2, {{0, 1, 1.0}});
  Rng rng(seed);
  std::vector<NodeId> pruefer(static_cast<std::size_t>(n) - 2);
  for (auto& x : pruefer) {
    x = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(n)));
  }
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (NodeId x : pruefer) ++deg[static_cast<std::size_t>(x)];
  std::set<NodeId> leaves;
  for (NodeId v = 0; v < n; ++v) {
    if (deg[static_cast<std::size_t>(v)] == 1) leaves.insert(v);
  }
  std::vector<Edge> edges;
  for (NodeId x : pruefer) {
    const NodeId leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    edges.push_back({leaf, x, 1.0});
    if (--deg[static_cast<std::size_t>(x)] == 1) leaves.insert(x);
  }
  const NodeId a = *leaves.begin();
  const NodeId b = *std::next(leaves.begin());
  edges.push_back({a, b, 1.0});
  return Graph::from_edges(n, std::move(edges));
}

Graph near_regular(NodeId n, int d, std::uint64_t seed) {
  DMATCH_EXPECTS(n >= 2 && d >= 1 && d < n);
  Rng rng(seed);
  // Configuration model: shuffle d copies of each node, pair consecutive
  // stubs, drop loops and duplicates. Result is near d-regular.
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  for (NodeId v = 0; v < n; ++v) {
    for (int i = 0; i < d; ++i) stubs.push_back(v);
  }
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.uniform(i)]);
  }
  std::set<std::pair<NodeId, NodeId>> seen;
  std::vector<Edge> edges;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    NodeId u = stubs[i];
    NodeId v = stubs[i + 1];
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (seen.insert({u, v}).second) edges.push_back({u, v, 1.0});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph barabasi_albert(NodeId n, int m, std::uint64_t seed) {
  DMATCH_EXPECTS(m >= 1 && n > m);
  Rng rng(seed);
  // Target list doubles as the preferential-attachment urn.
  std::vector<NodeId> urn;
  std::set<std::pair<NodeId, NodeId>> seen;
  std::vector<Edge> edges;
  auto add_edge = [&](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    if (u == v || !seen.insert({u, v}).second) return;
    edges.push_back({u, v, 1.0});
    urn.push_back(u);
    urn.push_back(v);
  };
  // Seed clique on m+1 nodes.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) add_edge(u, v);
  }
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    for (int i = 0; i < m; ++i) {
      const NodeId target = urn[rng.uniform(urn.size())];
      add_edge(v, target);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph with_uniform_weights(const Graph& g, Weight lo, Weight hi,
                           std::uint64_t seed) {
  DMATCH_EXPECTS(lo > 0 && hi >= lo);
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    Edge ed = g.edge(e);
    ed.w = lo + (hi - lo) * rng.uniform01();
    edges.push_back(ed);
  }
  return Graph::from_edges(g.node_count(), std::move(edges));
}

Graph with_exponential_weights(const Graph& g, double ratio,
                               std::uint64_t seed) {
  DMATCH_EXPECTS(ratio >= 1.0);
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    Edge ed = g.edge(e);
    ed.w = std::exp(rng.uniform01() * std::log(ratio));
    edges.push_back(ed);
  }
  return Graph::from_edges(g.node_count(), std::move(edges));
}

}  // namespace dmatch::gen
