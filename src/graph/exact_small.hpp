// Exponential exact matching oracles for tiny graphs (n <= 20).
//
// Bitmask dynamic program over node subsets, O(2^n * Delta). These are the
// ground truth used to validate every other solver in this repository,
// including Blossom and Hungarian, and the weighted experiments on small
// general graphs (where no polynomial exact MWM solver is provided).
#pragma once

#include "graph/graph.hpp"

namespace dmatch {

/// Maximum possible total weight of a matching. Requires n <= 20.
Weight exact_mwm_value(const Graph& g);

/// Maximum possible cardinality of a matching. Requires n <= 20.
std::size_t exact_mcm_value(const Graph& g);

}  // namespace dmatch
