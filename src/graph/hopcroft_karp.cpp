#include "graph/hopcroft_karp.hpp"

#include <limits>
#include <queue>

namespace dmatch {

namespace {

class HopcroftKarp {
 public:
  HopcroftKarp(const Graph& g, const std::vector<std::uint8_t>& side)
      : g_(g),
        side_(side),
        mate_(static_cast<std::size_t>(g.node_count()), kNoNode),
        dist_(static_cast<std::size_t>(g.node_count()), kInf) {}

  Matching solve() {
    while (bfs()) {
      for (NodeId v = 0; v < g_.node_count(); ++v) {
        if (side_[static_cast<std::size_t>(v)] == 0 &&
            mate_[static_cast<std::size_t>(v)] == kNoNode) {
          dfs(v);
        }
      }
    }
    std::vector<EdgeId> edges;
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      if (side_[static_cast<std::size_t>(v)] == 0 &&
          mate_[static_cast<std::size_t>(v)] != kNoNode) {
        edges.push_back(g_.find_edge(v, mate_[static_cast<std::size_t>(v)]));
      }
    }
    return Matching::from_edge_ids(g_, edges);
  }

 private:
  static constexpr int kInf = std::numeric_limits<int>::max();

  bool bfs() {
    std::queue<NodeId> queue;
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      if (side_[static_cast<std::size_t>(v)] != 0) continue;
      if (mate_[static_cast<std::size_t>(v)] == kNoNode) {
        dist_[static_cast<std::size_t>(v)] = 0;
        queue.push(v);
      } else {
        dist_[static_cast<std::size_t>(v)] = kInf;
      }
    }
    bool found_free = false;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      for (EdgeId e : g_.incident_edges(v)) {
        const NodeId y = g_.other_endpoint(e, v);
        const NodeId next = mate_[static_cast<std::size_t>(y)];
        if (next == kNoNode) {
          found_free = true;
        } else if (dist_[static_cast<std::size_t>(next)] == kInf) {
          dist_[static_cast<std::size_t>(next)] =
              dist_[static_cast<std::size_t>(v)] + 1;
          queue.push(next);
        }
      }
    }
    return found_free;
  }

  bool dfs(NodeId v) {
    for (EdgeId e : g_.incident_edges(v)) {
      const NodeId y = g_.other_endpoint(e, v);
      const NodeId next = mate_[static_cast<std::size_t>(y)];
      if (next == kNoNode ||
          (dist_[static_cast<std::size_t>(next)] ==
               dist_[static_cast<std::size_t>(v)] + 1 &&
           dfs(next))) {
        mate_[static_cast<std::size_t>(v)] = y;
        mate_[static_cast<std::size_t>(y)] = v;
        return true;
      }
    }
    dist_[static_cast<std::size_t>(v)] = kInf;
    return false;
  }

  const Graph& g_;
  const std::vector<std::uint8_t>& side_;
  std::vector<NodeId> mate_;
  std::vector<int> dist_;
};

}  // namespace

Matching hopcroft_karp(const Graph& g, const std::vector<std::uint8_t>& side) {
  DMATCH_EXPECTS(side.size() == static_cast<std::size_t>(g.node_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    DMATCH_EXPECTS(side[static_cast<std::size_t>(g.edge(e).u)] !=
                   side[static_cast<std::size_t>(g.edge(e).v)]);
  }
  return HopcroftKarp(g, side).solve();
}

Matching hopcroft_karp(const Graph& g) {
  const auto side = g.bipartition();
  DMATCH_EXPECTS(side.has_value());
  return hopcroft_karp(g, *side);
}

}  // namespace dmatch
