#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace dmatch {

Graph read_edge_list(std::istream& in) {
  NodeId n = -1;
  EdgeId m = -1;
  std::vector<Edge> edges;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ss(line);
    std::string directive;
    if (!(ss >> directive) || directive == "c" || directive[0] == '#') {
      continue;  // blank or comment
    }
    if (directive == "p") {
      std::string kind;
      DMATCH_EXPECTS(ss >> kind >> n >> m);
      DMATCH_EXPECTS(kind == "edge");
      DMATCH_EXPECTS(n >= 0 && m >= 0);
      edges.reserve(static_cast<std::size_t>(m));
    } else if (directive == "e") {
      DMATCH_EXPECTS(n >= 0);  // "p" line must come first
      Edge e;
      DMATCH_EXPECTS(ss >> e.u >> e.v);
      if (!(ss >> e.w)) e.w = 1.0;
      DMATCH_EXPECTS(e.w > 0);
      edges.push_back(e);
    } else {
      DMATCH_EXPECTS(!"unknown directive in edge-list input");
    }
  }
  DMATCH_EXPECTS(n >= 0);
  DMATCH_EXPECTS(static_cast<EdgeId>(edges.size()) == m);
  return Graph::from_edges(n, std::move(edges));
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "c dmatch edge list\n";
  out << "p edge " << g.node_count() << ' ' << g.edge_count() << '\n';
  out.precision(17);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    out << "e " << ed.u << ' ' << ed.v << ' ' << ed.w << '\n';
  }
}

std::string to_dot(const Graph& g, const Matching* matching) {
  std::ostringstream out;
  out << "graph dmatch {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "  n" << v << ";\n";
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    out << "  n" << ed.u << " -- n" << ed.v << " [label=\"" << ed.w << "\"";
    if (matching != nullptr && matching->contains(g, e)) {
      out << ", color=red, penwidth=3";
    }
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace dmatch
