// Seeded workload generators for tests, benches and examples.
//
// All generators are deterministic in (parameters, seed). Weighted variants
// are produced by layering `with_*_weights` over any topology.
#pragma once

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace dmatch::gen {

/// Erdos-Renyi G(n, p).
Graph gnp(NodeId n, double p, std::uint64_t seed);

/// Random bipartite graph: sides of size nx and ny (node ids 0..nx-1 are
/// side X, nx..nx+ny-1 are side Y), each cross pair kept with probability p.
Graph bipartite_gnp(NodeId nx, NodeId ny, double p, std::uint64_t seed);

/// Cycle C_n (n >= 3). C_{2n} is the paper's lower-bound instance.
Graph cycle(NodeId n);

/// Path P_n with n nodes.
Graph path(NodeId n);

/// rows x cols grid.
Graph grid(NodeId rows, NodeId cols);

/// Complete graph K_n.
Graph complete(NodeId n);

/// Complete bipartite K_{a,b} (ids as in bipartite_gnp).
Graph complete_bipartite(NodeId a, NodeId b);

/// Uniform random labelled tree (Pruefer sequence).
Graph random_tree(NodeId n, std::uint64_t seed);

/// Random d-regular-ish graph via the configuration model with rejection of
/// loops/multi-edges; the result has max degree d and is near-regular.
Graph near_regular(NodeId n, int d, std::uint64_t seed);

/// Barabasi-Albert preferential attachment: each new node attaches m edges.
Graph barabasi_albert(NodeId n, int m, std::uint64_t seed);

/// Copy with i.i.d. Uniform(lo, hi) edge weights.
Graph with_uniform_weights(const Graph& g, Weight lo, Weight hi,
                           std::uint64_t seed);

/// Copy with heavy-tailed weights: w = exp(Uniform(0, ln(ratio))), so the
/// max/min weight ratio is about `ratio`. Stresses the weight-class logic.
Graph with_exponential_weights(const Graph& g, double ratio,
                               std::uint64_t seed);

}  // namespace dmatch::gen
