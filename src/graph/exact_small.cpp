#include "graph/exact_small.hpp"

#include <algorithm>
#include <bit>
#include <vector>

namespace dmatch {

namespace {

/// f[mask] = best matching value inside the induced subgraph on `mask`,
/// where edge e contributes value[e].
std::vector<double> subset_dp(const Graph& g,
                              const std::vector<double>& value) {
  const int n = g.node_count();
  DMATCH_EXPECTS(n <= 20);
  const std::size_t size = std::size_t{1} << n;
  std::vector<double> f(size, 0.0);
  for (std::size_t mask = 1; mask < size; ++mask) {
    const int i = std::countr_zero(mask);
    // Option 1: node i stays unmatched.
    double best = f[mask & (mask - 1)];
    // Option 2: match i to a neighbor inside the mask.
    for (EdgeId e : g.incident_edges(static_cast<NodeId>(i))) {
      const NodeId j = g.other_endpoint(e, static_cast<NodeId>(i));
      const std::size_t jbit = std::size_t{1} << j;
      if ((mask & jbit) == 0) continue;
      best = std::max(best, value[static_cast<std::size_t>(e)] +
                                f[mask & ~(std::size_t{1} << i) & ~jbit]);
    }
    f[mask] = best;
  }
  return f;
}

}  // namespace

Weight exact_mwm_value(const Graph& g) {
  std::vector<double> value(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    value[static_cast<std::size_t>(e)] = g.weight(e);
  }
  if (g.node_count() == 0) return 0;
  return subset_dp(g, value).back();
}

std::size_t exact_mcm_value(const Graph& g) {
  std::vector<double> value(static_cast<std::size_t>(g.edge_count()), 1.0);
  if (g.node_count() == 0) return 0;
  return static_cast<std::size_t>(subset_dp(g, value).back() + 0.5);
}

}  // namespace dmatch
