// Undirected graph substrate shared by the reference solvers and the
// CONGEST simulator.
//
// Topology is immutable after construction (build once via from_edges);
// this matches the distributed model, where the input graph *is* the
// communication network. Adjacency is stored CSR-style; every node sees its
// incident edges through consecutive "ports" 0..deg-1, which is exactly the
// port-numbering assumption of the CONGEST model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace dmatch {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr EdgeId kNoEdge = -1;

using Weight = double;

/// One undirected edge. `u < v` is normalized by Graph::from_edges.
struct Edge {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  Weight w = 1.0;
};

class Graph {
 public:
  Graph() = default;

  /// Build a simple undirected graph on nodes 0..n-1. Self-loops and
  /// duplicate edges are rejected (the paper permits multigraphs, but no
  /// algorithm here benefits from parallel edges, and simplicity lets the
  /// oracles stay simple).
  static Graph from_edges(NodeId n, std::vector<Edge> edges);

  [[nodiscard]] NodeId node_count() const noexcept { return n_; }
  [[nodiscard]] EdgeId edge_count() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    DMATCH_EXPECTS(e >= 0 && e < edge_count());
    return edges_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] Weight weight(EdgeId e) const { return edge(e).w; }

  [[nodiscard]] int degree(NodeId v) const {
    DMATCH_EXPECTS(v >= 0 && v < n_);
    return static_cast<int>(adj_offset_[static_cast<std::size_t>(v) + 1] -
                            adj_offset_[static_cast<std::size_t>(v)]);
  }
  [[nodiscard]] int max_degree() const noexcept { return max_degree_; }

  /// Incident edge ids of v; index into this span is v's port number.
  [[nodiscard]] std::span<const EdgeId> incident_edges(NodeId v) const {
    DMATCH_EXPECTS(v >= 0 && v < n_);
    const auto begin = adj_offset_[static_cast<std::size_t>(v)];
    const auto end = adj_offset_[static_cast<std::size_t>(v) + 1];
    return {adj_edges_.data() + begin, adj_edges_.data() + end};
  }

  /// The endpoint of e that is not v. Requires v to be an endpoint of e.
  [[nodiscard]] NodeId other_endpoint(EdgeId e, NodeId v) const {
    const Edge& ed = edge(e);
    DMATCH_EXPECTS(ed.u == v || ed.v == v);
    return ed.u == v ? ed.v : ed.u;
  }

  /// Neighbor of v reached through port p.
  [[nodiscard]] NodeId neighbor(NodeId v, int p) const {
    return other_endpoint(incident_edges(v)[static_cast<std::size_t>(p)], v);
  }

  /// Port of v whose incident edge is e (inverse of incident_edges).
  [[nodiscard]] int port_of_edge(NodeId v, EdgeId e) const {
    const Edge& ed = edge(e);
    DMATCH_EXPECTS(ed.u == v || ed.v == v);
    return ed.u == v ? port_in_u_[static_cast<std::size_t>(e)]
                     : port_in_v_[static_cast<std::size_t>(e)];
  }

  /// Edge id between u and v, or kNoEdge. O(min degree).
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const;

  [[nodiscard]] Weight total_weight() const noexcept;
  [[nodiscard]] Weight max_weight() const noexcept;

  /// Two-color the graph if bipartite; side[v] in {0,1}. nullopt otherwise.
  /// Isolated nodes get side 0.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> bipartition() const;

  struct Subgraph;
  /// Subgraph on the same node set keeping only edges where keep[e] is true.
  /// Returned graph reuses node ids; edge ids are renumbered, and
  /// `original_edge` maps new ids back.
  [[nodiscard]] Subgraph edge_subgraph(const std::vector<char>& keep) const;

 private:
  NodeId n_ = 0;
  int max_degree_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::size_t> adj_offset_;  // size n+1
  std::vector<EdgeId> adj_edges_;        // size 2m
  std::vector<int> port_in_u_;           // per edge: port at endpoint u
  std::vector<int> port_in_v_;           // per edge: port at endpoint v
};

struct Graph::Subgraph {
  Graph graph;
  std::vector<EdgeId> original_edge;
};

}  // namespace dmatch
