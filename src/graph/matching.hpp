// Matching representation and the edge-set operations the paper uses
// (validity, augmentation along a path, symmetric difference).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dmatch {

/// A matching, stored as a mate array plus per-node matched edge id.
/// Output convention follows the paper: each node's "output register"
/// (mate) points at an incident matching edge or at nothing.
class Matching {
 public:
  Matching() = default;
  explicit Matching(NodeId n)
      : mate_(static_cast<std::size_t>(n), kNoNode),
        matched_edge_(static_cast<std::size_t>(n), kNoEdge) {}

  static Matching from_edge_ids(const Graph& g,
                                std::span<const EdgeId> edges);

  [[nodiscard]] NodeId node_count() const noexcept {
    return static_cast<NodeId>(mate_.size());
  }

  [[nodiscard]] bool is_matched(NodeId v) const {
    return mate_.at(static_cast<std::size_t>(v)) != kNoNode;
  }
  [[nodiscard]] bool is_free(NodeId v) const { return !is_matched(v); }
  [[nodiscard]] NodeId mate(NodeId v) const {
    return mate_.at(static_cast<std::size_t>(v));
  }
  [[nodiscard]] EdgeId matched_edge(NodeId v) const {
    return matched_edge_.at(static_cast<std::size_t>(v));
  }
  [[nodiscard]] bool contains(const Graph& g, EdgeId e) const {
    return matched_edge(g.edge(e).u) == e;
  }

  /// Add edge e; both endpoints must be free.
  void add(const Graph& g, EdgeId e);
  /// Remove edge e; it must be in the matching.
  void remove(const Graph& g, EdgeId e);

  /// Number of matched edges.
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] Weight weight(const Graph& g) const;
  [[nodiscard]] std::vector<EdgeId> edges(const Graph& g) const;
  [[nodiscard]] std::vector<NodeId> free_nodes() const;

  /// Replace M by M (+) path, where `path` is an alternating path given as
  /// consecutive edge ids. For an augmenting path (odd length, free
  /// endpoints, alternating non-matching/matching) this grows |M| by one.
  void augment(const Graph& g, std::span<const EdgeId> path);

  /// Replace M by M (+) S for an arbitrary edge set S (deduplicated by the
  /// caller). The result must be a matching (checked).
  void symmetric_difference(const Graph& g, std::span<const EdgeId> set);

  /// True if the mate array is a consistent matching over g.
  [[nodiscard]] bool is_valid(const Graph& g) const;

  /// True if no edge of g has both endpoints free (i.e. M is maximal).
  [[nodiscard]] bool is_maximal(const Graph& g) const;

  friend bool operator==(const Matching& a, const Matching& b) {
    return a.matched_edge_ == b.matched_edge_;
  }

 private:
  std::vector<NodeId> mate_;
  std::vector<EdgeId> matched_edge_;
};

}  // namespace dmatch
