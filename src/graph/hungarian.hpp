// Hungarian algorithm (Jonker-Volgenant potentials variant, O(n^2 m)):
// maximum weight bipartite matching.
//
// Reference optimum for the weighted experiments on bipartite inputs (E5).
// Non-perfect matchings are handled by padding with zero-profit cells, which
// is exact because all input weights are required to be non-negative.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

/// Maximum weight matching of a bipartite graph with non-negative weights.
/// `side[v]` in {0,1} must be a proper 2-coloring.
Matching hungarian_mwm(const Graph& g, const std::vector<std::uint8_t>& side);

/// Convenience overload computing the bipartition (graph must be bipartite).
Matching hungarian_mwm(const Graph& g);

}  // namespace dmatch
