#include "mis/luby.hpp"

#include <algorithm>
#include <memory>

namespace dmatch {

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Process;

enum class MisState : std::uint8_t { kUndecided, kIn, kOut };

/// Message kinds. DRAW carries (value, id) for lexicographic comparison;
/// JOIN announces MIS membership. A decided node simply stops sending
/// DRAWs, which its neighbors observe as silence (allowed in a synchronous
/// model).
enum MsgKind : std::uint64_t { kDraw = 0, kJoin = 1 };

class LubyProcess final : public Process {
 public:
  explicit LubyProcess(std::vector<std::uint8_t>& out) : out_(out) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    if (state_ != MisState::kUndecided) {
      halted_ = true;
      return;
    }
    const bool draw_round = (ctx.round() % 2) == 0;
    if (draw_round) {
      // A JOIN heard from any neighbor decides us out.
      for (const Envelope& env : inbox) {
        auto reader = env.msg.reader();
        if (reader.read(1) == kJoin) {
          decide(ctx, MisState::kOut);
          return;
        }
      }
      if (ctx.degree() == 0) {
        decide(ctx, MisState::kIn);
        return;
      }
      value_ = ctx.rng()();
      BitWriter w;
      w.write(kDraw, 1);
      w.write(value_, 64);
      const Message msg = Message::from_writer(std::move(w));
      for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
    } else {
      bool is_local_max = true;
      for (const Envelope& env : inbox) {
        auto reader = env.msg.reader();
        if (reader.read(1) != kDraw) continue;
        const std::uint64_t their = reader.read(64);
        const NodeId their_id = ctx.neighbor_id(env.port);
        // Lexicographic (value, id) order; ids are distinct, so the order
        // is strict and adjacent double-joins are impossible.
        if (their > value_ || (their == value_ && their_id > ctx.id())) {
          is_local_max = false;
        }
      }
      if (is_local_max) {
        BitWriter w;
        w.write(kJoin, 1);
        const Message msg = Message::from_writer(std::move(w));
        for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
        decide(ctx, MisState::kIn);
      }
    }
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  void decide(Context& ctx, MisState s) {
    state_ = s;
    out_[static_cast<std::size_t>(ctx.id())] = (s == MisState::kIn) ? 1 : 0;
    halted_ = true;
  }

  std::vector<std::uint8_t>& out_;
  MisState state_ = MisState::kUndecided;
  std::uint64_t value_ = 0;
  bool halted_ = false;
};

}  // namespace

congest::ProcessFactory luby_mis_factory(std::vector<std::uint8_t>& out) {
  return [&out](NodeId, const Graph&) -> std::unique_ptr<congest::Process> {
    return std::make_unique<LubyProcess>(out);
  };
}

MisResult luby_mis_distributed(congest::Network& net, int max_rounds) {
  MisResult result;
  result.in_mis.assign(
      static_cast<std::size_t>(net.graph().node_count()), 0);
  result.stats = net.run(luby_mis_factory(result.in_mis), max_rounds);
  return result;
}

MisResult luby_mis_sequential(const std::vector<std::vector<int>>& adj,
                              Rng& rng) {
  const std::size_t n = adj.size();
  MisResult result;
  result.in_mis.assign(n, 0);
  std::vector<MisState> state(n, MisState::kUndecided);
  std::vector<std::uint64_t> value(n, 0);

  auto any_undecided = [&] {
    return std::any_of(state.begin(), state.end(), [](MisState s) {
      return s == MisState::kUndecided;
    });
  };

  while (any_undecided()) {
    ++result.iterations;
    for (std::size_t v = 0; v < n; ++v) {
      if (state[v] == MisState::kUndecided) value[v] = rng();
    }
    std::vector<std::size_t> joiners;
    for (std::size_t v = 0; v < n; ++v) {
      if (state[v] != MisState::kUndecided) continue;
      bool is_local_max = true;
      for (int u : adj[v]) {
        const auto ui = static_cast<std::size_t>(u);
        if (state[ui] != MisState::kUndecided) continue;
        if (value[ui] > value[v] ||
            (value[ui] == value[v] && ui > v)) {
          is_local_max = false;
          break;
        }
      }
      if (is_local_max) joiners.push_back(v);
    }
    for (std::size_t v : joiners) {
      state[v] = MisState::kIn;
      result.in_mis[v] = 1;
      for (int u : adj[v]) {
        const auto ui = static_cast<std::size_t>(u);
        if (state[ui] == MisState::kUndecided) state[ui] = MisState::kOut;
      }
    }
  }
  return result;
}

bool is_maximal_independent_set(const std::vector<std::vector<int>>& adj,
                                const std::vector<std::uint8_t>& in_mis) {
  if (in_mis.size() != adj.size()) return false;
  for (std::size_t v = 0; v < adj.size(); ++v) {
    bool dominated = in_mis[v] != 0;
    for (int u : adj[v]) {
      const auto ui = static_cast<std::size_t>(u);
      if (in_mis[v] && in_mis[ui]) return false;  // not independent
      dominated = dominated || in_mis[ui] != 0;
    }
    if (!dominated) return false;  // not maximal
  }
  return true;
}

}  // namespace dmatch
