// Luby's randomized maximal independent set.
//
// Two forms are provided:
//  * a real distributed protocol over the communication graph (used by
//    tests and as a standalone building block), and
//  * a sequential emulation over an explicit conflict graph, which is what
//    the LOCAL generic algorithm (Algorithm 1) runs on C_M(ell) and what
//    the tests use as an oracle for MIS properties.
//
// Both use the "uniform draw, local maxima join" iteration of
// [Luby 1986 / Alon-Babai-Itai 1986], the variant the paper builds on.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace dmatch {

struct MisResult {
  std::vector<std::uint8_t> in_mis;  // one flag per node
  congest::RunStats stats;           // distributed runs only
  int iterations = 0;                // sequential runs only
};

/// Node-program factory; each decided node writes its flag into `out`
/// (which must outlive the run and have one slot per node).
congest::ProcessFactory luby_mis_factory(std::vector<std::uint8_t>& out);

/// Distributed Luby MIS on the topology of `net`'s graph.
MisResult luby_mis_distributed(congest::Network& net, int max_rounds = 1 << 20);

/// Sequential Luby MIS over an adjacency-list graph (indices 0..N-1).
/// Faithful emulation of the same random process; returns the iteration
/// count so callers can charge emulation rounds (Lemma 3.5).
MisResult luby_mis_sequential(const std::vector<std::vector<int>>& adj,
                              Rng& rng);

/// Checks that `in_mis` is independent and maximal in `adj`.
bool is_maximal_independent_set(const std::vector<std::vector<int>>& adj,
                                const std::vector<std::uint8_t>& in_mis);

}  // namespace dmatch
