// Persistent fork-join worker pool for the parallel round engine.
//
// A pool of `size()` logical workers executes one task function at a time:
// run(task) invokes task(0..size-1), with the calling thread participating
// as worker 0, and returns only after every index has finished. The pool is
// built once and reused across dispatches, so per-round overhead is two
// condition-variable handshakes rather than thread churn. With size() == 1
// no OS threads are ever created and run() degenerates to an inline call,
// which is the engine's deterministic legacy path.
//
// Memory model: everything a worker wrote during run(task) happens-before
// run() returning (the completion handshake goes through the pool mutex),
// and everything the caller wrote before run() happens-before the workers
// observing the new task. Callers therefore need no extra synchronization
// between consecutive dispatches.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/sched.hpp"

namespace dmatch::support {

class ThreadPool {
 public:
  /// `num_threads` logical workers; 0 is promoted to 1. Spawns
  /// num_threads - 1 OS threads (the caller of run() is worker 0).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return size_; }

  /// Contiguous chunk [begin, end) of `count` items owned by worker
  /// `index` out of `workers` — the balanced layout from
  /// support::balanced_range (floor(count/workers) per worker, remainder
  /// spread over the first workers). This replaced ceil-div chunking,
  /// which could hand the last worker an empty range while the first got
  /// a full one at small counts. Still a pure function of
  /// (count, workers, index) so ownership agrees across subsystems and
  /// results cannot depend on who computed the split.
  struct ChunkRange {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  [[nodiscard]] static constexpr ChunkRange chunk(std::size_t count,
                                                  unsigned workers,
                                                  unsigned index) noexcept {
    const BalancedRange r = balanced_range(count, workers, index);
    return {r.begin, r.end};
  }

  /// Execute task(i) for every i in [0, size()) and block until all
  /// complete. Tasks must not throw across this boundary for indices > 0
  /// (workers have nowhere to propagate); capture errors into per-worker
  /// state instead. An exception from the caller-run task(0) is rethrown
  /// after the remaining workers finish. Not reentrant.
  void run(const std::function<void(unsigned)>& task);

 private:
  void worker_loop(unsigned index);
  void await_workers(std::unique_lock<std::mutex>& lock);

  unsigned size_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;
};

}  // namespace dmatch::support
