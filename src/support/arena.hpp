// Per-shard bump arena for transient per-round buffers.
//
// The async executor (and any other per-round scratch producer) used to
// build fresh std::vectors every round, hitting the global allocator twice
// per node per round. An Arena hands out 64-byte-aligned bump allocations
// from shard-private blocks; reset() rewinds to empty while keeping the
// high-water blocks alive, so steady-state rounds perform zero heap calls.
//
// Arenas are strictly shard-private (single writer, same discipline as the
// executors' shard state) and must only back objects whose lifetime ends
// before the next reset(). ArenaVector destructors still run normally —
// they just return memory the arena never reuses until reset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace dmatch::support {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 1 << 16)
      : block_bytes_(block_bytes < kAlign ? kAlign : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    if (align < alignof(std::max_align_t)) align = alignof(std::max_align_t);
    std::size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (block_ >= blocks_.size() || offset + bytes > blocks_[block_].size) {
      next_block(bytes + align);
      offset = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = offset + bytes;
    return blocks_[block_].data.get() + offset;
  }

  /// Rewind to empty, keeping all blocks for reuse.
  void reset() noexcept {
    block_ = 0;
    cursor_ = 0;
  }

  /// Total bytes currently reserved across blocks (observability only).
  [[nodiscard]] std::size_t reserved_bytes() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  static constexpr std::size_t kAlign = 64;

  struct AlignedDelete {
    void operator()(std::byte* p) const noexcept {
      ::operator delete[](p, std::align_val_t(kAlign));
    }
  };
  struct Block {
    std::unique_ptr<std::byte[], AlignedDelete> data;
    std::size_t size = 0;
  };

  void next_block(std::size_t min_bytes) {
    if (block_ < blocks_.size() && cursor_ > 0) ++block_;
    while (block_ < blocks_.size() && blocks_[block_].size < min_bytes) {
      ++block_;
    }
    if (block_ >= blocks_.size()) {
      std::size_t size = block_bytes_;
      while (size < min_bytes) size *= 2;
      Block b;
      b.data.reset(static_cast<std::byte*>(
          ::operator new[](size, std::align_val_t(kAlign))));
      b.size = size;
      blocks_.push_back(std::move(b));
      block_ = blocks_.size() - 1;
    }
    cursor_ = 0;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;
  std::size_t cursor_ = 0;
};

/// std-allocator adapter over an Arena. Deallocate is a no-op; memory is
/// reclaimed wholesale by Arena::reset().
template <typename T>
struct ArenaAllocator {
  using value_type = T;

  Arena* arena = nullptr;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena& a) noexcept : arena(&a) {}
  template <typename U>
  explicit ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena(other.arena) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena == other.arena;
  }
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace dmatch::support
