// Composable fork-join scheduler for the sharded executors.
//
// The round engine and the alpha-synchronizer executor both run the same
// workload shape: a fixed set of shard tasks dispatched once per round from
// a single driver thread. `Scheduler` abstracts how those tasks reach the
// workers behind three modes that all preserve the repo's determinism
// contract (bit-identical matchings, stats and obs output for any thread
// count):
//
//  - kStatic: contiguous task ranges per worker, two condition-variable
//    handshakes per dispatch. The baseline; identical in spirit to the old
//    ThreadPool but with balanced remainder distribution.
//  - kWorkSteal: ownership of tasks is still the static balanced layout,
//    but each task carries an atomic claim flag. A worker drains its own
//    range in ascending order, then scans other workers' ranges in
//    descending order and steals unclaimed tasks. Stealing reorders
//    *execution*, never *results*: every task writes only its own
//    deterministic state slot (shard), and all cross-shard merges in the
//    executors go through canonical key order. Shard geometry is a pure
//    function of (count, num_tasks), not of which worker ran what.
//  - kRapidStart: replaces the broadcast condition-variable wakeup with a
//    tree broadcast over per-worker futex cells (C++20 atomic wait/notify):
//    the driver wakes workers 1 and 2, worker w wakes 2w+1 and 2w+2, so
//    wakeup latency is O(log P) sequential notifies instead of one thread
//    doing P of them. Completion is an atomic countdown.
//
// Task-count planning: plan_tasks() returns how many tasks a count of items
// should be split into. Static and rapid-start use one task per worker;
// work-stealing plans `steal_blocks_per_worker` blocks per worker so there
// is actually slack to steal. Executors fix their shard count once at
// construction from plan_tasks(), so shard layout never depends on the
// round-by-round schedule.
//
// Exceptions thrown by tasks are captured per task index and the lowest
// index is rethrown after the dispatch barrier, so error propagation is
// deterministic regardless of execution order.
//
// Memory model: everything workers wrote during run_tasks() happens-before
// run_tasks() returning (mutex handshake in static/steal, acquire on the
// final pending-countdown load in rapid-start), and everything the driver
// wrote before run_tasks() happens-before workers observing the task.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

namespace dmatch::support {

enum class SchedMode : std::uint8_t {
  kStatic = 0,
  kWorkSteal = 1,
  kRapidStart = 2,
};

[[nodiscard]] constexpr const char* to_string(SchedMode mode) noexcept {
  switch (mode) {
    case SchedMode::kStatic:
      return "static";
    case SchedMode::kWorkSteal:
      return "steal";
    case SchedMode::kRapidStart:
      return "rapid";
  }
  return "?";
}

/// Parses "static" / "steal" / "rapid" (the CLI spellings). Returns
/// nullopt on anything else.
[[nodiscard]] std::optional<SchedMode> parse_sched_mode(
    std::string_view name) noexcept;

struct SchedOptions {
  SchedMode mode = SchedMode::kStatic;
  /// Pin spawned workers to CPUs (worker w -> CPU w mod hardware
  /// concurrency) where the platform supports it; see
  /// Scheduler::pinning_supported(). The calling thread (worker 0) is
  /// never pinned — it belongs to the embedding application.
  bool pin_threads = false;
  /// Task blocks per worker in kWorkSteal mode (min 1). More blocks give
  /// finer-grained stealing at the cost of more per-round claim traffic.
  unsigned steal_blocks_per_worker = 4;
  /// Record per-task service time (steady_clock) and per-worker task
  /// counts. Off by default: profiling output is wall-clock dependent and
  /// must never leak into deterministic artifacts unless asked for.
  bool profile = false;
};

/// Balanced contiguous partition of `count` items into `parts` ranges:
/// every range gets floor(count/parts) items and the first count%parts
/// ranges get one extra. A pure function of (count, parts, index) so every
/// sharded component computes the identical layout.
struct BalancedRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

[[nodiscard]] constexpr BalancedRange balanced_range(std::size_t count,
                                                     unsigned parts,
                                                     unsigned index) noexcept {
  if (parts <= 1) return {0, count};
  const std::size_t base = count / parts;
  const std::size_t rem = count % parts;
  const std::size_t i = index;
  const std::size_t begin = i * base + (i < rem ? i : rem);
  return {begin, begin + base + (i < rem ? 1 : 0)};
}

/// Inverse of balanced_range: the part owning item `index` (< count).
[[nodiscard]] constexpr unsigned balanced_part_of(std::size_t count,
                                                  unsigned parts,
                                                  std::size_t index) noexcept {
  if (parts <= 1 || count == 0) return 0;
  const std::size_t base = count / parts;
  const std::size_t rem = count % parts;
  const std::size_t big = rem * (base + 1);
  if (index < big) return static_cast<unsigned>(index / (base + 1));
  return static_cast<unsigned>(rem + (index - big) / base);
}

class Scheduler {
 public:
  /// `num_threads` logical workers; 0 is promoted to 1. Spawns
  /// num_threads - 1 OS threads; the caller of run_tasks() is worker 0.
  explicit Scheduler(unsigned num_threads, SchedOptions options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] unsigned workers() const noexcept { return workers_; }
  [[nodiscard]] const SchedOptions& options() const noexcept {
    return options_;
  }

  /// How many tasks `count` items should be split into under this
  /// scheduler: min(count, workers) for static/rapid, and
  /// min(count, workers * steal_blocks_per_worker) for work-stealing.
  /// Always >= 1. Executors call this once and freeze the result as their
  /// shard count.
  [[nodiscard]] unsigned plan_tasks(std::size_t count) const noexcept;

  /// Execute task(t) exactly once for every t in [0, num_tasks) and block
  /// until all complete. The caller participates as worker 0. If any task
  /// throws, the exception for the lowest task index is rethrown after the
  /// barrier. Not reentrant.
  void run_tasks(unsigned num_tasks, const std::function<void(unsigned)>& task);

  /// Cumulative per-task service nanoseconds since the last
  /// reset_profile(); empty unless options().profile. Indexed by task id.
  [[nodiscard]] const std::vector<std::uint64_t>& task_service_ns()
      const noexcept {
    return task_ns_;
  }
  /// Cumulative tasks executed per worker since the last reset_profile();
  /// empty unless options().profile.
  [[nodiscard]] const std::vector<std::uint64_t>& worker_task_counts()
      const noexcept {
    return worker_tasks_;
  }
  void reset_profile();

  /// True when SchedOptions::pin_threads can take effect on this platform.
  [[nodiscard]] static bool pinning_supported() noexcept;

 private:
  struct alignas(64) WakeCell {
    std::atomic<std::uint64_t> gen{0};
  };

  void worker_loop_cv(unsigned w);
  void worker_loop_rapid(unsigned w);
  void wake_children(unsigned w, std::uint64_t gen);
  void execute(unsigned w);
  void run_one(unsigned w, unsigned t);
  void rethrow_lowest();
  static void pin_worker(unsigned w) noexcept;

  unsigned workers_;
  SchedOptions options_;
  std::vector<std::thread> threads_;

  // Dispatch state. For static/steal it is published under mu_; for
  // rapid-start the release store into each WakeCell publishes it.
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* task_ = nullptr;
  unsigned num_tasks_ = 0;
  std::uint64_t generation_ = 0;
  unsigned pending_workers_ = 0;
  bool stop_ = false;

  std::atomic<bool> stop_flag_{false};
  std::atomic<unsigned> pending_rapid_{0};
  std::unique_ptr<WakeCell[]> wake_;

  std::unique_ptr<std::atomic<std::uint8_t>[]> claims_;
  unsigned claims_cap_ = 0;

  std::vector<std::exception_ptr> errors_;
  std::vector<std::uint64_t> task_ns_;
  std::vector<std::uint64_t> worker_tasks_;
};

}  // namespace dmatch::support
