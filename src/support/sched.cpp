#include "support/sched.hpp"

#include <chrono>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dmatch::support {

std::optional<SchedMode> parse_sched_mode(std::string_view name) noexcept {
  if (name == "static") return SchedMode::kStatic;
  if (name == "steal" || name == "work-steal" || name == "worksteal") {
    return SchedMode::kWorkSteal;
  }
  if (name == "rapid" || name == "rapid-start" || name == "rapidstart") {
    return SchedMode::kRapidStart;
  }
  return std::nullopt;
}

Scheduler::Scheduler(unsigned num_threads, SchedOptions options)
    : workers_(num_threads == 0 ? 1 : num_threads), options_(options) {
  if (options_.steal_blocks_per_worker == 0) {
    options_.steal_blocks_per_worker = 1;
  }
  if (workers_ > 1) {
    if (options_.mode == SchedMode::kRapidStart) {
      wake_ = std::make_unique<WakeCell[]>(workers_);
    }
    threads_.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w) {
      if (options_.mode == SchedMode::kRapidStart) {
        threads_.emplace_back([this, w] { worker_loop_rapid(w); });
      } else {
        threads_.emplace_back([this, w] { worker_loop_cv(w); });
      }
    }
  }
}

Scheduler::~Scheduler() {
  if (workers_ <= 1) return;
  if (options_.mode == SchedMode::kRapidStart) {
    stop_flag_.store(true, std::memory_order_release);
    const std::uint64_t g = generation_ + 1;
    for (unsigned w = 1; w < workers_; ++w) {
      wake_[w].gen.store(g, std::memory_order_release);
      wake_[w].gen.notify_one();
    }
  } else {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    start_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

unsigned Scheduler::plan_tasks(std::size_t count) const noexcept {
  if (count == 0) return 1;
  std::size_t tasks = workers_;
  if (options_.mode == SchedMode::kWorkSteal) {
    tasks = static_cast<std::size_t>(workers_) * options_.steal_blocks_per_worker;
  }
  if (tasks > count) tasks = count;
  return tasks == 0 ? 1 : static_cast<unsigned>(tasks);
}

void Scheduler::pin_worker(unsigned w) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) hc = 1;
  CPU_SET(w % hc, &set);
  // Best effort: a failed pin (cgroup restrictions, offline CPU) leaves
  // the worker on the default mask, which is always correct.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)w;
#endif
}

bool Scheduler::pinning_supported() noexcept {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

void Scheduler::run_one(unsigned w, unsigned t) {
  using clock = std::chrono::steady_clock;
  clock::time_point t0;
  const bool prof = options_.profile;
  if (prof) t0 = clock::now();
  try {
    (*task_)(t);
  } catch (...) {
    errors_[t] = std::current_exception();
  }
  if (prof) {
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count();
    task_ns_[t] += static_cast<std::uint64_t>(ns);
    ++worker_tasks_[w];
  }
}

void Scheduler::execute(unsigned w) {
  const unsigned nt = num_tasks_;
  if (options_.mode == SchedMode::kWorkSteal) {
    // Own partition ascending, then scan victims' partitions descending so
    // thieves collide with owners at the far end of each range last.
    const BalancedRange own = balanced_range(nt, workers_, w);
    for (std::size_t t = own.begin; t < own.end; ++t) {
      if (claims_[t].exchange(1, std::memory_order_acq_rel) == 0) {
        run_one(w, static_cast<unsigned>(t));
      }
    }
    for (unsigned k = 1; k < workers_; ++k) {
      const unsigned victim = (w + k) % workers_;
      const BalancedRange vr = balanced_range(nt, workers_, victim);
      for (std::size_t t = vr.end; t > vr.begin; --t) {
        if (claims_[t - 1].exchange(1, std::memory_order_acq_rel) == 0) {
          run_one(w, static_cast<unsigned>(t - 1));
        }
      }
    }
  } else {
    const BalancedRange r = balanced_range(nt, workers_, w);
    for (std::size_t t = r.begin; t < r.end; ++t) {
      run_one(w, static_cast<unsigned>(t));
    }
  }
}

void Scheduler::worker_loop_cv(unsigned w) {
  if (options_.pin_threads) pin_worker(w);
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    execute(w);
    {
      std::lock_guard lock(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void Scheduler::worker_loop_rapid(unsigned w) {
  if (options_.pin_threads) pin_worker(w);
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t g = wake_[w].gen.load(std::memory_order_acquire);
    int spins = 0;
    while (g == seen) {
      if (++spins > 256) {
        wake_[w].gen.wait(seen, std::memory_order_acquire);
        spins = 0;
      }
      g = wake_[w].gen.load(std::memory_order_acquire);
    }
    seen = g;
    if (stop_flag_.load(std::memory_order_acquire)) return;
    wake_children(w, g);
    execute(w);
    if (pending_rapid_.fetch_sub(1, std::memory_order_release) == 1) {
      pending_rapid_.notify_all();
    }
  }
}

void Scheduler::wake_children(unsigned w, std::uint64_t gen) {
  const unsigned c1 = 2 * w + 1;
  const unsigned c2 = 2 * w + 2;
  if (c1 < workers_) {
    wake_[c1].gen.store(gen, std::memory_order_release);
    wake_[c1].gen.notify_one();
  }
  if (c2 < workers_) {
    wake_[c2].gen.store(gen, std::memory_order_release);
    wake_[c2].gen.notify_one();
  }
}

void Scheduler::rethrow_lowest() {
  for (std::exception_ptr& e : errors_) {
    if (e) {
      std::exception_ptr out = e;
      e = nullptr;
      std::rethrow_exception(out);
    }
  }
}

void Scheduler::reset_profile() {
  task_ns_.assign(task_ns_.size(), 0);
  worker_tasks_.assign(worker_tasks_.size(), 0);
}

void Scheduler::run_tasks(unsigned num_tasks,
                          const std::function<void(unsigned)>& task) {
  if (num_tasks == 0) return;
  task_ = &task;
  num_tasks_ = num_tasks;
  errors_.assign(num_tasks, nullptr);
  if (options_.profile) {
    if (task_ns_.size() < num_tasks) task_ns_.resize(num_tasks, 0);
    if (worker_tasks_.size() < workers_) worker_tasks_.resize(workers_, 0);
  }
  if (workers_ == 1 || num_tasks == 1) {
    for (unsigned t = 0; t < num_tasks; ++t) run_one(0, t);
    task_ = nullptr;
    rethrow_lowest();
    return;
  }
  if (options_.mode == SchedMode::kWorkSteal) {
    if (claims_cap_ < num_tasks) {
      claims_ = std::make_unique<std::atomic<std::uint8_t>[]>(num_tasks);
      claims_cap_ = num_tasks;
    }
    for (unsigned t = 0; t < num_tasks; ++t) {
      claims_[t].store(0, std::memory_order_relaxed);
    }
  }
  if (options_.mode == SchedMode::kRapidStart) {
    pending_rapid_.store(workers_ - 1, std::memory_order_relaxed);
    const std::uint64_t g = ++generation_;
    wake_children(0, g);
    execute(0);
    int spins = 0;
    for (;;) {
      const unsigned p = pending_rapid_.load(std::memory_order_acquire);
      if (p == 0) break;
      if (++spins > 256) {
        pending_rapid_.wait(p, std::memory_order_acquire);
        spins = 0;
      }
    }
  } else {
    {
      std::lock_guard lock(mu_);
      pending_workers_ = workers_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    execute(0);
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
  }
  task_ = nullptr;
  rethrow_lowest();
}

}  // namespace dmatch::support
