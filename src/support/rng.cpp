#include "support/rng.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace dmatch {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  DMATCH_EXPECTS(bound > 0);
  // Rejection loop to remove modulo bias entirely.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::coin(double p) noexcept { return uniform01() < p; }

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
  // Mix the current state with the stream id through SplitMix64 twice so
  // that consecutive stream ids land far apart.
  std::uint64_t mix = s_[0] ^ (s_[3] * 0x9e3779b97f4a7c15ULL);
  mix ^= stream_id + 0x632be59bd9b4e019ULL;
  std::uint64_t sm = mix;
  (void)splitmix64(sm);
  return Rng(splitmix64(sm));
}

double sample_max_of_uniforms(Rng& rng, double m) noexcept {
  // P[max <= x] = x^m  =>  max = U^(1/m). For enormous m the result is
  // within double rounding of 1, which is the correct limit behaviour.
  const double u = rng.uniform01();
  if (m <= 1.0) return u;
  return std::pow(u, 1.0 / m);
}

}  // namespace dmatch
