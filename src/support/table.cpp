#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace dmatch {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DMATCH_EXPECTS(!headers_.empty());
}

Table& Table::row() {
  DMATCH_EXPECTS(rows_.empty() || rows_.back().size() == headers_.size());
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& text) {
  DMATCH_EXPECTS(!rows_.empty() && rows_.back().size() < headers_.size());
  rows_.back().push_back(text);
  return *this;
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return cell(ss.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << text << std::string(width[c] - text.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace dmatch
