// Bit-accounted message encoding.
//
// CONGEST proofs are about message *bits*, so the simulator charges exactly
// what a protocol writes. BitWriter packs fields little-endian-within-word;
// BitReader replays them in order. A field is (value, width) with
// width <= 64; the reader must consume the same widths in the same order,
// which every protocol in this repository does by construction (symmetric
// encode/decode functions).
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace dmatch {

class BitWriter {
 public:
  /// Append `width` low bits of `value`. Requires 0 < width <= 64 and that
  /// value fits in `width` bits.
  void write(std::uint64_t value, unsigned width);

  /// Convenience: unsigned value with its exact required width.
  void write_bool(bool b) { write(b ? 1 : 0, 1); }

  [[nodiscard]] std::uint32_t bit_count() const noexcept { return bits_; }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  std::vector<std::uint64_t> take_words() && noexcept {
    return std::move(words_);
  }

 private:
  std::vector<std::uint64_t> words_;
  std::uint32_t bits_ = 0;
};

class BitReader {
 public:
  BitReader(const std::vector<std::uint64_t>& words,
            std::uint32_t bit_count) noexcept
      : words_(&words), bits_(bit_count) {}

  /// Read back `width` bits. Requires the same (width) sequence as written.
  std::uint64_t read(unsigned width);

  bool read_bool() { return read(1) != 0; }

  [[nodiscard]] std::uint32_t remaining() const noexcept {
    return bits_ - cursor_;
  }

 private:
  const std::vector<std::uint64_t>* words_;
  std::uint32_t bits_;
  std::uint32_t cursor_ = 0;
};

/// Number of bits needed to represent `value` (at least 1).
constexpr unsigned bit_width_for(std::uint64_t value) noexcept {
  unsigned w = 1;
  while (value >>= 1) ++w;
  return w;
}

}  // namespace dmatch
