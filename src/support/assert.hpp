// Precondition / postcondition / invariant checking.
//
// Follows the Core Guidelines I.5-I.8 style (Expects/Ensures) but always-on:
// the simulator is a correctness tool, so we never compile checks out.
// Violations throw, so tests can assert on them and long experiment sweeps
// fail loudly instead of silently producing garbage.
#pragma once

#include <stdexcept>
#include <string>

namespace dmatch {

/// Thrown when a DMATCH_EXPECTS / DMATCH_ENSURES / DMATCH_ASSERT check fails.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace dmatch

#define DMATCH_EXPECTS(cond)                                                 \
  do {                                                                       \
    if (!(cond))                                                             \
      ::dmatch::detail::contract_failed("precondition", #cond, __FILE__,     \
                                        __LINE__);                           \
  } while (false)

#define DMATCH_ENSURES(cond)                                                 \
  do {                                                                       \
    if (!(cond))                                                             \
      ::dmatch::detail::contract_failed("postcondition", #cond, __FILE__,    \
                                        __LINE__);                           \
  } while (false)

#define DMATCH_ASSERT(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::dmatch::detail::contract_failed("invariant", #cond, __FILE__,        \
                                        __LINE__);                           \
  } while (false)
