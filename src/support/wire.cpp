#include "support/wire.hpp"

namespace dmatch {

void BitWriter::write(std::uint64_t value, unsigned width) {
  DMATCH_EXPECTS(width >= 1 && width <= 64);
  DMATCH_EXPECTS(width == 64 || (value >> width) == 0);

  const std::uint32_t word_index = bits_ / 64;
  const unsigned offset = bits_ % 64;
  if (word_index == words_.size()) words_.push_back(0);

  words_[word_index] |= value << offset;
  const unsigned spill = (offset + width > 64) ? offset + width - 64 : 0;
  if (spill > 0) {
    // High `spill` bits did not fit; put them at the bottom of a new word.
    words_.push_back(value >> (width - spill));
  }
  bits_ += width;
}

std::uint64_t BitReader::read(unsigned width) {
  DMATCH_EXPECTS(width >= 1 && width <= 64);
  DMATCH_EXPECTS(cursor_ + width <= bits_);

  const std::uint32_t word_index = cursor_ / 64;
  const unsigned offset = cursor_ % 64;
  std::uint64_t value = (*words_)[word_index] >> offset;
  const unsigned got = 64 - offset;
  if (got < width) {
    value |= (*words_)[word_index + 1] << got;
  }
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;
  cursor_ += width;
  return value;
}

}  // namespace dmatch
