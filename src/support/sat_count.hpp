// Saturating 128-bit counter.
//
// Algorithm 3 counts half-augmenting paths; the counts obey
// n_v <= Delta^ceil(d(v)/2) (Lemma 3.8) and can exceed any fixed-width
// integer for deep phases on dense graphs. The lottery only needs the
// counts for (a) sampling the maximum of n_y uniforms and (b) choosing a
// backward edge proportionally, and both degrade gracefully under
// saturation (see DESIGN.md "Faithfulness notes"), so a saturating counter
// keeps the protocol total and branch-free.
#pragma once

#include <cstdint>

#include "support/assert.hpp"

namespace dmatch {

/// Non-negative counter that saturates at 2^127 - 1 instead of wrapping.
class SatCount {
  // __int128 is a GCC/Clang extension; __extension__ silences -Wpedantic.
  __extension__ using u128 = unsigned __int128;

 public:
  constexpr SatCount() noexcept = default;
  constexpr explicit SatCount(std::uint64_t v) noexcept : value_(v) {}

  static constexpr SatCount saturated() noexcept {
    SatCount c;
    c.value_ = kMax;
    return c;
  }

  [[nodiscard]] constexpr bool is_saturated() const noexcept {
    return value_ == kMax;
  }
  [[nodiscard]] constexpr bool is_zero() const noexcept {
    return value_ == 0;
  }

  /// Saturating addition.
  constexpr SatCount& operator+=(SatCount other) noexcept {
    if (value_ > kMax - other.value_) {
      value_ = kMax;
    } else {
      value_ += other.value_;
    }
    return *this;
  }

  friend constexpr SatCount operator+(SatCount a, SatCount b) noexcept {
    a += b;
    return a;
  }

  friend constexpr bool operator==(SatCount a, SatCount b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator<(SatCount a, SatCount b) noexcept {
    return a.value_ < b.value_;
  }

  /// Value as a double (saturates to ~1.7e38; fine for lottery sampling).
  [[nodiscard]] constexpr double as_double() const noexcept {
    return static_cast<double>(value_);
  }

  /// Low 64 bits if the value fits, otherwise UINT64_MAX.
  [[nodiscard]] constexpr std::uint64_t clamped_u64() const noexcept {
    constexpr u128 u64max = ~std::uint64_t{0};
    return value_ > u64max ? ~std::uint64_t{0}
                           : static_cast<std::uint64_t>(value_);
  }

  /// Wire encoding: two 64-bit words (hi, lo).
  [[nodiscard]] constexpr std::uint64_t hi() const noexcept {
    return static_cast<std::uint64_t>(value_ >> 64);
  }
  [[nodiscard]] constexpr std::uint64_t lo() const noexcept {
    return static_cast<std::uint64_t>(value_);
  }
  static constexpr SatCount from_words(std::uint64_t hi,
                                       std::uint64_t lo) noexcept {
    SatCount c;
    c.value_ = (static_cast<u128>(hi) << 64) | lo;
    if (c.value_ > kMax) c.value_ = kMax;
    return c;
  }

 private:
  // 2^127 - 1: keeps the top bit free so accidental signed reads never trap.
  static constexpr u128 kMax = ~static_cast<u128>(0) >> 1;

  u128 value_ = 0;
};

}  // namespace dmatch
