// Sharded SoA register slabs for the round engine's hot per-node state.
//
// A ShardSlab<T> stores `count` logical values partitioned into the
// balanced contiguous shard layout (support::balanced_range). Each shard's
// values live in their own 64-byte-aligned segment, so two shards never
// share a cache line and the single-writer-per-shard discipline of the
// executors produces no false sharing. Within a shard the values are
// contiguous in logical order, so the round loop's linear scans stay
// sequential.
//
// Indexing: shard_view(s) returns a pointer P such that P[v] is node v's
// slot for every v in range(s) — i.e. the view is biased by the shard's
// global begin, letting shard code keep using global node ids with zero
// arithmetic per access. at(v) resolves the owning shard for cold
// cross-shard paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "support/sched.hpp"

namespace dmatch::support {

/// Minimal 64-byte-aligned allocator so plain std::vector buffers can back
/// cache-line-aligned slabs and mailbox stamp arrays.
template <typename T, std::size_t Align = 64>
struct AlignedAlloc {
  using value_type = T;
  // The non-type Align parameter defeats allocator_traits' automatic
  // rebind, so spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two >= alignof(T)");

  AlignedAlloc() noexcept = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (p != nullptr) {
      ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
    }
  }
  template <typename U>
  [[nodiscard]] bool operator==(const AlignedAlloc<U, Align>&) const noexcept {
    return true;
  }
};

template <typename T>
class ShardSlab {
  static_assert(64 % sizeof(T) == 0,
                "slab element size must divide the 64-byte line so shard "
                "segments can stay line-aligned without interior padding");

 public:
  ShardSlab() = default;

  /// (Re)build the slab for `count` values across `shards` segments, every
  /// slot initialized to `init`. Layout is the balanced_range partition.
  void reset(std::size_t count, unsigned shards, const T& init) {
    count_ = count;
    shards_ = shards == 0 ? 1 : shards;
    base_.assign(shards_, 0);
    std::size_t total = 0;
    constexpr std::size_t kPerLine = 64 / sizeof(T);
    for (unsigned s = 0; s < shards_; ++s) {
      base_[s] = total;
      const BalancedRange r = balanced_range(count_, shards_, s);
      const std::size_t len = r.end - r.begin;
      // Round each segment up to whole cache lines; padding slots are
      // initialized but never addressed through the public API.
      total += (len + kPerLine - 1) / kPerLine * kPerLine;
    }
    data_.assign(total, init);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] unsigned shards() const noexcept { return shards_; }
  [[nodiscard]] BalancedRange range(unsigned s) const noexcept {
    return balanced_range(count_, shards_, s);
  }

  /// Globally-indexed view of shard s: valid for indices in range(s).
  [[nodiscard]] T* shard_view(unsigned s) noexcept {
    return data_.data() + base_[s] - range(s).begin;
  }
  [[nodiscard]] const T* shard_view(unsigned s) const noexcept {
    return data_.data() + base_[s] - range(s).begin;
  }

  [[nodiscard]] T& at(std::size_t global) noexcept {
    return shard_view(balanced_part_of(count_, shards_, global))[global];
  }
  [[nodiscard]] const T& at(std::size_t global) const noexcept {
    return shard_view(balanced_part_of(count_, shards_, global))[global];
  }

  /// Set every value slot (not the padding) to `v`.
  void fill(const T& v) {
    for (unsigned s = 0; s < shards_; ++s) {
      T* view = shard_view(s);
      const BalancedRange r = range(s);
      for (std::size_t i = r.begin; i < r.end; ++i) view[i] = v;
    }
  }

  /// Copy all values out in logical order (out is resized to count()).
  void copy_to(std::vector<T>& out) const {
    out.resize(count_);
    for (unsigned s = 0; s < shards_; ++s) {
      const T* view = shard_view(s);
      const BalancedRange r = range(s);
      for (std::size_t i = r.begin; i < r.end; ++i) out[i] = view[i];
    }
  }

  /// Restore all values from a logical-order vector of size count().
  void assign_from(const std::vector<T>& in) {
    for (unsigned s = 0; s < shards_; ++s) {
      T* view = shard_view(s);
      const BalancedRange r = range(s);
      for (std::size_t i = r.begin; i < r.end; ++i) view[i] = in[i];
    }
  }

 private:
  std::vector<T, AlignedAlloc<T>> data_;
  std::vector<std::size_t> base_;
  std::size_t count_ = 0;
  unsigned shards_ = 1;
};

}  // namespace dmatch::support
