// Minimal fixed-width table writer used by the benchmark binaries.
//
// Each experiment prints a GitHub-style markdown table so EXPERIMENTS.md can
// quote bench output verbatim.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dmatch {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(const std::string& text);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(double value, int precision = 4);

  /// Render as a markdown table with aligned columns.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dmatch
