#include "support/thread_pool.hpp"

namespace dmatch::support {

ThreadPool::ThreadPool(unsigned num_threads)
    : size_(num_threads == 0 ? 1 : num_threads) {
  workers_.reserve(size_ - 1);
  for (unsigned i = 1; i < size_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop(unsigned index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* task = nullptr;
    {
      std::unique_lock lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
    }
    (*task)(index);
    {
      std::lock_guard lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::await_workers(std::unique_lock<std::mutex>& lock) {
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  task_ = nullptr;
}

void ThreadPool::run(const std::function<void(unsigned)>& task) {
  if (size_ == 1) {
    task(0);
    return;
  }
  {
    std::lock_guard lock(mu_);
    task_ = &task;
    pending_ = size_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  try {
    task(0);
  } catch (...) {
    std::unique_lock lock(mu_);
    await_workers(lock);
    throw;
  }
  std::unique_lock lock(mu_);
  await_workers(lock);
}

}  // namespace dmatch::support
