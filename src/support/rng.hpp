// Deterministic random number generation for the simulator.
//
// Every distributed node owns an independent stream forked from
// (experiment seed, node id), so runs are reproducible regardless of
// scheduling order and each node's randomness is private, as the CONGEST
// model requires.
#pragma once

#include <cstdint>
#include <limits>

namespace dmatch {

/// xoshiro256** engine seeded via SplitMix64. Satisfies
/// std::uniform_random_bit_generator, so it composes with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool coin(double p = 0.5) noexcept;

  /// Derive an independent stream for a sub-entity (e.g. a node id).
  /// fork(a) and fork(b) are decorrelated for a != b.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept;

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step; exposed because it is also a good cheap hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Sample the maximum of `m` i.i.d. Uniform(0,1) variables in O(1) via the
/// inverse CDF: max ~ U^(1/m). `m` is a real so callers may pass saturated
/// counts; requires m >= 1. Used by the Algorithm 3 token lottery.
double sample_max_of_uniforms(Rng& rng, double m) noexcept;

}  // namespace dmatch
