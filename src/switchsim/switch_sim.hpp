// Input-queued switch simulator (the paper's Figure 1 motivation).
//
// A P-port switch keeps one virtual output queue (VOQ) per (input, output)
// pair. Each cycle: packets arrive according to a traffic pattern, a
// scheduler computes a matching between inputs and outputs on the bipartite
// *request graph* (an edge wherever a VOQ is non-empty, weighted by queue
// length), and one packet crosses the fabric per matched pair. Throughput
// and delay directly reflect matching quality, which is how the paper
// motivates (1 - eps)-MCM over the classical maximal matchings (PIM/iSLIP
// are II-style).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch::switchsim {

struct TrafficConfig {
  enum class Pattern {
    kUniform,   // each packet picks a uniform output
    kDiagonal,  // output = (input + cycle) mod P: adversarial hot pairing
    kBursty,    // on/off sources: geometric bursts to a fixed output
  };
  Pattern pattern = Pattern::kUniform;
  double load = 0.8;          // arrival probability per input per cycle
  int mean_burst_length = 8;  // kBursty only
};

/// A scheduler maps the request graph (inputs 0..P-1, outputs P..2P-1,
/// edge weight = VOQ occupancy) to a matching. `cycle` lets stateful
/// schedulers (e.g. round-robin pointers) evolve.
using Scheduler = std::function<Matching(const Graph& requests, int cycle)>;

struct SwitchStats {
  std::uint64_t arrived = 0;
  std::uint64_t delivered = 0;
  std::uint64_t total_delay_cycles = 0;  // summed over delivered packets
  std::uint64_t backlog = 0;             // packets left in VOQs at the end
  int cycles = 0;

  [[nodiscard]] double throughput() const {
    return arrived == 0 ? 0.0
                        : static_cast<double>(delivered) /
                              static_cast<double>(arrived);
  }
  [[nodiscard]] double mean_delay() const {
    return delivered == 0 ? 0.0
                          : static_cast<double>(total_delay_cycles) /
                                static_cast<double>(delivered);
  }
};

/// Simulate `cycles` cycles of a P-port switch under `traffic`, using
/// `scheduler` each cycle. Deterministic in (arguments, seed).
SwitchStats simulate_switch(int ports, int cycles,
                            const TrafficConfig& traffic,
                            const Scheduler& scheduler, std::uint64_t seed);

/// Ready-made schedulers for the examples and benches.
/// Maximum matching via Hopcroft-Karp: the centralized ideal.
Matching schedule_maximum(const Graph& requests, int cycle);
/// Distributed Israeli-Itai maximal matching (the II/PIM baseline).
Matching schedule_israeli_itai(const Graph& requests, int cycle,
                               std::uint64_t seed);
/// The paper's bipartite (1 - 1/k)-MCM.
Matching schedule_bipartite_mcm(const Graph& requests, int cycle, int k,
                                std::uint64_t seed);

/// Max-weight matching on queue lengths (Hungarian): the classically
/// throughput-optimal scheduler [McKeown et al.]; centralized reference.
Matching schedule_max_weight(const Graph& requests, int cycle);
/// Distributed (1/2 - eps)-MWM on queue lengths (Theorem 4.5): the
/// decentralized approximation of the throughput-optimal rule.
Matching schedule_half_mwm(const Graph& requests, int cycle, double epsilon,
                           std::uint64_t seed);

/// iSLIP [McKeown 1999]: the deterministic round-robin refinement of
/// PIM/II that ships in real routers. Stateful (grant/accept pointers
/// persist across cycles), so it is a class exposing a Scheduler.
class IslipScheduler {
 public:
  /// `iterations`: request/grant/accept passes per cycle (iSLIP converges
  /// to a maximal matching in O(log P) iterations; routers often use 1-4).
  explicit IslipScheduler(int ports, int iterations = 3);

  Matching operator()(const Graph& requests, int cycle);

 private:
  int ports_;
  int iterations_;
  std::vector<int> grant_pointer_;   // per output
  std::vector<int> accept_pointer_;  // per input
};

}  // namespace dmatch::switchsim
