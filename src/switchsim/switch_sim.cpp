#include "switchsim/switch_sim.hpp"

#include <deque>

#include "congest/network.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/israeli_itai.hpp"
#include "core/half_mwm.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/hungarian.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace dmatch::switchsim {

namespace {

/// Per-input on/off source state for bursty traffic.
struct BurstState {
  int remaining = 0;
  int output = 0;
};

Graph build_request_graph(
    int ports, const std::vector<std::vector<std::deque<int>>>& voq) {
  std::vector<Edge> edges;
  for (int i = 0; i < ports; ++i) {
    for (int j = 0; j < ports; ++j) {
      const auto& q = voq[static_cast<std::size_t>(i)]
                         [static_cast<std::size_t>(j)];
      if (!q.empty()) {
        edges.push_back({static_cast<NodeId>(i),
                         static_cast<NodeId>(ports + j),
                         static_cast<Weight>(q.size())});
      }
    }
  }
  return Graph::from_edges(2 * ports, std::move(edges));
}

}  // namespace

SwitchStats simulate_switch(int ports, int cycles,
                            const TrafficConfig& traffic,
                            const Scheduler& scheduler, std::uint64_t seed) {
  DMATCH_EXPECTS(ports >= 2 && cycles >= 1);
  DMATCH_EXPECTS(traffic.load >= 0.0 && traffic.load <= 1.0);

  Rng rng(seed);
  // voq[i][j] holds arrival cycles of queued packets from input i to j.
  std::vector<std::vector<std::deque<int>>> voq(
      static_cast<std::size_t>(ports),
      std::vector<std::deque<int>>(static_cast<std::size_t>(ports)));
  std::vector<BurstState> burst(static_cast<std::size_t>(ports));

  SwitchStats stats;
  stats.cycles = cycles;

  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Arrivals.
    for (int i = 0; i < ports; ++i) {
      bool arrive = false;
      int out = 0;
      switch (traffic.pattern) {
        case TrafficConfig::Pattern::kUniform:
          arrive = rng.coin(traffic.load);
          out = static_cast<int>(
              rng.uniform(static_cast<std::uint64_t>(ports)));
          break;
        case TrafficConfig::Pattern::kDiagonal:
          arrive = rng.coin(traffic.load);
          out = (i + cycle) % ports;
          break;
        case TrafficConfig::Pattern::kBursty: {
          BurstState& b = burst[static_cast<std::size_t>(i)];
          if (b.remaining == 0 && rng.coin(traffic.load /
                                           traffic.mean_burst_length)) {
            b.remaining = 1 + static_cast<int>(rng.uniform(
                                  2 * traffic.mean_burst_length - 1));
            b.output = static_cast<int>(
                rng.uniform(static_cast<std::uint64_t>(ports)));
          }
          if (b.remaining > 0) {
            --b.remaining;
            arrive = true;
            out = b.output;
          }
          break;
        }
      }
      if (arrive) {
        voq[static_cast<std::size_t>(i)][static_cast<std::size_t>(out)]
            .push_back(cycle);
        ++stats.arrived;
      }
    }

    // Schedule and transfer.
    const Graph requests = build_request_graph(ports, voq);
    if (requests.edge_count() == 0) continue;
    const Matching m = scheduler(requests, cycle);
    DMATCH_ASSERT(m.is_valid(requests));
    for (EdgeId e : m.edges(requests)) {
      const Edge& ed = requests.edge(e);
      const int in = ed.u;          // inputs are 0..P-1
      const int out = ed.v - ports; // outputs are P..2P-1
      auto& q =
          voq[static_cast<std::size_t>(in)][static_cast<std::size_t>(out)];
      DMATCH_ASSERT(!q.empty());
      stats.total_delay_cycles +=
          static_cast<std::uint64_t>(cycle - q.front());
      q.pop_front();
      ++stats.delivered;
    }
  }

  for (const auto& row : voq) {
    for (const auto& q : row) stats.backlog += q.size();
  }
  return stats;
}

Matching schedule_maximum(const Graph& requests, int cycle) {
  (void)cycle;
  return hopcroft_karp(requests);
}

Matching schedule_israeli_itai(const Graph& requests, int cycle,
                               std::uint64_t seed) {
  congest::Network net(requests, congest::Model::kCongest,
                       seed ^ (static_cast<std::uint64_t>(cycle) * 0x9e37ULL));
  return israeli_itai(net).matching;
}

Matching schedule_max_weight(const Graph& requests, int cycle) {
  (void)cycle;
  const auto side = requests.bipartition();
  DMATCH_EXPECTS(side.has_value());
  return hungarian_mwm(requests, *side);
}

Matching schedule_half_mwm(const Graph& requests, int cycle, double epsilon,
                           std::uint64_t seed) {
  HalfMwmOptions options;
  options.epsilon = epsilon;
  options.black_box = HalfMwmOptions::BlackBox::kLocallyDominant;
  options.seed = seed ^ (static_cast<std::uint64_t>(cycle) * 0x2545fULL);
  return half_mwm(requests, options).matching;
}

IslipScheduler::IslipScheduler(int ports, int iterations)
    : ports_(ports),
      iterations_(iterations),
      grant_pointer_(static_cast<std::size_t>(ports), 0),
      accept_pointer_(static_cast<std::size_t>(ports), 0) {
  DMATCH_EXPECTS(ports >= 1 && iterations >= 1);
}

Matching IslipScheduler::operator()(const Graph& requests, int cycle) {
  (void)cycle;
  DMATCH_EXPECTS(requests.node_count() == 2 * ports_);
  // requested[i][j]: input i has a packet for output j.
  std::vector<std::vector<char>> requested(
      static_cast<std::size_t>(ports_),
      std::vector<char>(static_cast<std::size_t>(ports_), false));
  for (EdgeId e = 0; e < requests.edge_count(); ++e) {
    const Edge& ed = requests.edge(e);
    requested[static_cast<std::size_t>(ed.u)]
             [static_cast<std::size_t>(ed.v - ports_)] = true;
  }

  std::vector<int> input_match(static_cast<std::size_t>(ports_), -1);
  std::vector<int> output_match(static_cast<std::size_t>(ports_), -1);

  for (int iter = 0; iter < iterations_; ++iter) {
    // Grant: each unmatched output picks the requesting unmatched input
    // closest (cyclically) to its grant pointer.
    std::vector<int> granted_input(static_cast<std::size_t>(ports_), -1);
    for (int j = 0; j < ports_; ++j) {
      if (output_match[static_cast<std::size_t>(j)] >= 0) continue;
      const int start = grant_pointer_[static_cast<std::size_t>(j)];
      for (int k = 0; k < ports_; ++k) {
        const int i = (start + k) % ports_;
        if (input_match[static_cast<std::size_t>(i)] >= 0) continue;
        if (requested[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(j)]) {
          granted_input[static_cast<std::size_t>(j)] = i;
          break;
        }
      }
    }
    // Accept: each input with grants accepts the output closest to its
    // accept pointer; pointers advance only on accept in the first
    // iteration (the iSLIP "pointer update" rule that prevents
    // starvation).
    bool any = false;
    for (int i = 0; i < ports_; ++i) {
      if (input_match[static_cast<std::size_t>(i)] >= 0) continue;
      const int start = accept_pointer_[static_cast<std::size_t>(i)];
      for (int k = 0; k < ports_; ++k) {
        const int j = (start + k) % ports_;
        if (granted_input[static_cast<std::size_t>(j)] != i) continue;
        input_match[static_cast<std::size_t>(i)] = j;
        output_match[static_cast<std::size_t>(j)] = i;
        any = true;
        if (iter == 0) {
          accept_pointer_[static_cast<std::size_t>(i)] = (j + 1) % ports_;
          grant_pointer_[static_cast<std::size_t>(j)] = (i + 1) % ports_;
        }
        break;
      }
    }
    if (!any) break;
  }

  std::vector<EdgeId> chosen;
  for (int i = 0; i < ports_; ++i) {
    const int j = input_match[static_cast<std::size_t>(i)];
    if (j < 0) continue;
    const EdgeId e = requests.find_edge(static_cast<NodeId>(i),
                                        static_cast<NodeId>(ports_ + j));
    DMATCH_ASSERT(e != kNoEdge);
    chosen.push_back(e);
  }
  return Matching::from_edge_ids(requests, chosen);
}

Matching schedule_bipartite_mcm(const Graph& requests, int cycle, int k,
                                std::uint64_t seed) {
  const auto side = requests.bipartition();
  DMATCH_EXPECTS(side.has_value());
  congest::Network net(requests, congest::Model::kCongest,
                       seed ^ (static_cast<std::uint64_t>(cycle) * 0x517cULL));
  BipartiteMcmOptions options;
  options.k = k;
  return bipartite_mcm(net, *side, options).matching;
}

}  // namespace dmatch::switchsim
