#include "core/b_matching.hpp"

#include <algorithm>

#include "graph/blossom.hpp"
#include "graph/matching.hpp"
#include "support/assert.hpp"

namespace dmatch {

namespace {

/// The Tutte reduction graph plus the bookkeeping to map matchings back.
struct Gadget {
  Graph graph;
  // For original edge e: the gadget's internal edge id and the ids of the
  // two gadget nodes (e_u, e_v).
  std::vector<NodeId> e_u;
  std::vector<NodeId> e_v;
};

Gadget build_gadget(const Graph& g, const std::vector<int>& capacity) {
  DMATCH_EXPECTS(capacity.size() == static_cast<std::size_t>(g.node_count()));
  for (int c : capacity) DMATCH_EXPECTS(c >= 0);

  Gadget out;
  // Node copies first: copy_start[v] .. copy_start[v] + capacity[v) - 1.
  std::vector<NodeId> copy_start(static_cast<std::size_t>(g.node_count()), 0);
  NodeId next = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    copy_start[static_cast<std::size_t>(v)] = next;
    next += capacity[static_cast<std::size_t>(v)];
  }
  out.e_u.resize(static_cast<std::size_t>(g.edge_count()));
  out.e_v.resize(static_cast<std::size_t>(g.edge_count()));

  std::vector<Edge> edges;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    const NodeId eu = next++;
    const NodeId ev = next++;
    out.e_u[static_cast<std::size_t>(e)] = eu;
    out.e_v[static_cast<std::size_t>(e)] = ev;
    edges.push_back({eu, ev, 1.0});
    for (int i = 0; i < capacity[static_cast<std::size_t>(ed.u)]; ++i) {
      edges.push_back(
          {static_cast<NodeId>(copy_start[static_cast<std::size_t>(ed.u)] + i),
           eu, 1.0});
    }
    for (int i = 0; i < capacity[static_cast<std::size_t>(ed.v)]; ++i) {
      edges.push_back(
          {static_cast<NodeId>(copy_start[static_cast<std::size_t>(ed.v)] + i),
           ev, 1.0});
    }
  }
  out.graph = Graph::from_edges(next, std::move(edges));
  return out;
}

std::vector<EdgeId> selected_from_matching(const Graph& g, const Gadget& gad,
                                           const Matching& m) {
  std::vector<EdgeId> selected;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const NodeId eu = gad.e_u[static_cast<std::size_t>(e)];
    const NodeId ev = gad.e_v[static_cast<std::size_t>(e)];
    // Edge selected iff both gadget nodes matched outwards (to copies).
    if (m.is_matched(eu) && m.is_matched(ev) && m.mate(eu) != ev) {
      selected.push_back(e);
    }
  }
  return selected;
}

}  // namespace

bool is_valid_b_matching(const Graph& g, const std::vector<int>& capacity,
                         const std::vector<EdgeId>& selected) {
  if (capacity.size() != static_cast<std::size_t>(g.node_count())) {
    return false;
  }
  std::vector<int> used(static_cast<std::size_t>(g.node_count()), 0);
  std::vector<char> seen(static_cast<std::size_t>(g.edge_count()), false);
  for (EdgeId e : selected) {
    if (e < 0 || e >= g.edge_count()) return false;
    if (seen[static_cast<std::size_t>(e)]) return false;
    seen[static_cast<std::size_t>(e)] = true;
    ++used[static_cast<std::size_t>(g.edge(e).u)];
    ++used[static_cast<std::size_t>(g.edge(e).v)];
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (used[static_cast<std::size_t>(v)] >
        capacity[static_cast<std::size_t>(v)]) {
      return false;
    }
  }
  return true;
}

BMatchingResult approx_max_b_matching(const Graph& g,
                                      const std::vector<int>& capacity,
                                      const GeneralMcmOptions& options) {
  const Gadget gad = build_gadget(g, capacity);
  BMatchingResult result;
  result.gadget_nodes = gad.graph.node_count();
  GeneralMcmResult inner = general_mcm(gad.graph, options);
  result.stats = inner.stats;
  result.selected = selected_from_matching(g, gad, inner.matching);
  DMATCH_ENSURES(is_valid_b_matching(g, capacity, result.selected));
  return result;
}

std::size_t exact_max_b_matching_size(const Graph& g,
                                      const std::vector<int>& capacity) {
  const Gadget gad = build_gadget(g, capacity);
  const Matching m = blossom_mcm(gad.graph);
  return selected_from_matching(g, gad, m).size();
}

}  // namespace dmatch
