// Public API of the dmatch library.
//
// Everything the paper contributes, behind four entry points:
//   * maximal_matching            -- Israeli-Itai 1/2-MCM baseline
//   * approx_mcm_bipartite        -- Theorem 3.10 (1 - 1/k)-MCM, CONGEST
//   * general_mcm (general_mcm.hpp) -- Theorem 3.15, general graphs
//   * half_mwm (half_mwm.hpp)     -- Theorem 4.5 (1/2 - eps)-MWM
//   * local_generic_mcm           -- Theorem 3.7, LOCAL model
// Lower-level building blocks (phases, augment iterations, delta-MWM
// boxes, the simulator itself) are exported by their own headers.
#pragma once

#include "congest/network.hpp"
#include "core/b_matching.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/delta_mwm.hpp"
#include "core/general_mcm.hpp"
#include "core/half_mwm.hpp"
#include "core/israeli_itai.hpp"
#include "core/local_generic_mcm.hpp"
#include "core/local_mwm.hpp"
#include "core/wrap_gain.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

/// Israeli-Itai maximal matching on a fresh network over g. Pass
/// net_options to pick the engine's thread count or to inject faults
/// (the driver then degrades gracefully, see IsraeliItaiResult).
inline IsraeliItaiResult maximal_matching(
    const Graph& g, std::uint64_t seed, std::uint32_t congest_factor = 48,
    const congest::Network::Options& net_options = {},
    const IsraeliItaiOptions& options = {}) {
  congest::Network net(g, congest::Model::kCongest, seed, congest_factor,
                       net_options);
  return israeli_itai(net, options);
}

/// Theorem 3.10 on a fresh network over g. The graph must be bipartite;
/// the 2-coloring is computed with Graph::bipartition(). (In the CONGEST
/// model nodes are assumed to know their side; for generated bipartite
/// workloads the coloring is part of the input.)
inline BipartiteMcmResult approx_mcm_bipartite(
    const Graph& g, std::uint64_t seed, const BipartiteMcmOptions& options = {},
    std::uint32_t congest_factor = 48,
    const congest::Network::Options& net_options = {}) {
  const auto side = g.bipartition();
  DMATCH_EXPECTS(side.has_value());
  congest::Network net(g, congest::Model::kCongest, seed, congest_factor,
                       net_options);
  return bipartite_mcm(net, *side, options);
}

/// Theorem 3.15 on general graphs (see GeneralMcmOptions for budgets).
inline GeneralMcmResult approx_mcm_general(const Graph& g,
                                           const GeneralMcmOptions& options) {
  return general_mcm(g, options);
}

/// Theorem 4.5 on weighted graphs (see HalfMwmOptions for the black box).
inline HalfMwmResult approx_mwm(const Graph& g,
                                const HalfMwmOptions& options) {
  return half_mwm(g, options);
}

}  // namespace dmatch
