#include "core/wrap_gain.hpp"

#include <algorithm>

namespace dmatch {

std::vector<EdgeId> wrap(const Graph& g, const Matching& m, EdgeId e) {
  DMATCH_EXPECTS(!m.contains(g, e));
  const Edge& ed = g.edge(e);
  std::vector<EdgeId> path;
  if (m.is_matched(ed.u)) path.push_back(m.matched_edge(ed.u));
  path.push_back(e);
  if (m.is_matched(ed.v)) path.push_back(m.matched_edge(ed.v));
  return path;
}

Weight gain(const Graph& g, const Matching& m, std::span<const EdgeId> p) {
  Weight delta = 0;
  for (EdgeId e : p) {
    delta += m.contains(g, e) ? -g.weight(e) : g.weight(e);
  }
  return delta;
}

std::vector<Weight> gain_weights(const Graph& g, const Matching& m) {
  std::vector<Weight> w(static_cast<std::size_t>(g.edge_count()), 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (m.contains(g, e)) continue;
    const Edge& ed = g.edge(e);
    Weight delta = g.weight(e);
    if (m.is_matched(ed.u)) delta -= g.weight(m.matched_edge(ed.u));
    if (m.is_matched(ed.v)) delta -= g.weight(m.matched_edge(ed.v));
    w[static_cast<std::size_t>(e)] = delta;
  }
  return w;
}

StageCheckpoint StageCheckpoint::capture(const congest::Network& net) {
  return StageCheckpoint{net.extract_matching_resilient()};
}

void StageCheckpoint::restore(congest::Network& net) const {
  net.set_matching(matching);
}

congest::RunStats run_stage_checkpointed(
    congest::Network& net, congest::ProcessFactory factory, int inner_budget,
    int max_attempts, congest::DegradationReport& degradation,
    const congest::ResilientOptions& opts) {
  DMATCH_EXPECTS(net.fault_active());
  DMATCH_EXPECTS(max_attempts >= 1);

  const StageCheckpoint checkpoint = StageCheckpoint::capture(net);
  DMATCH_OBS(obs::Observer* const ob = net.observer(); if (ob != nullptr) {
    ob->instant(obs::EventType::kCheckpointCapture, checkpoint.matching.size());
    ob->shard(0)->count(ob->ids().checkpoint_captures);
  })
  const int watchdog = congest::resilient_round_budget(inner_budget);
  congest::RunStats stats;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    [[maybe_unused]] std::uint64_t rollback_cause = 0;  // 0 trip, 1 over-cap
    try {
      stats = net.run(congest::resilient_factory(factory, opts), watchdog);
      if (!stats.completed) degradation.budget_exhausted = true;
      break;
    } catch (const ContractViolation&) {
      degradation.contract_tripped = true;
    } catch (const congest::MessageTooLarge&) {
      degradation.contract_tripped = true;
      rollback_cause = 1;
    }
    // The replay faces a fresh adversary: the network's fault nonce and
    // lifetime round clock advanced during the aborted run.
    stats = congest::RunStats{};
    checkpoint.restore(net);
    DMATCH_OBS(if (ob != nullptr) {
      ob->instant(obs::EventType::kCheckpointRollback,
                  static_cast<std::uint64_t>(attempt + 1), rollback_cause);
      ob->shard(0)->count(ob->ids().checkpoint_rollbacks);
    })
  }
  DMATCH_OBS(std::uint64_t healed_before = 0; if (ob != nullptr) {
    healed_before = degradation.dead_registers_healed +
                    degradation.torn_registers_healed;
  })
  net.heal_registers(&degradation);
  DMATCH_OBS(if (ob != nullptr) {
    ob->instant(obs::EventType::kCheckpointHeal,
                degradation.dead_registers_healed +
                    degradation.torn_registers_healed - healed_before);
    ob->shard(0)->count(ob->ids().checkpoint_heals);
  })
  return stats;
}

Matching apply_wraps(const Graph& g, const Matching& m,
                     std::span<const EdgeId> m_prime) {
  // Union of the wraps, deduplicated (wraps may overlap at M edges).
  std::vector<EdgeId> wrap_union;
  for (EdgeId e : m_prime) {
    for (EdgeId we : wrap(g, m, e)) wrap_union.push_back(we);
  }
  std::sort(wrap_union.begin(), wrap_union.end());
  wrap_union.erase(std::unique(wrap_union.begin(), wrap_union.end()),
                   wrap_union.end());

  Matching out = m;
  out.symmetric_difference(g, wrap_union);
  return out;
}

}  // namespace dmatch
