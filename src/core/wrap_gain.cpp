#include "core/wrap_gain.hpp"

#include <algorithm>

namespace dmatch {

std::vector<EdgeId> wrap(const Graph& g, const Matching& m, EdgeId e) {
  DMATCH_EXPECTS(!m.contains(g, e));
  const Edge& ed = g.edge(e);
  std::vector<EdgeId> path;
  if (m.is_matched(ed.u)) path.push_back(m.matched_edge(ed.u));
  path.push_back(e);
  if (m.is_matched(ed.v)) path.push_back(m.matched_edge(ed.v));
  return path;
}

Weight gain(const Graph& g, const Matching& m, std::span<const EdgeId> p) {
  Weight delta = 0;
  for (EdgeId e : p) {
    delta += m.contains(g, e) ? -g.weight(e) : g.weight(e);
  }
  return delta;
}

std::vector<Weight> gain_weights(const Graph& g, const Matching& m) {
  std::vector<Weight> w(static_cast<std::size_t>(g.edge_count()), 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (m.contains(g, e)) continue;
    const Edge& ed = g.edge(e);
    Weight delta = g.weight(e);
    if (m.is_matched(ed.u)) delta -= g.weight(m.matched_edge(ed.u));
    if (m.is_matched(ed.v)) delta -= g.weight(m.matched_edge(ed.v));
    w[static_cast<std::size_t>(e)] = delta;
  }
  return w;
}

Matching apply_wraps(const Graph& g, const Matching& m,
                     std::span<const EdgeId> m_prime) {
  // Union of the wraps, deduplicated (wraps may overlap at M edges).
  std::vector<EdgeId> wrap_union;
  for (EdgeId e : m_prime) {
    for (EdgeId we : wrap(g, m, e)) wrap_union.push_back(we);
  }
  std::sort(wrap_union.begin(), wrap_union.end());
  wrap_union.erase(std::unique(wrap_union.begin(), wrap_union.end()),
                   wrap_union.end());

  Matching out = m;
  out.symmetric_difference(g, wrap_union);
  return out;
}

}  // namespace dmatch
