// Algorithm 4 / Theorem 3.15: (1 - 1/k)-approximate MCM in general graphs.
//
// Each iteration colors every node red or blue by a private coin flip,
// keeps the bipartite subgraph G^ = bichromatic edges between nodes that
// are free or bichromatically matched, finds a maximal set of augmenting
// paths of length <= 2k-1 in G^ with the bipartite machinery (Aug), and
// applies them. The paper's w.h.p. budget is 2^(2k+1) (k+1) ln k
// iterations; an adaptive mode stops after `patience` consecutive
// unproductive iterations (see DESIGN.md note 3).
#pragma once

#include <cstdint>

#include "core/bipartite_mcm.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

struct GeneralMcmOptions {
  int k = 3;

  enum class Budget { kAdaptive, kFixedPaper };
  Budget budget = Budget::kAdaptive;
  /// kAdaptive: stop after this many consecutive iterations without an
  /// increase in |M| (never exceeding the paper budget).
  int patience = 25;
  /// Override the iteration cap (0 = the paper's formula).
  int max_iterations = 0;

  PhaseOptions phase;
  std::uint64_t seed = 1;
  std::uint32_t congest_factor = 48;
  /// Worker count for the simulated networks (0 = hardware concurrency).
  unsigned num_threads = 0;
  /// Scheduling policy (mode, pinning, steal granularity) for the main
  /// and Aug networks. Results are identical across modes.
  support::SchedOptions sched;
  /// Fault plan for the main network. Subsidiary Aug networks inherit the
  /// message-fault probabilities (with a fresh derived seed per iteration)
  /// and the nodes already dead on the main network as scheduled crashes.
  congest::FaultPlan fault;
  /// ARQ tuning for all resilient-layer runs (fault mode only); copied
  /// into the Aug phases as well.
  congest::ResilientOptions arq;
  /// Observability sink for the main and Aug networks (not owned; must
  /// outlive the call). nullptr = unobserved.
  obs::Observer* observer = nullptr;
};

struct GeneralMcmResult {
  Matching matching;
  congest::RunStats stats;
  int iterations = 0;
  int productive_iterations = 0;  // iterations that grew the matching
  /// What was given up when options.fault is active (all-false otherwise):
  /// protocol stages run under the resilient wrapper, registers are healed
  /// between stages, and edges at crashed nodes are swept out, so the
  /// returned matching is always valid over the surviving nodes.
  congest::DegradationReport degradation;
};

/// Paper iteration budget ceil(2^(2k+1) * (k+1) * ln k), clamped to int.
int general_mcm_paper_budget(int k);

GeneralMcmResult general_mcm(const Graph& g, const GeneralMcmOptions& options);

}  // namespace dmatch
