#include "core/delta_mwm.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/israeli_itai.hpp"
#include "core/wrap_gain.hpp"
#include "support/wire.hpp"

namespace dmatch {

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Process;

enum MsgKind : std::uint64_t { kMatchedMsg = 0, kProposeMsg = 1 };

Message dominant_msg(MsgKind kind) {
  BitWriter w;
  w.write(kind, 1);
  return Message::from_writer(std::move(w));
}

/// Locally-dominant matching node. Iterations take two rounds:
///   round 0 (mod 2): prune dead neighbors, announce a fresh match and
///                    halt, otherwise propose to the heaviest live port;
///   round 1: a mutual proposal matches the edge.
/// Edge keys (w, min id, max id) are totally ordered and evaluated
/// identically from both endpoints, so the heaviest live edge overall is
/// always mutually proposed: at least one edge matches per iteration.
class DominantProcess final : public Process {
 public:
  DominantProcess(NodeId id, const Graph& g) : id_(id) {
    alive_.assign(static_cast<std::size_t>(g.degree(id)), true);
  }

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    int proposal_from = -1;
    for (const Envelope& env : inbox) {
      auto reader = env.msg.reader();
      if (reader.read(1) == kMatchedMsg) {
        alive_[static_cast<std::size_t>(env.port)] = false;
      } else if (env.port == proposed_port_) {
        proposal_from = env.port;
      }
    }

    if (ctx.round() % 2 == 0) {
      if (matched_) {
        const Message msg = dominant_msg(kMatchedMsg);
        for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
        halted_ = true;
        return;
      }
      proposed_port_ = best_port(ctx);
      if (proposed_port_ < 0) {
        halted_ = true;  // no live neighbor remains
        return;
      }
      ctx.send(proposed_port_, dominant_msg(kProposeMsg));
    } else {
      if (!matched_ && proposal_from >= 0) {
        // Mutual proposal: we proposed to them and they proposed to us.
        ctx.set_mate_port(proposal_from);
        matched_ = true;
      }
    }
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  /// Heaviest live incident edge under the shared total order.
  int best_port(Context& ctx) const {
    int best = -1;
    Weight best_w = 0;
    NodeId best_lo = 0;
    NodeId best_hi = 0;
    for (int p = 0; p < ctx.degree(); ++p) {
      if (!alive_[static_cast<std::size_t>(p)]) continue;
      const Weight w = ctx.edge_weight(p);
      const NodeId u = ctx.neighbor_id(p);
      const NodeId lo = std::min(id_, u);
      const NodeId hi = std::max(id_, u);
      const bool better = best < 0 || w > best_w ||
                          (w == best_w &&
                           (lo > best_lo || (lo == best_lo && hi > best_hi)));
      if (better) {
        best = p;
        best_w = w;
        best_lo = lo;
        best_hi = hi;
      }
    }
    return best;
  }

  const NodeId id_;
  std::vector<char> alive_;
  bool matched_ = false;
  int proposed_port_ = -1;
  bool halted_ = false;
};

}  // namespace

DeltaMwmResult class_greedy_mwm(const Graph& g,
                                const DeltaMwmOptions& options) {
  DMATCH_EXPECTS(options.class_epsilon > 0 && options.class_epsilon < 1);
  for (EdgeId e = 0; e < g.edge_count(); ++e) DMATCH_EXPECTS(g.weight(e) > 0);

  DeltaMwmResult result;
  result.delta_guarantee = (1.0 - options.class_epsilon) / 4.0;
  result.matching = Matching(g.node_count());
  if (g.edge_count() == 0) return result;

  const Weight w_max = g.max_weight();
  const double n = std::max(2, g.node_count());
  const Weight floor_weight = options.class_epsilon * w_max / n;
  const int num_classes = static_cast<int>(
      std::ceil(std::log2(n / options.class_epsilon))) + 1;

  congest::Network::Options net_options;
  net_options.num_threads = options.num_threads;
  net_options.sched = options.sched;
  net_options.fault = options.fault;
  net_options.observer = options.observer;
  congest::Network net(g, congest::Model::kCongest, options.seed,
                       options.congest_factor, net_options);

  // class_of(e) = floor(log2(w_max / w)): class i holds weights in
  // (w_max / 2^(i+1), w_max / 2^i]. Edges lighter than the floor are
  // dropped entirely (class -1).
  std::vector<int> class_of(static_cast<std::size_t>(g.edge_count()), -1);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Weight w = g.weight(e);
    if (w < floor_weight) continue;
    const int cls = std::min(
        num_classes - 1,
        std::max(0, static_cast<int>(std::floor(std::log2(w_max / w)))));
    class_of[static_cast<std::size_t>(e)] = cls;
  }

  for (int cls = 0; cls < num_classes; ++cls) {
    IsraeliItaiOptions ii;
    ii.max_rounds = options.max_rounds;
    ii.arq = options.arq;
    ii.eligible_edges.assign(static_cast<std::size_t>(g.edge_count()), false);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      ii.eligible_edges[static_cast<std::size_t>(e)] =
          class_of[static_cast<std::size_t>(e)] == cls;
    }
    // Run the per-class maximal matching even when the class is empty: the
    // real schedule does not know class occupancy (costs O(1) rounds).
    // israeli_itai handles the fault-active case itself (resilient link
    // layer + checkpoint/restart + healing), so the registers are always
    // strictly consistent between classes.
    IsraeliItaiResult ii_result = israeli_itai(net, ii);
    result.stats.merge(ii_result.stats);
    result.degradation.merge(ii_result.degradation);
  }

  result.matching = net.extract_matching();
  return result;
}

DeltaMwmResult locally_dominant_mwm(const Graph& g,
                                    const DeltaMwmOptions& options) {
  for (EdgeId e = 0; e < g.edge_count(); ++e) DMATCH_EXPECTS(g.weight(e) > 0);

  DeltaMwmResult result;
  result.delta_guarantee = 0.5;
  congest::Network::Options net_options;
  net_options.num_threads = options.num_threads;
  net_options.sched = options.sched;
  net_options.fault = options.fault;
  net_options.observer = options.observer;
  congest::Network net(g, congest::Model::kCongest, options.seed,
                       options.congest_factor, net_options);
  const congest::ProcessFactory factory = [](NodeId v, const Graph& graph) {
    return std::make_unique<DominantProcess>(v, graph);
  };
  if (!net.fault_active()) {
    result.stats = net.run(factory, options.max_rounds);
    result.matching = net.extract_matching();
    return result;
  }
  result.stats = run_stage_checkpointed(
      net, factory, std::min(options.max_rounds, 4096),
      /*max_attempts=*/3, result.degradation, options.arq);
  result.matching = net.extract_matching();
  return result;
}

}  // namespace dmatch
