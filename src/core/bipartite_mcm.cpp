#include "core/bipartite_mcm.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "congest/resilient.hpp"
#include "graph/augmenting.hpp"
#include "support/sat_count.hpp"
#include "support/wire.hpp"

namespace dmatch {

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Process;

enum MsgKind : std::uint64_t { kCount = 0, kToken = 1, kAugment = 2 };

Message count_message(SatCount c) {
  BitWriter w;
  w.write(kCount, 2);
  w.write(c.hi(), 64);
  w.write(c.lo(), 64);
  return Message::from_writer(std::move(w));
}

Message token_message(std::uint64_t value_bits, std::uint64_t tiebreak) {
  BitWriter w;
  w.write(kToken, 2);
  w.write(value_bits, 64);
  w.write(tiebreak, 64);
  return Message::from_writer(std::move(w));
}

Message augment_message() {
  BitWriter w;
  w.write(kAugment, 2);
  return Message::from_writer(std::move(w));
}

/// Token lottery value: the sampled maximum of n_y uniforms plus a 64-bit
/// tiebreak (see DESIGN.md note 1). Doubles travel as their IEEE bits;
/// comparison happens on the decoded doubles.
struct TokenValue {
  double value = -1.0;
  std::uint64_t tiebreak = 0;

  friend bool operator<(const TokenValue& a, const TokenValue& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.tiebreak < b.tiebreak;
  }
};

std::uint64_t double_to_bits(double d) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double bits_to_double(std::uint64_t bits) {
  double d;
  __builtin_memcpy(&d, &bits, sizeof(d));
  return d;
}

/// One node of the augment-iteration protocol (counting, lottery, augment).
/// Round timeline for path length ell (all 0-based):
///   0 .. ell          counting: node at BFS depth d first hears at round d
///   2*ell+1 - t(y)    leader with paths of length t(y) launches its token
///   2*ell+1 - d       tokens cross depth-d nodes (so collisions between
///                     tokens of different-length paths still meet)
///   2*ell+1           surviving tokens reach free X nodes; AUGMENT starts
///   2*ell+1 + t       AUGMENT reaches the leader; registers are flipped
/// Every node halts after round 3*ell + 2.
class AugmentIterationProcess final : public Process {
 public:
  AugmentIterationProcess(std::uint8_t side, int ell,
                          CountingProbe* probe = nullptr)
      : side_(side), ell_(ell), probe_(probe) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    const int r = ctx.round();
    if (r == 0) init(ctx);

    // Gather this round's messages by kind.
    std::vector<std::pair<int, SatCount>> counts;
    int best_token_port = -1;
    TokenValue best_token;
    int augment_port = -1;
    for (const Envelope& env : inbox) {
      auto reader = env.msg.reader();
      switch (reader.read(2)) {
        case kCount: {
          const std::uint64_t hi = reader.read(64);
          const std::uint64_t lo = reader.read(64);
          if (!visited_) counts.emplace_back(env.port,
                                             SatCount::from_words(hi, lo));
          break;
        }
        case kToken: {
          TokenValue tv{bits_to_double(reader.read(64)), reader.read(64)};
          if (best_token_port < 0 || best_token < tv) {
            best_token = tv;
            best_token_port = env.port;
          }
          break;
        }
        case kAugment:
          DMATCH_ASSERT(augment_port < 0);
          augment_port = env.port;
          break;
        default:
          break;
      }
    }

    if (!counts.empty()) on_first_counts(ctx, r, counts);
    if (probe_ != nullptr && visited_) {
      probe_->depth[static_cast<std::size_t>(ctx.id())] = depth_;
      probe_->count[static_cast<std::size_t>(ctx.id())] = total_.as_double();
      if (depth_ == 0) probe_->count[static_cast<std::size_t>(ctx.id())] = 1;
    }
    if (is_leader_ && r == launch_round_) launch_token(ctx);
    if (best_token_port >= 0) on_token(ctx, best_token_port, best_token);
    if (augment_port >= 0) on_augment(ctx, augment_port);

    halted_ = r >= 3 * ell_ + 2;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  void init(Context& ctx) {
    mate_port_ = ctx.mate_port();
    counts_.assign(static_cast<std::size_t>(ctx.degree()), SatCount{});
    if (side_ == 0 && mate_port_ < 0) {
      // Free X node: BFS source at depth 0.
      visited_ = true;
      depth_ = 0;
      const Message msg = count_message(SatCount{1});
      for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
    }
  }

  void on_first_counts(Context& ctx, int round,
                       const std::vector<std::pair<int, SatCount>>& counts) {
    visited_ = true;
    depth_ = round;
    for (const auto& [port, c] : counts) {
      counts_[static_cast<std::size_t>(port)] += c;
      total_ += c;
    }
    if (side_ == 0) {
      // Matched X node (free X are visited at round 0): flood onward. The
      // copy sent back to the mate is discarded there (already visited).
      DMATCH_ASSERT(mate_port_ >= 0);
      if (round < ell_) {
        const Message msg = count_message(total_);
        for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
      }
    } else if (mate_port_ >= 0) {
      // Matched Y node: forward the sum to the mate only.
      if (round < ell_) ctx.send(mate_port_, count_message(total_));
    } else {
      // Free Y node: leader of n_y augmenting paths of length `round`.
      // Launch late enough that all tokens cross depth d at round
      // 2*ell + 1 - d regardless of their path length.
      is_leader_ = true;
      launch_round_ = 2 * ell_ + 1 - depth_;
      DMATCH_ASSERT(launch_round_ > ell_ - 1);
    }
  }

  void launch_token(Context& ctx) {
    DMATCH_ASSERT(!total_.is_zero());
    TokenValue tv{sample_max_of_uniforms(ctx.rng(), total_.as_double()),
                  ctx.rng()()};
    to_port_ = sample_port_by_counts(ctx);
    ctx.send(to_port_, token_message(double_to_bits(tv.value), tv.tiebreak));
  }

  void on_token(Context& ctx, int port, const TokenValue& tv) {
    // All tokens cross a node in a single round (layer synchronization),
    // so at most one forwarding decision is ever made.
    DMATCH_ASSERT(from_port_ < 0);
    from_port_ = port;
    if (side_ == 0 && mate_port_ < 0) {
      // Free X node: the token's path is selected. Flip the first edge and
      // start the trace-back.
      ctx.set_mate_port(from_port_);
      ctx.send(from_port_, augment_message());
      return;
    }
    to_port_ = side_ == 0 ? mate_port_ : sample_port_by_counts(ctx);
    ctx.send(to_port_,
             token_message(double_to_bits(tv.value), tv.tiebreak));
  }

  void on_augment(Context& ctx, int port) {
    // The trace-back must arrive along the port we forwarded the token to.
    DMATCH_ASSERT(port == to_port_);
    if (side_ == 0) {
      ctx.set_mate_port(from_port_);
    } else {
      ctx.set_mate_port(to_port_);
    }
    if (from_port_ >= 0) {
      ctx.send(from_port_, augment_message());
    }
    // from_port_ < 0 means this node is the leader: path complete.
  }

  /// Choose a port proportionally to the recorded counts (the paper's
  /// stochastic backward construction, conditioned on the winner).
  int sample_port_by_counts(Context& ctx) {
    double total = 0;
    for (const SatCount& c : counts_) total += c.as_double();
    DMATCH_ASSERT(total > 0);
    double draw = ctx.rng().uniform01() * total;
    for (std::size_t p = 0; p < counts_.size(); ++p) {
      draw -= counts_[p].as_double();
      if (draw < 0) return static_cast<int>(p);
    }
    // Floating point slack: return the last positive-count port.
    for (std::size_t p = counts_.size(); p-- > 0;) {
      if (!counts_[p].is_zero()) return static_cast<int>(p);
    }
    DMATCH_ASSERT(false);
    return -1;
  }

  const std::uint8_t side_;  // 0 = X, 1 = Y
  const int ell_;

  int mate_port_ = -1;  // matching state at the start of the iteration
  bool visited_ = false;
  int depth_ = -1;
  std::vector<SatCount> counts_;
  SatCount total_;

  bool is_leader_ = false;
  int launch_round_ = -1;

  int from_port_ = -1;  // token arrived from (towards the leader)
  int to_port_ = -1;    // token forwarded to (towards free X)

  CountingProbe* probe_ = nullptr;
  bool halted_ = false;
};

}  // namespace

CountingProbe run_counting_probe(congest::Network& net,
                                 const std::vector<std::uint8_t>& side,
                                 int ell) {
  DMATCH_EXPECTS(ell >= 1 && ell % 2 == 1);
  const auto n = static_cast<std::size_t>(net.graph().node_count());
  CountingProbe probe;
  probe.depth.assign(n, -1);
  probe.count.assign(n, 0.0);
  net.run(
      [&side, ell, &probe](NodeId v, const Graph&) {
        return std::make_unique<AugmentIterationProcess>(
            side[static_cast<std::size_t>(v)], ell, &probe);
      },
      3 * ell + 4);
  return probe;
}

congest::ProcessFactory augment_iteration_factory(
    const std::vector<std::uint8_t>& side, int ell) {
  DMATCH_EXPECTS(ell >= 1 && ell % 2 == 1);
  return [&side, ell](NodeId v, const Graph&)
             -> std::unique_ptr<congest::Process> {
    return std::make_unique<AugmentIterationProcess>(
        side[static_cast<std::size_t>(v)], ell);
  };
}

congest::RunStats run_augment_iteration(congest::Network& net,
                                        const std::vector<std::uint8_t>& side,
                                        int ell) {
  DMATCH_EXPECTS(side.size() ==
                 static_cast<std::size_t>(net.graph().node_count()));
  return net.run(augment_iteration_factory(side, ell), 3 * ell + 4);
}

namespace {

/// One augment iteration under the resilient link layer. Exceptions from
/// mid-protocol inconsistencies (a lost message can violate the protocol's
/// internal asserts) are downgraded to a degradation flag; registers are
/// healed afterwards so the network is safe to extract from or to run the
/// next iteration on.
congest::RunStats run_resilient_iteration(
    congest::Network& net, const std::vector<std::uint8_t>& side, int ell,
    const congest::ResilientOptions& arq,
    congest::DegradationReport& degradation) {
  congest::RunStats stats;
  try {
    stats = net.run(
        congest::resilient_factory(augment_iteration_factory(side, ell), arq),
        congest::resilient_round_budget(3 * ell + 4));
    degradation.budget_exhausted |= !stats.completed;
  } catch (const ContractViolation&) {
    degradation.contract_tripped = true;
  } catch (const congest::MessageTooLarge&) {
    degradation.contract_tripped = true;
  }
  net.heal_registers(&degradation);
  return stats;
}

PhaseResult run_phase_degraded(congest::Network& net,
                               const std::vector<std::uint8_t>& side, int ell,
                               const PhaseOptions& options) {
  PhaseResult result;
  const Graph& g = net.graph();

  // Under faults an iteration may be unproductive -- or shrink the matching
  // when torn registers get healed -- so the fault-free "every iteration
  // augments" argument no longer bounds the loop; a patience counter does.
  constexpr int kFaultPatience = 8;
  const bool adaptive =
      options.termination == PhaseOptions::Termination::kAdaptiveOracle;
  const int cap = g.node_count() + 2;
  int stale = 0;
  for (int i = 0; i < cap && stale < kFaultPatience; ++i) {
    net.heal_registers(&result.degradation);
    const Matching m = net.extract_matching();
    if (adaptive) {
      const auto shortest =
          bipartite_shortest_augmenting_path_length(g, side, m);
      if (!shortest.has_value() || *shortest > ell) break;
    }
    result.stats.merge(run_resilient_iteration(net, side, ell, options.arq,
                                               result.degradation));
    ++result.iterations;
    if (net.extract_matching().size() > m.size()) {
      stale = 0;
    } else {
      ++stale;
    }
  }
  return result;
}

PhaseResult run_phase_impl(congest::Network& net,
                           const std::vector<std::uint8_t>& side, int ell,
                           const PhaseOptions& options) {
  if (net.fault_active()) return run_phase_degraded(net, side, ell, options);

  PhaseResult result;
  const Graph& g = net.graph();

  if (options.termination == PhaseOptions::Termination::kFixedBudget) {
    const double log_n =
        std::log2(std::max<double>(2.0, g.node_count()));
    const double log_delta =
        std::log2(std::max<double>(2.0, g.max_degree()));
    const double log_conflict_nodes =
        log_n + (ell + 1) / 2.0 * log_delta;  // N <= n * Delta^((ell+1)/2)
    const int budget = static_cast<int>(
        std::ceil(options.mis_budget_factor * std::max(1.0, log_conflict_nodes)));
    for (int i = 0; i < budget; ++i) {
      result.stats.merge(run_augment_iteration(net, side, ell));
      ++result.iterations;
    }
    return result;
  }

  // Adaptive: consult the exact oracle between iterations. Each executed
  // iteration augments at least one path (the globally largest token cannot
  // be killed), so this terminates within n/2 iterations.
  const int hard_cap = g.node_count() + 2;
  for (int i = 0; i < hard_cap; ++i) {
    const Matching m = net.extract_matching();
    const auto shortest =
        bipartite_shortest_augmenting_path_length(g, side, m);
    if (!shortest.has_value() || *shortest > ell) return result;
    result.stats.merge(run_augment_iteration(net, side, ell));
    ++result.iterations;
  }
  DMATCH_ASSERT(false);  // unreachable: every iteration makes progress
  return result;
}

}  // namespace

PhaseResult run_phase(congest::Network& net,
                      const std::vector<std::uint8_t>& side, int ell,
                      const PhaseOptions& options) {
  DMATCH_OBS(obs::Observer* const ob = net.observer();
             if (ob != nullptr) {
               ob->phase_begin("aug.phase", static_cast<std::uint64_t>(ell));
             })
  PhaseResult result = run_phase_impl(net, side, ell, options);
  DMATCH_OBS(if (ob != nullptr) {
    ob->phase_end("aug.phase", static_cast<std::uint64_t>(ell));
  })
  return result;
}

BipartiteMcmResult bipartite_mcm(congest::Network& net,
                                 const std::vector<std::uint8_t>& side,
                                 const BipartiteMcmOptions& options) {
  DMATCH_EXPECTS(options.k >= 1);
  BipartiteMcmResult result;
  for (int ell = 1; ell <= 2 * options.k - 1; ell += 2) {
    PhaseResult pr = run_phase(net, side, ell, options.phase);
    result.stats.merge(pr.stats);
    result.degradation.merge(pr.degradation);
    result.iterations += pr.iterations;
    ++result.phases;
  }
  if (net.fault_active()) net.heal_registers(&result.degradation);
  result.matching = net.extract_matching();
  return result;
}

}  // namespace dmatch
