// Section 4 preliminaries: wrap(e) paths and the gain weight function w_M.
//
// For an edge (r, s) not in M, wrap(r, s) is the path consisting of
// (M(r), r), (r, s), (s, M(s)) -- whichever of the outer edges exist -- and
//   w_M(r, s) = g(wrap(r, s)) = w(r,s) - w(M(r),r) - w(s,M(s))
// is the change in matching weight if M is augmented along wrap(r, s).
// Matched edges get w_M = 0.
#pragma once

#include <vector>

#include "congest/network.hpp"
#include "congest/resilient.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

/// The (1 to 3) edges of wrap(e) w.r.t. m. Requires e not in m.
std::vector<EdgeId> wrap(const Graph& g, const Matching& m, EdgeId e);

/// Gain of augmenting m along an arbitrary edge set p:
/// g(p) = w(M (+) p) - w(M).
Weight gain(const Graph& g, const Matching& m, std::span<const EdgeId> p);

/// The full gain weight function: w_M per edge (0 for matched edges).
std::vector<Weight> gain_weights(const Graph& g, const Matching& m);

/// Lemma 4.1 application: M <- M (+) union of wrap(e) for e in m_prime
/// (edge ids of a matching disjoint from m). Deduplicates overlapping
/// matched edges as the paper prescribes. Returns the updated matching.
Matching apply_wraps(const Graph& g, const Matching& m,
                     std::span<const EdgeId> m_prime);

// --- Checkpoint/restart for composed drivers (Algorithm 5 stages) ---
//
// A driver that chains protocol stages on one Network (gain exchange,
// black-box delta-MWM, wrap application) owns the only authoritative
// protocol state between stages: the matching registers. StageCheckpoint
// snapshots that state at a stage boundary; if a fault trips a protocol
// contract mid-stage (DMATCH_ASSERT inside a black box, an over-cap
// message, ...), the driver restores the checkpoint and replays the
// stage instead of aborting. A replay faces a *different* adversary —
// the Network's fault-stream nonce and lifetime round clock advanced —
// so a transient contract trip is survivable, while a deterministic one
// exhausts max_attempts and degrades gracefully through healing.

/// Register snapshot at a stage boundary. Capture never mutates the
/// network (tolerates torn registers by dropping them, like resilient
/// extraction); restore rewrites all registers to the snapshot.
struct StageCheckpoint {
  Matching matching;

  [[nodiscard]] static StageCheckpoint capture(const congest::Network& net);
  void restore(congest::Network& net) const;
};

/// Run one protocol stage under the resilient link layer with
/// checkpoint/restart recovery. Requires an active fault plan (the
/// fault-free path has no adversary and needs no checkpoints):
///
///   1. snapshot the registers;
///   2. run `factory` wrapped in resilient_factory(opts) with a
///      resilient_round_budget(inner_budget) watchdog;
///   3. on a contract trip or over-cap message, record it in
///      `degradation`, roll the registers back to the snapshot and
///      retry (up to max_attempts runs in total);
///   4. heal the registers afterwards in every case.
///
/// Returns the stats of the successful run (zeros if every attempt
/// tripped; the registers then hold the healed checkpoint state).
congest::RunStats run_stage_checkpointed(
    congest::Network& net, congest::ProcessFactory factory, int inner_budget,
    int max_attempts, congest::DegradationReport& degradation,
    const congest::ResilientOptions& opts = {});

}  // namespace dmatch
