// Section 4 preliminaries: wrap(e) paths and the gain weight function w_M.
//
// For an edge (r, s) not in M, wrap(r, s) is the path consisting of
// (M(r), r), (r, s), (s, M(s)) -- whichever of the outer edges exist -- and
//   w_M(r, s) = g(wrap(r, s)) = w(r,s) - w(M(r),r) - w(s,M(s))
// is the change in matching weight if M is augmented along wrap(r, s).
// Matched edges get w_M = 0.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

/// The (1 to 3) edges of wrap(e) w.r.t. m. Requires e not in m.
std::vector<EdgeId> wrap(const Graph& g, const Matching& m, EdgeId e);

/// Gain of augmenting m along an arbitrary edge set p:
/// g(p) = w(M (+) p) - w(M).
Weight gain(const Graph& g, const Matching& m, std::span<const EdgeId> p);

/// The full gain weight function: w_M per edge (0 for matched edges).
std::vector<Weight> gain_weights(const Graph& g, const Matching& m);

/// Lemma 4.1 application: M <- M (+) union of wrap(e) for e in m_prime
/// (edge ids of a matching disjoint from m). Deduplicates overlapping
/// matched edges as the paper prescribes. Returns the updated matching.
Matching apply_wraps(const Graph& g, const Matching& m,
                     std::span<const EdgeId> m_prime);

}  // namespace dmatch
