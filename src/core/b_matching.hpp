// Capacitated matching (the "c-matching" generalization the paper's
// related-work section discusses via Koufogiannakis & Young [2011], and
// the object behind the cellular-coverage application of Patt-Shamir,
// Rawitz & Scalosub [2012] that builds on this paper's algorithm).
//
// A b-matching selects a subset of edges such that each node v is incident
// to at most capacity(v) selected edges. We reduce to plain matching with
// the classic Tutte gadget:
//   * node v becomes capacity(v) copies;
//   * edge e = (u, v) becomes a 3-path gadget  u_i -- e_u -- e_v -- v_j
//     (e_u adjacent to every copy of u, e_v to every copy of v, plus the
//     internal edge (e_u, e_v));
//   * e is selected iff both e_u and e_v are matched to node copies.
// Any matching of the gadget graph induces a valid b-matching, a maximum
// one induces a maximum b-matching, and the approximation factor of the
// matcher carries over to the b-matching size up to the slack of the
// always-satisfiable internal edges. In the distributed reading, node v
// simulates its own copies and the gadgets of its incident edges, which
// costs O(1) factor overhead in rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "core/general_mcm.hpp"
#include "graph/graph.hpp"

namespace dmatch {

struct BMatchingResult {
  std::vector<EdgeId> selected;  // edge ids of g
  congest::RunStats stats;
  int gadget_nodes = 0;  // size of the reduction graph (for reporting)
};

/// True iff `selected` uses every edge at most once and respects the
/// per-node capacities.
bool is_valid_b_matching(const Graph& g, const std::vector<int>& capacity,
                         const std::vector<EdgeId>& selected);

/// Approximate maximum-cardinality b-matching: Tutte gadget + the
/// (1 - 1/k) general-graph matcher (Theorem 3.15).
BMatchingResult approx_max_b_matching(const Graph& g,
                                      const std::vector<int>& capacity,
                                      const GeneralMcmOptions& options);

/// Exact maximum b-matching size (Tutte gadget + Blossom); reference
/// oracle for tests and benches.
std::size_t exact_max_b_matching_size(const Graph& g,
                                      const std::vector<int>& capacity);

}  // namespace dmatch
