#include "core/half_mwm.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/wrap_gain.hpp"
#include "support/wire.hpp"

namespace dmatch {

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Process;

std::uint64_t double_to_bits(double d) {
  std::uint64_t bits;
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double bits_to_double(std::uint64_t bits) {
  double d;
  __builtin_memcpy(&d, &bits, sizeof(d));
  return d;
}

/// One-round protocol: broadcast the weight of this node's matched edge
/// (0 if free). Afterwards each node can evaluate w_M for every incident
/// edge locally; the driver mirrors that computation with gain_weights().
class GainExchangeProcess final : public Process {
 public:
  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    if (ctx.round() == 0) {
      const int mate = ctx.mate_port();
      const double my_w = mate >= 0 ? ctx.edge_weight(mate) : 0.0;
      BitWriter w;
      w.write(double_to_bits(my_w), 64);
      const Message msg = Message::from_writer(std::move(w));
      for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
      return;
    }
    // Receive neighbors' matched weights; nothing further to send.
    for (const Envelope& env : inbox) {
      auto reader = env.msg.reader();
      (void)bits_to_double(reader.read(64));
    }
    halted_ = true;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  bool halted_ = false;
};

/// Two-round protocol applying M <- M (+) union of wraps.
/// Input per node: the port of its M' partner, or -1.
class ApplyWrapsProcess final : public Process {
 public:
  explicit ApplyWrapsProcess(int new_mate_port)
      : new_mate_port_(new_mate_port) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    if (ctx.round() == 0) {
      if (new_mate_port_ >= 0) {
        const int old_mate = ctx.mate_port();
        if (old_mate >= 0) {
          BitWriter w;
          w.write(1, 1);  // DROP
          ctx.send(old_mate, Message::from_writer(std::move(w)));
        }
        ctx.set_mate_port(new_mate_port_);
      }
      return;
    }
    for (const Envelope& env : inbox) {
      (void)env.msg;
      // A DROP clears the register unless we repointed ourselves (then the
      // register no longer refers to the sender).
      if (ctx.mate_port() == env.port && new_mate_port_ < 0) {
        ctx.clear_mate();
      }
    }
    halted_ = true;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  const int new_mate_port_;
  bool halted_ = false;
};

}  // namespace

int half_mwm_iteration_budget(double delta, double epsilon) {
  DMATCH_EXPECTS(delta > 0 && delta <= 0.5);
  DMATCH_EXPECTS(epsilon > 0 && epsilon < 0.5);
  return static_cast<int>(
      std::ceil(3.0 / (2.0 * delta) * std::log(2.0 / epsilon)));
}

HalfMwmResult half_mwm(const Graph& g, const HalfMwmOptions& options) {
  for (EdgeId e = 0; e < g.edge_count(); ++e) DMATCH_EXPECTS(g.weight(e) > 0);

  HalfMwmResult result;
  result.matching = Matching(g.node_count());
  result.guarantee = 0.5 - options.epsilon;

  const double default_delta =
      options.black_box == HalfMwmOptions::BlackBox::kClassGreedy
          ? (1.0 - options.box_options.class_epsilon) / 4.0
          : 0.5;
  const double delta =
      options.delta_override > 0 ? options.delta_override : default_delta;
  const int budget = options.max_iterations_override > 0
                         ? options.max_iterations_override
                         : half_mwm_iteration_budget(delta, options.epsilon);

  const bool faulty = options.fault.any();
  congest::Network main_net(g, congest::Model::kCongest, options.seed,
                            options.congest_factor,
                            {.num_threads = options.num_threads,
                             .sched = options.sched,
                             .fault = options.fault,
                             .observer = options.observer});
  DMATCH_OBS(obs::Observer* const ob = main_net.observer();)
  Rng driver_rng(options.seed ^ 0x5ee5ee5ee5ee5eeULL);

  for (int iter = 0; iter < budget; ++iter) {
    ++result.iterations;

    // Stage 1: gain exchange (1 round of 64-bit weights).
    main_net.set_matching(result.matching);
    congest::ProcessFactory gain_factory =
        [](NodeId, const Graph&) -> std::unique_ptr<congest::Process> {
      return std::make_unique<GainExchangeProcess>();
    };
    DMATCH_OBS(if (ob != nullptr) {
      ob->phase_begin("mwm.gain_exchange", static_cast<std::uint64_t>(iter));
    })
    if (faulty) {
      result.stats.merge(run_stage_checkpointed(
          main_net, std::move(gain_factory), 4, /*max_attempts=*/3,
          result.degradation, options.arq));
      // Healing clears registers at (or pointing at) crashed nodes;
      // re-extracting doubles as the dead-edge sweep, so the freed
      // partners show up as positive-gain candidates below.
      result.matching = main_net.extract_matching();
    } else {
      result.stats.merge(main_net.run(std::move(gain_factory), 4));
    }
    DMATCH_OBS(if (ob != nullptr) {
      ob->phase_end("mwm.gain_exchange", static_cast<std::uint64_t>(iter));
    })

    // Stage 2: black-box delta-MWM on the positive-gain subgraph.
    const std::vector<Weight> gains = gain_weights(g, result.matching);
    std::vector<char> keep(static_cast<std::size_t>(g.edge_count()), false);
    bool any = false;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      keep[static_cast<std::size_t>(e)] =
          gains[static_cast<std::size_t>(e)] > 0;
      if (faulty) {
        // Currently-dead nodes cannot rematch this iteration: keep their
        // edges out of the gain graph so the black box never proposes them.
        const Edge& ed = g.edge(e);
        keep[static_cast<std::size_t>(e)] =
            keep[static_cast<std::size_t>(e)] &&
            !main_net.node_dead(ed.u) && !main_net.node_dead(ed.v);
      }
      any = any || keep[static_cast<std::size_t>(e)];
    }
    if (!any) {
      if (options.stop_when_no_gain) break;
      continue;  // full schedule: idle iteration (nothing to augment)
    }

    Graph::Subgraph sub = g.edge_subgraph(keep);
    std::vector<Edge> reweighted;
    reweighted.reserve(sub.original_edge.size());
    for (std::size_t i = 0; i < sub.original_edge.size(); ++i) {
      Edge ed = sub.graph.edge(static_cast<EdgeId>(i));
      ed.w = gains[static_cast<std::size_t>(sub.original_edge[i])];
      reweighted.push_back(ed);
    }
    const Graph gain_graph =
        Graph::from_edges(g.node_count(), std::move(reweighted));

    DeltaMwmOptions box = options.box_options;
    box.seed = driver_rng();
    box.congest_factor = options.congest_factor;
    box.num_threads = options.num_threads;
    box.sched = options.sched;
    box.arq = options.arq;
    box.observer = options.observer;
    if (faulty) {
      // The black box inherits the driver's plan: the gain graph keeps
      // the caller's node-id space, so the box replays the same crash
      // table (on its own lifetime clock) and the same message-fault
      // model, with checkpoint/restart recovery inside.
      box.fault = options.fault;
    }
    DMATCH_OBS(if (ob != nullptr) {
      ob->phase_begin("mwm.black_box", static_cast<std::uint64_t>(iter));
    })
    DeltaMwmResult boxed =
        options.black_box == HalfMwmOptions::BlackBox::kClassGreedy
            ? class_greedy_mwm(gain_graph, box)
            : locally_dominant_mwm(gain_graph, box);
    result.stats.merge(boxed.stats);
    result.degradation.merge(boxed.degradation);
    DMATCH_OBS(if (ob != nullptr) {
      ob->phase_end("mwm.black_box", static_cast<std::uint64_t>(iter));
    })

    std::vector<EdgeId> m_prime;
    for (EdgeId se : boxed.matching.edges(gain_graph)) {
      m_prime.push_back(sub.original_edge[static_cast<std::size_t>(se)]);
    }
    if (m_prime.empty()) {
      if (options.stop_when_no_gain) break;
      continue;
    }

    // Stage 3: apply the wraps distributively (2 rounds).
    std::vector<int> new_mate_port(static_cast<std::size_t>(g.node_count()),
                                   -1);
    for (EdgeId e : m_prime) {
      const Edge& ed = g.edge(e);
      new_mate_port[static_cast<std::size_t>(ed.u)] = g.port_of_edge(ed.u, e);
      new_mate_port[static_cast<std::size_t>(ed.v)] = g.port_of_edge(ed.v, e);
    }
    congest::ProcessFactory wrap_factory =
        [&new_mate_port](NodeId v,
                         const Graph&) -> std::unique_ptr<congest::Process> {
      return std::make_unique<ApplyWrapsProcess>(
          new_mate_port[static_cast<std::size_t>(v)]);
    };
    DMATCH_OBS(if (ob != nullptr) {
      ob->phase_begin("mwm.apply_wraps", static_cast<std::uint64_t>(iter));
    })
    if (faulty) {
      // A dropped DROP notification leaves the old mate pointing at a
      // repointed node: exactly the torn-register shape heal_registers
      // clears, so the extraction below is always a valid matching. The
      // Lemma 4.1 equality/weight-gain checks only bind for the wraps
      // that survived, so they are skipped.
      result.stats.merge(run_stage_checkpointed(
          main_net, std::move(wrap_factory), 4, /*max_attempts=*/3,
          result.degradation, options.arq));
      result.matching = main_net.extract_matching();
    } else {
      result.stats.merge(main_net.run(std::move(wrap_factory), 4));

      const Matching updated = main_net.extract_matching();
      // Lemma 4.1 checks: the registers form a matching (extract_matching
      // validated) that agrees with the centralized wrap application and
      // gained at least w_M(M').
      const Matching reference = apply_wraps(g, result.matching, m_prime);
      DMATCH_ASSERT(updated == reference);
      double gain_mprime = 0;
      for (EdgeId e : m_prime)
        gain_mprime += gains[static_cast<std::size_t>(e)];
      DMATCH_ASSERT(updated.weight(g) >=
                    result.matching.weight(g) + gain_mprime - 1e-6);
      result.matching = updated;
    }
    DMATCH_OBS(if (ob != nullptr) {
      ob->phase_end("mwm.apply_wraps", static_cast<std::uint64_t>(iter));
    })
  }

  if (faulty) {
    // Nodes may have crashed during the last stage: heal once more and
    // return the registers' (valid, survivor-only) matching plus the
    // final dead mask so callers can verify against the surviving
    // subgraph.
    main_net.set_matching(result.matching);
    main_net.heal_registers(&result.degradation);
    result.matching = main_net.extract_matching();
    result.dead_nodes.assign(static_cast<std::size_t>(g.node_count()), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      result.dead_nodes[static_cast<std::size_t>(v)] =
          main_net.node_dead(v) ? 1 : 0;
    }
  }
  return result;
}

}  // namespace dmatch
