// Section 4's closing Remark: a (1 - eps)-MWM in the LOCAL model, by
// adapting the PRAM algorithm of Hougardy & Vinkemeier [2006] with
// Algorithm 2's view exploration (also reported independently by
// Nieberg [2008]).
//
// Per sweep (repeated O(1/eps) times, or until an exact oracle certifies
// local optimality):
//   * view stage: flood node/edge/weight records to radius 2L,
//     L = 2k + 1, k = ceil(1/eps);
//   * local stage: each node enumerates the positive-gain alternating
//     augmentations (paths AND cycles, Lemma 4.2's objects) of at most L
//     edges that it leads (leader = minimum node id), plus the conflict
//     sets from its 2L-view;
//   * class stage: augmentation gains are bucketed into O(log(n/eps))
//     geometric classes; for each class, heaviest first, one Luby MIS is
//     emulated on the conflict graph restricted to that class (records
//     flooded 2L rounds per iteration, as in the unweighted LOCAL
//     algorithm); selections knock out intersecting augmentations of all
//     classes;
//   * augment stage: selected (pairwise disjoint) augmentations are
//     applied by walking their node sequence.
//
// When the adaptive driver stops, no positive-gain augmentation with
// <= k unmatched edges remains, so Lemma 4.2 gives
// w(M) >= k/(k+1) w(M*) >= (1 - eps) w(M*) deterministically.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

struct LocalMwmOptions {
  double epsilon = 0.34;  // k = ceil(1/eps)
  /// MIS iterations per gain class: ceil(factor * (L+1) * log2 n).
  double mis_budget_factor = 1.0;
  /// Stop sweeping once the oracle finds no positive augmentation of
  /// length <= L; otherwise run ceil(4/eps) sweeps.
  bool adaptive_sweeps = true;
  int max_sweeps = 0;  // 0 = ceil(4/eps)
  std::uint64_t seed = 1;
};

struct LocalMwmResult {
  Matching matching;
  congest::RunStats stats;
  int sweeps = 0;
  double guarantee = 0;  // k/(k+1) for the adaptive mode
};

LocalMwmResult local_one_minus_eps_mwm(const Graph& g,
                                       const LocalMwmOptions& options = {});

}  // namespace dmatch
