#include "core/israeli_itai.hpp"

#include <algorithm>
#include <memory>

#include "congest/resilient.hpp"
#include "core/wrap_gain.hpp"
#include "support/wire.hpp"

namespace dmatch {

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Process;

enum MsgKind : std::uint64_t { kMatched = 0, kPropose = 1, kAccept = 2 };

Message make_msg(MsgKind kind) {
  BitWriter w;
  w.write(kind, 2);
  return Message::from_writer(std::move(w));
}

/// One Israeli-Itai node. Iterations take three rounds:
///   round 0 (mod 3): prune candidates, announce fresh matches, propose;
///   round 1: acceptors pick one proposal and send ACCEPT;
///   round 2: proposers that were accepted become matched.
class IiProcess final : public Process {
 public:
  IiProcess(NodeId id, const Graph& g, const std::vector<char>& eligible_edges)
      : eligible_(static_cast<std::size_t>(g.degree(id)), true) {
    if (!eligible_edges.empty()) {
      const auto ports = g.incident_edges(id);
      for (std::size_t p = 0; p < ports.size(); ++p) {
        eligible_[p] = eligible_edges[static_cast<std::size_t>(ports[p])];
      }
    }
  }

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    // MATCHED announcements prune candidates regardless of phase.
    std::vector<int> proposals;
    bool accepted = false;
    for (const Envelope& env : inbox) {
      auto reader = env.msg.reader();
      switch (reader.read(2)) {
        case kMatched:
          eligible_[static_cast<std::size_t>(env.port)] = false;
          break;
        case kPropose:
          proposals.push_back(env.port);
          break;
        case kAccept:
          accepted = true;
          // The ACCEPT can only come from the port we proposed to.
          DMATCH_ASSERT(env.port == proposed_port_);
          break;
        default:
          break;
      }
    }

    switch (ctx.round() % 3) {
      case 0: {
        if (matched_ || ctx.mate_port() >= 0) {
          // Newly matched (or pre-matched at protocol start): announce once
          // and stop participating.
          matched_ = true;
          const Message msg = make_msg(kMatched);
          for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
          halted_ = true;
          return;
        }
        std::vector<int> candidates;
        for (int p = 0; p < ctx.degree(); ++p) {
          if (eligible_[static_cast<std::size_t>(p)]) candidates.push_back(p);
        }
        if (candidates.empty()) {
          halted_ = true;  // no free eligible neighbor can remain
          return;
        }
        proposer_ = ctx.rng().coin();
        proposed_port_ = -1;
        if (proposer_) {
          proposed_port_ = candidates[static_cast<std::size_t>(
              ctx.rng().uniform(candidates.size()))];
          ctx.send(proposed_port_, make_msg(kPropose));
        }
        break;
      }
      case 1: {
        if (matched_ || proposer_ || proposals.empty()) break;
        const int chosen = proposals[static_cast<std::size_t>(
            ctx.rng().uniform(proposals.size()))];
        ctx.send(chosen, make_msg(kAccept));
        ctx.set_mate_port(chosen);
        matched_ = true;
        break;
      }
      case 2: {
        if (proposer_ && accepted) {
          ctx.set_mate_port(proposed_port_);
          matched_ = true;
        }
        break;
      }
      default:
        break;
    }
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  std::vector<char> eligible_;
  bool matched_ = false;
  bool proposer_ = false;
  int proposed_port_ = -1;
  bool halted_ = false;
};

}  // namespace

congest::ProcessFactory israeli_itai_factory(IsraeliItaiOptions options) {
  return [options = std::move(options)](NodeId v, const Graph& g)
             -> std::unique_ptr<congest::Process> {
    if (!options.eligible_edges.empty()) {
      DMATCH_EXPECTS(options.eligible_edges.size() ==
                     static_cast<std::size_t>(g.edge_count()));
    }
    return std::make_unique<IiProcess>(v, g, options.eligible_edges);
  };
}

IsraeliItaiResult israeli_itai(congest::Network& net,
                               const IsraeliItaiOptions& options) {
  IsraeliItaiResult result;
  DMATCH_OBS(obs::Observer* const ob = net.observer();
             if (ob != nullptr) ob->phase_begin("mm.israeli_itai");)
  if (!net.fault_active()) {
    result.stats =
        net.run(israeli_itai_factory(options), options.max_rounds);
    result.matching = net.extract_matching();
    DMATCH_OBS(if (ob != nullptr) ob->phase_end("mm.israeli_itai");)
    return result;
  }

  // Fault mode: run under the resilient link layer with a watchdog
  // budget and checkpoint/restart recovery. A free node whose only
  // eligible neighbors sit behind dead links never learns it should
  // halt, so budget exhaustion is a normal degraded outcome, not an
  // error; a contract trip (e.g. a stale ACCEPT surfacing after a
  // restart) rolls the registers back and replays against the advanced
  // fault stream. Healing afterwards guarantees the extracted matching
  // is valid over the surviving nodes.
  result.stats = run_stage_checkpointed(
      net, israeli_itai_factory(options), std::min(options.max_rounds, 4096),
      /*max_attempts=*/3, result.degradation, options.arq);
  result.matching = net.extract_matching();
  DMATCH_OBS(if (ob != nullptr) ob->phase_end("mm.israeli_itai");)
  return result;
}

}  // namespace dmatch
