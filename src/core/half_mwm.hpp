// Algorithm 5 / Theorem 4.5: (1/2 - eps)-approximate maximum weight
// matching via repeated delta-MWM on the gain weights w_M.
//
// Each of the ceil((3 / 2 delta) * ln(2 / eps)) iterations:
//   1. gain exchange (1 round): every node broadcasts the weight of its
//      matched edge, after which both endpoints of every edge know w_M;
//   2. black-box delta-MWM on the positive-gain subgraph -> M';
//   3. wrap application (2 rounds): endpoints of M' edges repoint their
//      registers to each other and tell their old mates to clear theirs
//      (Lemma 4.1 guarantees the result is a matching of weight
//      >= w(M) + w_M(M')).
// Iterations stop early if no edge has positive gain (every further
// iteration would be a no-op).
#pragma once

#include <cstdint>

#include "core/delta_mwm.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

struct HalfMwmOptions {
  double epsilon = 0.1;

  enum class BlackBox { kClassGreedy, kLocallyDominant };
  BlackBox black_box = BlackBox::kClassGreedy;

  /// 0 = use the black box's guaranteed delta in the iteration formula.
  double delta_override = 0;
  /// Stop once no edge has positive gain (every further iteration would be
  /// a no-op). Disable to run the paper's full fixed schedule.
  bool stop_when_no_gain = true;
  /// 0 = the formula; otherwise a hard iteration count.
  int max_iterations_override = 0;

  std::uint64_t seed = 1;
  std::uint32_t congest_factor = 48;
  DeltaMwmOptions box_options;
  /// Worker count for the main simulated network (0 = hardware
  /// concurrency).
  unsigned num_threads = 0;
  /// Scheduling policy for the main network, propagated into the black
  /// box. Results are identical across modes.
  support::SchedOptions sched;
  /// Fault plan for the whole driver. The main network (gain exchange +
  /// wrap application) and the delta-MWM black box's private gain-graph
  /// network both run under this plan: the gain graph preserves the
  /// caller's node-id space, so the box replays the same seed-keyed
  /// crash table on its own lifetime clock. Every stage runs with
  /// checkpoint/restart recovery (see wrap_gain.hpp): a contract trip
  /// inside a black box rolls the registers back to the last stage
  /// boundary instead of aborting, and every wrap the faults tear is
  /// healed before the next iteration.
  congest::FaultPlan fault;
  /// ARQ tuning for every resilient-layer run (fault mode only),
  /// propagated into the black box. Exposed on the CLI as --arq-window.
  congest::ResilientOptions arq;
  /// Observability sink for the main and black-box networks (not owned;
  /// must outlive the call). nullptr = unobserved.
  obs::Observer* observer = nullptr;
};

struct HalfMwmResult {
  Matching matching;
  congest::RunStats stats;
  int iterations = 0;
  double guarantee = 0;  // the proven lower bound (1/2 - eps) given delta
  /// What was given up when options.fault is active (all-false otherwise).
  /// The weight-gain guarantee of Lemma 4.1 only holds for the wraps that
  /// survived; the matching itself is always valid over surviving nodes.
  congest::DegradationReport degradation;
  /// End-of-run dead mask of the main network (size n when options.fault
  /// is active, empty otherwise) — pass to verify_matching_invariants to
  /// check the result against the surviving subgraph.
  std::vector<char> dead_nodes;
};

/// Iteration count ceil((3 / (2 delta)) * ln(2 / eps)).
int half_mwm_iteration_budget(double delta, double epsilon);

HalfMwmResult half_mwm(const Graph& g, const HalfMwmOptions& options = {});

}  // namespace dmatch
