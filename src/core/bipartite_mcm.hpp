// Algorithm 3 and Theorem 3.10: (1 - 1/k)-approximate maximum cardinality
// matching in bipartite graphs with O(log n)-bit messages.
//
// Structure (per DESIGN.md):
//  * one *augment iteration* protocol = counting stage (Algorithm 3: BFS
//    from all free X nodes, each first-visited node records per-port path
//    counts), lottery stage (each free-Y leader samples the maximum of n_y
//    uniforms and walks a token backwards, sampling edges proportionally to
//    the recorded counts; colliding tokens keep the largest draw), augment
//    stage (surviving tokens trace back flipping the matching registers);
//  * a *phase* for odd length ell repeats augment iterations until no
//    augmenting path of length <= ell remains (this emulates Luby's MIS on
//    the conflict graph, Lemma 3.9);
//  * the driver runs phases ell = 1, 3, ..., 2k-1 (Algorithm 1), after
//    which Lemmas 3.2/3.3 give |M| >= (1 - 1/k) |M*|.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "congest/resilient.hpp"
#include "graph/matching.hpp"

namespace dmatch {

struct PhaseOptions {
  /// How a phase decides that no length <= ell augmenting path remains.
  ///  * kAdaptiveOracle: the host checks with the exact layered-BFS oracle
  ///    between iterations (simulator-side termination detection; every
  ///    executed iteration is guaranteed productive, see DESIGN.md note 3).
  ///  * kFixedBudget: run ceil(mis_budget_factor * log2 N) iterations,
  ///    N = n * Delta^((ell+1)/2), the paper's w.h.p. schedule.
  enum class Termination { kAdaptiveOracle, kFixedBudget };
  Termination termination = Termination::kAdaptiveOracle;
  double mis_budget_factor = 3.0;
  /// ARQ tuning for iterations run under the resilient link layer (only
  /// used when the host network carries an active FaultPlan).
  congest::ResilientOptions arq;
};

struct BipartiteMcmOptions {
  /// Approximation target (1 - 1/k); phases run ell = 1, 3, ..., 2k-1.
  int k = 5;
  PhaseOptions phase;
};

struct PhaseResult {
  int iterations = 0;
  congest::RunStats stats;
  congest::DegradationReport degradation;  // only set under a FaultPlan
};

struct BipartiteMcmResult {
  Matching matching;
  congest::RunStats stats;
  int phases = 0;
  int iterations = 0;  // total augment iterations over all phases
  /// What was given up when net carries an active FaultPlan (all-false
  /// otherwise): iterations run under the resilient wrapper, registers
  /// are healed between iterations, and a patience counter replaces the
  /// fault-free "every iteration augments" termination argument.
  congest::DegradationReport degradation;
};

/// Test/debug instrumentation: run one augment iteration while recording
/// each node's BFS depth and path count from the counting stage (the
/// quantities of Lemma 3.8). depth = -1 for unvisited nodes; count is the
/// SatCount value as a double.
struct CountingProbe {
  std::vector<int> depth;
  std::vector<double> count;
};
CountingProbe run_counting_probe(congest::Network& net,
                                 const std::vector<std::uint8_t>& side,
                                 int ell);

/// Node-program factory for one augment iteration (path length ell).
congest::ProcessFactory augment_iteration_factory(
    const std::vector<std::uint8_t>& side, int ell);

/// One augment iteration for path length ell (exposed for tests/benches).
/// Reads and updates the network's matching registers; takes 3*ell + 3
/// rounds.
congest::RunStats run_augment_iteration(congest::Network& net,
                                        const std::vector<std::uint8_t>& side,
                                        int ell);

/// One full phase: eliminate all augmenting paths of length <= ell.
PhaseResult run_phase(congest::Network& net,
                      const std::vector<std::uint8_t>& side, int ell,
                      const PhaseOptions& options);

/// Theorem 3.10: runs on the network's current registers (normally empty)
/// and leaves the result in them.
BipartiteMcmResult bipartite_mcm(congest::Network& net,
                                 const std::vector<std::uint8_t>& side,
                                 const BipartiteMcmOptions& options = {});

}  // namespace dmatch
