#include "core/verify.hpp"

#include <vector>

#include "graph/blossom.hpp"
#include "graph/hopcroft_karp.hpp"

namespace dmatch {

std::string MatchingInvariantReport::summary() const {
  std::string s = valid ? "valid" : "INVALID";
  s += respects_crashes ? ", respects crashes" : ", MATCHED DEAD NODES";
  s += " (|M| = " + std::to_string(size);
  if (optimal_size > 0) {
    s += ", |M*| = " + std::to_string(optimal_size) +
         ", ratio = " + std::to_string(ratio);
  }
  s += ")";
  return s;
}

MatchingInvariantReport verify_matching_invariants(
    const Graph& g, const Matching& m, const std::vector<char>& dead_mask,
    bool compute_ratio) {
  DMATCH_EXPECTS(dead_mask.empty() ||
                 dead_mask.size() == static_cast<std::size_t>(g.node_count()));
  MatchingInvariantReport report;
  report.valid = m.node_count() == g.node_count() && m.is_valid(g);
  report.size = m.size();
  if (report.valid) report.weight = m.weight(g);

  std::vector<char> dead = dead_mask;
  dead.resize(static_cast<std::size_t>(g.node_count()), 0);
  report.respects_crashes = true;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (dead[static_cast<std::size_t>(v)] && !m.is_free(v)) {
      ++report.matched_dead_nodes;
      report.respects_crashes = false;
    }
  }

  if (compute_ratio) {
    // Optimum over the surviving subgraph: edges with a dead endpoint are
    // unmatchable for any fault-tolerant algorithm.
    std::vector<char> keep(static_cast<std::size_t>(g.edge_count()), 0);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& ed = g.edge(e);
      keep[static_cast<std::size_t>(e)] =
          !dead[static_cast<std::size_t>(ed.u)] &&
          !dead[static_cast<std::size_t>(ed.v)];
    }
    Graph::Subgraph sub = g.edge_subgraph(keep);
    const auto side = sub.graph.bipartition();
    const Matching opt = side.has_value() ? hopcroft_karp(sub.graph, *side)
                                          : blossom_mcm(sub.graph);
    report.optimal_size = opt.size();
    report.ratio = report.optimal_size == 0
                       ? 1.0
                       : static_cast<double>(report.size) /
                             static_cast<double>(report.optimal_size);
  }
  return report;
}

MatchingInvariantReport verify_matching_invariants(const Graph& g,
                                                   const Matching& m,
                                                   const congest::Network* net,
                                                   bool compute_ratio) {
  std::vector<char> dead;
  if (net != nullptr && net->fault_active()) {
    dead.assign(static_cast<std::size_t>(g.node_count()), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      dead[static_cast<std::size_t>(v)] = net->node_dead(v) ? 1 : 0;
    }
  }
  return verify_matching_invariants(g, m, dead, compute_ratio);
}

namespace {

std::uint64_t curve_sum(const std::vector<std::uint64_t>& curve) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : curve) total += c;
  return total;
}

std::size_t trimmed_length(const std::vector<std::uint64_t>& curve) {
  std::size_t len = curve.size();
  while (len > 0 && curve[len - 1] == 0) --len;
  return len;
}

}  // namespace

bool verify_round_accounting(const congest::RunStats& stats) {
  DMATCH_ASSERT(stats.round_messages.size() ==
                static_cast<std::size_t>(stats.rounds));
  DMATCH_ASSERT(curve_sum(stats.round_messages) == stats.messages);
  return true;
}

bool verify_round_accounting(const congest::AsyncStats& stats) {
  DMATCH_ASSERT(curve_sum(stats.round_payloads) == stats.payload_messages);
  return true;
}

bool verify_round_histories_agree(const congest::RunStats& sync_stats,
                                  const congest::AsyncStats& async_stats) {
  const std::size_t sync_len = trimmed_length(sync_stats.round_messages);
  const std::size_t async_len = trimmed_length(async_stats.round_payloads);
  DMATCH_ASSERT(sync_len == async_len);
  for (std::size_t r = 0; r < sync_len; ++r) {
    DMATCH_ASSERT(sync_stats.round_messages[r] ==
                  async_stats.round_payloads[r]);
  }
  return true;
}

}  // namespace dmatch
