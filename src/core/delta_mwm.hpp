// Constant-factor distributed MWM black boxes for Algorithm 5.
//
// Theorem 4.5 needs any delta-MWM with constant delta > 0 and polylog
// rounds. The paper plugs in the 1/5-MWM of the PODC 2007 companion paper
// (Lemma 4.4); as DESIGN.md note 5 explains, we substitute:
//
//  * class_greedy_mwm -- round weights to powers of two, drop edges lighter
//    than eps' * w_max / n (they total at most eps' * OPT), and compute a
//    maximal matching per class, heaviest class first, with Israeli-Itai.
//    A class-greedy maximal matching 2-approximates the rounded optimum
//    (every optimal edge is blocked by a no-lighter-class edge, each
//    blocker blocks at most two), so delta >= (1 - eps') / 4 overall, in
//    O(log(n/eps') * log n) rounds w.h.p.
//
//  * locally_dominant_mwm -- Preis/Hoepman-style: repeatedly match edges
//    that are the heaviest at both endpoints. delta = 1/2 but Theta(n)
//    rounds in the worst case (a strictly decreasing weight chain);
//    included as the quality baseline / ablation arm.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "congest/resilient.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

struct DeltaMwmOptions {
  std::uint64_t seed = 1;
  std::uint32_t congest_factor = 48;
  int max_rounds = 1 << 20;
  /// Fraction of OPT sacrificed by dropping ultra-light edges (class box).
  double class_epsilon = 0.25;
  /// Fault plan for the box's private network. An active plan runs every
  /// internal protocol under the resilient link layer with
  /// checkpoint/restart recovery; crash schedules are keyed by node id,
  /// so a driver handing its own plan down sees a consistent failure
  /// history (the box graph preserves the caller's node-id space).
  congest::FaultPlan fault;
  /// Round-engine worker count for the box network (0 = hardware).
  unsigned num_threads = 0;
  /// Scheduling policy for the box network (mode, pinning, steal
  /// granularity). Results are identical across modes.
  support::SchedOptions sched;
  /// ARQ tuning for the resilient link layer (fault mode only).
  congest::ResilientOptions arq;
  /// Observability sink for the box's private network (not owned).
  obs::Observer* observer = nullptr;
};

struct DeltaMwmResult {
  Matching matching;
  congest::RunStats stats;
  /// The approximation factor this box guarantees for the run parameters.
  double delta_guarantee = 0;
  /// What the box gave up under an active fault plan (all-false without).
  congest::DegradationReport degradation;
};

/// All edge weights must be positive.
DeltaMwmResult class_greedy_mwm(const Graph& g,
                                const DeltaMwmOptions& options = {});
DeltaMwmResult locally_dominant_mwm(const Graph& g,
                                    const DeltaMwmOptions& options = {});

}  // namespace dmatch
