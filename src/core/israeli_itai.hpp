// Israeli-Itai randomized maximal matching (the paper's baseline).
//
// [Israeli & Itai 1986]: a maximal matching -- hence a 1/2-MCM -- computed
// in O(log n) CONGEST rounds w.h.p. We implement the standard
// proposer/acceptor form: in every iteration each free node flips a coin to
// act as proposer or acceptor; proposers propose to a uniformly random
// still-free neighbor; acceptors accept one incoming proposal uniformly at
// random. Matched nodes announce themselves so neighbors prune their
// candidate lists; a free node with no free neighbors left halts, which
// makes the output maximal on termination (deterministically, not just
// w.h.p.): while some edge has two free endpoints, both keep iterating.
#pragma once

#include <optional>

#include "congest/network.hpp"
#include "congest/resilient.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

struct IsraeliItaiOptions {
  /// Hard round budget (protocol is O(log n) w.h.p.; budget is a backstop).
  int max_rounds = 1 << 20;
  /// Only edges with eligible[e] participate (used by the weight-class
  /// black box to restrict to one class). Empty = all edges.
  std::vector<char> eligible_edges;
  /// ARQ tuning for the resilient link layer (fault mode only).
  congest::ResilientOptions arq;
};

struct IsraeliItaiResult {
  Matching matching;
  congest::RunStats stats;
  /// What was given up when net carries an active FaultPlan (all-false
  /// otherwise): the driver then runs the protocol under the resilient
  /// wrapper with a watchdog budget and self-heals the registers, so the
  /// matching is always valid over the surviving nodes.
  congest::DegradationReport degradation;
};

/// Node-program factory for the protocol (used directly by the
/// asynchronous executor and the tests).
congest::ProcessFactory israeli_itai_factory(IsraeliItaiOptions options = {});

/// Run Israeli-Itai on net's graph. The network's matching registers are
/// overwritten with the result (pre-existing registers are cleared for
/// participating nodes; nodes with no eligible edges are left untouched).
IsraeliItaiResult israeli_itai(congest::Network& net,
                               const IsraeliItaiOptions& options = {});

}  // namespace dmatch
