#include "core/general_mcm.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "congest/resilient.hpp"
#include "graph/augmenting.hpp"
#include "support/wire.hpp"

namespace dmatch {

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Process;

/// Two-round protocol that establishes the sampled bipartite subgraph G^:
/// round 0 broadcasts this node's coin flip (its color), round 1 broadcasts
/// V^-membership (free, or matched along a bichromatic edge). Afterwards
/// every node knows which incident edges belong to E^. Results are exposed
/// to the driver through shared output arrays (the simulator-side
/// equivalent of reading each node's local variables).
class ColorSampleProcess final : public Process {
 public:
  ColorSampleProcess(NodeId id, const Graph& g,
                     std::vector<std::uint8_t>& color_out,
                     std::vector<char>& edge_in_out)
      : id_(id), g_(&g), color_out_(color_out), edge_in_out_(edge_in_out) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    const auto vi = static_cast<std::size_t>(ctx.id());
    switch (ctx.round()) {
      case 0: {
        color_ = ctx.rng().coin() ? 1 : 0;
        color_out_[vi] = color_;
        BitWriter w;
        w.write(color_, 1);
        const Message msg = Message::from_writer(std::move(w));
        for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
        break;
      }
      case 1: {
        neighbor_color_.assign(static_cast<std::size_t>(ctx.degree()), 0);
        for (const Envelope& env : inbox) {
          auto reader = env.msg.reader();
          neighbor_color_[static_cast<std::size_t>(env.port)] =
              static_cast<std::uint8_t>(reader.read(1));
        }
        const int mate = ctx.mate_port();
        in_vhat_ = mate < 0 ||
                   neighbor_color_[static_cast<std::size_t>(mate)] != color_;
        BitWriter w;
        w.write_bool(in_vhat_);
        const Message msg = Message::from_writer(std::move(w));
        for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
        break;
      }
      case 2: {
        std::vector<char> neighbor_in(static_cast<std::size_t>(ctx.degree()),
                                      false);
        for (const Envelope& env : inbox) {
          auto reader = env.msg.reader();
          neighbor_in[static_cast<std::size_t>(env.port)] = reader.read(1) != 0;
        }
        // An incident edge is in E^ iff bichromatic with both ends in V^.
        for (int p = 0; p < ctx.degree(); ++p) {
          const bool in = in_vhat_ && neighbor_in[static_cast<std::size_t>(p)] &&
                          neighbor_color_[static_cast<std::size_t>(p)] != color_;
          if (in) {
            const EdgeId e =
                g_->incident_edges(id_)[static_cast<std::size_t>(p)];
            edge_in_out_[static_cast<std::size_t>(e)] = true;
          }
        }
        halted_ = true;
        break;
      }
      default:
        halted_ = true;
        break;
    }
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  const NodeId id_;
  const Graph* g_;
  std::vector<std::uint8_t>& color_out_;
  std::vector<char>& edge_in_out_;
  std::uint8_t color_ = 0;
  bool in_vhat_ = false;
  std::vector<std::uint8_t> neighbor_color_;
  bool halted_ = false;
};

}  // namespace

int general_mcm_paper_budget(int k) {
  DMATCH_EXPECTS(k >= 2);
  const double budget = std::pow(2.0, 2 * k + 1) * (k + 1) *
                        std::max(std::log(static_cast<double>(k)), 0.7);
  return static_cast<int>(std::ceil(budget));
}

GeneralMcmResult general_mcm(const Graph& g, const GeneralMcmOptions& options) {
  DMATCH_EXPECTS(options.k >= 2);
  GeneralMcmResult result;
  result.matching = Matching(g.node_count());

  const bool faulty = options.fault.any();
  congest::Network main_net(g, congest::Model::kCongest, options.seed,
                            options.congest_factor,
                            {.num_threads = options.num_threads,
                             .sched = options.sched,
                             .fault = options.fault,
                             .observer = options.observer});
  DMATCH_OBS(obs::Observer* const ob = main_net.observer();)
  Rng driver_rng(options.seed ^ 0xa5a5a5a5a5a5a5a5ULL);

  int budget = options.max_iterations > 0 ? options.max_iterations
                                          : general_mcm_paper_budget(options.k);
  int unproductive = 0;

  for (int iter = 0; iter < budget; ++iter) {
    ++result.iterations;

    // Stage 1: sample G^ (colors + membership), two-round protocol on G.
    std::vector<std::uint8_t> color(static_cast<std::size_t>(g.node_count()),
                                    0);
    std::vector<char> edge_in(static_cast<std::size_t>(g.edge_count()), false);
    congest::ProcessFactory sample_factory =
        [&color, &edge_in](NodeId v, const Graph& graph)
        -> std::unique_ptr<congest::Process> {
      return std::make_unique<ColorSampleProcess>(v, graph, color, edge_in);
    };
    DMATCH_OBS(if (ob != nullptr) {
      ob->phase_begin("mcm.sample", static_cast<std::uint64_t>(iter));
    })
    if (faulty) {
      try {
        const congest::RunStats stats = main_net.run(
            congest::resilient_factory(std::move(sample_factory), options.arq),
            congest::resilient_round_budget(8));
        result.degradation.budget_exhausted |= !stats.completed;
        result.stats.merge(stats);
      } catch (const ContractViolation&) {
        result.degradation.contract_tripped = true;
      } catch (const congest::MessageTooLarge&) {
        result.degradation.contract_tripped = true;
      }
      // Healing clears registers at (or pointing at) crashed nodes, so
      // re-extracting doubles as the dead-edge sweep: a live node whose
      // mate crashed becomes free again and can rematch below.
      main_net.heal_registers(&result.degradation);
      result.matching = main_net.extract_matching();
    } else {
      result.stats.merge(main_net.run(std::move(sample_factory), 8));
    }
    DMATCH_OBS(if (ob != nullptr) {
      ob->phase_end("mcm.sample", static_cast<std::uint64_t>(iter));
    })

    // Recover E^ membership from the collected colors and the current
    // matching (identical to what each node computed locally).
    const Matching& m = result.matching;
    auto in_vhat = [&](NodeId v) {
      if (m.is_free(v)) return true;
      return color[static_cast<std::size_t>(v)] !=
             color[static_cast<std::size_t>(m.mate(v))];
    };
    std::vector<char> keep(static_cast<std::size_t>(g.edge_count()), false);
    bool any = false;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& ed = g.edge(e);
      keep[static_cast<std::size_t>(e)] =
          color[static_cast<std::size_t>(ed.u)] !=
              color[static_cast<std::size_t>(ed.v)] &&
          in_vhat(ed.u) && in_vhat(ed.v);
      if (faulty) {
        // Crashed nodes cannot take part in G^, and a lossy color round
        // means the distributed view may disagree with the host's -- the
        // host view is authoritative (the nodes of G^ are re-seeded with
        // it below), so the mirror assert only applies fault-free.
        keep[static_cast<std::size_t>(e)] =
            keep[static_cast<std::size_t>(e)] &&
            !main_net.node_dead(ed.u) && !main_net.node_dead(ed.v);
      } else {
        // The nodes' own distributed view of E^ must agree.
        DMATCH_ASSERT(keep[static_cast<std::size_t>(e)] ==
                      (edge_in[static_cast<std::size_t>(e)] != 0));
      }
      any = any || keep[static_cast<std::size_t>(e)];
    }

    std::ptrdiff_t gained = 0;
    if (any) {
      // Stage 2: Aug(G^, M, 2k-1) -- the bipartite phase loop on G^.
      DMATCH_OBS(if (ob != nullptr) {
        ob->phase_begin("mcm.augment", static_cast<std::uint64_t>(iter));
      })
      Graph::Subgraph sub = g.edge_subgraph(keep);
      congest::Network::Options hat_opts;
      hat_opts.num_threads = options.num_threads;
      hat_opts.sched = options.sched;
      hat_opts.observer = options.observer;
      if (faulty) {
        // The Aug networks keep suffering message faults (fresh derived
        // seed per iteration) and inherit the main network's casualties as
        // scheduled crashes; new crash draws stay with the main network so
        // the overall casualty rate tracks the plan.
        hat_opts.fault = options.fault;
        hat_opts.fault.crash_prob = 0.0;
        hat_opts.fault.restart_prob = 0.0;
        hat_opts.fault.crashes.clear();
        hat_opts.fault.seed = congest::fault_detail::mix(
            options.fault.seed, 0x9a75u, static_cast<std::uint64_t>(iter), 0);
        for (NodeId v = 0; v < g.node_count(); ++v) {
          if (main_net.node_dead(v)) {
            hat_opts.fault.crashes.push_back({v, 0, congest::kRoundNever});
          }
        }
      }
      congest::Network hat_net(sub.graph, congest::Model::kCongest,
                               driver_rng(), options.congest_factor,
                               hat_opts);
      // Install M ^ E^ on the subgraph's registers.
      Matching m_hat(g.node_count());
      for (std::size_t i = 0; i < sub.original_edge.size(); ++i) {
        if (m.contains(g, sub.original_edge[i])) {
          m_hat.add(sub.graph, static_cast<EdgeId>(i));
        }
      }
      hat_net.set_matching(m_hat);

      std::vector<std::uint8_t> side(color.begin(), color.end());
      BipartiteMcmOptions aug_options;
      aug_options.k = options.k;
      aug_options.phase = options.phase;
      aug_options.phase.arq = options.arq;
      BipartiteMcmResult aug = bipartite_mcm(hat_net, side, aug_options);
      result.stats.merge(aug.stats);
      result.degradation.merge(aug.degradation);

      // Stage 3: merge back: M <- (M \ M^) union result.
      const std::size_t before = result.matching.size();
      for (std::size_t i = 0; i < sub.original_edge.size(); ++i) {
        const EdgeId orig = sub.original_edge[i];
        if (result.matching.contains(g, orig)) {
          result.matching.remove(g, orig);
        }
      }
      for (EdgeId he : aug.matching.edges(sub.graph)) {
        result.matching.add(g,
                            sub.original_edge[static_cast<std::size_t>(he)]);
      }
      DMATCH_ENSURES(result.matching.is_valid(g));
      // A degraded Aug run can legitimately shrink M^ (healed tears), so
      // monotonicity only holds fault-free.
      DMATCH_ENSURES(faulty || result.matching.size() >= before);
      gained = static_cast<std::ptrdiff_t>(result.matching.size()) -
               static_cast<std::ptrdiff_t>(before);
      main_net.set_matching(result.matching);
      DMATCH_OBS(if (ob != nullptr) {
        ob->phase_end("mcm.augment", static_cast<std::uint64_t>(iter));
      })
    }

    if (gained > 0) {
      ++result.productive_iterations;
      unproductive = 0;
    } else {
      ++unproductive;
    }
    if (options.budget == GeneralMcmOptions::Budget::kAdaptive &&
        unproductive >= options.patience) {
      // A path through a crashed node can never be realized, so under
      // faults the oracle could keep the loop alive until the full paper
      // budget; patience alone terminates it then.
      if (faulty) break;
      // Before stopping early, confirm with the centralized oracle that no
      // augmenting path of length <= 2k-1 remains (cheap: interior matched
      // hops are forced, so the search branches ~Delta^k times). If one
      // remains, keep sampling; this makes the adaptive mode's (1 - 1/k)
      // bound deterministic rather than w.h.p. (DESIGN.md note 3).
      const auto leftover = enumerate_augmenting_paths(
          g, result.matching, 2 * options.k - 1, 1);
      if (leftover.empty()) break;
      unproductive = 0;
    }
  }

  if (faulty) {
    // Final sweep: nodes may have crashed after the last stage ran, so
    // heal once more and return the registers' (valid, survivor-only)
    // matching.
    main_net.heal_registers(&result.degradation);
    result.matching = main_net.extract_matching();
  }
  return result;
}

}  // namespace dmatch
