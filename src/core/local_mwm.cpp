#include "core/local_mwm.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "core/wrap_gain.hpp"
#include "graph/augmenting.hpp"
#include "support/wire.hpp"

namespace dmatch {

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Process;

std::uint64_t weight_to_bits(double w) {
  std::uint64_t bits;
  __builtin_memcpy(&bits, &w, sizeof(bits));
  return bits;
}

double bits_to_weight(std::uint64_t bits) {
  double w;
  __builtin_memcpy(&w, &bits, sizeof(w));
  return w;
}

std::uint64_t sequence_signature(const std::vector<NodeId>& seq) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (NodeId v : seq) {
    std::uint64_t s = h ^ (static_cast<std::uint64_t>(v) * 0xff51afd7ed558ccdULL);
    h = splitmix64(s);
  }
  return h;
}

enum class AugStatus : std::uint8_t { kUndecided = 0, kIn = 1, kOut = 2 };

struct AugRecord {
  std::uint64_t value = 0;
  NodeId leader = kNoNode;
  AugStatus status = AugStatus::kUndecided;
  std::uint8_t gain_class = 0;
};

enum MsgKind : std::uint64_t { kViewMsg = 0, kMisMsg = 1, kAugmentMsg = 2 };

/// One sweep of the weighted LOCAL algorithm at one node. Round schedule
/// for L-edge augmentations, C gain classes and T MIS iterations/class:
///   [0, 2L)                          view flooding
///   [2L, 2L + C*T*2L)                per-class MIS emulation
///   [2L(CT + 1), ... + L + 2)        augmentation
class LocalMwmSweepProcess final : public Process {
 public:
  LocalMwmSweepProcess(NodeId id, const Graph& g, int max_len, int classes,
                       int iterations_per_class)
      : id_(id),
        g_(&g),
        len_(max_len),
        classes_(classes),
        iters_(iterations_per_class) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    const int r = ctx.round();
    const int view_end = 2 * len_;
    const int mis_end = view_end + classes_ * iters_ * 2 * len_;
    const int augment_end = mis_end + len_ + 2;

    ingest(ctx, inbox);

    if (r == 0) init_view(ctx);
    if (r < view_end) {
      broadcast_view(ctx);
    } else if (r == view_end) {
      enumerate_augmentations(ctx);
      begin_iteration(ctx, 0);
    } else if (r < mis_end) {
      const int step = (r - view_end) % (2 * len_);
      const int block = (r - view_end) / (2 * len_);
      if (step == 0) {
        finish_iteration(block - 1);
        begin_iteration(ctx, block);
      } else {
        forward_records(ctx);
      }
    } else if (r == mis_end) {
      finish_iteration(classes_ * iters_ - 1);
      start_augments(ctx);
    }
    halted_ = r >= augment_end;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  struct AugInfo {
    std::vector<NodeId> nodes;
    bool is_cycle = false;
    Weight gain = 0;
  };

  // ---- view stage -------------------------------------------------------

  void init_view(Context& ctx) {
    node_recs_[id_] = ctx.mate_port() >= 0;
    for (int p = 0; p < ctx.degree(); ++p) {
      const NodeId u = ctx.neighbor_id(p);
      const auto key = std::minmax(id_, u);
      edge_recs_[{key.first, key.second}] = {p == ctx.mate_port(),
                                             ctx.edge_weight(p)};
      neighbor_port_[u] = p;
    }
  }

  [[nodiscard]] unsigned id_width() const {
    return bit_width_for(
        static_cast<std::uint64_t>(std::max(1, g_->node_count() - 1)));
  }

  void broadcast_view(Context& ctx) {
    const unsigned idw = id_width();
    BitWriter w;
    w.write(kViewMsg, 2);
    w.write(node_recs_.size(), 32);
    for (const auto& [v, matched] : node_recs_) {
      w.write(static_cast<std::uint64_t>(v), idw);
      w.write_bool(matched);
    }
    w.write(edge_recs_.size(), 32);
    for (const auto& [uv, rec] : edge_recs_) {
      w.write(static_cast<std::uint64_t>(uv.first), idw);
      w.write(static_cast<std::uint64_t>(uv.second), idw);
      w.write_bool(rec.first);
      w.write(weight_to_bits(rec.second), 64);
    }
    const Message msg = Message::from_writer(std::move(w));
    for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
  }

  void ingest(Context& ctx, std::span<const Envelope> inbox) {
    for (const Envelope& env : inbox) {
      auto reader = env.msg.reader();
      switch (reader.read(2)) {
        case kViewMsg:
          ingest_view(reader);
          break;
        case kMisMsg:
          ingest_records(reader);
          break;
        case kAugmentMsg:
          ingest_augment(ctx, reader);
          break;
        default:
          break;
      }
    }
  }

  void ingest_view(BitReader& reader) {
    const unsigned idw = id_width();
    const auto n_nodes = reader.read(32);
    for (std::uint64_t i = 0; i < n_nodes; ++i) {
      const auto v = static_cast<NodeId>(reader.read(idw));
      node_recs_[v] = reader.read_bool();
    }
    const auto n_edges = reader.read(32);
    for (std::uint64_t i = 0; i < n_edges; ++i) {
      const auto u = static_cast<NodeId>(reader.read(idw));
      const auto v = static_cast<NodeId>(reader.read(idw));
      const bool matched = reader.read_bool();
      const double weight = bits_to_weight(reader.read(64));
      edge_recs_[{u, v}] = {matched, weight};
    }
  }

  // ---- local stage ------------------------------------------------------

  void enumerate_augmentations(Context& ctx) {
    // Build the weighted local view with phantom mates for boundary nodes
    // (same trick as the unweighted LOCAL algorithm).
    std::vector<NodeId> local_to_global;
    std::map<NodeId, NodeId> global_to_local;
    for (const auto& [v, matched] : node_recs_) {
      global_to_local[v] = static_cast<NodeId>(local_to_global.size());
      local_to_global.push_back(v);
    }
    std::vector<Edge> edges;
    std::vector<char> edge_matched;
    for (const auto& [uv, rec] : edge_recs_) {
      const auto u_it = global_to_local.find(uv.first);
      const auto v_it = global_to_local.find(uv.second);
      if (u_it == global_to_local.end() || v_it == global_to_local.end()) {
        continue;
      }
      edges.push_back({u_it->second, v_it->second, rec.second});
      edge_matched.push_back(rec.first);
    }
    std::vector<char> has_matched(local_to_global.size(), false);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!edge_matched[i]) continue;
      has_matched[static_cast<std::size_t>(edges[i].u)] = true;
      has_matched[static_cast<std::size_t>(edges[i].v)] = true;
    }
    auto total = static_cast<NodeId>(local_to_global.size());
    std::vector<EdgeId> phantom;
    for (const auto& [v, matched] : node_recs_) {
      const NodeId lv = global_to_local.at(v);
      if (matched && !has_matched[static_cast<std::size_t>(lv)]) {
        phantom.push_back(static_cast<EdgeId>(edges.size()));
        // Huge phantom weight: dropping an invisible matched edge must
        // never look profitable.
        edges.push_back({lv, total++, 1e30});
      }
    }
    const Graph view = Graph::from_edges(total, std::move(edges));
    Matching vm(view.node_count());
    for (EdgeId e = 0; e < static_cast<EdgeId>(edge_matched.size()); ++e) {
      if (edge_matched[static_cast<std::size_t>(e)]) vm.add(view, e);
    }
    for (EdgeId e : phantom) vm.add(view, e);

    const auto raw = enumerate_alternating_augmentations(view, vm, len_);
    for (const Augmentation& aug : raw) {
      const Weight g = gain(view, vm, aug.edges);
      if (g <= 0) continue;
      std::vector<NodeId> seq;
      seq.reserve(aug.nodes.size());
      bool in_view = true;
      for (NodeId lv : aug.nodes) {
        if (lv >= static_cast<NodeId>(local_to_global.size())) {
          in_view = false;  // touches a phantom: not a real augmentation
          break;
        }
        seq.push_back(local_to_global[static_cast<std::size_t>(lv)]);
      }
      if (!in_view) continue;
      const std::uint64_t sig = sequence_signature(seq);
      AugInfo info;
      info.nodes = seq;
      info.is_cycle = aug.is_cycle;
      info.gain = g;
      // Owner = the canonical front node: an endpoint for paths (it sees
      // the whole augmentation within its radius-len view and can start
      // the trace-back along the path), the minimum node for cycles.
      const NodeId leader = all_augs_.try_emplace(sig, std::move(info))
                                .first->second.nodes.front();
      if (leader == id_) own_augs_.push_back(sig);
    }
    // Conflict sets for owned augmentations.
    for (const auto& [sig, info] : all_augs_) {
      std::set<NodeId> nodes(info.nodes.begin(), info.nodes.end());
      for (const std::uint64_t own : own_augs_) {
        if (own == sig) continue;
        const auto& mine = all_augs_[own].nodes;
        if (std::any_of(mine.begin(), mine.end(), [&nodes](NodeId v) {
              return nodes.count(v) > 0;
            })) {
          conflicts_[own].insert(sig);
        }
      }
    }
    // Gain classes relative to the global weight bound (known to all
    // nodes): class c holds gains in (G / 2^(c+1), G / 2^c].
    const double bound = gain_bound(ctx);
    for (const std::uint64_t own : own_augs_) {
      status_[own] = AugStatus::kUndecided;
      conflicts_.try_emplace(own);
      const double g = all_augs_[own].gain;
      int cls = g >= bound ? 0
                           : static_cast<int>(std::floor(std::log2(bound / g)));
      class_of_[own] =
          static_cast<std::uint8_t>(std::clamp(cls, 0, classes_ - 1));
    }
  }

  double gain_bound(Context& ctx) const {
    // All nodes know W_max; the maximum single-augmentation gain is at
    // most (k+1) * W_max <= len_ * W_max. Using the same bound everywhere
    // keeps the classes globally consistent.
    double w_max = 0;
    for (const auto& [uv, rec] : edge_recs_) {
      if (rec.second < 1e29) w_max = std::max(w_max, rec.second);
    }
    (void)ctx;
    return std::max(1e-12, w_max * len_);
  }

  // ---- class-by-class MIS emulation --------------------------------------

  void begin_iteration(Context& ctx, int block) {
    (void)block;
    iteration_records_.clear();
    forwarded_.clear();
    for (const std::uint64_t own : own_augs_) {
      AugRecord rec;
      rec.leader = id_;
      rec.status = status_[own];
      rec.gain_class = class_of_[own];
      rec.value = ctx.rng()();
      iteration_records_[own] = rec;
    }
    forward_records(ctx);
  }

  void forward_records(Context& ctx) {
    std::vector<std::pair<std::uint64_t, AugRecord>> fresh;
    for (const auto& [sig, rec] : iteration_records_) {
      if (forwarded_.insert(sig).second) fresh.emplace_back(sig, rec);
    }
    if (fresh.empty()) return;
    const unsigned idw = id_width();
    BitWriter w;
    w.write(kMisMsg, 2);
    w.write(fresh.size(), 32);
    for (const auto& [sig, rec] : fresh) {
      w.write(sig, 64);
      w.write(rec.value, 64);
      w.write(static_cast<std::uint64_t>(rec.leader), idw);
      w.write(static_cast<std::uint64_t>(rec.status), 2);
      w.write(rec.gain_class, 8);
    }
    const Message msg = Message::from_writer(std::move(w));
    for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
  }

  void ingest_records(BitReader& reader) {
    const unsigned idw = id_width();
    const auto count = reader.read(32);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t sig = reader.read(64);
      AugRecord rec;
      rec.value = reader.read(64);
      rec.leader = static_cast<NodeId>(reader.read(idw));
      rec.status = static_cast<AugStatus>(reader.read(2));
      rec.gain_class = static_cast<std::uint8_t>(reader.read(8));
      iteration_records_.try_emplace(sig, rec);
    }
  }

  void finish_iteration(int block) {
    if (block < 0) return;
    const int cls = block / iters_;
    for (const std::uint64_t own : own_augs_) {
      if (status_[own] != AugStatus::kUndecided) continue;
      // Blocked by any selected neighbor, regardless of class.
      bool blocked = false;
      bool is_local_max = class_of_[own] == cls;
      const auto mine_it = iteration_records_.find(own);
      for (const std::uint64_t other : conflicts_[own]) {
        const auto it = iteration_records_.find(other);
        if (it == iteration_records_.end()) {
          is_local_max = false;  // conservative on missing records
          continue;
        }
        if (it->second.status == AugStatus::kIn) {
          blocked = true;
          break;
        }
        if (it->second.status != AugStatus::kUndecided) continue;
        if (it->second.gain_class != cls) continue;  // not competing now
        const auto mine_key =
            std::make_tuple(mine_it->second.value, mine_it->second.leader, own);
        const auto other_key =
            std::make_tuple(it->second.value, it->second.leader, other);
        if (other_key > mine_key) is_local_max = false;
      }
      if (blocked) {
        status_[own] = AugStatus::kOut;
      } else if (is_local_max) {
        status_[own] = AugStatus::kIn;
        for (const std::uint64_t sib : own_augs_) {
          if (sib != own && status_[sib] == AugStatus::kUndecided &&
              conflicts_[own].count(sib) > 0) {
            status_[sib] = AugStatus::kOut;
          }
        }
      }
    }
  }

  // ---- augment stage ------------------------------------------------------

  void start_augments(Context& ctx) {
    for (const std::uint64_t own : own_augs_) {
      if (status_[own] != AugStatus::kIn) continue;
      const AugInfo& info = all_augs_[own];
      apply_flip(ctx, info);
      forward_augment(ctx, info, /*my_index=*/0);
    }
  }

  void ingest_augment(Context& ctx, BitReader& reader) {
    const unsigned idw = id_width();
    const bool is_cycle = reader.read_bool();
    const auto len = reader.read(16);
    AugInfo info;
    info.is_cycle = is_cycle;
    info.nodes.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) {
      info.nodes.push_back(static_cast<NodeId>(reader.read(idw)));
    }
    // Our position: first unvisited occurrence past index 0.
    std::size_t index = 0;
    for (std::size_t i = 1; i < info.nodes.size(); ++i) {
      if (info.nodes[i] == id_) {
        index = i;
        break;
      }
    }
    DMATCH_ASSERT(index > 0);
    // A cycle's trace-back ends when it reaches the leader again.
    if (is_cycle && index + 1 == info.nodes.size()) return;
    apply_flip(ctx, info, index);
    forward_augment(ctx, info, index);
  }

  /// The node sequence describes the augmentation; the flip rule at a node
  /// is local: the new mate sits across the adjacent *non-matching* edge
  /// (after the flip it becomes matching); a path endpoint whose only
  /// adjacent augmentation edge was matched ends up free.
  void apply_flip(Context& ctx, const AugInfo& info, std::size_t index = 0) {
    const auto& seq = info.nodes;
    const std::size_t last = seq.size() - 1;
    auto edge_is_matched = [&](std::size_t i) {
      const auto key = std::minmax(seq[i], seq[i + 1]);
      const auto it = edge_recs_.find({key.first, key.second});
      DMATCH_ASSERT(it != edge_recs_.end());
      return it->second.first;
    };
    NodeId new_mate = kNoNode;
    if (info.is_cycle) {
      // seq[last] duplicates seq[0]; a cycle node at index i < last has
      // edges (i-1, i) -- wrapping to (last-1, last) for i = 0 -- and
      // (i, i+1). Exactly one is non-matching; the new mate is across it.
      DMATCH_ASSERT(index < last);
      const std::size_t prev_edge = index == 0 ? last - 1 : index - 1;
      if (!edge_is_matched(prev_edge)) {
        new_mate = index == 0 ? seq[last - 1] : seq[index - 1];
      } else {
        DMATCH_ASSERT(!edge_is_matched(index));
        new_mate = seq[index + 1];
      }
    } else {
      const bool has_left = index > 0;
      const bool has_right = index < last;
      if (has_left && !edge_is_matched(index - 1)) {
        new_mate = seq[index - 1];
      } else if (has_right && !edge_is_matched(index)) {
        new_mate = seq[index + 1];
      } else {
        new_mate = kNoNode;  // endpoint of a matched end edge: now free
      }
    }
    if (new_mate == kNoNode) {
      ctx.clear_mate();
    } else {
      const auto it = neighbor_port_.find(new_mate);
      DMATCH_ASSERT(it != neighbor_port_.end());
      ctx.set_mate_port(it->second);
    }
  }

  void forward_augment(Context& ctx, const AugInfo& info,
                       std::size_t my_index) {
    if (my_index + 1 >= info.nodes.size()) return;
    const unsigned idw = id_width();
    BitWriter w;
    w.write(kAugmentMsg, 2);
    w.write_bool(info.is_cycle);
    w.write(info.nodes.size(), 16);
    for (NodeId v : info.nodes) w.write(static_cast<std::uint64_t>(v), idw);
    const auto it = neighbor_port_.find(info.nodes[my_index + 1]);
    DMATCH_ASSERT(it != neighbor_port_.end());
    ctx.send(it->second, Message::from_writer(std::move(w)));
  }

  const NodeId id_;
  const Graph* g_;
  const int len_;
  const int classes_;
  const int iters_;

  std::map<NodeId, bool> node_recs_;
  std::map<std::pair<NodeId, NodeId>, std::pair<bool, Weight>> edge_recs_;
  std::map<NodeId, int> neighbor_port_;

  std::map<std::uint64_t, AugInfo> all_augs_;
  std::vector<std::uint64_t> own_augs_;
  std::map<std::uint64_t, std::set<std::uint64_t>> conflicts_;
  std::map<std::uint64_t, AugStatus> status_;
  std::map<std::uint64_t, std::uint8_t> class_of_;

  std::map<std::uint64_t, AugRecord> iteration_records_;
  std::set<std::uint64_t> forwarded_;

  bool halted_ = false;
};

}  // namespace

LocalMwmResult local_one_minus_eps_mwm(const Graph& g,
                                       const LocalMwmOptions& options) {
  DMATCH_EXPECTS(options.epsilon > 0 && options.epsilon <= 1);
  for (EdgeId e = 0; e < g.edge_count(); ++e) DMATCH_EXPECTS(g.weight(e) > 0);

  const int k = static_cast<int>(std::ceil(1.0 / options.epsilon));
  const int len = 2 * k + 1;
  const int classes = static_cast<int>(std::ceil(
                          std::log2(std::max(4.0, 2.0 * g.node_count() /
                                                      options.epsilon)))) +
                      1;
  const double log_objects =
      (len + 1) * std::log2(std::max(2, g.node_count()));
  const int iters = static_cast<int>(
      std::ceil(options.mis_budget_factor * std::max(2.0, log_objects)));
  const int sweep_budget =
      options.max_sweeps > 0
          ? options.max_sweeps
          : static_cast<int>(std::ceil(4.0 / options.epsilon));

  LocalMwmResult result;
  result.guarantee = static_cast<double>(k) / (k + 1);
  congest::Network net(g, congest::Model::kLocal, options.seed);

  const int rounds_per_sweep =
      2 * len + classes * iters * 2 * len + len + 4;
  const int hard_cap = sweep_budget + 8 * sweep_budget;

  for (int sweep = 0; sweep < hard_cap; ++sweep) {
    if (options.adaptive_sweeps) {
      // Oracle: stop when no positive-gain augmentation of <= len edges
      // remains; Lemma 4.2 then certifies w(M) >= k/(k+1) w(M*).
      const Matching m = net.extract_matching();
      bool any_positive = false;
      for (const Augmentation& aug :
           enumerate_alternating_augmentations(g, m, len)) {
        if (gain(g, m, aug.edges) > 1e-12) {
          any_positive = true;
          break;
        }
      }
      if (!any_positive) break;
    } else if (sweep >= sweep_budget) {
      break;
    }
    ++result.sweeps;
    result.stats.merge(net.run(
        [&g, len, classes, iters](NodeId v, const Graph&) {
          return std::make_unique<LocalMwmSweepProcess>(v, g, len, classes,
                                                        iters);
        },
        rounds_per_sweep));
  }

  result.matching = net.extract_matching();
  return result;
}

}  // namespace dmatch
