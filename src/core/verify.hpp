// Post-run invariant checking for (possibly degraded) matchings.
//
// verify_matching_invariants is the single gate the fault tests, the
// torture suite and bench_fault_ratio all go through: whatever a fault
// plan did to a run, the returned matching must still be a matching, must
// not claim an edge at a crashed node, and its measured approximation
// ratio against the exact sequential solvers is reported so degradation
// can be quantified rather than hand-waved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "congest/async.hpp"
#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

struct MatchingInvariantReport {
  /// Structural validity: every matched edge exists, registers are
  /// pairwise consistent, no node is covered twice.
  bool valid = false;
  /// No matched edge is incident to a node dead in `net` (vacuously true
  /// when no network / no fault plan is given).
  bool respects_crashes = false;
  std::uint64_t matched_dead_nodes = 0;

  std::size_t size = 0;
  double weight = 0;

  /// Filled when compute_ratio: |M*| from Hopcroft-Karp (bipartite
  /// graphs) or the blossom solver, over the *surviving* subgraph —
  /// crashed nodes cannot be matched by any fault-tolerant algorithm, so
  /// the fair denominator excludes them.
  std::size_t optimal_size = 0;
  double ratio = 1.0;  // size / optimal_size (1.0 when optimal is 0)

  [[nodiscard]] bool ok() const { return valid && respects_crashes; }
  [[nodiscard]] std::string summary() const;
};

/// Check m against g. If `net` is given, its crash schedule defines the
/// dead nodes; if `compute_ratio` is set, the exact optimum over the
/// surviving subgraph is computed (bipartite solver when the graph is
/// 2-colorable, blossom otherwise).
MatchingInvariantReport verify_matching_invariants(
    const Graph& g, const Matching& m,
    const congest::Network* net = nullptr, bool compute_ratio = false);

/// Same check against an explicit dead mask (size n, or empty for none)
/// instead of a Network — for executors that own their registers outside
/// a Network (the async executor's AsyncRunResult::dead_nodes, the
/// half_mwm driver's HalfMwmResult::dead_nodes).
MatchingInvariantReport verify_matching_invariants(
    const Graph& g, const Matching& m, const std::vector<char>& dead,
    bool compute_ratio = false);

// --- Round-accounting cross-checks (see docs/PROTOCOLS.md "Telemetry") --
//
// The engine keeps two independent per-round message records: the
// RunStats histogram, summed on the driver thread at round end, and (when
// an Observer profiles the run) the congestion profiler's per-round
// curve, accumulated message by message. These functions assert the
// internal consistency of each record and the agreement between the
// synchronous and asynchronous executors' histories. Each returns true on
// success and trips a DMATCH_ASSERT (throws ContractViolation) otherwise.

/// sum(round_messages) == messages and size(round_messages) == rounds.
bool verify_round_accounting(const congest::RunStats& stats);

/// sum(round_payloads) == payload_messages.
bool verify_round_accounting(const congest::AsyncStats& stats);

/// The synchronous and asynchronous executions of one protocol under one
/// fault plan sent the same number of payload messages in every simulated
/// round. Trailing silent rounds are trimmed before comparing: the two
/// executors may idle for a different number of receive-only rounds at
/// the end (the engine drains in-flight messages globally, the
/// synchronizer per node).
bool verify_round_histories_agree(const congest::RunStats& sync_stats,
                                  const congest::AsyncStats& async_stats);

}  // namespace dmatch
