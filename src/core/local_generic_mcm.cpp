#include "core/local_generic_mcm.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "graph/augmenting.hpp"
#include "support/wire.hpp"

namespace dmatch {

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::Process;

/// 64-bit signature of a path's canonical node sequence (oriented from its
/// smaller endpoint). Identical at every node that sees the path.
std::uint64_t path_signature(const std::vector<NodeId>& seq) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (NodeId v : seq) {
    h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    std::uint64_t s = h;
    h = splitmix64(s);
  }
  return h;
}

enum class PathStatus : std::uint8_t { kUndecided = 0, kIn = 1, kOut = 2 };

struct PathRecord {
  std::uint64_t value = 0;
  NodeId leader = kNoNode;
  PathStatus status = PathStatus::kUndecided;
};

enum MsgKind : std::uint64_t { kViewMsg = 0, kMisMsg = 1, kAugmentMsg = 2 };

/// The whole-phase LOCAL process. Round schedule for phase length ell with
/// T MIS iterations:
///   [0, 2*ell)                      view flooding
///   [2*ell, 2*ell + T*2*ell)        MIS iterations (2*ell rounds each)
///   [2*ell*(T+1), ... + ell + 1)    augmentation
class LocalPhaseProcess final : public Process {
 public:
  LocalPhaseProcess(NodeId id, const Graph& g, int ell, int mis_iterations)
      : id_(id), g_(&g), ell_(ell), mis_iterations_(mis_iterations) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    const int r = ctx.round();
    const int view_end = 2 * ell_;
    const int mis_end = view_end + mis_iterations_ * 2 * ell_;
    const int augment_end = mis_end + ell_ + 1;

    ingest(ctx, inbox);

    if (r == 0) init_view(ctx);
    if (r < view_end) {
      broadcast_view(ctx);
    } else if (r == view_end) {
      enumerate_paths(ctx);
      begin_mis_iteration(ctx);
    } else if (r < mis_end) {
      const int within = (r - view_end) % (2 * ell_);
      if (within == 0) {
        finish_mis_iteration();
        begin_mis_iteration(ctx);
      } else {
        forward_mis_records(ctx);
      }
    } else if (r == mis_end) {
      finish_mis_iteration();
      start_augments(ctx);
    }
    halted_ = r >= augment_end;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  // ---- view stage -------------------------------------------------------

  void init_view(Context& ctx) {
    const bool matched = ctx.mate_port() >= 0;
    node_recs_[id_] = matched;
    for (int p = 0; p < ctx.degree(); ++p) {
      const NodeId u = ctx.neighbor_id(p);
      const auto key = std::minmax(id_, u);
      edge_recs_[{key.first, key.second}] = (p == ctx.mate_port());
      neighbor_port_[u] = p;
    }
  }

  void ingest(Context& ctx, std::span<const Envelope> inbox) {
    for (const Envelope& env : inbox) {
      auto reader = env.msg.reader();
      switch (reader.read(2)) {
        case kViewMsg:
          ingest_view(reader);
          break;
        case kMisMsg:
          ingest_mis(reader);
          break;
        case kAugmentMsg:
          ingest_augment(ctx, reader);
          break;
        default:
          break;
      }
    }
  }

  [[nodiscard]] unsigned id_width() const {
    return bit_width_for(
        static_cast<std::uint64_t>(std::max(1, g_->node_count() - 1)));
  }

  void broadcast_view(Context& ctx) {
    const unsigned idw = id_width();
    BitWriter w;
    w.write(kViewMsg, 2);
    w.write(node_recs_.size(), 32);
    for (const auto& [v, matched] : node_recs_) {
      w.write(static_cast<std::uint64_t>(v), idw);
      w.write_bool(matched);
    }
    w.write(edge_recs_.size(), 32);
    for (const auto& [uv, matched] : edge_recs_) {
      w.write(static_cast<std::uint64_t>(uv.first), idw);
      w.write(static_cast<std::uint64_t>(uv.second), idw);
      w.write_bool(matched);
    }
    const Message msg = Message::from_writer(std::move(w));
    for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
  }

  void ingest_view(BitReader& reader) {
    const unsigned idw = id_width();
    const auto n_nodes = reader.read(32);
    for (std::uint64_t i = 0; i < n_nodes; ++i) {
      const auto v = static_cast<NodeId>(reader.read(idw));
      const bool matched = reader.read_bool();
      node_recs_[v] = matched;
    }
    const auto n_edges = reader.read(32);
    for (std::uint64_t i = 0; i < n_edges; ++i) {
      const auto u = static_cast<NodeId>(reader.read(idw));
      const auto v = static_cast<NodeId>(reader.read(idw));
      const bool matched = reader.read_bool();
      edge_recs_[{u, v}] = matched;
    }
  }

  // ---- local computation: paths and conflicts ---------------------------

  void enumerate_paths(Context& ctx) {
    (void)ctx;
    // Build the local view as a Graph on remapped ids.
    std::vector<NodeId> local_to_global;
    std::map<NodeId, NodeId> global_to_local;
    for (const auto& [v, matched] : node_recs_) {
      global_to_local[v] = static_cast<NodeId>(local_to_global.size());
      local_to_global.push_back(v);
    }
    std::vector<Edge> edges;
    std::vector<std::pair<NodeId, NodeId>> edge_keys;
    for (const auto& [uv, matched] : edge_recs_) {
      // A boundary edge record can arrive one hop before the node record of
      // its far endpoint; such edges lie outside the usable view radius.
      const auto u_it = global_to_local.find(uv.first);
      const auto v_it = global_to_local.find(uv.second);
      if (u_it == global_to_local.end() || v_it == global_to_local.end()) {
        continue;
      }
      edges.push_back({u_it->second, v_it->second, 1.0});
      edge_keys.push_back(uv);
    }
    // A matched boundary node whose matching edge lies outside the view
    // must not look free (that would fabricate augmenting paths); attach a
    // phantom mate so alternation dead-ends there instead.
    std::vector<char> has_matched_edge(local_to_global.size(), false);
    for (std::size_t i = 0; i < edge_keys.size(); ++i) {
      if (!edge_recs_.at(edge_keys[i])) continue;
      has_matched_edge[static_cast<std::size_t>(edges[i].u)] = true;
      has_matched_edge[static_cast<std::size_t>(edges[i].v)] = true;
    }
    auto total_nodes = static_cast<NodeId>(local_to_global.size());
    std::vector<EdgeId> phantom_matched;
    for (const auto& [v, matched] : node_recs_) {
      const NodeId lv = global_to_local.at(v);
      if (matched && !has_matched_edge[static_cast<std::size_t>(lv)]) {
        phantom_matched.push_back(static_cast<EdgeId>(edges.size()));
        edges.push_back({lv, total_nodes++, 1.0});
      }
    }
    const Graph view = Graph::from_edges(total_nodes, std::move(edges));
    Matching view_matching(view.node_count());
    for (EdgeId e = 0; e < static_cast<EdgeId>(edge_keys.size()); ++e) {
      if (edge_recs_.at(edge_keys[static_cast<std::size_t>(e)])) {
        view_matching.add(view, e);
      }
    }
    for (EdgeId e : phantom_matched) view_matching.add(view, e);

    const auto raw =
        enumerate_augmenting_paths(view, view_matching, ell_);
    // Convert to canonical global node sequences.
    std::vector<std::vector<NodeId>> seqs;
    seqs.reserve(raw.size());
    for (const auto& path_edges : raw) {
      seqs.push_back(to_node_sequence(view, view_matching, path_edges,
                                      local_to_global));
    }
    // Record ownership and pairwise conflicts among all seen paths.
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      const std::uint64_t sig = path_signature(seqs[i]);
      all_paths_[sig] = seqs[i];
      if (seqs[i].front() == id_) own_paths_.push_back(sig);
    }
    for (auto& [sig, seq] : all_paths_) {
      std::set<NodeId> nodes(seq.begin(), seq.end());
      for (const std::uint64_t own : own_paths_) {
        if (own == sig) continue;
        const auto& mine = all_paths_[own];
        const bool intersects =
            std::any_of(mine.begin(), mine.end(),
                        [&nodes](NodeId v) { return nodes.count(v) > 0; });
        if (intersects) conflicts_[own].insert(sig);
      }
    }
    for (const std::uint64_t own : own_paths_) {
      status_[own] = PathStatus::kUndecided;
      conflicts_.try_emplace(own);
    }
  }

  static std::vector<NodeId> to_node_sequence(
      const Graph& view, const Matching& vm,
      const std::vector<EdgeId>& path_edges,
      const std::vector<NodeId>& local_to_global) {
    (void)vm;
    // Reconstruct the node order from consecutive shared endpoints.
    std::vector<NodeId> seq;
    if (path_edges.size() == 1) {
      const Edge& ed = view.edge(path_edges[0]);
      seq = {ed.u, ed.v};
    } else {
      const Edge& e0 = view.edge(path_edges[0]);
      const Edge& e1 = view.edge(path_edges[1]);
      NodeId first = (e0.u == e1.u || e0.u == e1.v) ? e0.v : e0.u;
      seq.push_back(first);
      NodeId cur = first;
      for (EdgeId e : path_edges) {
        cur = view.other_endpoint(e, cur);
        seq.push_back(cur);
      }
    }
    std::vector<NodeId> global;
    global.reserve(seq.size());
    for (NodeId v : seq) {
      global.push_back(local_to_global[static_cast<std::size_t>(v)]);
    }
    if (global.front() > global.back()) {
      std::reverse(global.begin(), global.end());
    }
    return global;
  }

  // ---- MIS emulation stage ----------------------------------------------

  void begin_mis_iteration(Context& ctx) {
    iteration_records_.clear();
    forwarded_this_iteration_.clear();
    // Leaders inject one record per own path.
    for (const std::uint64_t sig : own_paths_) {
      PathRecord rec;
      rec.leader = id_;
      rec.status = status_[sig];
      rec.value = ctx.rng()();
      iteration_records_[sig] = rec;
    }
    forward_mis_records(ctx);
  }

  void forward_mis_records(Context& ctx) {
    std::vector<std::pair<std::uint64_t, PathRecord>> fresh;
    for (const auto& [sig, rec] : iteration_records_) {
      if (forwarded_this_iteration_.insert(sig).second) {
        fresh.emplace_back(sig, rec);
      }
    }
    if (fresh.empty()) return;
    const unsigned idw = id_width();
    BitWriter w;
    w.write(kMisMsg, 2);
    w.write(fresh.size(), 32);
    for (const auto& [sig, rec] : fresh) {
      w.write(sig, 64);
      w.write(rec.value, 64);
      w.write(static_cast<std::uint64_t>(rec.leader), idw);
      w.write(static_cast<std::uint64_t>(rec.status), 2);
    }
    const Message msg = Message::from_writer(std::move(w));
    for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
  }

  void ingest_mis(BitReader& reader) {
    const unsigned idw = id_width();
    const auto count = reader.read(32);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t sig = reader.read(64);
      PathRecord rec;
      rec.value = reader.read(64);
      rec.leader = static_cast<NodeId>(reader.read(idw));
      rec.status = static_cast<PathStatus>(reader.read(2));
      iteration_records_.try_emplace(sig, rec);
    }
  }

  void finish_mis_iteration() {
    for (const std::uint64_t own : own_paths_) {
      if (status_[own] != PathStatus::kUndecided) continue;
      const PathRecord& mine = iteration_records_.at(own);
      bool blocked_by_in = false;
      bool is_local_max = true;
      for (const std::uint64_t other : conflicts_[own]) {
        const auto it = iteration_records_.find(other);
        if (it == iteration_records_.end()) {
          // A conflicting path's record failed to arrive; be conservative.
          is_local_max = false;
          continue;
        }
        if (it->second.status == PathStatus::kIn) {
          blocked_by_in = true;
          break;
        }
        if (it->second.status != PathStatus::kUndecided) continue;
        const auto mine_key =
            std::make_tuple(mine.value, mine.leader, own);
        const auto other_key =
            std::make_tuple(it->second.value, it->second.leader, other);
        if (other_key > mine_key) is_local_max = false;
      }
      if (blocked_by_in) {
        status_[own] = PathStatus::kOut;
      } else if (is_local_max) {
        status_[own] = PathStatus::kIn;
        // Sibling paths of the same leader always intersect (at this
        // leader); settle them immediately and locally.
        for (const std::uint64_t sib : own_paths_) {
          if (sib != own && status_[sib] == PathStatus::kUndecided &&
              conflicts_[own].count(sib) > 0) {
            status_[sib] = PathStatus::kOut;
          }
        }
      }
    }
  }

  // ---- augmentation stage -----------------------------------------------

  void start_augments(Context& ctx) {
    for (const std::uint64_t own : own_paths_) {
      if (status_[own] != PathStatus::kIn) continue;
      const auto& seq = all_paths_[own];
      DMATCH_ASSERT(seq.front() == id_);
      apply_flip(ctx, seq, 0);
      send_augment(ctx, seq, 1);
    }
  }

  void ingest_augment(Context& ctx, BitReader& reader) {
    const unsigned idw = id_width();
    const auto len = reader.read(16);
    std::vector<NodeId> seq;
    seq.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) {
      seq.push_back(static_cast<NodeId>(reader.read(idw)));
    }
    const auto it = std::find(seq.begin(), seq.end(), id_);
    DMATCH_ASSERT(it != seq.end());
    const auto index = static_cast<std::size_t>(it - seq.begin());
    apply_flip(ctx, seq, index);
    if (index + 1 < seq.size()) send_augment(ctx, seq, index + 1);
  }

  void apply_flip(Context& ctx, const std::vector<NodeId>& seq,
                  std::size_t index) {
    // Edge (i, i+1) is non-matching iff i is even; the new mate sits across
    // the adjacent non-matching edge.
    const NodeId new_mate = (index % 2 == 0) ? seq[index + 1] : seq[index - 1];
    const auto it = neighbor_port_.find(new_mate);
    DMATCH_ASSERT(it != neighbor_port_.end());
    ctx.set_mate_port(it->second);
  }

  void send_augment(Context& ctx, const std::vector<NodeId>& seq,
                    std::size_t next_index) {
    const unsigned idw = id_width();
    BitWriter w;
    w.write(kAugmentMsg, 2);
    w.write(seq.size(), 16);
    for (NodeId v : seq) w.write(static_cast<std::uint64_t>(v), idw);
    const auto it = neighbor_port_.find(seq[next_index]);
    DMATCH_ASSERT(it != neighbor_port_.end());
    ctx.send(it->second, Message::from_writer(std::move(w)));
  }

  const NodeId id_;
  const Graph* g_;
  const int ell_;
  const int mis_iterations_;

  std::map<NodeId, bool> node_recs_;
  std::map<std::pair<NodeId, NodeId>, bool> edge_recs_;
  std::map<NodeId, int> neighbor_port_;

  std::map<std::uint64_t, std::vector<NodeId>> all_paths_;
  std::vector<std::uint64_t> own_paths_;
  std::map<std::uint64_t, std::set<std::uint64_t>> conflicts_;
  std::map<std::uint64_t, PathStatus> status_;

  std::map<std::uint64_t, PathRecord> iteration_records_;
  std::set<std::uint64_t> forwarded_this_iteration_;

  bool halted_ = false;
};

}  // namespace

LocalGenericResult local_generic_mcm(const Graph& g,
                                     const LocalGenericOptions& options) {
  DMATCH_EXPECTS(options.epsilon > 0 && options.epsilon <= 1);
  const int k = static_cast<int>(std::ceil(1.0 / options.epsilon));

  LocalGenericResult result;
  congest::Network net(g, congest::Model::kLocal, options.seed);

  for (int ell = 1; ell <= 2 * k - 1; ell += 2) {
    ++result.phases;
    const double log_paths =
        (ell + 1) * std::log2(std::max(2, g.node_count()));
    const int mis_iterations = static_cast<int>(
        std::ceil(options.mis_budget_factor * std::max(2.0, log_paths)));
    const int total_rounds = 2 * ell + mis_iterations * 2 * ell + ell + 4;

    for (int attempt = 0;; ++attempt) {
      result.stats.merge(net.run(
          [&g, ell, mis_iterations](NodeId v, const Graph&) {
            return std::make_unique<LocalPhaseProcess>(v, g, ell,
                                                       mis_iterations);
          },
          total_rounds));
      if (!options.retry_incomplete_phase) break;
      const Matching m = net.extract_matching();
      if (enumerate_augmenting_paths(g, m, ell, 1).empty()) break;
      ++result.phase_retries;
      DMATCH_ASSERT(attempt < 64);  // w.h.p. budget should rarely retry
    }
  }

  result.matching = net.extract_matching();
  return result;
}

}  // namespace dmatch
