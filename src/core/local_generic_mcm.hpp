// Algorithms 1 + 2 / Theorem 3.7: the generic (1 - eps)-MCM in the LOCAL
// model (unbounded, but fully accounted, message sizes).
//
// Per phase ell = 1, 3, ..., 2k-1 (k = ceil(1/eps)):
//   * view stage (2*ell rounds): every node floods node/edge records until
//     it holds its distance-2*ell view (Algorithm 2's exploration);
//   * local stage: each node enumerates the augmenting paths of length
//     <= ell it leads (leader = endpoint with smaller id) and, from its
//     2*ell view, the set of paths intersecting each of its paths -- the
//     conflict graph C_M(ell) seen locally;
//   * MIS stage (T iterations x 2*ell rounds): Luby's algorithm emulated on
//     C_M(ell): leaders draw one value per undecided path, flood
//     (signature, value, status) records for 2*ell rounds, then decide
//     joins locally; joins propagate as status=in records one iteration
//     later (Lemma 3.5's emulation);
//   * augment stage (ell + 1 rounds): leaders of selected paths send the
//     path description along it; every node on it repoints its register.
//
// Message sizes are Theta(local view size) bits, exhibiting the
// O((|V|+|E|) log n) blow-up of Lemma 3.4; experiment E9 measures it.
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"

namespace dmatch {

struct LocalGenericOptions {
  /// Approximation parameter; k = ceil(1/eps) phases of odd lengths.
  double epsilon = 0.34;
  /// MIS iterations per phase: ceil(factor * log2(n^(ell+1))).
  double mis_budget_factor = 1.0;
  /// Re-run a phase if the oracle still finds a short augmenting path
  /// (compensates for the w.h.p. failure probability of a fixed budget).
  bool retry_incomplete_phase = true;
  std::uint64_t seed = 1;
};

struct LocalGenericResult {
  Matching matching;
  congest::RunStats stats;
  int phases = 0;
  int phase_retries = 0;
};

LocalGenericResult local_generic_mcm(const Graph& g,
                                     const LocalGenericOptions& options = {});

}  // namespace dmatch
