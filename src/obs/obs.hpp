// Observability façade for the simulator: one Observer owns a
// MetricsRegistry, a TraceSink, and a CongestionProfiler, and hands the
// engine per-shard single-writer ShardObs handles.
//
// Cost model (the E21 contract):
//  * not attached — every hook is `if (observer == nullptr)`-guarded, a
//    single predictable branch on the round loop and nothing at all on
//    the per-message path (the engine caches a null ShardObs*);
//  * compiled out — building with -DDMATCH_OBS_DISABLED removes every
//    hook at preprocessing time via the DMATCH_OBS() macro, proving the
//    zero-cost claim by construction;
//  * enabled — per-message work is two array adds (profiler) plus three
//    (bits histogram); per-round work is a handful of trace appends and
//    slab snapshots only under active fault plans.
//
// Determinism: all recorded values derive from (round clock, node/slot
// ids, fault-plan hashes), never from shard layout or wall time, and
// every merge is commutative — so merged metrics are byte-identical and
// merged traces event-set-identical across num_threads. Partially
// executed aborted rounds (contract trips under faults) are rolled back
// via RoundMark so they never leak layout-dependent events.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

#ifndef DMATCH_OBS_DISABLED
#define DMATCH_OBS(...) __VA_ARGS__
#else
#define DMATCH_OBS(...)
#endif

namespace dmatch::obs {

struct ObsConfig {
  bool metrics = true;
  bool trace = true;
  bool profile_links = true;
  std::size_t top_k = 16;  // hot-links report size
  /// Bounded-memory tracing: keep only the last `trace_capacity` events
  /// per shard buffer (ring overwrite). 0 = unbounded. Retained events
  /// are identical across thread counts for the same cap; summaries of
  /// capped and uncapped traces agree on every retained event.
  std::size_t trace_capacity = 0;
};

/// Dense ids of the metrics every run records, registered up front so
/// all runs sharing an Observer agree on the layout. Naming convention:
/// `subsystem.metric` (see docs/PROTOCOLS.md "Telemetry").
struct StdMetricIds {
  using Id = MetricsRegistry::Id;
  Id engine_rounds, engine_messages, engine_bits, engine_runs;
  Id engine_max_message_bits;            // gauge
  Id engine_message_bits_hist;           // histogram (per-message bits)
  Id engine_round_messages_hist;         // histogram (messages per round)
  Id fault_dropped, fault_duplicated, fault_delayed, fault_reordered;
  Id fault_crashed, fault_restarted;
  Id arq_fast_retransmits, arq_timeout_retransmits, arq_dead_links;
  Id checkpoint_captures, checkpoint_rollbacks, checkpoint_heals;
  Id sched_shard_service_ns;  // histogram; fed only under SchedOptions::profile
  Id async_events, async_payload_messages, async_control_messages;
  Id async_virtual_rounds;
};

class Observer;

/// Per-engine-shard handle: everything reachable from it has a single
/// writer (the worker owning the shard, or the driver thread for the
/// shard the driver writes, conventionally 0 while workers are parked).
class ShardObs {
 public:
  std::uint64_t now = 0;  // global round clock, set by the engine per round

  void trace(EventType type, std::uint32_t actor, std::uint64_t a = 0,
             std::uint64_t b = 0) {
    if (events_ != nullptr) {
      events_->push({now, actor, static_cast<std::uint16_t>(type), a, b});
    }
  }
  /// Like trace() but with an explicit timestamp (events reconstructed
  /// after the fact, e.g. crash schedules and async virtual rounds).
  void trace_at(std::uint64_t t, EventType type, std::uint32_t actor,
                std::uint64_t a = 0, std::uint64_t b = 0) {
    if (events_ != nullptr) {
      events_->push({t, actor, static_cast<std::uint16_t>(type), a, b});
    }
  }

  void count(MetricsRegistry::Id id, std::uint64_t v = 1) {
    if (registry_ != nullptr) registry_->add(shard_, id, v);
  }
  void gauge_max(MetricsRegistry::Id id, std::uint64_t v) {
    if (registry_ != nullptr) registry_->set_max(shard_, id, v);
  }
  void observe(MetricsRegistry::Id id, std::uint64_t v) {
    if (registry_ != nullptr) registry_->observe(shard_, id, v);
  }

  /// Per-message hot path: link profiling + message-size histogram.
  /// Both sinks are pre-resolved to raw slab pointers at begin_run() so
  /// the whole hook is three adds with no pointer chasing: the profiler
  /// pair is interleaved onto one cache line, and the histogram's
  /// count/sum slots are NOT touched here — the executor already tracks
  /// per-round message/bit deltas and bulk-adds them once per round via
  /// bits_hist_totals(), so only the bucket add carries per-message
  /// information.
  void link_message(std::size_t slot, std::uint32_t bits) {
    if (link_ != nullptr) {
      std::uint64_t* const p = link_ + 2 * slot;
      p[0] += 1;
      p[1] += bits;
    }
    if (bits_hist_ != nullptr) {
      bits_hist_[2 + MetricsRegistry::bucket_of(bits)] += 1;
    }
  }

  /// Driver-side completion of link_message(): adds a round's message
  /// count and bit total to the message-bits histogram's count/sum
  /// slots. Sums commute, so splitting the histogram between shard
  /// workers (buckets) and the driver (totals) merges identically.
  void bits_hist_totals(std::uint64_t count, std::uint64_t sum) {
    if (bits_hist_ != nullptr) {
      bits_hist_[0] += count;
      bits_hist_[1] += sum;
    }
  }

  [[nodiscard]] const StdMetricIds& ids() const noexcept { return *ids_; }
  [[nodiscard]] Observer* owner() const noexcept { return owner_; }

 private:
  friend class Observer;
  Observer* owner_ = nullptr;
  const StdMetricIds* ids_ = nullptr;
  unsigned shard_ = 0;
  TraceSink::ShardBuf* events_ = nullptr;  // null if tracing disabled
  MetricsRegistry* registry_ = nullptr;        // null if metrics disabled
  std::uint64_t* link_ = nullptr;       // profiler's interleaved link array;
                                        // null unless this run's graph is
                                        // the bound one
  std::uint64_t* bits_hist_ = nullptr;  // this shard's message-bits
                                        // histogram slots; null if metrics
                                        // disabled
};

class Observer {
 public:
  explicit Observer(ObsConfig config = {});

  [[nodiscard]] const ObsConfig& config() const noexcept { return config_; }
  [[nodiscard]] const StdMetricIds& ids() const noexcept { return ids_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] TraceSink& trace_sink() noexcept { return trace_; }
  [[nodiscard]] const TraceSink& trace_sink() const noexcept { return trace_; }
  [[nodiscard]] CongestionProfiler& profiler() noexcept { return profiler_; }
  [[nodiscard]] const CongestionProfiler& profiler() const noexcept {
    return profiler_;
  }

  /// Attach an engine run: size per-shard state and decide whether this
  /// run's graph is link-profiled. Driver thread, between runs. Returns
  /// true if the run should feed the link profiler.
  bool begin_run(unsigned num_shards, const Graph& g);
  [[nodiscard]] ShardObs* shard(unsigned s) { return shards_[s].get(); }

  // --- global round clock -------------------------------------------
  // One monotonic count of executed simulator rounds across every run
  // (engine or async) the Observer saw, advanced by the driver thread.
  // Aborted rounds do not advance it, mirroring Network lifetime
  // accounting, so timestamps are replay-stable across thread counts.
  [[nodiscard]] std::uint64_t clock() const noexcept { return clock_; }
  void advance_clock(std::uint64_t rounds = 1) noexcept { clock_ += rounds; }

  // --- driver-side conveniences (shard 0, current clock) -------------
  void phase_begin(std::string_view name, std::uint64_t index = 0);
  void phase_end(std::string_view name, std::uint64_t index = 0);
  void instant(EventType type, std::uint64_t a = 0, std::uint64_t b = 0);

 private:
  void ensure_handles(unsigned n);

  ObsConfig config_;
  MetricsRegistry metrics_;
  TraceSink trace_;
  CongestionProfiler profiler_;
  StdMetricIds ids_{};
  std::vector<std::unique_ptr<ShardObs>> shards_;
  std::uint64_t clock_ = 0;
};

}  // namespace dmatch::obs
