// Deterministic structured tracing for the simulator stack.
//
// A TraceSink collects fixed-size binary TraceEvent records into
// per-shard buffers (single writer each: the engine worker that owns the
// shard, or the driver thread for shard 0), so the hot path is a vector
// append with no lock and no formatting. merged() collates the buffers
// into one canonically ordered stream: events sort by
// (t, type, actor, a, b), all of which are pure functions of the run
// (round clock, node/slot ids, fault-plan decisions) and never of the
// shard layout, so the merged trace of a run is identical for every
// Network::Options::num_threads. tools/trace_summarize diffs two such
// streams to check exactly that.
//
// Exports: Chrome trace_event JSON (loadable in chrome://tracing or
// Perfetto: phases as B/E duration slices, rounds as counter tracks,
// everything else as instants) and one-event-per-line JSONL for
// scripting and determinism diffing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dmatch::obs {

enum class EventType : std::uint16_t {
  kRoundStart = 0,       // a = nodes scheduled this round
  kRoundEnd = 1,         // a = messages sent this round, b = bits
  kPhaseBegin = 2,       // a = interned phase name, b = driver index (iter/ell)
  kPhaseEnd = 3,         // a = interned phase name, b = driver index
  kArqFastRetransmit = 4,     // actor = node, a = port, b = vround
  kArqTimeoutRetransmit = 5,  // actor = node, a = port, b = vround
  kArqLinkDead = 6,           // actor = node, a = port, b = cause (0 = retries
                              // exhausted, 1 = silence limit)
  kFaultDrop = 7,       // actor = receiver, a = receiver slot, b = round
  kFaultDuplicate = 8,  // actor = receiver, a = receiver slot, b = extra delay
  kFaultDelay = 9,      // actor = receiver, a = receiver slot, b = extra delay
  kFaultReorder = 10,   // actor = reordered receiver
  kCrash = 11,          // actor = crashed node
  kRestart = 12,        // actor = restarted node
  kCheckpointCapture = 13,   // a = attempt index
  kCheckpointRollback = 14,  // a = attempt index, b = cause (0 = contract,
                             // 1 = over-cap message)
  kCheckpointHeal = 15,      // a = torn registers healed, b = dead healed
  kSchedShard = 16,          // actor = shard, a = service ns (profile only;
                             // wall-clock, never in deterministic output)
  kTypeCount = 17,
};

/// Name of an event type as it appears in exports ("round.start", ...).
[[nodiscard]] const char* event_type_name(EventType t) noexcept;

struct TraceEvent {
  std::uint64_t t = 0;        // global round clock (see Observer)
  std::uint32_t actor = 0;    // node id / 0 for engine- or driver-level
  std::uint16_t type = 0;     // EventType
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class TraceSink {
 public:
  // Cache-line-aligned so two workers appending to neighboring buffers
  // do not share a line through the vector headers. In bounded mode
  // (cap > 0) the buffer is a ring over the last `cap` appends: the
  // vector never exceeds cap entries and the oldest event is
  // overwritten. The retained set is a pure function of each shard's
  // single-writer append sequence, so capped traces are deterministic
  // run-to-run for a fixed thread count; across thread counts the shard
  // layout (and thus which events survive eviction) differs, unlike the
  // unbounded mode whose merged() stream is layout-independent.
  struct alignas(64) ShardBuf {
    std::vector<TraceEvent> events;
    std::uint64_t appended = 0;  // lifetime appends, including evicted
    std::size_t cap = 0;         // 0 = unbounded

    void push(const TraceEvent& e) {
      const std::uint64_t i = appended++;
      if (cap == 0 || events.size() < cap) {
        events.push_back(e);
      } else {
        events[static_cast<std::size_t>(i % cap)] = e;
      }
    }
  };

  /// Grow to at least `n` single-writer buffers. Driver thread only,
  /// never while engine workers are running. Existing buffers keep their
  /// addresses (they are heap-boxed), so cached pointers stay valid.
  void ensure_shards(unsigned n);

  /// Bound every shard buffer to the last `per_shard_cap` events
  /// (0 restores unbounded growth). Driver thread only; applies to
  /// existing and future shards. Shrinking an over-full buffer keeps
  /// its most recent events.
  void set_capacity(std::size_t per_shard_cap);
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

  /// Rollback support for aborted rounds. In unbounded mode a Mark is
  /// just the buffer length; in bounded mode it snapshots the ring
  /// (<= cap events), since an overwrite cannot be undone in place.
  struct Mark {
    std::uint64_t appended = 0;
    std::size_t size = 0;
    std::vector<TraceEvent> saved;  // bounded mode only
  };
  [[nodiscard]] Mark mark(unsigned shard) const;
  void rewind(unsigned shard, Mark&& m);

  [[nodiscard]] std::vector<TraceEvent>& buffer(unsigned shard) {
    return shards_[shard]->events;
  }
  [[nodiscard]] ShardBuf& shard_buf(unsigned shard) { return *shards_[shard]; }
  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// Intern a phase name (driver thread only). Stable: the same name
  /// always returns the same id within one sink.
  std::uint32_t intern(std::string_view name);
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }

  /// Events currently retained (== appended_count() while unbounded).
  [[nodiscard]] std::uint64_t event_count() const noexcept;
  /// Lifetime appends across all shards, including ring-evicted events.
  [[nodiscard]] std::uint64_t appended_count() const noexcept;

  /// All events, canonically ordered (see file comment): identical for
  /// every thread count, so two merged() streams can be compared with ==.
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  /// Chrome trace_event JSON array ("[" ... "]").
  void write_chrome_json(std::ostream& out) const;
  /// One canonical JSON object per line, in merged() order.
  void write_jsonl(std::ostream& out) const;

 private:
  std::vector<std::unique_ptr<ShardBuf>> shards_;
  std::vector<std::string> names_;
  std::size_t cap_ = 0;  // 0 = unbounded
};

}  // namespace dmatch::obs
