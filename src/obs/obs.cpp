#include "obs/obs.hpp"

namespace dmatch::obs {

Observer::Observer(ObsConfig config) : config_(config) {
  trace_.set_capacity(config_.trace_capacity);
  // Standard metrics are registered unconditionally (registration is
  // cheap and keeps the slot layout identical across configs); whether
  // anything is *recorded* is decided per ShardObs handle.
  auto& m = metrics_;
  ids_.engine_rounds = m.counter("engine.rounds");
  ids_.engine_messages = m.counter("engine.messages");
  ids_.engine_bits = m.counter("engine.bits");
  ids_.engine_runs = m.counter("engine.runs");
  ids_.engine_max_message_bits = m.gauge_max("engine.max_message_bits");
  ids_.engine_message_bits_hist = m.histogram_log2("engine.message_bits");
  ids_.engine_round_messages_hist = m.histogram_log2("engine.round_messages");
  ids_.fault_dropped = m.counter("fault.dropped");
  ids_.fault_duplicated = m.counter("fault.duplicated");
  ids_.fault_delayed = m.counter("fault.delayed");
  ids_.fault_reordered = m.counter("fault.reordered");
  ids_.fault_crashed = m.counter("fault.crashed");
  ids_.fault_restarted = m.counter("fault.restarted");
  ids_.arq_fast_retransmits = m.counter("arq.fast_retransmits");
  ids_.arq_timeout_retransmits = m.counter("arq.timeout_retransmits");
  ids_.arq_dead_links = m.counter("arq.dead_links");
  ids_.checkpoint_captures = m.counter("checkpoint.captures");
  ids_.checkpoint_rollbacks = m.counter("checkpoint.rollbacks");
  ids_.checkpoint_heals = m.counter("checkpoint.heals");
  ids_.sched_shard_service_ns = m.histogram_log2("sched.shard_service_ns");
  ids_.async_events = m.counter("async.events");
  ids_.async_payload_messages = m.counter("async.payload_messages");
  ids_.async_control_messages = m.counter("async.control_messages");
  ids_.async_virtual_rounds = m.counter("async.virtual_rounds");
}

void Observer::ensure_handles(unsigned n) {
  if (n == 0) n = 1;
  metrics_.ensure_shards(n);
  trace_.ensure_shards(n);
  while (shards_.size() < n) {
    auto h = std::make_unique<ShardObs>();
    const auto s = static_cast<unsigned>(shards_.size());
    h->owner_ = this;
    h->ids_ = &ids_;
    h->shard_ = s;
    h->events_ = config_.trace ? &trace_.shard_buf(s) : nullptr;
    h->registry_ = config_.metrics ? &metrics_ : nullptr;
    shards_.push_back(std::move(h));
  }
}

bool Observer::begin_run(unsigned num_shards, const Graph& g) {
  ensure_handles(num_shards);
  const bool profiled = config_.profile_links && profiler_.bind(g);
  for (auto& h : shards_) {
    h->now = clock_;
    // Raw pointers for the per-message path; re-resolved every run
    // because bind() and shard growth can move the underlying arrays.
    h->link_ =
        (profiled && h->shard_ < num_shards) ? profiler_.data() : nullptr;
    h->bits_hist_ =
        config_.metrics
            ? metrics_.slab_ptr(h->shard_, ids_.engine_message_bits_hist)
            : nullptr;
  }
  return profiled;
}

void Observer::phase_begin(std::string_view name, std::uint64_t index) {
  if (!config_.trace) return;
  ensure_handles(1);
  const std::uint32_t id = trace_.intern(name);
  shards_[0]->trace_at(clock_, EventType::kPhaseBegin, 0, id, index);
}

void Observer::phase_end(std::string_view name, std::uint64_t index) {
  if (!config_.trace) return;
  ensure_handles(1);
  const std::uint32_t id = trace_.intern(name);
  shards_[0]->trace_at(clock_, EventType::kPhaseEnd, 0, id, index);
}

void Observer::instant(EventType type, std::uint64_t a, std::uint64_t b) {
  ensure_handles(1);
  shards_[0]->trace_at(clock_, type, 0, a, b);
}

}  // namespace dmatch::obs
