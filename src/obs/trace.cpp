#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

#include "support/assert.hpp"

namespace dmatch::obs {

const char* event_type_name(EventType t) noexcept {
  switch (t) {
    case EventType::kRoundStart: return "round.start";
    case EventType::kRoundEnd: return "round.end";
    case EventType::kPhaseBegin: return "phase.begin";
    case EventType::kPhaseEnd: return "phase.end";
    case EventType::kArqFastRetransmit: return "arq.fast_retransmit";
    case EventType::kArqTimeoutRetransmit: return "arq.timeout_retransmit";
    case EventType::kArqLinkDead: return "arq.link_dead";
    case EventType::kFaultDrop: return "fault.drop";
    case EventType::kFaultDuplicate: return "fault.duplicate";
    case EventType::kFaultDelay: return "fault.delay";
    case EventType::kFaultReorder: return "fault.reorder";
    case EventType::kCrash: return "fault.crash";
    case EventType::kRestart: return "fault.restart";
    case EventType::kCheckpointCapture: return "checkpoint.capture";
    case EventType::kCheckpointRollback: return "checkpoint.rollback";
    case EventType::kCheckpointHeal: return "checkpoint.heal";
    case EventType::kSchedShard: return "sched.shard";
    case EventType::kTypeCount: break;
  }
  return "unknown";
}

void TraceSink::ensure_shards(unsigned n) {
  while (shards_.size() < n) {
    shards_.push_back(std::make_unique<ShardBuf>());
    shards_.back()->cap = cap_;
  }
}

void TraceSink::set_capacity(std::size_t per_shard_cap) {
  cap_ = per_shard_cap;
  for (auto& s : shards_) {
    s->cap = cap_;
    if (cap_ != 0 && s->events.size() > cap_) {
      // Keep the most recent cap events. The buffer was unbounded (or
      // wider) until now, so events are in append order and the tail is
      // the newest.
      s->events.erase(s->events.begin(),
                      s->events.end() - static_cast<std::ptrdiff_t>(cap_));
      // Future overwrites must start at the oldest retained slot.
      s->appended = s->events.size();
    }
  }
}

TraceSink::Mark TraceSink::mark(unsigned shard) const {
  const ShardBuf& s = *shards_[shard];
  Mark m;
  m.appended = s.appended;
  m.size = s.events.size();
  if (s.cap != 0) m.saved = s.events;
  return m;
}

void TraceSink::rewind(unsigned shard, Mark&& m) {
  ShardBuf& s = *shards_[shard];
  DMATCH_EXPECTS(m.appended <= s.appended);
  if (s.cap != 0) {
    s.events = std::move(m.saved);
  } else {
    DMATCH_EXPECTS(m.size <= s.events.size());
    s.events.resize(m.size);
  }
  s.appended = m.appended;
}

std::uint32_t TraceSink::intern(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

std::uint64_t TraceSink::event_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->events.size();
  return total;
}

std::uint64_t TraceSink::appended_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->appended;
  return total;
}

std::vector<TraceEvent> TraceSink::merged() const {
  std::vector<TraceEvent> all;
  all.reserve(event_count());
  for (const auto& s : shards_) {
    all.insert(all.end(), s->events.begin(), s->events.end());
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& x, const TraceEvent& y) {
    return std::tie(x.t, x.type, x.actor, x.a, x.b) <
           std::tie(y.t, y.type, y.actor, y.a, y.b);
  });
  return all;
}

namespace {

const char* phase_name(const std::vector<std::string>& names, std::uint64_t id) {
  return id < names.size() ? names[id].c_str() : "?";
}

}  // namespace

void TraceSink::write_chrome_json(std::ostream& out) const {
  // One JSON array of trace_event objects; ts is the round clock (shown
  // as microseconds by the viewer — one tick per simulated round).
  const std::vector<TraceEvent> all = merged();
  out << "[";
  bool first = true;
  for (const TraceEvent& e : all) {
    if (!first) out << ",";
    first = false;
    out << "\n";
    const auto type = static_cast<EventType>(e.type);
    switch (type) {
      case EventType::kRoundStart:
        out << R"({"name":"round.active","ph":"C","pid":0,"tid":0,"ts":)" << e.t
            << R"(,"args":{"active":)" << e.a << "}}";
        break;
      case EventType::kRoundEnd:
        out << R"({"name":"round.traffic","ph":"C","pid":0,"tid":0,"ts":)"
            << e.t << R"(,"args":{"messages":)" << e.a << R"(,"bits":)" << e.b
            << "}}";
        break;
      case EventType::kPhaseBegin:
      case EventType::kPhaseEnd:
        out << R"({"name":")" << phase_name(names_, e.a) << R"(","ph":")"
            << (type == EventType::kPhaseBegin ? "B" : "E")
            << R"(","pid":0,"tid":0,"ts":)" << e.t << R"(,"args":{"index":)"
            << e.b << "}}";
        break;
      default:
        out << R"({"name":")" << event_type_name(type)
            << R"(","ph":"i","s":"t","pid":0,"tid":)" << e.actor << R"(,"ts":)"
            << e.t << R"(,"args":{"a":)" << e.a << R"(,"b":)" << e.b << "}}";
        break;
    }
  }
  out << "\n]\n";
}

void TraceSink::write_jsonl(std::ostream& out) const {
  for (const TraceEvent& e : merged()) {
    const auto type = static_cast<EventType>(e.type);
    out << R"({"t":)" << e.t << R"(,"type":")" << event_type_name(type)
        << R"(","actor":)" << e.actor << R"(,"a":)" << e.a << R"(,"b":)" << e.b;
    if (type == EventType::kPhaseBegin || type == EventType::kPhaseEnd) {
      out << R"(,"name":")" << phase_name(names_, e.a) << "\"";
    }
    out << "}\n";
  }
}

}  // namespace dmatch::obs
