// Congestion profiler: per-link traffic totals and per-round curves.
//
// The profiler binds to one graph's sender-side slot layout (slot =
// slot_offset[v] + port, the same CSR prefix-sum layout the round
// engine routes with). Each directed slot has exactly one writer — the
// engine worker that owns the sending node's shard — so record() is two
// plain adds into global arrays with no atomics, and the totals are
// shard-layout independent by construction. Per-round message/bit
// curves are appended by the driver thread at round end from the
// engine's own per-round deltas, which doubles as the cross-check
// against RunStats.round_messages (see core/verify).
//
// Runs on other graphs (e.g. the subsidiary nets built by the MCM/MWM
// drivers) are not link-profiled: only the first graph bound after
// construction is, so the hot-links report stays about the input graph.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "graph/graph.hpp"

namespace dmatch::obs {

class CongestionProfiler {
 public:
  /// Bind the profiler to `g`'s slot layout. Returns true if runs on
  /// this graph should be profiled (first graph bound wins; re-binding
  /// the same graph returns true again, any other graph false).
  bool bind(const Graph& g);

  [[nodiscard]] bool bound() const noexcept { return g_ != nullptr; }

  // Hot path: single writer per slot (the sender's shard worker). The
  // (messages, bits) pair of a slot is interleaved in one array so both
  // adds land on the same cache line; ShardObs caches data() and inlines
  // this in link_message().
  void record(std::size_t slot, std::uint32_t bits) {
    link_[2 * slot] += 1;
    link_[2 * slot + 1] += bits;
  }

  /// Raw interleaved per-slot array ([2k] = messages, [2k+1] = bits of
  /// slot k), stable until the next bind(). nullptr when unbound.
  [[nodiscard]] std::uint64_t* data() noexcept {
    return link_.empty() ? nullptr : link_.data();
  }

  /// Driver thread, once per executed round (any run, bound or not: the
  /// curves cover the whole driver run, link totals only the bound graph).
  void round_end(std::uint64_t msgs, std::uint64_t bits) {
    round_msgs_.push_back(msgs);
    round_bits_.push_back(bits);
  }

  // Aborted-round rollback (driver thread, workers quiescent): the
  // engine snapshots the link arrays at round start under active fault
  // plans and restores them if the round aborts, so partial layouts
  // never leak into the totals.
  struct LinkSnapshot {
    std::vector<std::uint64_t> link;
  };
  [[nodiscard]] LinkSnapshot snapshot_links() const { return {link_}; }
  void restore_links(const LinkSnapshot& s) {
    // Element-wise so cached data() pointers stay valid.
    std::copy(s.link.begin(), s.link.end(), link_.begin());
  }

  [[nodiscard]] const std::vector<std::uint64_t>& round_messages() const
      noexcept {
    return round_msgs_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& round_bits() const noexcept {
    return round_bits_;
  }

  struct LinkStat {
    NodeId src = 0;
    NodeId dst = 0;
    std::uint64_t messages = 0;
    std::uint64_t bits = 0;
  };
  /// Top-k directed links by bits (ties broken by slot id: stable and
  /// shard-layout independent).
  [[nodiscard]] std::vector<LinkStat> top_links(std::size_t k) const;

  /// {"links":[...], "rounds":{"messages":[...], "bits":[...]}}
  void write_json(std::ostream& out, std::size_t top_k) const;

 private:
  const Graph* g_ = nullptr;
  std::vector<std::size_t> slot_offset_;  // size n+1, CSR prefix sums
  std::vector<std::uint64_t> link_;       // interleaved (messages, bits)
  std::vector<std::uint64_t> round_msgs_;
  std::vector<std::uint64_t> round_bits_;
};

}  // namespace dmatch::obs
