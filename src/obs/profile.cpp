#include "obs/profile.hpp"

#include <algorithm>
#include <ostream>

#include "support/assert.hpp"

namespace dmatch::obs {

bool CongestionProfiler::bind(const Graph& g) {
  if (g_ != nullptr) return g_ == &g;
  // First graph bound wins. Pointer identity is sound as long as the
  // bound graph outlives the Observer's reporting (true for the drivers:
  // the input graph lives for the whole run; subsidiary nets built later
  // cannot reuse its address while it is alive).
  g_ = &g;
  const auto n = static_cast<std::size_t>(g.node_count());
  slot_offset_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    slot_offset_[v + 1] =
        slot_offset_[v] +
        static_cast<std::size_t>(g.degree(static_cast<NodeId>(v)));
  }
  link_.assign(2 * slot_offset_[n], 0);
  return true;
}

std::vector<CongestionProfiler::LinkStat> CongestionProfiler::top_links(
    std::size_t k) const {
  std::vector<std::size_t> slots;
  for (std::size_t s = 0; 2 * s < link_.size(); ++s) {
    if (link_[2 * s] != 0) slots.push_back(s);
  }
  const auto by_heat = [&](std::size_t x, std::size_t y) {
    if (link_[2 * x + 1] != link_[2 * y + 1]) {
      return link_[2 * x + 1] > link_[2 * y + 1];
    }
    return x < y;
  };
  if (slots.size() > k) {
    std::partial_sort(slots.begin(), slots.begin() + static_cast<std::ptrdiff_t>(k),
                      slots.end(), by_heat);
    slots.resize(k);
  } else {
    std::sort(slots.begin(), slots.end(), by_heat);
  }

  std::vector<LinkStat> out;
  out.reserve(slots.size());
  for (const std::size_t s : slots) {
    const auto it =
        std::upper_bound(slot_offset_.begin(), slot_offset_.end(), s);
    const auto src =
        static_cast<NodeId>(std::distance(slot_offset_.begin(), it) - 1);
    const int port = static_cast<int>(s - slot_offset_[static_cast<std::size_t>(src)]);
    out.push_back(
        {src, g_->neighbor(src, port), link_[2 * s], link_[2 * s + 1]});
  }
  return out;
}

void CongestionProfiler::write_json(std::ostream& out, std::size_t top_k) const {
  out << "{\n  \"links\": [";
  bool first = true;
  for (const LinkStat& l : top_links(top_k)) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"src\": " << l.src << ", \"dst\": " << l.dst
        << ", \"messages\": " << l.messages << ", \"bits\": " << l.bits << "}";
  }
  out << "\n  ],\n  \"rounds\": {\n    \"messages\": [";
  for (std::size_t i = 0; i < round_msgs_.size(); ++i) {
    out << (i == 0 ? "" : ",") << round_msgs_[i];
  }
  out << "],\n    \"bits\": [";
  for (std::size_t i = 0; i < round_bits_.size(); ++i) {
    out << (i == 0 ? "" : ",") << round_bits_[i];
  }
  out << "]\n  }\n}\n";
}

}  // namespace dmatch::obs
