// Sharded metrics registry with deterministic merging.
//
// Metrics are registered up front on the driver thread and identified by
// small dense ids; recording is an add into a per-shard slab of u64
// slots (single writer per shard: the engine worker that owns it), so
// the hot path is one indexed add with no atomics and no locks. Merging
// is deterministic regardless of how work was sharded because every
// merge operator is commutative and associative over u64: counters and
// histogram buckets sum, gauges take the max. write_json() emits
// metrics sorted by name with a fixed integer format, so the merged
// export of a run is byte-identical for every num_threads — the `obs`
// test label asserts exactly that.
//
// Histograms use fixed log2 bucketing (bucket = bit width of the value,
// 0..64): nothing to configure, deterministic, and good enough to see
// message-size and per-round-traffic distributions span decades.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace dmatch::obs {

enum class MetricKind : std::uint8_t { kCounter, kGaugeMax, kHistogramLog2 };

class MetricsRegistry {
 public:
  using Id = std::uint32_t;
  static constexpr std::uint32_t kHistBuckets = 65;  // bit widths 0..64

  /// Register a metric (driver thread only, never while workers run).
  /// Re-registering an existing (name, kind) pair returns the same id.
  Id counter(std::string name);
  Id gauge_max(std::string name);
  Id histogram_log2(std::string name);

  /// Grow to at least `n` single-writer slabs (driver thread only).
  void ensure_shards(unsigned n);
  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  // --- hot path (any thread, but one writer per `shard`) -------------
  void add(unsigned shard, Id id, std::uint64_t v = 1) {
    shards_[shard]->vals[metrics_[id].offset] += v;
  }
  void set_max(unsigned shard, Id id, std::uint64_t v) {
    std::uint64_t& cur = shards_[shard]->vals[metrics_[id].offset];
    if (v > cur) cur = v;
  }
  void observe(unsigned shard, Id id, std::uint64_t v) {
    std::uint64_t* h = shards_[shard]->vals.data() + metrics_[id].offset;
    h[0] += 1;               // count
    h[1] += v;               // sum
    h[2 + bucket_of(v)] += 1;
  }

  /// Raw base of `id`'s slots in `shard`'s slab (histogram layout:
  /// [0] = count, [1] = sum, [2 + bucket] = bucket counts). Stable until
  /// shards are grown AND a metric is registered in between; callers
  /// (ShardObs) re-fetch it at every begin_run.
  [[nodiscard]] std::uint64_t* slab_ptr(unsigned shard, Id id) {
    return shards_[shard]->vals.data() + metrics_[id].offset;
  }

  /// Log2 bucket of a value (its bit width, 0..64).
  static std::uint32_t bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0u : 64u - static_cast<std::uint32_t>(__builtin_clzll(v));
  }

  // --- rollback support (driver thread, workers quiescent) -----------
  // The engine discards partial aborted rounds so the surviving metric
  // stream is shard-layout independent; it snapshots slabs at round
  // start and restores them if the round fails.
  [[nodiscard]] std::vector<std::vector<std::uint64_t>> snapshot() const;
  void restore(const std::vector<std::vector<std::uint64_t>>& snap);

  // --- export (driver thread) ----------------------------------------
  struct Merged {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t value = 0;                // counter / gauge
    std::uint64_t count = 0, sum = 0;       // histogram
    std::vector<std::uint64_t> buckets;     // histogram (log2, sparse ok)
  };
  /// Merged view across shards, sorted by name.
  [[nodiscard]] std::vector<Merged> merged() const;
  /// Canonical JSON object, byte-identical across thread counts.
  void write_json(std::ostream& out) const;

  [[nodiscard]] std::uint64_t merged_value(Id id) const;

 private:
  Id register_metric(std::string name, MetricKind kind, std::uint32_t width);

  struct Meta {
    std::string name;
    MetricKind kind;
    std::uint32_t offset;
    std::uint32_t width;
  };
  struct alignas(64) Slab {
    std::vector<std::uint64_t> vals;
  };
  std::vector<Meta> metrics_;
  std::vector<std::unique_ptr<Slab>> shards_;
  std::uint32_t slots_ = 0;
};

}  // namespace dmatch::obs
