#include "obs/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>

#include "support/assert.hpp"

namespace dmatch::obs {

MetricsRegistry::Id MetricsRegistry::counter(std::string name) {
  return register_metric(std::move(name), MetricKind::kCounter, 1);
}

MetricsRegistry::Id MetricsRegistry::gauge_max(std::string name) {
  return register_metric(std::move(name), MetricKind::kGaugeMax, 1);
}

MetricsRegistry::Id MetricsRegistry::histogram_log2(std::string name) {
  // count, sum, then one bucket per bit width.
  return register_metric(std::move(name), MetricKind::kHistogramLog2,
                         2 + kHistBuckets);
}

MetricsRegistry::Id MetricsRegistry::register_metric(std::string name,
                                                     MetricKind kind,
                                                     std::uint32_t width) {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) {
      DMATCH_EXPECTS(metrics_[i].kind == kind);
      return static_cast<Id>(i);
    }
  }
  metrics_.push_back({std::move(name), kind, slots_, width});
  slots_ += width;
  for (auto& s : shards_) s->vals.resize(slots_, 0);
  return static_cast<Id>(metrics_.size() - 1);
}

void MetricsRegistry::ensure_shards(unsigned n) {
  while (shards_.size() < n) {
    shards_.push_back(std::make_unique<Slab>());
    shards_.back()->vals.resize(slots_, 0);
  }
}

std::vector<std::vector<std::uint64_t>> MetricsRegistry::snapshot() const {
  std::vector<std::vector<std::uint64_t>> snap;
  snap.reserve(shards_.size());
  for (const auto& s : shards_) snap.push_back(s->vals);
  return snap;
}

void MetricsRegistry::restore(
    const std::vector<std::vector<std::uint64_t>>& snap) {
  DMATCH_EXPECTS(snap.size() <= shards_.size());
  for (std::size_t i = 0; i < snap.size(); ++i) {
    // Slots registered since the snapshot (none in practice: the engine
    // snapshots within one run) keep their current values.
    std::copy(snap[i].begin(), snap[i].end(), shards_[i]->vals.begin());
  }
}

std::vector<MetricsRegistry::Merged> MetricsRegistry::merged() const {
  std::vector<std::size_t> order(metrics_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return metrics_[x].name < metrics_[y].name;
  });

  std::vector<Merged> out;
  out.reserve(metrics_.size());
  for (const std::size_t i : order) {
    const Meta& m = metrics_[i];
    Merged r;
    r.name = m.name;
    r.kind = m.kind;
    if (m.kind == MetricKind::kHistogramLog2) {
      r.buckets.assign(kHistBuckets, 0);
      for (const auto& s : shards_) {
        const std::uint64_t* v = s->vals.data() + m.offset;
        r.count += v[0];
        r.sum += v[1];
        for (std::uint32_t b = 0; b < kHistBuckets; ++b) r.buckets[b] += v[2 + b];
      }
    } else {
      for (const auto& s : shards_) {
        const std::uint64_t v = s->vals[m.offset];
        if (m.kind == MetricKind::kGaugeMax) {
          r.value = std::max(r.value, v);
        } else {
          r.value += v;
        }
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::uint64_t MetricsRegistry::merged_value(Id id) const {
  const Meta& m = metrics_[id];
  std::uint64_t v = 0;
  for (const auto& s : shards_) {
    const std::uint64_t x = s->vals[m.offset];  // histogram: slot 0 = count
    v = m.kind == MetricKind::kGaugeMax ? std::max(v, x) : v + x;
  }
  return v;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  // Fixed layout + name-sorted order + integer-only values: the bytes
  // of this export are a function of the merged values alone, which is
  // what makes "byte-identical across thread counts" a testable claim.
  out << "{\n";
  bool first = true;
  for (const Merged& m : merged()) {
    if (!first) out << ",\n";
    first = false;
    out << "  \"" << m.name << "\": ";
    if (m.kind == MetricKind::kHistogramLog2) {
      out << "{\"count\": " << m.count << ", \"sum\": " << m.sum
          << ", \"buckets\": {";
      bool fb = true;
      for (std::uint32_t b = 0; b < kHistBuckets; ++b) {
        if (m.buckets[b] == 0) continue;
        if (!fb) out << ", ";
        fb = false;
        out << "\"" << b << "\": " << m.buckets[b];
      }
      out << "}}";
    } else {
      out << m.value;
    }
  }
  out << "\n}\n";
}

}  // namespace dmatch::obs
