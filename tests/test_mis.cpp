#include <gtest/gtest.h>

#include <tuple>

#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "mis/luby.hpp"

namespace dmatch {
namespace {

std::vector<std::vector<int>> adjacency(const Graph& g) {
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(g.node_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    adj[static_cast<std::size_t>(g.edge(e).u)].push_back(g.edge(e).v);
    adj[static_cast<std::size_t>(g.edge(e).v)].push_back(g.edge(e).u);
  }
  return adj;
}

class DistributedMisParam
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(DistributedMisParam, ProducesMaximalIndependentSet) {
  const auto [n, p, seed] = GetParam();
  const Graph g = gen::gnp(n, p, static_cast<std::uint64_t>(seed));
  congest::Network net(g, congest::Model::kCongest,
                       static_cast<std::uint64_t>(seed) + 1000);
  const MisResult result = luby_mis_distributed(net);
  EXPECT_TRUE(result.stats.completed);
  EXPECT_TRUE(is_maximal_independent_set(adjacency(g), result.in_mis));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedMisParam,
    ::testing::Combine(::testing::Values(10, 50, 200),
                       ::testing::Values(0.05, 0.2, 0.6),
                       ::testing::Values(1, 2, 3)));

TEST(DistributedMis, HandlesStructuredTopologies) {
  for (const Graph& g : {gen::cycle(31), gen::path(17), gen::grid(6, 7),
                         gen::complete(12), gen::random_tree(40, 3)}) {
    congest::Network net(g, congest::Model::kCongest, 99);
    const MisResult result = luby_mis_distributed(net);
    EXPECT_TRUE(is_maximal_independent_set(adjacency(g), result.in_mis));
  }
}

TEST(DistributedMis, IsolatedNodesAlwaysJoin) {
  const Graph g = Graph::from_edges(5, {{0, 1}});
  congest::Network net(g, congest::Model::kCongest, 4);
  const MisResult result = luby_mis_distributed(net);
  EXPECT_EQ(result.in_mis[2], 1);
  EXPECT_EQ(result.in_mis[3], 1);
  EXPECT_EQ(result.in_mis[4], 1);
  EXPECT_EQ(result.in_mis[0] + result.in_mis[1], 1);
}

TEST(DistributedMis, CompleteGraphSelectsExactlyOne) {
  const Graph g = gen::complete(20);
  congest::Network net(g, congest::Model::kCongest, 5);
  const MisResult result = luby_mis_distributed(net);
  int count = 0;
  for (auto f : result.in_mis) count += f;
  EXPECT_EQ(count, 1);
}

TEST(DistributedMis, RoundsAreLogarithmicInPractice) {
  const Graph g = gen::gnp(400, 0.05, 8);
  congest::Network net(g, congest::Model::kCongest, 8);
  const MisResult result = luby_mis_distributed(net);
  EXPECT_TRUE(is_maximal_independent_set(adjacency(g), result.in_mis));
  // Luby terminates in O(log n) iterations w.h.p.; each takes 2 rounds.
  // 9 = log2(400); allow a generous constant.
  EXPECT_LT(result.stats.rounds, 10 * 9u);
}

TEST(DistributedMis, MessagesRespectCongestCap) {
  const Graph g = gen::gnp(100, 0.1, 9);
  congest::Network net(g, congest::Model::kCongest, 9, 16);
  const MisResult result = luby_mis_distributed(net);
  EXPECT_LE(result.stats.max_message_bits, net.message_cap_bits());
}

class SequentialMisParam
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SequentialMisParam, OracleIsMaximalIndependent) {
  const auto [n, p, seed] = GetParam();
  const Graph g = gen::gnp(n, p, static_cast<std::uint64_t>(seed));
  const auto adj = adjacency(g);
  Rng rng(static_cast<std::uint64_t>(seed));
  const MisResult result = luby_mis_sequential(adj, rng);
  EXPECT_TRUE(is_maximal_independent_set(adj, result.in_mis));
  EXPECT_GE(result.iterations, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SequentialMisParam,
    ::testing::Combine(::testing::Values(20, 100),
                       ::testing::Values(0.1, 0.4),
                       ::testing::Values(1, 2, 3)));

TEST(SequentialMis, EmptyGraph) {
  Rng rng(1);
  const MisResult result = luby_mis_sequential({}, rng);
  EXPECT_TRUE(result.in_mis.empty());
  EXPECT_EQ(result.iterations, 0);
}

TEST(MisChecker, RejectsBadSets) {
  const Graph g = gen::path(3);  // 0-1-2
  const auto adj = adjacency(g);
  EXPECT_FALSE(is_maximal_independent_set(adj, {1, 1, 0}));  // dependent
  EXPECT_FALSE(is_maximal_independent_set(adj, {0, 0, 0}));  // not maximal
  EXPECT_FALSE(is_maximal_independent_set(adj, {1, 0, 0}));  // 2 uncovered
  EXPECT_TRUE(is_maximal_independent_set(adj, {0, 1, 0}));
  EXPECT_TRUE(is_maximal_independent_set(adj, {1, 0, 1}));
}

}  // namespace
}  // namespace dmatch
