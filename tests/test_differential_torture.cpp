// Seeded differential torture harness (ctest label `difftorture`).
//
// Sweeps graph families x fault plans x executors x thread counts x
// scheduling modes and asserts, for every cell, the repository's
// strongest cross-cutting guarantees at once:
//   * the round engine is bit-identical across num_threads {1, 2, 8}
//     (matching, RunStats, per-round histogram, trip-or-not outcome);
//   * both executors are bit-identical across dispatcher scheduling
//     modes {static, steal, rapid} at the highest thread count;
//   * the async executor is bit-identical across the same thread counts
//     (matching, AsyncStats, fault counters, dead mask);
//   * the two executors agree with each other on the matching and on
//     every fault counter (identical seed-hashed fault histories);
//   * verify_matching_invariants holds over the surviving nodes.
//
// Every run is a pure function of (family, n, seed, plan), so the whole
// suite is deterministic: same seed => same pass/fail, which the verify
// recipe re-asserts with `ctest -L difftorture --repeat until-pass:1`.
// On failure the harness shrinks n (halving while the cell still fails)
// and prints the offending (family, n, seed, plan) tuple for a one-line
// repro before reporting the mismatch.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "congest/async.hpp"
#include "congest/fault.hpp"
#include "congest/network.hpp"
#include "core/israeli_itai.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "support/assert.hpp"
#include "support/sched.hpp"

namespace dmatch {
namespace {

using congest::AsyncOptions;
using congest::AsyncRunResult;
using congest::AsyncStats;
using congest::FaultPlan;
using congest::Model;
using congest::Network;
using congest::RunStats;
using support::SchedMode;

const unsigned kThreadCounts[] = {1, 2, 8};

// The non-default dispatcher modes, swept at the highest thread count
// (kStatic is what the thread-count sweep already runs).
const SchedMode kAltModes[] = {SchedMode::kWorkSteal, SchedMode::kRapidStart};

// Round budgets are deliberately short: under active plans the raw
// protocol may never quiesce, and every guarantee the harness asserts
// (bit-identical histories, counter agreement, healed-matching validity)
// must hold on truncated histories too. Both executors get the same
// budget so their histories cover the same simulated rounds.
constexpr int kRoundBudget = 256;

// --- sweep axes -----------------------------------------------------

struct Family {
  const char* name;
  Graph (*make)(NodeId n, std::uint64_t seed);
};

const Family kFamilies[] = {
    {"bipartite",
     [](NodeId n, std::uint64_t seed) {
       return gen::bipartite_gnp(n / 2, n - n / 2, 6.0 / n, seed);
     }},
    {"bounded_degree",
     [](NodeId n, std::uint64_t seed) { return gen::gnp(n, 3.0 / n, seed); }},
    {"path", [](NodeId n, std::uint64_t) { return gen::path(n); }},
    {"cycle", [](NodeId n, std::uint64_t) { return gen::cycle(n); }},
    {"star",
     [](NodeId n, std::uint64_t) { return gen::complete_bipartite(1, n - 1); }},
};

struct PlanSpec {
  const char* name;
  FaultPlan (*make)(std::uint64_t seed, NodeId n);
};

const PlanSpec kPlans[] = {
    {"none", [](std::uint64_t, NodeId) { return FaultPlan{}; }},
    {"drops",
     [](std::uint64_t seed, NodeId) {
       FaultPlan p;
       p.drop_prob = 0.08;
       p.seed = seed * 2 + 1;
       return p;
     }},
    {"dup_reorder",
     [](std::uint64_t seed, NodeId) {
       FaultPlan p;
       p.duplicate_prob = 0.06;
       p.reorder_prob = 0.15;
       p.delay_prob = 0.04;
       p.seed = seed * 2 + 1;
       return p;
     }},
    // Crashes are explicitly scheduled at early rounds rather than drawn
    // probabilistically: a drawn crash round can land after one executor
    // has quiesced but inside the other's control-plane tail, making the
    // two dead sets legitimately diverge. Scheduled early crashes sit
    // inside both histories, so the executors must agree exactly.
    {"crash_restart",
     [](std::uint64_t seed, NodeId n) {
       FaultPlan p;
       p.drop_prob = 0.02;
       p.seed = seed * 2 + 1;
       const auto un = static_cast<std::uint64_t>(n);
       const NodeId a = static_cast<NodeId>((seed * 7 + 3) % un);
       NodeId b = static_cast<NodeId>((seed * 13 + 11) % un);
       if (b == a) b = static_cast<NodeId>((b + 1) % un);
       p.crashes.push_back({a, 1 + (seed % 2), 4 + (seed % 2)});
       p.crashes.push_back({b, 2, congest::kRoundNever});
       return p;
     }},
};

// --- one executor run, exceptions folded into the outcome -----------

struct EngineOutcome {
  bool tripped = false;  // ContractViolation / MessageTooLarge escaped run()
  RunStats stats;
  Matching matching;
  std::vector<char> dead;  // end-of-run dead mask on the engine's clock
};

EngineOutcome run_engine(const Graph& g, std::uint64_t seed,
                         const FaultPlan& plan, unsigned threads,
                         SchedMode mode = SchedMode::kStatic) {
  Network::Options options;
  options.num_threads = threads;
  options.sched.mode = mode;
  options.fault = plan;
  Network net(g, Model::kCongest, seed, 48, options);
  EngineOutcome out;
  try {
    out.stats = net.run(israeli_itai_factory(), kRoundBudget);
  } catch (const ContractViolation&) {
    out.tripped = true;
  } catch (const congest::MessageTooLarge&) {
    out.tripped = true;
  }
  out.matching =
      plan.any() ? net.extract_matching_resilient() : net.extract_matching();
  out.dead.assign(static_cast<std::size_t>(g.node_count()), 0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.dead[static_cast<std::size_t>(v)] = net.node_dead(v) ? 1 : 0;
  }
  return out;
}

struct AsyncOutcome {
  bool tripped = false;
  AsyncRunResult result;
};

AsyncOutcome run_async(const Graph& g, std::uint64_t seed,
                       const FaultPlan& plan, unsigned threads,
                       SchedMode mode = SchedMode::kStatic) {
  AsyncOptions options;
  options.num_threads = threads;
  options.sched.mode = mode;
  options.fault = plan;
  AsyncOutcome out;
  try {
    out.result = congest::run_synchronized(g, israeli_itai_factory(), seed,
                                           kRoundBudget, options);
  } catch (const ContractViolation&) {
    out.tripped = true;
  } catch (const congest::MessageTooLarge&) {
    out.tripped = true;
  }
  return out;
}

// --- cell checker: returns the first mismatch, nullopt if clean ------

std::string diff(const char* what, std::uint64_t a, std::uint64_t b,
                 unsigned threads) {
  std::ostringstream os;
  os << what << " mismatch at threads=" << threads << " (" << a << " vs " << b
     << ")";
  return os.str();
}

std::optional<std::string> check_engine_stats(const RunStats& a,
                                              const RunStats& b,
                                              unsigned threads) {
  if (a.rounds != b.rounds) return diff("rounds", a.rounds, b.rounds, threads);
  if (a.messages != b.messages)
    return diff("messages", a.messages, b.messages, threads);
  if (a.total_bits != b.total_bits)
    return diff("total_bits", a.total_bits, b.total_bits, threads);
  if (a.max_message_bits != b.max_message_bits)
    return diff("max_message_bits", a.max_message_bits, b.max_message_bits,
                threads);
  if (a.completed != b.completed)
    return diff("completed", a.completed, b.completed, threads);
  if (a.round_messages != b.round_messages)
    return std::string("round_messages histogram mismatch");
  if (a.dropped_messages != b.dropped_messages)
    return diff("dropped", a.dropped_messages, b.dropped_messages, threads);
  if (a.duplicated_messages != b.duplicated_messages)
    return diff("duplicated", a.duplicated_messages, b.duplicated_messages,
                threads);
  if (a.delayed_messages != b.delayed_messages)
    return diff("delayed", a.delayed_messages, b.delayed_messages, threads);
  if (a.reordered_inboxes != b.reordered_inboxes)
    return diff("reordered", a.reordered_inboxes, b.reordered_inboxes,
                threads);
  if (a.crashed_nodes != b.crashed_nodes)
    return diff("crashed", a.crashed_nodes, b.crashed_nodes, threads);
  if (a.restarted_nodes != b.restarted_nodes)
    return diff("restarted", a.restarted_nodes, b.restarted_nodes, threads);
  return std::nullopt;
}

std::optional<std::string> check_async_stats(const AsyncStats& a,
                                             const AsyncStats& b,
                                             unsigned threads) {
  if (a.events != b.events) return diff("events", a.events, b.events, threads);
  if (a.payload_messages != b.payload_messages)
    return diff("payload_messages", a.payload_messages, b.payload_messages,
                threads);
  if (a.control_messages != b.control_messages)
    return diff("control_messages", a.control_messages, b.control_messages,
                threads);
  if (a.virtual_rounds != b.virtual_rounds)
    return diff("virtual_rounds", a.virtual_rounds, b.virtual_rounds, threads);
  if (a.completion_time != b.completion_time)
    return std::string("completion_time mismatch");
  if (a.completed != b.completed)
    return diff("completed", a.completed, b.completed, threads);
  if (a.round_payloads != b.round_payloads)
    return std::string("round_payloads histogram mismatch");
  if (a.dropped_messages != b.dropped_messages)
    return diff("dropped", a.dropped_messages, b.dropped_messages, threads);
  if (a.duplicated_messages != b.duplicated_messages)
    return diff("duplicated", a.duplicated_messages, b.duplicated_messages,
                threads);
  if (a.delayed_messages != b.delayed_messages)
    return diff("delayed", a.delayed_messages, b.delayed_messages, threads);
  if (a.reordered_inboxes != b.reordered_inboxes)
    return diff("reordered", a.reordered_inboxes, b.reordered_inboxes,
                threads);
  if (a.crashed_nodes != b.crashed_nodes)
    return diff("crashed", a.crashed_nodes, b.crashed_nodes, threads);
  if (a.restarted_nodes != b.restarted_nodes)
    return diff("restarted", a.restarted_nodes, b.restarted_nodes, threads);
  return std::nullopt;
}

/// Runs every executor x thread-count combination of one cell and
/// returns a description of the first broken guarantee (nullopt = cell
/// passes). Never uses gtest assertions so the shrinker can re-invoke it.
std::optional<std::string> check_cell(const Family& family, NodeId n,
                                      std::uint64_t seed,
                                      const PlanSpec& plan_spec) {
  const Graph g = family.make(n, seed);
  const FaultPlan plan = plan_spec.make(seed, n);

  // Round engine across thread counts (kThreadCounts[0] == 1 is the
  // reference itself, so start the comparison at the second entry).
  const EngineOutcome engine_ref = run_engine(g, seed, plan, 1);
  for (const unsigned threads : {kThreadCounts[1], kThreadCounts[2]}) {
    const EngineOutcome got = run_engine(g, seed, plan, threads);
    if (got.tripped != engine_ref.tripped)
      return diff("engine trip outcome", engine_ref.tripped, got.tripped,
                  threads);
    if (!got.tripped) {
      if (auto err = check_engine_stats(engine_ref.stats, got.stats, threads))
        return "engine " + *err;
    }
    if (!(got.matching == engine_ref.matching))
      return "engine matching mismatch at threads=" + std::to_string(threads);
  }

  // Round engine across scheduling modes (highest thread count, where
  // stealing and the wakeup tree actually have workers to act on).
  for (const SchedMode mode : kAltModes) {
    const EngineOutcome got =
        run_engine(g, seed, plan, kThreadCounts[2], mode);
    const std::string tag = std::string("engine mode=") +
                            support::to_string(mode);
    if (got.tripped != engine_ref.tripped)
      return tag + ": trip outcome mismatch";
    if (!got.tripped) {
      if (auto err = check_engine_stats(engine_ref.stats, got.stats,
                                        kThreadCounts[2]))
        return tag + " " + *err;
    }
    if (!(got.matching == engine_ref.matching))
      return tag + ": matching mismatch";
  }

  // Async executor across thread counts.
  const AsyncOutcome async_ref = run_async(g, seed, plan, 1);
  for (const unsigned threads : {kThreadCounts[1], kThreadCounts[2]}) {
    const AsyncOutcome got = run_async(g, seed, plan, threads);
    if (got.tripped != async_ref.tripped)
      return diff("async trip outcome", async_ref.tripped, got.tripped,
                  threads);
    if (got.tripped) continue;
    if (auto err = check_async_stats(async_ref.result.stats, got.result.stats,
                                     threads))
      return "async " + *err;
    if (!(got.result.matching == async_ref.result.matching))
      return "async matching mismatch at threads=" + std::to_string(threads);
    if (got.result.dead_nodes != async_ref.result.dead_nodes)
      return "async dead-mask mismatch at threads=" + std::to_string(threads);
  }

  // Async executor across scheduling modes.
  for (const SchedMode mode : kAltModes) {
    const AsyncOutcome got = run_async(g, seed, plan, kThreadCounts[2], mode);
    const std::string tag =
        std::string("async mode=") + support::to_string(mode);
    if (got.tripped != async_ref.tripped) return tag + ": trip mismatch";
    if (got.tripped) continue;
    if (auto err = check_async_stats(async_ref.result.stats, got.result.stats,
                                     kThreadCounts[2]))
      return tag + " " + *err;
    if (!(got.result.matching == async_ref.result.matching))
      return tag + ": matching mismatch";
    if (got.result.dead_nodes != async_ref.result.dead_nodes)
      return tag + ": dead-mask mismatch";
  }

  // Matching invariants over the surviving nodes, per executor (each
  // against its own end-of-run dead mask).
  if (!async_ref.tripped) {
    const MatchingInvariantReport async_check = verify_matching_invariants(
        g, async_ref.result.matching, async_ref.result.dead_nodes);
    if (!async_check.ok()) return "async invariants: " + async_check.summary();
  }
  {
    const MatchingInvariantReport engine_check =
        verify_matching_invariants(g, engine_ref.matching, engine_ref.dead);
    if (!engine_check.ok())
      return "engine invariants: " + engine_check.summary();
  }

  // Cross-executor agreement: identical seed-hashed fault histories mean
  // identical fault counters and the same healed matching.
  if (!engine_ref.tripped && !async_ref.tripped) {
    const RunStats& es = engine_ref.stats;
    const AsyncStats& as = async_ref.result.stats;
    // The drop counter includes deliveries discarded at dead receivers;
    // on a truncated (non-quiescent) history the last round's deliveries
    // land inside the engine's budget but past the async executor's, so
    // that one counter is only comparable when both runs quiesced.
    if (es.completed && as.completed &&
        es.dropped_messages != as.dropped_messages)
      return diff("cross-executor dropped", es.dropped_messages,
                  as.dropped_messages, 1);
    if (es.duplicated_messages != as.duplicated_messages)
      return diff("cross-executor duplicated", es.duplicated_messages,
                  as.duplicated_messages, 1);
    if (es.delayed_messages != as.delayed_messages)
      return diff("cross-executor delayed", es.delayed_messages,
                  as.delayed_messages, 1);
    if (es.crashed_nodes != as.crashed_nodes)
      return diff("cross-executor crashed", es.crashed_nodes, as.crashed_nodes,
                  1);
    if (es.restarted_nodes != as.restarted_nodes)
      return diff("cross-executor restarted", es.restarted_nodes,
                  as.restarted_nodes, 1);
    if (!(engine_ref.matching == async_ref.result.matching))
      return std::string("cross-executor matching mismatch");
  }
  return std::nullopt;
}

/// On failure, halve n while the cell keeps failing and report the
/// smallest reproducer as a one-line tuple.
void run_cell_with_shrink(const Family& family, NodeId n, std::uint64_t seed,
                          const PlanSpec& plan_spec) {
  std::optional<std::string> err = check_cell(family, n, seed, plan_spec);
  if (!err) return;
  NodeId bad_n = n;
  std::string bad_err = *err;
  for (NodeId m = n / 2; m >= 8; m /= 2) {
    if (auto smaller = check_cell(family, m, seed, plan_spec)) {
      bad_n = m;
      bad_err = *smaller;
    } else {
      break;
    }
  }
  ADD_FAILURE() << "difftorture repro: family=" << family.name
                << " n=" << bad_n << " seed=" << seed
                << " plan=" << plan_spec.name << "\n  " << bad_err;
}

// --- the sweep, one TEST per fault plan for parallel ctest sharding --

void sweep_plan(const PlanSpec& plan_spec) {
  for (const Family& family : kFamilies) {
    for (const NodeId n : {24, 64}) {
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        SCOPED_TRACE(::testing::Message()
                     << "family=" << family.name << " n=" << n
                     << " seed=" << seed << " plan=" << plan_spec.name);
        run_cell_with_shrink(family, n, seed, plan_spec);
      }
    }
  }
}

TEST(DifferentialTorture, FaultFree) { sweep_plan(kPlans[0]); }

TEST(DifferentialTorture, Drops) { sweep_plan(kPlans[1]); }

TEST(DifferentialTorture, DupReorder) { sweep_plan(kPlans[2]); }

TEST(DifferentialTorture, CrashRestart) { sweep_plan(kPlans[3]); }

}  // namespace
}  // namespace dmatch
