// Observability subsystem (src/obs): determinism, accuracy, and
// zero-interference contracts.
//
//  * merged metrics are byte-identical and merged traces event-set
//    identical across num_threads in {1, 2, 8}, fault-free and under an
//    active fault plan (the `obs` label's headline guarantee);
//  * a faulted half_mwm run traces phase transitions, ARQ retransmits,
//    and checkpoint activity, and the Chrome export is well-formed;
//  * attaching an Observer never changes the computation (bit-identical
//    matching and stats vs an unobserved run);
//  * per-round metrics agree with the engine's own RunStats and the
//    async executor's AsyncStats (core/verify cross-checks), including
//    the degenerate crashed-round case.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "congest/async.hpp"
#include "congest/network.hpp"
#include "core/half_mwm.hpp"
#include "core/israeli_itai.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"

namespace dmatch {
namespace {

using congest::FaultPlan;
using congest::Model;
using congest::Network;

std::string metrics_json(const obs::Observer& ob) {
  std::ostringstream out;
  ob.metrics().write_json(out);
  return out.str();
}

std::string profile_json(const obs::Observer& ob, std::size_t top_k) {
  std::ostringstream out;
  ob.profiler().write_json(out, top_k);
  return out.str();
}

std::uint64_t count_events(const std::vector<obs::TraceEvent>& trace,
                           obs::EventType type) {
  std::uint64_t n = 0;
  for (const obs::TraceEvent& e : trace) {
    if (e.type == static_cast<std::uint16_t>(type)) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------
// Registry unit behavior
// ---------------------------------------------------------------------

TEST(MetricsRegistry, MergesCommutativelyAcrossShards) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("c");
  const auto gm = reg.gauge_max("g");
  const auto h = reg.histogram_log2("h");
  reg.ensure_shards(3);
  reg.add(0, c, 5);
  reg.add(2, c, 7);
  reg.set_max(1, gm, 9);
  reg.set_max(2, gm, 4);
  reg.observe(0, h, 1);    // bucket 1
  reg.observe(1, h, 1);    // bucket 1
  reg.observe(2, h, 300);  // bucket 9

  EXPECT_EQ(reg.merged_value(c), 12u);
  EXPECT_EQ(reg.merged_value(gm), 9u);
  const auto merged = reg.merged();
  ASSERT_EQ(merged.size(), 3u);  // sorted by name: c, g, h
  EXPECT_EQ(merged[2].count, 3u);
  EXPECT_EQ(merged[2].sum, 302u);
  EXPECT_EQ(merged[2].buckets[1], 2u);
  EXPECT_EQ(merged[2].buckets[9], 1u);
}

TEST(MetricsRegistry, SnapshotRestoreDiscardsLaterWrites) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("c");
  reg.ensure_shards(2);
  reg.add(0, c, 3);
  const auto snap = reg.snapshot();
  reg.add(1, c, 100);
  EXPECT_EQ(reg.merged_value(c), 103u);
  reg.restore(snap);
  EXPECT_EQ(reg.merged_value(c), 3u);
}

TEST(TraceSink, MergedOrderIsCanonical) {
  obs::TraceSink sink;
  sink.ensure_shards(2);
  sink.buffer(1).push_back({5, 1, 0, 0, 0});
  sink.buffer(0).push_back({5, 0, 0, 0, 0});
  sink.buffer(1).push_back({2, 9, 0, 0, 0});
  const auto merged = sink.merged();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].t, 2u);
  EXPECT_EQ(merged[1].actor, 0u);
  EXPECT_EQ(merged[2].actor, 1u);
  EXPECT_EQ(sink.event_count(), 3u);
}

// ---------------------------------------------------------------------
// Determinism across thread counts
// ---------------------------------------------------------------------

struct ObservedRun {
  std::string metrics;
  std::string profile;
  std::vector<obs::TraceEvent> trace;
  Matching matching;
};

ObservedRun observed_israeli_itai(unsigned num_threads,
                                  const FaultPlan& fault = {}) {
  const Graph g = gen::gnp(80, 0.12, 11);
  obs::Observer ob;
  Network::Options opt;
  opt.num_threads = num_threads;
  opt.fault = fault;
  opt.observer = &ob;
  Network net(g, Model::kCongest, 21, 48, opt);
  IsraeliItaiResult result = israeli_itai(net);
  return {metrics_json(ob), profile_json(ob, 8), ob.trace_sink().merged(),
          std::move(result.matching)};
}

TEST(ObsDeterminism, IsraeliItaiIdenticalAcrossThreadCounts) {
  const ObservedRun base = observed_israeli_itai(1);
  EXPECT_FALSE(base.trace.empty());
  for (const unsigned threads : {2u, 8u}) {
    const ObservedRun run = observed_israeli_itai(threads);
    EXPECT_EQ(run.metrics, base.metrics) << threads << " threads";
    EXPECT_EQ(run.profile, base.profile) << threads << " threads";
    EXPECT_TRUE(run.trace == base.trace) << threads << " threads";
    EXPECT_TRUE(run.matching == base.matching) << threads << " threads";
  }
}

TEST(ObsDeterminism, IsraeliItaiIdenticalAcrossThreadCountsUnderFaults) {
  FaultPlan fault;
  fault.drop_prob = 0.05;
  fault.duplicate_prob = 0.02;
  fault.delay_prob = 0.02;
  fault.reorder_prob = 0.05;
  fault.crash_prob = 0.05;
  fault.restart_prob = 0.5;
  fault.seed = 77;
  const ObservedRun base = observed_israeli_itai(1, fault);
  EXPECT_FALSE(base.trace.empty());
  for (const unsigned threads : {2u, 8u}) {
    const ObservedRun run = observed_israeli_itai(threads, fault);
    EXPECT_EQ(run.metrics, base.metrics) << threads << " threads";
    EXPECT_EQ(run.profile, base.profile) << threads << " threads";
    EXPECT_TRUE(run.trace == base.trace) << threads << " threads";
    EXPECT_TRUE(run.matching == base.matching) << threads << " threads";
  }
}

TEST(ObsDeterminism, FaultedHalfMwmIdenticalAcrossThreadCounts) {
  const Graph g = gen::with_uniform_weights(gen::gnp(50, 0.12, 13), 1, 8, 13);
  std::string base_metrics;
  std::vector<obs::TraceEvent> base_trace;
  for (const unsigned threads : {1u, 2u, 8u}) {
    obs::Observer ob;
    HalfMwmOptions options;
    options.seed = 5;
    options.num_threads = threads;
    options.fault.drop_prob = 0.08;
    options.fault.crash_prob = 0.02;
    options.fault.restart_prob = 0.5;
    options.fault.seed = 3;
    options.observer = &ob;
    (void)half_mwm(g, options);
    if (threads == 1) {
      base_metrics = metrics_json(ob);
      base_trace = ob.trace_sink().merged();
      EXPECT_FALSE(base_trace.empty());
    } else {
      EXPECT_EQ(metrics_json(ob), base_metrics) << threads << " threads";
      EXPECT_TRUE(ob.trace_sink().merged() == base_trace)
          << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------
// Trace content and export formats
// ---------------------------------------------------------------------

TEST(ObsTrace, FaultedHalfMwmTracesPhasesRetransmitsAndCheckpoints) {
  const Graph g = gen::with_uniform_weights(gen::gnp(60, 0.1, 17), 1, 8, 17);
  obs::Observer ob;
  HalfMwmOptions options;
  options.seed = 9;
  options.num_threads = 2;
  options.fault.drop_prob = 0.1;
  options.fault.crash_prob = 0.02;
  options.fault.restart_prob = 0.5;
  options.fault.seed = 19;
  options.observer = &ob;
  const HalfMwmResult result = half_mwm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));

  const auto trace = ob.trace_sink().merged();
  EXPECT_GT(count_events(trace, obs::EventType::kPhaseBegin), 0u);
  EXPECT_EQ(count_events(trace, obs::EventType::kPhaseBegin),
            count_events(trace, obs::EventType::kPhaseEnd));
  EXPECT_GT(count_events(trace, obs::EventType::kRoundEnd), 0u);
  EXPECT_GT(count_events(trace, obs::EventType::kFaultDrop), 0u);
  EXPECT_GT(count_events(trace, obs::EventType::kArqFastRetransmit) +
                count_events(trace, obs::EventType::kArqTimeoutRetransmit),
            0u);
  EXPECT_GT(count_events(trace, obs::EventType::kCheckpointCapture), 0u);

  // Metrics agree with the trace on retransmit and checkpoint totals.
  const auto& ids = ob.ids();
  const auto& reg = ob.metrics();
  EXPECT_EQ(reg.merged_value(ids.arq_fast_retransmits),
            count_events(trace, obs::EventType::kArqFastRetransmit));
  EXPECT_EQ(reg.merged_value(ids.arq_timeout_retransmits),
            count_events(trace, obs::EventType::kArqTimeoutRetransmit));
  EXPECT_EQ(reg.merged_value(ids.checkpoint_captures),
            count_events(trace, obs::EventType::kCheckpointCapture));

  // Exports: Chrome JSON is a single array, JSONL has one line per event.
  std::ostringstream chrome;
  ob.trace_sink().write_chrome_json(chrome);
  const std::string chrome_s = chrome.str();
  ASSERT_FALSE(chrome_s.empty());
  EXPECT_EQ(chrome_s.front(), '[');
  EXPECT_EQ(chrome_s[chrome_s.find_last_not_of('\n')], ']');

  std::ostringstream jsonl;
  ob.trace_sink().write_jsonl(jsonl);
  std::uint64_t lines = 0;
  for (const char c : jsonl.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, ob.trace_sink().event_count());
  EXPECT_EQ(lines, trace.size());
}

// ---------------------------------------------------------------------
// Zero interference: observing never changes the computation
// ---------------------------------------------------------------------

TEST(ObsInterference, ObservedRunBitIdenticalToUnobserved) {
  const Graph g = gen::gnp(70, 0.12, 23);
  FaultPlan fault;
  fault.drop_prob = 0.08;
  fault.crash_prob = 0.03;
  fault.restart_prob = 0.5;
  fault.seed = 29;

  const auto run = [&](obs::Observer* ob) {
    Network::Options opt;
    opt.num_threads = 2;
    opt.fault = fault;
    opt.observer = ob;
    Network net(g, Model::kCongest, 31, 48, opt);
    return israeli_itai(net);
  };
  obs::Observer ob;
  const IsraeliItaiResult observed = run(&ob);
  const IsraeliItaiResult plain = run(nullptr);
  EXPECT_TRUE(observed.matching == plain.matching);
  EXPECT_EQ(observed.stats.rounds, plain.stats.rounds);
  EXPECT_EQ(observed.stats.messages, plain.stats.messages);
  EXPECT_EQ(observed.stats.total_bits, plain.stats.total_bits);
  EXPECT_EQ(observed.stats.round_messages, plain.stats.round_messages);
  EXPECT_EQ(observed.stats.dropped_messages, plain.stats.dropped_messages);
}

// ---------------------------------------------------------------------
// Round accounting (the core/verify cross-checks)
// ---------------------------------------------------------------------

TEST(ObsAccounting, EngineRoundCurveMatchesRunStatsAndProfiler) {
  const Graph g = gen::gnp(60, 0.15, 37);
  obs::Observer ob;
  Network::Options opt;
  opt.num_threads = 2;
  opt.observer = &ob;
  Network net(g, Model::kCongest, 41, 48, opt);
  const IsraeliItaiResult result = israeli_itai(net);

  EXPECT_TRUE(verify_round_accounting(result.stats));
  // Per-round metrics and RunStats must agree (ISSUE 4 satellite 6).
  ASSERT_EQ(ob.profiler().round_messages().size(),
            result.stats.round_messages.size());
  EXPECT_EQ(ob.profiler().round_messages(), result.stats.round_messages);
  EXPECT_EQ(ob.metrics().merged_value(ob.ids().engine_messages),
            result.stats.messages);
  EXPECT_EQ(ob.metrics().merged_value(ob.ids().engine_rounds),
            result.stats.rounds);
}

TEST(ObsAccounting, FaultedEngineRoundCurveStillMatches) {
  const Graph g = gen::gnp(60, 0.15, 43);
  obs::Observer ob;
  Network::Options opt;
  opt.num_threads = 2;
  opt.fault.drop_prob = 0.1;
  opt.fault.crash_prob = 0.05;
  opt.fault.restart_prob = 0.5;
  opt.fault.seed = 47;
  opt.observer = &ob;
  Network net(g, Model::kCongest, 53, 48, opt);
  const IsraeliItaiResult result = israeli_itai(net);

  EXPECT_TRUE(verify_round_accounting(result.stats));
  ASSERT_EQ(ob.profiler().round_messages().size(),
            result.stats.round_messages.size());
  EXPECT_EQ(ob.profiler().round_messages(), result.stats.round_messages);
}

TEST(ObsAccounting, AsyncRoundPayloadsSumToPayloadMessages) {
  const Graph g = gen::gnp(40, 0.12, 59);
  obs::Observer ob;
  congest::AsyncOptions options;
  options.fault.drop_prob = 0.05;
  options.fault.crash_prob = 0.1;
  options.fault.restart_prob = 0.5;
  options.fault.seed = 61;
  options.observer = &ob;
  const auto result =
      congest::run_synchronized(g, israeli_itai_factory(), 67, 1 << 14,
                                options);
  EXPECT_TRUE(verify_round_accounting(result.stats));
  EXPECT_EQ(ob.metrics().merged_value(ob.ids().async_payload_messages),
            result.stats.payload_messages);
  EXPECT_EQ(ob.metrics().merged_value(ob.ids().async_virtual_rounds),
            result.stats.virtual_rounds);
}

TEST(ObsAccounting, SyncAndAsyncRoundHistoriesAgree) {
  // Same protocol, same seed, same crash/restart plan, two executors:
  // the per-round send curves must be the same history (this is the
  // check that caught the async executor's degenerate crashed rounds
  // dropping out of the curve entirely).
  const Graph g = gen::gnp(40, 0.12, 71);
  FaultPlan fault;
  fault.crash_prob = 0.1;
  fault.restart_prob = 0.5;
  fault.seed = 73;

  Network::Options opt;
  opt.fault = fault;
  Network net(g, Model::kCongest, 79, 48, opt);
  const congest::RunStats sync_stats =
      net.run(israeli_itai_factory(), 1 << 14);

  congest::AsyncOptions aopt;
  aopt.fault = fault;
  const auto async_result =
      congest::run_synchronized(g, israeli_itai_factory(), 79, 1 << 14, aopt);

  EXPECT_TRUE(verify_round_accounting(sync_stats));
  EXPECT_TRUE(verify_round_accounting(async_result.stats));
  EXPECT_TRUE(verify_round_histories_agree(sync_stats, async_result.stats));
}

// ---------------------------------------------------------------------
// ARQ tuning surface (ISSUE 4 satellite 1)
// ---------------------------------------------------------------------

TEST(ObsArqTuning, WindowSixteenSurvivesHeavyDrops) {
  const Graph g = gen::gnp(60, 0.12, 83);
  for (const int window : {8, 16}) {
    Network::Options opt;
    opt.fault.drop_prob = 0.1;
    opt.fault.seed = 89;
    Network net(g, Model::kCongest, 97, 48, opt);
    IsraeliItaiOptions options;
    options.arq.window = window;
    const IsraeliItaiResult result = israeli_itai(net, options);
    EXPECT_TRUE(result.matching.is_valid(g)) << "window " << window;
    EXPECT_FALSE(result.degradation.budget_exhausted) << "window " << window;
  }
}

// ---------------------------------------------------------------------
// Bounded-memory trace mode (ring buffers)
// ---------------------------------------------------------------------

/// Retained events of a (possibly capped) shard buffer in append order:
/// the ring's oldest slot is appended % cap once it has wrapped.
std::vector<obs::TraceEvent> linearized(const obs::TraceSink::ShardBuf& buf) {
  if (buf.cap == 0 || buf.appended <= buf.cap) return buf.events;
  std::vector<obs::TraceEvent> out;
  out.reserve(buf.cap);
  const auto start = static_cast<std::size_t>(buf.appended % buf.cap);
  for (std::size_t i = 0; i < buf.cap; ++i) {
    out.push_back(buf.events[(start + i) % buf.cap]);
  }
  return out;
}

TEST(TraceRing, CapHoldsAndKeepsNewestEvents) {
  obs::TraceSink sink;
  sink.set_capacity(4);
  sink.ensure_shards(1);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.shard_buf(0).push({i, 0, 0, i, 0});
  }
  EXPECT_EQ(sink.shard_buf(0).events.size(), 4u);
  EXPECT_EQ(sink.event_count(), 4u);
  EXPECT_EQ(sink.appended_count(), 10u);
  const auto kept = linearized(sink.shard_buf(0));
  ASSERT_EQ(kept.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(kept[i].t, 6 + i);  // the newest four appends survive
  }
}

TEST(TraceRing, ShrinkingCapacityKeepsNewestTail) {
  obs::TraceSink sink;
  sink.ensure_shards(1);
  for (std::uint64_t i = 0; i < 8; ++i) {
    sink.shard_buf(0).push({i, 0, 0, 0, 0});
  }
  sink.set_capacity(3);
  const auto kept = linearized(sink.shard_buf(0));
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].t, 5u);
  EXPECT_EQ(kept[2].t, 7u);
  // The ring keeps working after the shrink: one more push evicts the
  // oldest retained event.
  sink.shard_buf(0).push({8, 0, 0, 0, 0});
  const auto after = linearized(sink.shard_buf(0));
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[0].t, 6u);
  EXPECT_EQ(after[2].t, 8u);
}

TEST(TraceRing, MarkRewindRestoresCappedBuffer) {
  obs::TraceSink sink;
  sink.set_capacity(4);
  sink.ensure_shards(1);
  for (std::uint64_t i = 0; i < 6; ++i) {
    sink.shard_buf(0).push({i, 0, 0, 0, 0});
  }
  const auto before = linearized(sink.shard_buf(0));
  auto m = sink.mark(0);
  sink.shard_buf(0).push({100, 0, 0, 0, 0});
  sink.shard_buf(0).push({101, 0, 0, 0, 0});
  sink.rewind(0, std::move(m));
  EXPECT_EQ(sink.appended_count(), 6u);
  EXPECT_TRUE(linearized(sink.shard_buf(0)) == before);
}

/// An observed israeli_itai run with an optional per-shard trace cap.
ObservedRun observed_capped_run(unsigned num_threads, std::size_t cap,
                                std::uint64_t* appended = nullptr,
                                std::vector<std::vector<obs::TraceEvent>>*
                                    retained = nullptr) {
  const Graph g = gen::gnp(80, 0.12, 11);
  obs::ObsConfig config;
  config.trace_capacity = cap;
  obs::Observer ob(config);
  Network::Options opt;
  opt.num_threads = num_threads;
  opt.observer = &ob;
  Network net(g, Model::kCongest, 21, 48, opt);
  IsraeliItaiResult result = israeli_itai(net);
  if (appended != nullptr) *appended = ob.trace_sink().appended_count();
  if (retained != nullptr) {
    retained->clear();
    for (unsigned s = 0; s < ob.trace_sink().shard_count(); ++s) {
      retained->push_back(linearized(ob.trace_sink().shard_buf(s)));
      EXPECT_LE(retained->back().size(), cap == 0 ? SIZE_MAX : cap);
    }
  }
  return {metrics_json(ob), profile_json(ob, 8), ob.trace_sink().merged(),
          std::move(result.matching)};
}

TEST(TraceRing, CappedRunAgreesWithUncappedOnRetainedEvents) {
  // Same run, capped and uncapped: every retained event of the capped
  // trace must equal the corresponding tail event of the uncapped
  // per-shard stream (the cap only evicts, never distorts), lifetime
  // append counts must match, and everything outside the trace (metrics,
  // profile, matching) must be untouched by the cap.
  constexpr std::size_t kCap = 8;
  for (const unsigned threads : {1u, 2u}) {
    std::uint64_t appended_capped = 0;
    std::uint64_t appended_full = 0;
    std::vector<std::vector<obs::TraceEvent>> capped_retained;
    std::vector<std::vector<obs::TraceEvent>> full_retained;
    const ObservedRun capped =
        observed_capped_run(threads, kCap, &appended_capped, &capped_retained);
    const ObservedRun full =
        observed_capped_run(threads, 0, &appended_full, &full_retained);
    EXPECT_EQ(appended_capped, appended_full) << threads << " threads";
    EXPECT_GT(appended_full, static_cast<std::uint64_t>(kCap));
    ASSERT_EQ(capped_retained.size(), full_retained.size());
    for (std::size_t s = 0; s < capped_retained.size(); ++s) {
      const auto& kept = capped_retained[s];
      const auto& all = full_retained[s];
      ASSERT_LE(kept.size(), kCap) << "shard " << s;
      ASSERT_LE(kept.size(), all.size()) << "shard " << s;
      const std::size_t off = all.size() - kept.size();
      for (std::size_t i = 0; i < kept.size(); ++i) {
        ASSERT_TRUE(kept[i] == all[off + i])
            << "shard " << s << " event " << i;
      }
    }
    EXPECT_EQ(capped.metrics, full.metrics) << threads << " threads";
    EXPECT_EQ(capped.profile, full.profile) << threads << " threads";
    EXPECT_TRUE(capped.matching == full.matching) << threads << " threads";
  }
}

TEST(TraceRing, CappedRunDeterministicRerun) {
  // Same seed, same thread count, same cap: the retained trace is
  // reproduced exactly (the `--repeat until-pass:1` contract applied to
  // bounded-memory tracing).
  const ObservedRun a = observed_capped_run(2, 48);
  const ObservedRun b = observed_capped_run(2, 48);
  EXPECT_TRUE(a.trace == b.trace);
  EXPECT_EQ(a.metrics, b.metrics);
}

}  // namespace
}  // namespace dmatch
