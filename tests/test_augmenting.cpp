#include <gtest/gtest.h>

#include "graph/augmenting.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/matching.hpp"
#include "graph/seq_matching.hpp"

namespace dmatch {
namespace {

TEST(Augmenting, SingleEdgeGraph) {
  const Graph g = gen::path(2);
  const Matching empty(2);
  const auto paths = enumerate_augmenting_paths(g, empty, 3);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<EdgeId>{0}));
}

TEST(Augmenting, LengthThreePath) {
  // 0-1-2-3 with 1-2 matched: one augmenting path of length 3, none of 1.
  const Graph g = gen::path(4);
  Matching m(4);
  m.add(g, 1);
  EXPECT_TRUE(enumerate_augmenting_paths(g, m, 1).empty());
  const auto paths = enumerate_augmenting_paths(g, m, 3);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<EdgeId>{0, 1, 2}));
}

TEST(Augmenting, ReportsEachPathOnce) {
  // Empty matching on a triangle: three length-1 augmenting paths.
  const Graph g = gen::cycle(3);
  const Matching m(3);
  EXPECT_EQ(enumerate_augmenting_paths(g, m, 1).size(), 3u);
}

TEST(Augmenting, MaxCountTruncates) {
  const Graph g = gen::complete_bipartite(5, 5);
  const Matching m(10);
  EXPECT_EQ(enumerate_augmenting_paths(g, m, 1, 3).size(), 3u);
}

TEST(Augmenting, NoPathsOnPerfectMatching) {
  const Graph g = gen::cycle(6);
  const Matching m = Matching::from_edge_ids(g, std::vector<EdgeId>{0, 2, 4});
  EXPECT_TRUE(enumerate_augmenting_paths(g, m, 11).empty());
  EXPECT_FALSE(shortest_augmenting_path_length(g, m, 11).has_value());
}

TEST(Augmenting, ShortestLengthIsCorrect) {
  const Graph g = gen::path(6);  // 0-1-2-3-4-5
  Matching m(6);
  m.add(g, 1);  // 1-2
  m.add(g, 3);  // 3-4
  // Augmenting path: 0-1-2-3-4-5 (length 5).
  const auto len = shortest_augmenting_path_length(g, m, 9);
  ASSERT_TRUE(len.has_value());
  EXPECT_EQ(*len, 5);
}

TEST(Augmenting, PathsAreAlternatingAndSimple) {
  const Graph g = gen::gnp(24, 0.2, 11);
  const Matching m = greedy_mwm(g);
  for (const auto& path : enumerate_augmenting_paths(g, m, 5)) {
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.size() % 2, 1u);
    for (std::size_t i = 0; i < path.size(); ++i) {
      EXPECT_EQ(m.contains(g, path[i]), i % 2 == 1) << "alternation broken";
    }
    // Endpoints free.
    const Edge& first = g.edge(path.front());
    const Edge& last = g.edge(path.back());
    const bool first_free = m.is_free(first.u) || m.is_free(first.v);
    const bool last_free = m.is_free(last.u) || m.is_free(last.v);
    EXPECT_TRUE(first_free);
    EXPECT_TRUE(last_free);
  }
}

TEST(Augmenting, AugmentingAlongReportedPathGrowsMatching) {
  const Graph g = gen::gnp(20, 0.25, 13);
  Matching m = greedy_mwm(g);
  for (int guard = 0; guard < 20; ++guard) {
    const auto paths = enumerate_augmenting_paths(g, m, 7, 1);
    if (paths.empty()) break;
    const std::size_t before = m.size();
    m.augment(g, paths[0]);
    EXPECT_TRUE(m.is_valid(g));
    EXPECT_EQ(m.size(), before + 1);
  }
}

TEST(Augmenting, BipartiteOracleAgreesWithGeneralOracle) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = gen::bipartite_gnp(10, 10, 0.2, seed);
    const auto side = g.bipartition();
    ASSERT_TRUE(side.has_value());
    Matching m = greedy_mwm(g);
    const auto fast = bipartite_shortest_augmenting_path_length(g, *side, m);
    const auto slow = shortest_augmenting_path_length(g, m, 19);
    if (fast.has_value() && *fast <= 19) {
      ASSERT_TRUE(slow.has_value()) << "seed " << seed;
      EXPECT_EQ(*fast, *slow) << "seed " << seed;
    } else {
      EXPECT_FALSE(slow.has_value()) << "seed " << seed;
    }
  }
}

TEST(Augmenting, BipartiteOracleOnSaturatedSide) {
  const Graph g = gen::complete_bipartite(3, 3);
  const Matching m = hopcroft_karp(g);
  EXPECT_EQ(m.size(), 3u);
  const auto side = g.bipartition();
  EXPECT_FALSE(
      bipartite_shortest_augmenting_path_length(g, *side, m).has_value());
}

TEST(Augmenting, GreedyDisjointPathsAreDisjointAndMaximal) {
  const Graph g = gen::bipartite_gnp(15, 15, 0.3, 3);
  const Matching m(30);
  const auto all = enumerate_augmenting_paths(g, m, 1);
  const auto chosen = greedy_disjoint_paths(g, all);
  std::vector<char> used(static_cast<std::size_t>(g.node_count()), false);
  for (const auto& p : chosen) {
    for (EdgeId e : p) {
      const Edge& ed = g.edge(e);
      EXPECT_FALSE(used[static_cast<std::size_t>(ed.u)]);
      EXPECT_FALSE(used[static_cast<std::size_t>(ed.v)]);
      used[static_cast<std::size_t>(ed.u)] = true;
      used[static_cast<std::size_t>(ed.v)] = true;
    }
  }
  // Maximality: every candidate intersects a chosen one.
  for (const auto& p : all) {
    bool hits = false;
    for (EdgeId e : p) {
      const Edge& ed = g.edge(e);
      hits = hits || used[static_cast<std::size_t>(ed.u)] ||
             used[static_cast<std::size_t>(ed.v)];
    }
    EXPECT_TRUE(hits);
  }
}

}  // namespace
}  // namespace dmatch
