// Differential testing: independent implementations of overlapping
// guarantees must agree with each other on shared instances.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "graph/blossom.hpp"
#include "graph/exact_small.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/hungarian.hpp"
#include "graph/seq_matching.hpp"

namespace dmatch {
namespace {

TEST(Differential, ThreeMcmAlgorithmsOnBipartiteInstances) {
  // Theorem 3.7 (LOCAL), Theorem 3.10 (bipartite CONGEST) and Theorem 3.15
  // (general CONGEST) all apply to bipartite inputs; each must clear its
  // own bound against the same Hopcroft-Karp optimum.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = gen::bipartite_gnp(16, 16, 0.2, seed + 30);
    const auto opt = static_cast<double>(hopcroft_karp(g).size());
    if (opt == 0) continue;

    BipartiteMcmOptions bip;
    bip.k = 3;
    const auto a = approx_mcm_bipartite(g, seed, bip);
    EXPECT_GE(a.matching.size() + 1e-9, (2.0 / 3) * opt) << seed;

    GeneralMcmOptions gen_options;
    gen_options.k = 3;
    gen_options.seed = seed;
    const auto b = approx_mcm_general(g, gen_options);
    EXPECT_GE(b.matching.size() + 1e-9, (2.0 / 3) * opt) << seed;

    LocalGenericOptions local;
    local.epsilon = 1.0 / 3;
    local.seed = seed;
    const auto c = local_generic_mcm(g, local);
    EXPECT_GE(c.matching.size() + 1e-9, (2.0 / 3) * opt) << seed;
  }
}

TEST(Differential, TwoMwmAlgorithmsOnSharedInstances) {
  // Algorithm 5 ((1/2 - eps)) and the Section 4 remark ((1 - eps)) on the
  // same graphs, against the exponential oracle: the LOCAL algorithm's
  // stronger guarantee must show.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = gen::with_uniform_weights(gen::gnp(14, 0.3, seed + 40),
                                              1.0, 25.0, seed + 41);
    if (g.edge_count() == 0) continue;
    const double opt = exact_mwm_value(g);

    HalfMwmOptions half;
    half.epsilon = 0.05;
    half.seed = seed;
    const double w_half = approx_mwm(g, half).matching.weight(g);
    EXPECT_GE(w_half + 1e-9, 0.45 * opt) << seed;

    LocalMwmOptions local;
    local.epsilon = 0.34;
    local.seed = seed;
    const auto full = local_one_minus_eps_mwm(g, local);
    EXPECT_GE(full.matching.weight(g) + 1e-9, 0.75 * opt) << seed;
  }
}

TEST(Differential, HungarianAgreesWithExponentialOracle) {
  // Independent exact solvers must agree exactly.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = gen::with_uniform_weights(
        gen::bipartite_gnp(8, 9, 0.4, seed + 50), 0.5, 12.0, seed + 51);
    EXPECT_NEAR(hungarian_mwm(g).weight(g), exact_mwm_value(g), 1e-6) << seed;
  }
}

TEST(Differential, BlossomAgreesWithHopcroftKarpOnBipartite) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = gen::bipartite_gnp(20, 20, 0.15, seed + 60);
    EXPECT_EQ(blossom_mcm(g).size(), hopcroft_karp(g).size()) << seed;
  }
}

TEST(Differential, CongestCapFactorDoesNotChangeResults) {
  // The cap is an assertion, not an input: enlarging it must not alter any
  // outcome.
  const Graph g = gen::bipartite_gnp(20, 20, 0.2, 70);
  const auto a = approx_mcm_bipartite(g, 5, {}, 48);
  const auto b = approx_mcm_bipartite(g, 5, {}, 480);
  EXPECT_TRUE(a.matching == b.matching);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

TEST(Differential, GreedyNeverBeatsExactAndAlwaysBeatsHalf) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = gen::with_exponential_weights(gen::gnp(14, 0.35, seed),
                                                  50.0, seed + 1);
    if (g.edge_count() == 0) continue;
    const double opt = exact_mwm_value(g);
    const double greedy = greedy_mwm(g).weight(g);
    EXPECT_LE(greedy, opt + 1e-9);
    EXPECT_GE(greedy + 1e-9, 0.5 * opt);
  }
}

}  // namespace
}  // namespace dmatch
