#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/sat_count.hpp"
#include "support/table.hpp"
#include "support/wire.hpp"

namespace dmatch {
namespace {

// ---------------------------------------------------------------- asserts

TEST(Assert, ExpectsThrowsOnViolation) {
  EXPECT_THROW(DMATCH_EXPECTS(1 == 2), ContractViolation);
  EXPECT_NO_THROW(DMATCH_EXPECTS(1 == 1));
  EXPECT_THROW(DMATCH_ENSURES(false), ContractViolation);
  EXPECT_THROW(DMATCH_ASSERT(false), ContractViolation);
}

TEST(Assert, MessageNamesExpressionAndLocation) {
  try {
    DMATCH_EXPECTS(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkStreamsAreDecorrelated) {
  Rng root(7);
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkIsDeterministic) {
  Rng root1(7);
  Rng root2(7);
  Rng a = root1.fork(5);
  Rng b = root2.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformRejectsZeroBound) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(0), ContractViolation);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(13);
  int buckets[10] = {};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++buckets[static_cast<int>(rng.uniform01() * 10)];
  }
  for (int b : buckets) {
    EXPECT_NEAR(b, draws / 10, draws / 100);
  }
}

TEST(Rng, MaxOfUniformsMatchesTheoreticalMean) {
  // E[max of m uniforms] = m / (m + 1).
  Rng rng(17);
  for (double m : {1.0, 4.0, 64.0}) {
    double sum = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) sum += sample_max_of_uniforms(rng, m);
    EXPECT_NEAR(sum / draws, m / (m + 1.0), 0.01) << "m = " << m;
  }
}

TEST(Rng, MaxOfHugeCountsApproachesOne) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(sample_max_of_uniforms(rng, 1e30), 0.999);
  }
}

// -------------------------------------------------------------- sat_count

TEST(SatCount, BasicArithmetic) {
  SatCount a(3);
  SatCount b(4);
  EXPECT_EQ((a + b), SatCount(7));
  EXPECT_TRUE(SatCount{}.is_zero());
  EXPECT_FALSE(a.is_zero());
  EXPECT_LT(a, b);
}

TEST(SatCount, SaturatesInsteadOfWrapping) {
  SatCount big = SatCount::saturated();
  EXPECT_TRUE(big.is_saturated());
  SatCount sum = big + SatCount(1);
  EXPECT_TRUE(sum.is_saturated());
  EXPECT_EQ(sum, SatCount::saturated());
}

TEST(SatCount, AccumulationBeyond64Bits) {
  SatCount c(~std::uint64_t{0});
  c += SatCount(~std::uint64_t{0});
  EXPECT_FALSE(c.is_saturated());
  EXPECT_EQ(c.clamped_u64(), ~std::uint64_t{0});
  EXPECT_GT(c.as_double(), 3e19);
}

TEST(SatCount, WireRoundTrip) {
  SatCount values[] = {SatCount{}, SatCount(1), SatCount(12345),
                       SatCount(~std::uint64_t{0}) + SatCount(99),
                       SatCount::saturated()};
  for (const SatCount& v : values) {
    EXPECT_EQ(SatCount::from_words(v.hi(), v.lo()), v);
  }
}

TEST(SatCount, AsDoubleMonotone) {
  EXPECT_LT(SatCount(5).as_double(), SatCount(6).as_double());
  EXPECT_GT(SatCount::saturated().as_double(), 1e38);
}

// ------------------------------------------------------------------- wire

TEST(Wire, SingleFieldRoundTrip) {
  for (unsigned width = 1; width <= 64; ++width) {
    BitWriter w;
    const std::uint64_t value =
        width == 64 ? 0xdeadbeefcafebabeULL
                    : 0xdeadbeefcafebabeULL & ((std::uint64_t{1} << width) - 1);
    w.write(value, width);
    EXPECT_EQ(w.bit_count(), width);
    BitReader r(w.words(), w.bit_count());
    EXPECT_EQ(r.read(width), value) << "width " << width;
  }
}

TEST(Wire, MixedFieldsRoundTrip) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    BitWriter w;
    const int count = 1 + static_cast<int>(rng.uniform(20));
    for (int i = 0; i < count; ++i) {
      const unsigned width = 1 + static_cast<unsigned>(rng.uniform(64));
      std::uint64_t value = rng();
      if (width < 64) value &= (std::uint64_t{1} << width) - 1;
      fields.emplace_back(value, width);
      w.write(value, width);
    }
    BitReader r(w.words(), w.bit_count());
    for (const auto& [value, width] : fields) {
      ASSERT_EQ(r.read(width), value);
    }
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(Wire, BitCountIsExact) {
  BitWriter w;
  w.write_bool(true);
  w.write(5, 3);
  w.write(1, 64);
  EXPECT_EQ(w.bit_count(), 68u);
}

TEST(Wire, WriterRejectsOverwideValues) {
  BitWriter w;
  EXPECT_THROW(w.write(4, 2), ContractViolation);   // 4 needs 3 bits
  EXPECT_THROW(w.write(1, 0), ContractViolation);   // zero width
  EXPECT_THROW(w.write(1, 65), ContractViolation);  // too wide
}

TEST(Wire, ReaderRejectsOverread) {
  BitWriter w;
  w.write(3, 2);
  BitReader r(w.words(), w.bit_count());
  EXPECT_EQ(r.read(2), 3u);
  EXPECT_THROW(r.read(1), ContractViolation);
}

TEST(Wire, BitWidthFor) {
  EXPECT_EQ(bit_width_for(0), 1u);
  EXPECT_EQ(bit_width_for(1), 1u);
  EXPECT_EQ(bit_width_for(2), 2u);
  EXPECT_EQ(bit_width_for(255), 8u);
  EXPECT_EQ(bit_width_for(256), 9u);
  EXPECT_EQ(bit_width_for(~std::uint64_t{0}), 64u);
}

// ------------------------------------------------------------------ table

TEST(Table, RendersMarkdown) {
  Table t({"name", "value"});
  t.row().cell("rounds").cell(std::int64_t{42});
  t.row().cell("ratio").cell(0.95, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| rounds"), std::string::npos);
  EXPECT_NE(out.find("0.95"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, RejectsOverfilledRow) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), ContractViolation);
}

}  // namespace
}  // namespace dmatch
