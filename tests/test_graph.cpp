#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <queue>
#include <set>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "support/assert.hpp"

namespace dmatch {
namespace {

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(g.node_count()), false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  int count = 1;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (EdgeId e : g.incident_edges(v)) {
      const NodeId u = g.other_endpoint(e, v);
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = true;
        ++count;
        q.push(u);
      }
    }
  }
  return count == g.node_count();
}

// ------------------------------------------------------------------ graph

TEST(Graph, BuildsAdjacency) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_EQ(g.max_degree(), 2);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(Graph, RejectsSelfLoops) {
  EXPECT_THROW(Graph::from_edges(3, {{1, 1}}), ContractViolation);
}

TEST(Graph, RejectsDuplicateEdges) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}, {1, 0}}), ContractViolation);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 3}}), ContractViolation);
}

TEST(Graph, NormalizesEndpointOrder) {
  const Graph g = Graph::from_edges(3, {{2, 0}});
  EXPECT_EQ(g.edge(0).u, 0);
  EXPECT_EQ(g.edge(0).v, 2);
}

TEST(Graph, PortNumberingIsConsistent) {
  const Graph g = gen::gnp(40, 0.2, 99);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto ports = g.incident_edges(v);
    for (std::size_t p = 0; p < ports.size(); ++p) {
      EXPECT_EQ(g.port_of_edge(v, ports[p]), static_cast<int>(p));
      const NodeId u = g.neighbor(v, static_cast<int>(p));
      EXPECT_EQ(g.other_endpoint(ports[p], v), u);
    }
  }
}

TEST(Graph, FindEdge) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(g.find_edge(0, 1), 0);
  EXPECT_EQ(g.find_edge(1, 0), 0);
  EXPECT_EQ(g.find_edge(3, 2), 1);
  EXPECT_EQ(g.find_edge(0, 2), kNoEdge);
}

TEST(Graph, WeightsAndTotals) {
  const Graph g = Graph::from_edges(3, {{0, 1, 2.5}, {1, 2, 4.0}});
  EXPECT_DOUBLE_EQ(g.total_weight(), 6.5);
  EXPECT_DOUBLE_EQ(g.max_weight(), 4.0);
  EXPECT_DOUBLE_EQ(g.weight(0), 2.5);
}

TEST(Graph, BipartitionOfBipartiteGraph) {
  const Graph g = gen::bipartite_gnp(10, 12, 0.3, 5);
  const auto side = g.bipartition();
  ASSERT_TRUE(side.has_value());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_NE((*side)[static_cast<std::size_t>(g.edge(e).u)],
              (*side)[static_cast<std::size_t>(g.edge(e).v)]);
  }
}

TEST(Graph, BipartitionRejectsOddCycle) {
  EXPECT_FALSE(gen::cycle(5).bipartition().has_value());
  EXPECT_TRUE(gen::cycle(6).bipartition().has_value());
}

TEST(Graph, EdgeSubgraphMapsIdsBack) {
  const Graph g = gen::gnp(20, 0.3, 7);
  std::vector<char> keep(static_cast<std::size_t>(g.edge_count()), false);
  for (EdgeId e = 0; e < g.edge_count(); e += 2) {
    keep[static_cast<std::size_t>(e)] = true;
  }
  const Graph::Subgraph sub = g.edge_subgraph(keep);
  EXPECT_EQ(sub.graph.node_count(), g.node_count());
  ASSERT_EQ(sub.original_edge.size(),
            static_cast<std::size_t>(sub.graph.edge_count()));
  for (EdgeId e = 0; e < sub.graph.edge_count(); ++e) {
    const Edge& a = sub.graph.edge(e);
    const Edge& b = g.edge(sub.original_edge[static_cast<std::size_t>(e)]);
    EXPECT_EQ(a.u, b.u);
    EXPECT_EQ(a.v, b.v);
    EXPECT_EQ(a.w, b.w);
  }
}

// ------------------------------------------------------------- generators

TEST(Generators, GnpEdgeCountNearExpectation) {
  const NodeId n = 200;
  const double p = 0.1;
  const Graph g = gen::gnp(n, p, 123);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(g.edge_count(), expected, 4 * std::sqrt(expected));
}

TEST(Generators, GnpExtremes) {
  EXPECT_EQ(gen::gnp(10, 0.0, 1).edge_count(), 0);
  EXPECT_EQ(gen::gnp(10, 1.0, 1).edge_count(), 45);
  EXPECT_EQ(gen::gnp(0, 0.5, 1).node_count(), 0);
  EXPECT_EQ(gen::gnp(1, 1.0, 1).edge_count(), 0);
}

TEST(Generators, GnpDeterministicPerSeed) {
  const Graph a = gen::gnp(50, 0.2, 9);
  const Graph b = gen::gnp(50, 0.2, 9);
  const Graph c = gen::gnp(50, 0.2, 10);
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
  EXPECT_NE(a.edge_count(), c.edge_count());  // overwhelmingly likely
}

TEST(Generators, BipartiteGnpIsBipartite) {
  const Graph g = gen::bipartite_gnp(30, 40, 0.15, 2);
  EXPECT_EQ(g.node_count(), 70);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_LT(g.edge(e).u, 30);
    EXPECT_GE(g.edge(e).v, 30);
  }
  const double expected = 0.15 * 30 * 40;
  EXPECT_NEAR(g.edge_count(), expected, 4 * std::sqrt(expected));
}

TEST(Generators, CycleAndPath) {
  const Graph c = gen::cycle(8);
  EXPECT_EQ(c.edge_count(), 8);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(c.degree(v), 2);
  const Graph p = gen::path(5);
  EXPECT_EQ(p.edge_count(), 4);
  EXPECT_EQ(p.degree(0), 1);
  EXPECT_EQ(p.degree(2), 2);
}

TEST(Generators, Grid) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_EQ(g.edge_count(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(g.bipartition().has_value());
}

TEST(Generators, CompleteGraphs) {
  EXPECT_EQ(gen::complete(6).edge_count(), 15);
  const Graph kb = gen::complete_bipartite(3, 4);
  EXPECT_EQ(kb.edge_count(), 12);
  EXPECT_TRUE(kb.bipartition().has_value());
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph t = gen::random_tree(30, seed);
    EXPECT_EQ(t.edge_count(), 29);
    EXPECT_TRUE(is_connected(t));
    EXPECT_TRUE(t.bipartition().has_value());
  }
}

TEST(Generators, NearRegularDegreeBounds) {
  const Graph g = gen::near_regular(60, 4, 3);
  int total_degree = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_LE(g.degree(v), 4);
    total_degree += g.degree(v);
  }
  // The configuration model drops only loops/duplicates: most stubs pair.
  EXPECT_GT(total_degree, 60 * 4 * 3 / 4);
}

TEST(Generators, BarabasiAlbertShape) {
  const Graph g = gen::barabasi_albert(100, 2, 4);
  EXPECT_EQ(g.node_count(), 100);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(g.max_degree(), 5);  // hubs emerge
}

TEST(Generators, UniformWeightsInRange) {
  const Graph g =
      gen::with_uniform_weights(gen::gnp(40, 0.2, 5), 2.0, 9.0, 77);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_GE(g.weight(e), 2.0);
    EXPECT_LE(g.weight(e), 9.0);
  }
}

TEST(Generators, ExponentialWeightsRatio) {
  const Graph g =
      gen::with_exponential_weights(gen::gnp(60, 0.3, 6), 1000.0, 78);
  double lo = 1e18;
  double hi = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    lo = std::min(lo, g.weight(e));
    hi = std::max(hi, g.weight(e));
  }
  EXPECT_GE(lo, 1.0);
  EXPECT_LE(hi, 1000.0);
  EXPECT_GT(hi / lo, 10.0);  // genuinely heavy-tailed
}

TEST(Generators, WeightLayersPreserveTopology) {
  const Graph base = gen::gnp(30, 0.2, 8);
  const Graph weighted = gen::with_uniform_weights(base, 1.0, 5.0, 9);
  ASSERT_EQ(weighted.edge_count(), base.edge_count());
  for (EdgeId e = 0; e < base.edge_count(); ++e) {
    EXPECT_EQ(weighted.edge(e).u, base.edge(e).u);
    EXPECT_EQ(weighted.edge(e).v, base.edge(e).v);
  }
}

}  // namespace
}  // namespace dmatch
