// The alpha synchronizer must make any synchronous protocol produce the
// *identical* result over an asynchronous network (footnote 2 of the
// paper). These tests run the real protocols both ways and compare.
#include <gtest/gtest.h>

#include "congest/async.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/israeli_itai.hpp"
#include "graph/generators.hpp"
#include "mis/luby.hpp"

namespace dmatch {
namespace {

using congest::Model;
using congest::Network;

TEST(AlphaSynchronizer, IsraeliItaiMatchesSynchronousRun) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::gnp(40, 0.1, seed);

    Network sync_net(g, Model::kCongest, seed + 7);
    const IsraeliItaiResult sync_result = israeli_itai(sync_net);

    const auto async_result = congest::run_synchronized(
        g, israeli_itai_factory(), seed + 7, 1 << 14);
    EXPECT_TRUE(async_result.stats.completed) << "seed " << seed;
    EXPECT_TRUE(async_result.matching == sync_result.matching)
        << "seed " << seed;
  }
}

TEST(AlphaSynchronizer, LubyMisMatchesSynchronousRun) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::gnp(50, 0.15, seed + 10);

    Network sync_net(g, Model::kCongest, seed + 3);
    const MisResult sync_result = luby_mis_distributed(sync_net);

    std::vector<std::uint8_t> async_mis(
        static_cast<std::size_t>(g.node_count()), 0);
    const auto stats = [&] {
      std::vector<int> mates(static_cast<std::size_t>(g.node_count()), -1);
      return congest::run_synchronized(g, luby_mis_factory(async_mis), mates,
                                       seed + 3, 1 << 14);
    }();
    EXPECT_TRUE(stats.completed) << "seed " << seed;
    EXPECT_EQ(async_mis, sync_result.in_mis) << "seed " << seed;
  }
}

TEST(AlphaSynchronizer, AugmentIterationMatchesSynchronousRun) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = gen::bipartite_gnp(15, 15, 0.25, seed + 20);
    const auto side = *g.bipartition();

    Network sync_net(g, Model::kCongest, seed + 5);
    run_augment_iteration(sync_net, side, 1);
    run_augment_iteration(sync_net, side, 3);
    const Matching sync_matching = sync_net.extract_matching();

    // Async: chain the two iterations over the same registers.
    std::vector<int> mates(static_cast<std::size_t>(g.node_count()), -1);
    // The synchronous network forks per-node RNGs once and each protocol
    // continues the stream; replicate by running both protocols through
    // one synchronizer run is not possible (fresh processes), so compare
    // against a fresh sync network per iteration instead.
    Network sync_one(g, Model::kCongest, seed + 6);
    run_augment_iteration(sync_one, side, 1);
    const Matching sync_after_one = sync_one.extract_matching();

    congest::run_synchronized(g, augment_iteration_factory(side, 1), mates,
                              seed + 6, 64);
    Matching async_after_one(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const int port = mates[static_cast<std::size_t>(v)];
      if (port < 0) continue;
      const EdgeId e = g.incident_edges(v)[static_cast<std::size_t>(port)];
      if (g.edge(e).u == v) async_after_one.add(g, e);
    }
    EXPECT_TRUE(async_after_one == sync_after_one) << "seed " << seed;
    (void)sync_matching;
  }
}

TEST(AlphaSynchronizer, ReportsOverheadAndRounds) {
  const Graph g = gen::gnp(30, 0.15, 99);
  const auto result =
      congest::run_synchronized(g, israeli_itai_factory(), 4, 1 << 14);
  EXPECT_TRUE(result.stats.completed);
  EXPECT_GT(result.stats.virtual_rounds, 0u);
  EXPECT_GT(result.stats.control_messages, result.stats.payload_messages);
  EXPECT_GT(result.stats.completion_time, 0.0);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_TRUE(result.matching.is_maximal(g));
}

TEST(AlphaSynchronizer, DeterministicUnderSeed) {
  const Graph g = gen::gnp(25, 0.2, 5);
  const auto a = congest::run_synchronized(g, israeli_itai_factory(), 11,
                                           1 << 14);
  const auto b = congest::run_synchronized(g, israeli_itai_factory(), 11,
                                           1 << 14);
  EXPECT_TRUE(a.matching == b.matching);
  EXPECT_EQ(a.stats.events, b.stats.events);
}

TEST(AlphaSynchronizer, DelayDistributionDoesNotChangeTheResult) {
  // Same protocol seed, different delay regimes: the synchronizer hides
  // asynchrony entirely, so results agree with each other.
  const Graph g = gen::gnp(25, 0.2, 6);
  std::vector<int> mates_fast(static_cast<std::size_t>(g.node_count()), -1);
  std::vector<int> mates_slow(static_cast<std::size_t>(g.node_count()), -1);
  congest::run_synchronized(g, israeli_itai_factory(), mates_fast, 12, 1 << 14,
                            0.01, 0.02);
  congest::run_synchronized(g, israeli_itai_factory(), mates_slow, 12, 1 << 14,
                            0.5, 40.0);
  EXPECT_EQ(mates_fast, mates_slow);
}

TEST(AlphaSynchronizer, RoundBudgetTruncationIsReported) {
  // A tiny virtual-round budget cannot complete Israeli-Itai on a graph
  // that needs several iterations; the run must report incomplete (the
  // protocol never quiesces) rather than pretend success.
  const Graph g = gen::complete(12);
  std::vector<int> mates(static_cast<std::size_t>(g.node_count()), -1);
  const auto stats =
      congest::run_synchronized(g, israeli_itai_factory(), mates, 5, 1);
  EXPECT_LE(stats.virtual_rounds, 1u);
  EXPECT_FALSE(stats.completed);
}

TEST(AlphaSynchronizer, HandlesIsolatedNodes) {
  const Graph g = Graph::from_edges(5, {{0, 1}});
  const auto result =
      congest::run_synchronized(g, israeli_itai_factory(), 3, 1 << 10);
  EXPECT_TRUE(result.stats.completed);
  EXPECT_EQ(result.matching.size(), 1u);
}

}  // namespace
}  // namespace dmatch
