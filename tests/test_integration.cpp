// End-to-end exercises of the public API, mirroring how the examples and
// benches compose the library.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/hungarian.hpp"
#include "graph/seq_matching.hpp"

namespace dmatch {
namespace {

TEST(Integration, AllAlgorithmsOnOneBipartiteWorkload) {
  const Graph g = gen::bipartite_gnp(30, 30, 0.15, 100);
  const std::size_t opt = hopcroft_karp(g).size();

  const auto ii = maximal_matching(g, 1);
  EXPECT_GE(2 * ii.matching.size(), opt);

  BipartiteMcmOptions bip;
  bip.k = 5;
  const auto ours = approx_mcm_bipartite(g, 2, bip);
  EXPECT_GE(5 * ours.matching.size() + 4, 4 * opt);
  EXPECT_GE(ours.matching.size(), ii.matching.size());

  GeneralMcmOptions gen_options;
  gen_options.k = 3;
  gen_options.seed = 3;
  const auto general = approx_mcm_general(g, gen_options);
  EXPECT_GE(3 * general.matching.size() + 2, 2 * opt);
}

TEST(Integration, WeightedPipelineOnJobAssignmentShape) {
  // The paper's job/server example: bipartite, weighted by benefit.
  const Graph g = gen::with_uniform_weights(
      gen::bipartite_gnp(25, 35, 0.2, 101), 1.0, 100.0, 102);
  const double opt = hungarian_mwm(g).weight(g);

  HalfMwmOptions options;
  options.epsilon = 0.05;
  options.seed = 4;
  const auto result = approx_mwm(g, options);
  EXPECT_GE(result.matching.weight(g) + 1e-9, 0.45 * opt);

  // Distributed result also beats a quarter of the sequential greedy.
  const double greedy = greedy_mwm(g).weight(g);
  EXPECT_GE(result.matching.weight(g) + 1e-9, 0.45 * greedy);
}

TEST(Integration, ImprovementOverBaselineIsObservable) {
  // On cycles the II baseline is visibly suboptimal while the (1-eps)
  // algorithm gets close to n/2; this is the paper's headline improvement.
  const Graph g = gen::cycle(60);
  const std::size_t opt = blossom_mcm(g).size();  // 30
  double ii_avg = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    ii_avg += static_cast<double>(maximal_matching(g, 500 + t).matching.size());
  }
  ii_avg /= trials;

  GeneralMcmOptions options;
  options.k = 5;
  options.seed = 9;
  const auto ours = approx_mcm_general(g, options);
  EXPECT_GE(ours.matching.size(), static_cast<std::size_t>(0.8 * opt));
  EXPECT_GT(static_cast<double>(ours.matching.size()), ii_avg - 1.0);
}

TEST(Integration, CongestCapHeldAcrossTheWholePipeline) {
  const Graph g = gen::bipartite_gnp(50, 50, 0.1, 103);
  congest::Network net(g, congest::Model::kCongest, 5);
  const auto side = *g.bipartition();
  BipartiteMcmOptions options;
  options.k = 4;
  const auto result = bipartite_mcm(net, side, options);
  EXPECT_LE(result.stats.max_message_bits, net.message_cap_bits());
  EXPECT_LE(net.total_stats().max_message_bits, net.message_cap_bits());
}

TEST(Integration, RegisterStatePersistsAcrossProtocols) {
  // Run II first, then improve with phases on the same network: the final
  // matching must contain no short augmenting paths and never shrink.
  const Graph g = gen::bipartite_gnp(20, 20, 0.25, 104);
  const auto side = *g.bipartition();
  congest::Network net(g, congest::Model::kCongest, 6);
  const auto ii = israeli_itai(net);
  const std::size_t before = ii.matching.size();
  PhaseOptions phase;
  for (int ell = 1; ell <= 5; ell += 2) run_phase(net, side, ell, phase);
  const Matching after = net.extract_matching();
  EXPECT_GE(after.size(), before);
  EXPECT_TRUE(after.is_valid(g));
}

TEST(Integration, NormalizedRoundsReflectTokenWidth) {
  const Graph g = gen::bipartite_gnp(40, 40, 0.2, 105);
  const auto result = approx_mcm_bipartite(g, 7);
  congest::Network reference(g, congest::Model::kCongest, 0);
  const auto normalized =
      result.stats.normalized_rounds(reference.message_cap_bits());
  EXPECT_GE(normalized, result.stats.rounds);
}

TEST(Integration, MixedWorkloadStress) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Graph g = gen::with_uniform_weights(
        gen::barabasi_albert(50, 2, seed), 1.0, 10.0, seed);
    const auto mwm = approx_mwm(g, [&] {
      HalfMwmOptions o;
      o.epsilon = 0.1;
      o.seed = seed;
      return o;
    }());
    EXPECT_TRUE(mwm.matching.is_valid(g));

    GeneralMcmOptions gmo;
    gmo.k = 3;
    gmo.seed = seed;
    const auto mcm = approx_mcm_general(g, gmo);
    EXPECT_TRUE(mcm.matching.is_valid(g));
    EXPECT_GE(3 * mcm.matching.size() + 2, 2 * blossom_mcm(g).size());
  }
}

}  // namespace
}  // namespace dmatch
