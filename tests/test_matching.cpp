#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/matching.hpp"
#include "support/assert.hpp"

namespace dmatch {
namespace {

TEST(Matching, StartsEmpty) {
  const Matching m(5);
  EXPECT_EQ(m.size(), 0u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_TRUE(m.is_free(v));
    EXPECT_EQ(m.mate(v), kNoNode);
    EXPECT_EQ(m.matched_edge(v), kNoEdge);
  }
}

TEST(Matching, AddAndRemove) {
  const Graph g = gen::path(4);  // edges: 0-1, 1-2, 2-3
  Matching m(4);
  m.add(g, 0);
  EXPECT_TRUE(m.contains(g, 0));
  EXPECT_EQ(m.mate(0), 1);
  EXPECT_EQ(m.mate(1), 0);
  EXPECT_EQ(m.size(), 1u);
  m.remove(g, 0);
  EXPECT_FALSE(m.contains(g, 0));
  EXPECT_EQ(m.size(), 0u);
}

TEST(Matching, AddRejectsConflicts) {
  const Graph g = gen::path(4);
  Matching m(4);
  m.add(g, 0);                                     // 0-1
  EXPECT_THROW(m.add(g, 1), ContractViolation);    // 1-2 conflicts at 1
  EXPECT_NO_THROW(m.add(g, 2));                    // 2-3 fine
}

TEST(Matching, RemoveRejectsAbsentEdge) {
  const Graph g = gen::path(4);
  Matching m(4);
  EXPECT_THROW(m.remove(g, 0), ContractViolation);
}

TEST(Matching, WeightSumsMatchedEdges) {
  const Graph g = Graph::from_edges(4, {{0, 1, 2.0}, {2, 3, 3.5}});
  Matching m(4);
  m.add(g, 0);
  m.add(g, 1);
  EXPECT_DOUBLE_EQ(m.weight(g), 5.5);
}

TEST(Matching, EdgesAndFreeNodes) {
  const Graph g = gen::path(5);
  Matching m(5);
  m.add(g, 1);  // 1-2
  const auto edges = m.edges(g);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], 1);
  const auto free = m.free_nodes();
  EXPECT_EQ(free, (std::vector<NodeId>{0, 3, 4}));
}

TEST(Matching, AugmentAlongPath) {
  // Path graph 0-1-2-3 with 1-2 matched; augmenting path is all three
  // edges. After augmenting, 0-1 and 2-3 are matched.
  const Graph g = gen::path(4);
  Matching m(4);
  m.add(g, 1);
  const std::vector<EdgeId> path = {0, 1, 2};
  m.augment(g, path);
  EXPECT_TRUE(m.contains(g, 0));
  EXPECT_FALSE(m.contains(g, 1));
  EXPECT_TRUE(m.contains(g, 2));
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.is_valid(g));
}

TEST(Matching, SymmetricDifferenceValidatesResult) {
  const Graph g = gen::path(4);
  Matching m(4);
  m.add(g, 0);
  // {0-1, 1-2}: dropping 0-1 and adding 1-2 is fine.
  EXPECT_NO_THROW(m.symmetric_difference(g, std::vector<EdgeId>{0, 1}));
  EXPECT_TRUE(m.contains(g, 1));
  // Adding 0-1 and 2-3 now conflicts with matched 1-2 at nodes 1 and 2.
  EXPECT_THROW(m.symmetric_difference(g, std::vector<EdgeId>{0, 2}),
               ContractViolation);
}

TEST(Matching, FromEdgeIds) {
  const Graph g = gen::cycle(6);
  const Matching m = Matching::from_edge_ids(g, std::vector<EdgeId>{0, 2, 4});
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.is_valid(g));
  EXPECT_TRUE(m.is_maximal(g));
}

TEST(Matching, MaximalityCheck) {
  const Graph g = gen::path(5);
  Matching m(5);
  m.add(g, 1);  // 1-2 leaves 3-4 free
  EXPECT_FALSE(m.is_maximal(g));
  m.add(g, 3);
  EXPECT_TRUE(m.is_maximal(g));
}

TEST(Matching, ValidityDetectsCorruption) {
  const Graph g = gen::path(4);
  Matching a(4);
  EXPECT_TRUE(a.is_valid(g));
  Matching wrong_size(3);
  EXPECT_FALSE(wrong_size.is_valid(g));
}

TEST(Matching, EqualityIsByEdges) {
  const Graph g = gen::path(4);
  Matching a(4);
  Matching b(4);
  EXPECT_TRUE(a == b);
  a.add(g, 0);
  EXPECT_FALSE(a == b);
  b.add(g, 0);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace dmatch
