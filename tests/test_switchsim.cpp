#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "switchsim/switch_sim.hpp"

namespace dmatch {
namespace {

using switchsim::simulate_switch;
using switchsim::SwitchStats;
using switchsim::TrafficConfig;

TEST(SwitchSim, ConservesPackets) {
  TrafficConfig traffic;
  traffic.load = 0.8;
  const SwitchStats stats =
      simulate_switch(8, 500, traffic, switchsim::schedule_maximum, 1);
  EXPECT_EQ(stats.arrived, stats.delivered + stats.backlog);
}

TEST(SwitchSim, ZeroLoadMeansNoTraffic) {
  TrafficConfig traffic;
  traffic.load = 0.0;
  const SwitchStats stats =
      simulate_switch(4, 100, traffic, switchsim::schedule_maximum, 2);
  EXPECT_EQ(stats.arrived, 0u);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_delay(), 0.0);
}

TEST(SwitchSim, MaximumSchedulerSustainsModerateLoad) {
  TrafficConfig traffic;
  traffic.load = 0.6;
  const SwitchStats stats =
      simulate_switch(8, 2000, traffic, switchsim::schedule_maximum, 3);
  EXPECT_GT(stats.throughput(), 0.98);
}

TEST(SwitchSim, DiagonalTrafficIsTrivialForAnyMatching) {
  // One packet per input per cycle, all to distinct outputs: any maximal
  // matching drains everything.
  TrafficConfig traffic;
  traffic.pattern = TrafficConfig::Pattern::kDiagonal;
  traffic.load = 1.0;
  const SwitchStats stats = simulate_switch(
      6, 300, traffic,
      [](const Graph& g, int cycle) {
        return switchsim::schedule_israeli_itai(g, cycle, 5);
      },
      4);
  EXPECT_EQ(stats.backlog, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_delay(), 0.0);
}

TEST(SwitchSim, DeterministicUnderSeed) {
  TrafficConfig traffic;
  traffic.load = 0.9;
  const auto run = [&] {
    return simulate_switch(
        8, 300, traffic,
        [](const Graph& g, int cycle) {
          return switchsim::schedule_bipartite_mcm(g, cycle, 3, 7);
        },
        42);
  };
  const SwitchStats a = run();
  const SwitchStats b = run();
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.total_delay_cycles, b.total_delay_cycles);
}

TEST(SwitchSim, BetterSchedulersGiveNoMoreBacklog) {
  // Statistical, with a healthy margin: the maximum-matching scheduler
  // should not have (much) more backlog than the II scheduler.
  TrafficConfig traffic;
  traffic.load = 0.95;
  const SwitchStats best =
      simulate_switch(12, 2000, traffic, switchsim::schedule_maximum, 8);
  const SwitchStats ii = simulate_switch(
      12, 2000, traffic,
      [](const Graph& g, int cycle) {
        return switchsim::schedule_israeli_itai(g, cycle, 9);
      },
      8);
  EXPECT_LE(best.backlog, ii.backlog + 50);
}

TEST(SwitchSim, BurstyTrafficStillConserves) {
  TrafficConfig traffic;
  traffic.pattern = TrafficConfig::Pattern::kBursty;
  traffic.load = 0.7;
  traffic.mean_burst_length = 5;
  const SwitchStats stats = simulate_switch(
      6, 800, traffic,
      [](const Graph& g, int cycle) {
        return switchsim::schedule_bipartite_mcm(g, cycle, 3, 11);
      },
      12);
  EXPECT_EQ(stats.arrived, stats.delivered + stats.backlog);
  EXPECT_GT(stats.arrived, 0u);
}

TEST(Islip, ProducesValidMatchingEachCycle) {
  switchsim::IslipScheduler islip(6);
  TrafficConfig traffic;
  traffic.load = 0.9;
  const SwitchStats stats = simulate_switch(
      6, 500, traffic,
      [&islip](const Graph& g, int cycle) { return islip(g, cycle); }, 21);
  EXPECT_EQ(stats.arrived, stats.delivered + stats.backlog);
  EXPECT_GT(stats.throughput(), 0.8);
}

TEST(Islip, SingleIterationIsStillAMatching) {
  switchsim::IslipScheduler islip(4, 1);
  const Graph requests = gen::complete_bipartite(4, 4);
  const Matching m = islip(requests, 0);
  EXPECT_TRUE(m.is_valid(requests));
  EXPECT_GE(m.size(), 1u);
}

TEST(Islip, FullDemandDesynchronizesToPerfectMatchings) {
  // Under full uniform demand iSLIP's pointers desynchronize and it
  // serves one packet per port per cycle (its classic property).
  switchsim::IslipScheduler islip(5);
  const Graph requests = gen::complete_bipartite(5, 5);
  std::size_t matched_late = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    const Matching m = islip(requests, cycle);
    if (cycle >= 25) matched_late += m.size();
  }
  EXPECT_EQ(matched_late, 25u * 5u);
}

TEST(Islip, RoundRobinIsFairOnSingleOutputContention) {
  // All five inputs want only output 0: each must be served in turn.
  std::vector<Edge> edges;
  for (NodeId i = 0; i < 5; ++i) edges.push_back({i, 5, 1.0});
  const Graph requests = Graph::from_edges(10, std::move(edges));
  switchsim::IslipScheduler islip(5);
  std::vector<int> served(5, 0);
  for (int cycle = 0; cycle < 20; ++cycle) {
    const Matching m = islip(requests, cycle);
    ASSERT_EQ(m.size(), 1u);
    for (NodeId i = 0; i < 5; ++i) {
      if (m.is_matched(i)) ++served[static_cast<std::size_t>(i)];
    }
  }
  for (int count : served) EXPECT_EQ(count, 4);
}

TEST(SwitchSim, RejectsBadParameters) {
  TrafficConfig traffic;
  EXPECT_THROW(
      simulate_switch(1, 10, traffic, switchsim::schedule_maximum, 1),
      ContractViolation);
  traffic.load = 1.5;
  EXPECT_THROW(
      simulate_switch(4, 10, traffic, switchsim::schedule_maximum, 1),
      ContractViolation);
}

}  // namespace
}  // namespace dmatch
