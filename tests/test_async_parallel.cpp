// Determinism and correctness of the sharded async executor: any
// AsyncOptions::num_threads must produce bit-identical matchings,
// AsyncStats, fault counters, and obs output; exceptions must propagate
// out of shard workers; and the parallel Network build / extraction must
// agree with the sequential scan.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "congest/async.hpp"
#include "congest/network.hpp"
#include "core/israeli_itai.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "support/wire.hpp"

namespace dmatch {
namespace {

using congest::AsyncOptions;
using congest::AsyncRunResult;
using congest::AsyncStats;
using congest::Context;
using congest::Envelope;
using congest::FaultPlan;
using congest::Message;
using congest::Model;
using congest::Network;
using congest::Process;

const unsigned kThreadCounts[] = {1, 2, 8};

void expect_same_async_stats(const AsyncStats& a, const AsyncStats& b,
                             unsigned threads) {
  EXPECT_EQ(a.events, b.events) << "threads=" << threads;
  EXPECT_EQ(a.payload_messages, b.payload_messages) << "threads=" << threads;
  EXPECT_EQ(a.control_messages, b.control_messages) << "threads=" << threads;
  EXPECT_EQ(a.virtual_rounds, b.virtual_rounds) << "threads=" << threads;
  EXPECT_EQ(a.completion_time, b.completion_time) << "threads=" << threads;
  EXPECT_EQ(a.completed, b.completed) << "threads=" << threads;
  EXPECT_EQ(a.round_payloads, b.round_payloads) << "threads=" << threads;
  EXPECT_EQ(a.dropped_messages, b.dropped_messages) << "threads=" << threads;
  EXPECT_EQ(a.duplicated_messages, b.duplicated_messages)
      << "threads=" << threads;
  EXPECT_EQ(a.delayed_messages, b.delayed_messages) << "threads=" << threads;
  EXPECT_EQ(a.reordered_inboxes, b.reordered_inboxes) << "threads=" << threads;
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes) << "threads=" << threads;
  EXPECT_EQ(a.restarted_nodes, b.restarted_nodes) << "threads=" << threads;
}

AsyncRunResult run_async(const Graph& g, std::uint64_t seed, unsigned threads,
                         const FaultPlan& plan = {},
                         obs::Observer* observer = nullptr,
                         int max_rounds = 1 << 14) {
  AsyncOptions options;
  options.num_threads = threads;
  options.fault = plan;
  options.observer = observer;
  return congest::run_synchronized(g, israeli_itai_factory(), seed, max_rounds,
                                   options);
}

/// Fixed-horizon chatty process: floods every port for 12 rounds, then
/// halts. Robust under any fault plan (no protocol invariants to trip)
/// and bounded in runtime, so it can carry the full lossy plan.
class Chatter final : public Process {
 public:
  void on_round(Context& ctx, std::span<const Envelope>) override {
    if (ctx.round() < 12) {
      BitWriter w;
      w.write_bool(true);
      const Message msg = Message::from_writer(std::move(w));
      for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
    }
    halted_ = ctx.round() >= 12;
  }
  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  bool halted_ = false;
};

AsyncRunResult run_chatter(const Graph& g, std::uint64_t seed,
                           unsigned threads, const FaultPlan& plan,
                           obs::Observer* observer = nullptr) {
  AsyncOptions options;
  options.num_threads = threads;
  options.fault = plan;
  options.observer = observer;
  return congest::run_synchronized(
      g,
      [](NodeId, const Graph&) -> std::unique_ptr<Process> {
        return std::make_unique<Chatter>();
      },
      seed, 256, options);
}

TEST(AsyncParallel, FaultFreeBitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = gen::gnp(120, 0.05, seed);
    const AsyncRunResult expected = run_async(g, seed, 1);
    EXPECT_TRUE(expected.stats.completed) << "seed=" << seed;
    EXPECT_TRUE(expected.matching.is_maximal(g));
    for (const unsigned threads : kThreadCounts) {
      const AsyncRunResult got = run_async(g, seed, threads);
      expect_same_async_stats(expected.stats, got.stats, threads);
      EXPECT_TRUE(expected.matching == got.matching)
          << "threads=" << threads << " seed=" << seed;
    }
  }
}

TEST(AsyncParallel, FaultPlanBitIdenticalAcrossThreadCounts) {
  // Full lossy plan (drops + duplicates + delays + reorders) carried by
  // the fixed-horizon Chatter so every fault path fires without tripping
  // a protocol invariant; all counters must agree bit for bit.
  FaultPlan plan;
  plan.seed = 77;
  plan.drop_prob = 0.05;
  plan.duplicate_prob = 0.04;
  plan.delay_prob = 0.04;
  plan.reorder_prob = 0.1;
  for (const std::uint64_t seed : {4u, 5u}) {
    const Graph g = gen::gnp(90, 0.06, seed);
    const AsyncRunResult expected = run_chatter(g, seed, 1, plan);
    EXPECT_GT(expected.stats.dropped_messages, 0u) << "seed=" << seed;
    EXPECT_GT(expected.stats.duplicated_messages, 0u) << "seed=" << seed;
    EXPECT_GT(expected.stats.reordered_inboxes, 0u) << "seed=" << seed;
    for (const unsigned threads : kThreadCounts) {
      const AsyncRunResult got = run_chatter(g, seed, threads, plan);
      expect_same_async_stats(expected.stats, got.stats, threads);
      EXPECT_EQ(expected.dead_nodes, got.dead_nodes) << "threads=" << threads;
    }
  }
  // And the real protocol under a drops-only plan that it survives: the
  // healed matching itself must be bit-identical too. The round budget
  // is deliberately short — under drops the protocol may never quiesce,
  // and a truncated history must still agree bit for bit.
  const Graph g = gen::gnp(120, 0.06, 7);
  FaultPlan drops;
  drops.drop_prob = 0.1;
  drops.seed = 11;
  const AsyncRunResult expected = run_async(g, 7, 1, drops, nullptr, 512);
  EXPECT_GT(expected.stats.dropped_messages, 0u);
  for (const unsigned threads : kThreadCounts) {
    const AsyncRunResult got = run_async(g, 7, threads, drops, nullptr, 512);
    expect_same_async_stats(expected.stats, got.stats, threads);
    EXPECT_TRUE(expected.matching == got.matching) << "threads=" << threads;
    EXPECT_EQ(expected.dead_nodes, got.dead_nodes) << "threads=" << threads;
  }
}

TEST(AsyncParallel, CrashRestartBitIdenticalAcrossThreadCounts) {
  FaultPlan plan;
  plan.seed = 9;
  plan.crash_prob = 0.1;
  plan.restart_prob = 0.5;
  const Graph g = gen::gnp(80, 0.07, 13);
  const AsyncRunResult expected = run_async(g, 13, 1, plan);
  EXPECT_GT(expected.stats.crashed_nodes, 0u);
  for (const unsigned threads : kThreadCounts) {
    const AsyncRunResult got = run_async(g, 13, threads, plan);
    expect_same_async_stats(expected.stats, got.stats, threads);
    EXPECT_TRUE(expected.matching == got.matching) << "threads=" << threads;
    EXPECT_EQ(expected.dead_nodes, got.dead_nodes) << "threads=" << threads;
    EXPECT_TRUE(
        verify_matching_invariants(g, got.matching, got.dead_nodes).ok())
        << "threads=" << threads;
  }
}

TEST(AsyncParallel, ObsOutputByteIdenticalAcrossThreadCounts) {
  // Bounded-horizon run under a plan hitting every fault class; merged
  // metrics JSON and merged trace must be byte-identical per thread
  // count (a fresh Observer per run keeps the comparison exact).
  FaultPlan plan;
  plan.seed = 21;
  plan.drop_prob = 0.05;
  plan.duplicate_prob = 0.04;
  plan.crash_prob = 0.05;
  plan.restart_prob = 0.5;
  const Graph g = gen::gnp(70, 0.08, 31);

  std::string ref_metrics;
  std::vector<obs::TraceEvent> ref_trace;
  for (const unsigned threads : kThreadCounts) {
    obs::Observer ob;
    const AsyncRunResult res = run_chatter(g, 31, threads, plan, &ob);
    (void)res;
    std::ostringstream metrics;
    ob.metrics().write_json(metrics);
    const std::vector<obs::TraceEvent> trace = ob.trace_sink().merged();
    if (threads == 1) {
      ref_metrics = metrics.str();
      ref_trace = trace;
      EXPECT_FALSE(ref_trace.empty());
    } else {
      EXPECT_EQ(ref_metrics, metrics.str()) << "threads=" << threads;
      EXPECT_TRUE(ref_trace == trace) << "threads=" << threads;
    }
  }
}

TEST(AsyncParallel, ContractViolationPropagatesFromShard) {
  // Sending twice on one port in the same virtual round violates the
  // CONGEST delivery contract (and would break the canonical event key);
  // it must surface as a ContractViolation from any thread count.
  class DoubleSender final : public Process {
   public:
    void on_round(Context& ctx, std::span<const Envelope>) override {
      BitWriter w;
      w.write(1, 1);
      ctx.send(0, Message::from_writer(std::move(w)));
      BitWriter w2;
      w2.write(1, 1);
      ctx.send(0, Message::from_writer(std::move(w2)));
      halted_ = true;
    }
    [[nodiscard]] bool halted() const override { return halted_; }

   private:
    bool halted_ = false;
  };
  const Graph g = gen::cycle(16);
  for (const unsigned threads : {1u, 8u}) {
    std::vector<int> mates(static_cast<std::size_t>(g.node_count()), -1);
    AsyncOptions options;
    options.num_threads = threads;
    EXPECT_THROW(congest::run_synchronized(
                     g,
                     [](NodeId, const Graph&) -> std::unique_ptr<Process> {
                       return std::make_unique<DoubleSender>();
                     },
                     mates, 1, 8, options, nullptr),
                 ContractViolation)
        << "threads=" << threads;
  }
}

TEST(AsyncParallel, AgreesWithRoundEngineForAnyThreadPairing) {
  // The same protocol through the sharded round engine and the sharded
  // async executor, each at several thread counts: one matching.
  const Graph g = gen::gnp(100, 0.06, 17);
  Network net(g, Model::kCongest, 23, 48, Network::Options{1});
  const IsraeliItaiResult sync_result = israeli_itai(net);
  for (const unsigned threads : kThreadCounts) {
    Network pnet(g, Model::kCongest, 23, 48, Network::Options{threads});
    const IsraeliItaiResult engine = israeli_itai(pnet);
    EXPECT_TRUE(engine.matching == sync_result.matching)
        << "threads=" << threads;
    const AsyncRunResult async_res = run_async(g, 23, threads);
    EXPECT_TRUE(async_res.matching == sync_result.matching)
        << "threads=" << threads;
  }
}

TEST(AsyncParallel, ParallelExtractMatchesSequentialScan) {
  // Build + run at several thread counts; the parallel chunk-ordered
  // extraction must reproduce the sequential matching exactly, and the
  // resilient extraction must tally the same degradation report.
  FaultPlan plan;
  plan.seed = 3;
  plan.crash_prob = 0.1;
  for (const std::uint64_t seed : {2u, 8u}) {
    const Graph g = gen::gnp(400, 0.02, seed);
    Matching ref;
    congest::DegradationReport ref_rep;
    for (const unsigned threads : kThreadCounts) {
      Network::Options options;
      options.num_threads = threads;
      options.fault = plan;
      Network net(g, Model::kCongest, seed, 48, options);
      try {
        net.run(israeli_itai_factory(), 256);
      } catch (const ContractViolation&) {
      } catch (const congest::MessageTooLarge&) {
      }
      congest::DegradationReport rep;
      const Matching m = net.extract_matching_resilient(&rep);
      if (threads == 1) {
        ref = m;
        ref_rep = rep;
      } else {
        EXPECT_TRUE(ref == m) << "threads=" << threads << " seed=" << seed;
        EXPECT_EQ(ref_rep.crashed_nodes, rep.crashed_nodes);
        EXPECT_EQ(ref_rep.dead_registers_healed, rep.dead_registers_healed);
        EXPECT_EQ(ref_rep.torn_registers_healed, rep.torn_registers_healed);
      }
    }
  }
}

TEST(AsyncParallel, StrictExtractAfterHealIdenticalAcrossThreadCounts) {
  // Heal + strict extraction exercise the parallel chunk-ordered scan on
  // a register state shaped by crashes; every thread count must agree
  // with the sequential result and with the resilient scan.
  FaultPlan plan;
  plan.seed = 5;
  plan.crash_prob = 0.15;
  plan.restart_prob = 0.3;
  const Graph g = gen::gnp(300, 0.03, 19);
  Matching ref;
  for (const unsigned threads : kThreadCounts) {
    Network::Options options;
    options.num_threads = threads;
    options.fault = plan;
    Network net(g, Model::kCongest, 19, 48, options);
    try {
      net.run(israeli_itai_factory(), 256);
    } catch (const ContractViolation&) {
    } catch (const congest::MessageTooLarge&) {
    }
    const Matching via_resilient = net.extract_matching_resilient();
    net.heal_registers();
    const Matching via_heal = net.extract_matching();
    EXPECT_TRUE(via_resilient == via_heal) << "threads=" << threads;
    EXPECT_TRUE(via_heal.is_valid(g)) << "threads=" << threads;
    if (threads == 1) {
      ref = via_heal;
    } else {
      EXPECT_TRUE(ref == via_heal) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dmatch
