// Determinism and correctness of the sharded round engine: any
// Options::num_threads must produce bit-identical RunStats and matchings,
// exceptions must propagate out of worker threads, and the quiescence /
// message-histogram bookkeeping must match the sequential semantics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "congest/network.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/israeli_itai.hpp"
#include "graph/generators.hpp"
#include "mis/luby.hpp"
#include "support/wire.hpp"

namespace dmatch {
namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::MessageTooLarge;
using congest::Model;
using congest::Network;
using congest::Process;
using congest::ProcessFactory;
using congest::RunStats;

const unsigned kThreadCounts[] = {1, 2, 8};

void expect_same_stats(const RunStats& a, const RunStats& b,
                       unsigned threads) {
  EXPECT_EQ(a.rounds, b.rounds) << "threads=" << threads;
  EXPECT_EQ(a.messages, b.messages) << "threads=" << threads;
  EXPECT_EQ(a.total_bits, b.total_bits) << "threads=" << threads;
  EXPECT_EQ(a.max_message_bits, b.max_message_bits) << "threads=" << threads;
  EXPECT_EQ(a.completed, b.completed) << "threads=" << threads;
  EXPECT_EQ(a.round_messages, b.round_messages) << "threads=" << threads;
}

/// Two-round weighted protocol: free nodes propose to their heaviest
/// still-free neighbor (random tie-break), mutual proposals match. Exists
/// to exercise edge weights and per-node randomness under the engine; it
/// is not one of the paper's algorithms.
class HeaviestProposer final : public Process {
 public:
  explicit HeaviestProposer(int degree)
      : alive_(static_cast<std::size_t>(degree), true) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    const bool propose_round = ctx.round() % 2 == 0;
    for (const Envelope& env : inbox) {
      auto r = env.msg.reader();
      const auto kind = r.read(1);
      if (kind == 0) {  // MATCHED announcement
        alive_[static_cast<std::size_t>(env.port)] = false;
      } else if (!propose_round && env.port == proposed_ &&
                 ctx.mate_port() < 0) {
        ctx.set_mate_port(env.port);
        matched_ = true;
      }
    }
    if (matched_ && !announced_) {
      BitWriter w;
      w.write(0, 1);
      const Message msg = Message::from_writer(std::move(w));
      for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
      announced_ = true;
      halted_ = true;
      return;
    }
    if (!propose_round || matched_) return;
    proposed_ = -1;
    Weight best = -1;
    int candidates = 0;
    for (int p = 0; p < ctx.degree(); ++p) {
      if (!alive_[static_cast<std::size_t>(p)]) continue;
      ++candidates;
      const Weight w = ctx.edge_weight(p);
      if (w > best || (w == best && ctx.rng().coin())) {
        best = w;
        proposed_ = p;
      }
    }
    if (proposed_ < 0) {
      halted_ = true;  // no free neighbors left
      return;
    }
    BitWriter w;
    w.write(1, 1);
    ctx.send(proposed_, Message::from_writer(std::move(w)));
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  std::vector<bool> alive_;
  int proposed_ = -1;
  bool matched_ = false;
  bool announced_ = false;
  bool halted_ = false;
};

ProcessFactory heaviest_proposer_factory() {
  return [](NodeId id, const Graph& g) {
    return std::make_unique<HeaviestProposer>(g.degree(id));
  };
}

class Chatter final : public Process {
 public:
  Chatter(int rounds, unsigned bits) : rounds_(rounds), bits_(bits) {}

  void on_round(Context& ctx, std::span<const Envelope>) override {
    if (ctx.round() < rounds_) {
      BitWriter w;
      for (unsigned b = 0; b < bits_; ++b) w.write_bool(true);
      const Message msg = Message::from_writer(std::move(w));
      for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
    }
    halted_ = ctx.round() >= rounds_;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  int rounds_;
  unsigned bits_;
  bool halted_ = false;
};

TEST(NetworkParallel, IsraeliItaiIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = gen::gnp(300, 0.03, seed);
    Network ref(g, Model::kCongest, seed, 48, Network::Options{1});
    const IsraeliItaiResult expected = israeli_itai(ref);
    EXPECT_TRUE(expected.matching.is_maximal(g));
    for (const unsigned threads : kThreadCounts) {
      Network net(g, Model::kCongest, seed, 48, Network::Options{threads});
      const IsraeliItaiResult got = israeli_itai(net);
      expect_same_stats(expected.stats, got.stats, threads);
      EXPECT_TRUE(expected.matching == got.matching)
          << "threads=" << threads << " seed=" << seed;
    }
  }
}

TEST(NetworkParallel, BipartiteMcmIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {5u, 6u}) {
    const Graph g = gen::bipartite_gnp(48, 48, 0.12, seed);
    const auto side = g.bipartition();
    ASSERT_TRUE(side.has_value());
    BipartiteMcmOptions options;
    options.k = 3;
    Network ref(g, Model::kCongest, seed, 48, Network::Options{1});
    const BipartiteMcmResult expected = bipartite_mcm(ref, *side, options);
    for (const unsigned threads : kThreadCounts) {
      Network net(g, Model::kCongest, seed, 48, Network::Options{threads});
      const BipartiteMcmResult got = bipartite_mcm(net, *side, options);
      expect_same_stats(expected.stats, got.stats, threads);
      EXPECT_TRUE(expected.matching == got.matching)
          << "threads=" << threads << " seed=" << seed;
    }
  }
}

TEST(NetworkParallel, WeightedProtocolIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const Graph g =
        gen::with_uniform_weights(gen::gnp(200, 0.04, seed), 1.0, 9.0, seed);
    Network ref(g, Model::kCongest, seed, 48, Network::Options{1});
    const RunStats expected = ref.run(heaviest_proposer_factory(), 1 << 12);
    const Matching expected_m = ref.extract_matching();
    EXPECT_TRUE(expected.completed);
    for (const unsigned threads : kThreadCounts) {
      Network net(g, Model::kCongest, seed, 48, Network::Options{threads});
      const RunStats got = net.run(heaviest_proposer_factory(), 1 << 12);
      expect_same_stats(expected, got, threads);
      EXPECT_TRUE(expected_m == net.extract_matching())
          << "threads=" << threads << " seed=" << seed;
    }
  }
}

TEST(NetworkParallel, LubyMisIdenticalAcrossThreadCounts) {
  const Graph g = gen::gnp(250, 0.04, 21);
  std::vector<std::uint8_t> ref_flags(250, 2);
  Network ref(g, Model::kCongest, 21, 48, Network::Options{1});
  const RunStats expected = ref.run(luby_mis_factory(ref_flags), 1 << 12);
  for (const unsigned threads : kThreadCounts) {
    std::vector<std::uint8_t> flags(250, 2);
    Network net(g, Model::kCongest, 21, 48, Network::Options{threads});
    const RunStats got = net.run(luby_mis_factory(flags), 1 << 12);
    expect_same_stats(expected, got, threads);
    EXPECT_EQ(ref_flags, flags) << "threads=" << threads;
  }
}

TEST(NetworkParallel, MessageTooLargePropagatesFromWorker) {
  const Graph g = gen::gnp(64, 0.2, 3);
  Network net(g, Model::kCongest, 3, 1, Network::Options{8});
  EXPECT_THROW(net.run(
                   [](NodeId, const Graph&) {
                     return std::make_unique<Chatter>(2, 100000);
                   },
                   8),
               MessageTooLarge);
  // The engine must come back clean: no stale message or pending mark from
  // the aborted round may leak into the next run.
  const RunStats stats = net.run(
      [](NodeId, const Graph&) { return std::make_unique<Chatter>(2, 1); },
      100);
  EXPECT_TRUE(stats.completed);
  const std::uint64_t sent = stats.messages;
  EXPECT_GT(sent, 0u);
}

TEST(NetworkParallel, ContractViolationPropagatesFromWorker) {
  // Sending twice on one port in the same round violates the delivery
  // contract and must surface as a ContractViolation from any thread count.
  class DoubleSender final : public Process {
   public:
    void on_round(Context& ctx, std::span<const Envelope>) override {
      BitWriter w;
      w.write(1, 1);
      ctx.send(0, Message::from_writer(std::move(w)));
      BitWriter w2;
      w2.write(1, 1);
      ctx.send(0, Message::from_writer(std::move(w2)));
      halted_ = true;
    }
    [[nodiscard]] bool halted() const override { return halted_; }

   private:
    bool halted_ = false;
  };
  const Graph g = gen::cycle(16);
  for (const unsigned threads : {1u, 4u}) {
    Network net(g, Model::kCongest, 1, 48, Network::Options{threads});
    EXPECT_THROW(
        net.run([](NodeId, const Graph&)
                    -> std::unique_ptr<Process> {
          return std::make_unique<DoubleSender>();
        },
                4),
        ContractViolation);
  }
}

TEST(NetworkParallel, ImmediateQuiescenceCostsZeroRounds) {
  // Every node halts before round 0: the run must terminate without
  // burning a round (the legacy engine charged one).
  class BornHalted final : public Process {
   public:
    void on_round(Context&, std::span<const Envelope>) override {
      FAIL() << "halted process must never be stepped";
    }
    [[nodiscard]] bool halted() const override { return true; }
  };
  const Graph g = gen::cycle(12);
  for (const unsigned threads : kThreadCounts) {
    Network net(g, Model::kCongest, 1, 48, Network::Options{threads});
    const RunStats stats = net.run(
        [](NodeId, const Graph&) { return std::make_unique<BornHalted>(); },
        100);
    EXPECT_TRUE(stats.completed);
    EXPECT_EQ(stats.rounds, 0u);
    EXPECT_EQ(stats.messages, 0u);
    EXPECT_TRUE(stats.round_messages.empty());
  }
}

TEST(NetworkParallel, RoundMessageHistogram) {
  // Chatter(3, 7) on a 10-cycle: 20 messages in each of rounds 0..2, then
  // one silent wind-down round; the histogram is the per-round breakdown
  // of `messages`.
  const Graph g = gen::cycle(10);
  for (const unsigned threads : kThreadCounts) {
    Network net(g, Model::kCongest, 1, 48, Network::Options{threads});
    const RunStats stats = net.run(
        [](NodeId, const Graph&) { return std::make_unique<Chatter>(3, 7); },
        100);
    EXPECT_TRUE(stats.completed);
    ASSERT_EQ(stats.round_messages.size(), stats.rounds);
    const std::vector<std::uint64_t> expected = {20, 20, 20, 0};
    EXPECT_EQ(stats.round_messages, expected);
    std::uint64_t sum = 0;
    for (const std::uint64_t c : stats.round_messages) sum += c;
    EXPECT_EQ(sum, stats.messages);
  }
}

TEST(NetworkParallel, OneHopPerRoundAcrossShardBoundaries) {
  // A token forwarded around a cycle crosses every shard boundary; each
  // hop must take exactly one round regardless of the shard layout.
  class Forwarder final : public Process {
   public:
    explicit Forwarder(std::vector<int>& arrival) : arrival_(arrival) {}

    void on_round(Context& ctx, std::span<const Envelope> inbox) override {
      if (ctx.round() == 0 && ctx.id() == 0) {
        BitWriter w;
        w.write(1, 1);
        ctx.send(0, Message::from_writer(std::move(w)));
        arrival_[0] = 0;
        return;
      }
      for (const Envelope& env : inbox) {
        if (arrival_[static_cast<std::size_t>(ctx.id())] < 0) {
          arrival_[static_cast<std::size_t>(ctx.id())] = ctx.round();
          BitWriter w;
          w.write(1, 1);
          ctx.send(env.port == 0 ? 1 : 0, Message::from_writer(std::move(w)));
        }
        halted_ = true;
      }
      if (ctx.id() == 0 && ctx.round() > 0) halted_ = true;
    }

    [[nodiscard]] bool halted() const override { return halted_; }

   private:
    std::vector<int>& arrival_;
    bool halted_ = false;
  };
  const NodeId n = 23;  // prime, so shards never align with the ring
  for (const unsigned threads : kThreadCounts) {
    const Graph g = gen::cycle(n);
    Network net(g, Model::kCongest, 3, 48, Network::Options{threads});
    std::vector<int> arrival(static_cast<std::size_t>(n), -1);
    net.run(
        [&arrival](NodeId, const Graph&) {
          return std::make_unique<Forwarder>(arrival);
        },
        100);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(arrival[static_cast<std::size_t>(v)], v)
          << "node " << v << " threads " << threads;
    }
  }
}

TEST(NetworkParallel, BackToBackRunsReuseTheNetwork) {
  // Drivers compose protocols on one Network; mailbox state must not leak
  // between runs and total_stats() must keep aggregating.
  const Graph g = gen::gnp(120, 0.05, 9);
  for (const unsigned threads : kThreadCounts) {
    Network net(g, Model::kCongest, 9, 48, Network::Options{threads});
    const RunStats first = net.run(
        [](NodeId, const Graph&) { return std::make_unique<Chatter>(2, 3); },
        100);
    const RunStats second = net.run(
        [](NodeId, const Graph&) { return std::make_unique<Chatter>(1, 3); },
        100);
    EXPECT_TRUE(first.completed);
    EXPECT_TRUE(second.completed);
    EXPECT_EQ(net.total_stats().messages, first.messages + second.messages);
    EXPECT_EQ(net.total_stats().rounds, first.rounds + second.rounds);
  }
}

}  // namespace
}  // namespace dmatch
