#include <gtest/gtest.h>

#include <tuple>

#include "core/api.hpp"
#include "graph/augmenting.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"

namespace dmatch {
namespace {

class LocalGenericParam
    : public ::testing::TestWithParam<std::tuple<int, double, double, int>> {};

TEST_P(LocalGenericParam, ApproximationBoundHolds) {
  const auto [n, p, eps, seed] = GetParam();
  const Graph g = gen::gnp(n, p, static_cast<std::uint64_t>(seed));
  LocalGenericOptions options;
  options.epsilon = eps;
  options.seed = static_cast<std::uint64_t>(seed) + 13;
  const LocalGenericResult result = local_generic_mcm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  const std::size_t opt = blossom_mcm(g).size();
  // With phase retries the postcondition "no augmenting path of length
  // <= 2k-1" holds, so Lemma 3.3 gives the bound deterministically.
  EXPECT_GE(static_cast<double>(result.matching.size()) + 1e-9,
            (1.0 - eps) * static_cast<double>(opt))
      << "n=" << n << " p=" << p << " eps=" << eps << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocalGenericParam,
    ::testing::Combine(::testing::Values(12, 24, 40),
                       ::testing::Values(0.1, 0.25),
                       ::testing::Values(0.51, 0.34),
                       ::testing::Values(1, 2)));

TEST(LocalGeneric, PhasePostconditionHolds) {
  const Graph g = gen::gnp(30, 0.15, 5);
  LocalGenericOptions options;
  options.epsilon = 0.34;  // k = 3: phases 1, 3, 5
  options.seed = 21;
  const LocalGenericResult result = local_generic_mcm(g, options);
  EXPECT_TRUE(enumerate_augmenting_paths(g, result.matching, 5, 1).empty());
}

TEST(LocalGeneric, WorksOnOddStructures) {
  for (const Graph& g : {gen::cycle(15), gen::complete(10),
                         gen::random_tree(25, 4)}) {
    LocalGenericOptions options;
    options.epsilon = 0.5;
    options.seed = 6;
    const LocalGenericResult result = local_generic_mcm(g, options);
    EXPECT_TRUE(result.matching.is_valid(g));
    const std::size_t opt = blossom_mcm(g).size();
    EXPECT_GE(2 * result.matching.size(), opt);
  }
}

TEST(LocalGeneric, MessageSizesShowLocalBlowup) {
  // The LOCAL generic algorithm's whole point of comparison: its messages
  // are far larger than the CONGEST cap (Lemma 3.4 vs Theorem 3.10).
  const Graph g = gen::gnp(32, 0.2, 7);
  LocalGenericOptions options;
  options.epsilon = 0.51;
  options.seed = 8;
  const LocalGenericResult result = local_generic_mcm(g, options);
  congest::Network reference(g, congest::Model::kCongest, 0);
  EXPECT_GT(result.stats.max_message_bits, reference.message_cap_bits());
}

TEST(LocalGeneric, BipartiteMatchesHopcroftKarpClosely) {
  const Graph g = gen::bipartite_gnp(15, 15, 0.25, 9);
  LocalGenericOptions options;
  options.epsilon = 0.26;  // k = 4
  options.seed = 10;
  const LocalGenericResult result = local_generic_mcm(g, options);
  const std::size_t opt = hopcroft_karp(g).size();
  EXPECT_GE(4 * result.matching.size() + 1, 3 * opt);
}

TEST(LocalGeneric, EmptyAndTiny) {
  const Graph empty = Graph::from_edges(3, {});
  EXPECT_EQ(local_generic_mcm(empty, {}).matching.size(), 0u);
  const Graph single = gen::path(2);
  LocalGenericOptions options;
  options.epsilon = 1.0;
  const LocalGenericResult result = local_generic_mcm(single, options);
  EXPECT_EQ(result.matching.size(), 1u);
}

TEST(LocalGeneric, DeterministicUnderSeed) {
  const Graph g = gen::gnp(20, 0.2, 11);
  LocalGenericOptions options;
  options.epsilon = 0.51;
  options.seed = 33;
  const LocalGenericResult a = local_generic_mcm(g, options);
  const LocalGenericResult b = local_generic_mcm(g, options);
  EXPECT_TRUE(a.matching == b.matching);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

}  // namespace
}  // namespace dmatch
