#include <gtest/gtest.h>

#include <tuple>

#include "core/b_matching.hpp"
#include "graph/generators.hpp"

namespace dmatch {
namespace {

std::vector<int> uniform_capacity(const Graph& g, int c) {
  return std::vector<int>(static_cast<std::size_t>(g.node_count()), c);
}

TEST(BMatching, CapacityOneIsOrdinaryMatching) {
  const Graph g = gen::cycle(8);
  EXPECT_EQ(exact_max_b_matching_size(g, uniform_capacity(g, 1)), 4u);
}

TEST(BMatching, CapacityTwoOnACycleTakesEverything) {
  const Graph g = gen::cycle(7);
  EXPECT_EQ(exact_max_b_matching_size(g, uniform_capacity(g, 2)), 7u);
}

TEST(BMatching, StarRespectsHubCapacity) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= 10; ++v) edges.push_back({0, v, 1.0});
  const Graph g = Graph::from_edges(11, std::move(edges));
  std::vector<int> capacity = uniform_capacity(g, 1);
  capacity[0] = 4;  // hub may serve four leaves
  EXPECT_EQ(exact_max_b_matching_size(g, capacity), 4u);

  GeneralMcmOptions options;
  options.k = 3;
  options.seed = 2;
  const BMatchingResult approx = approx_max_b_matching(g, capacity, options);
  EXPECT_TRUE(is_valid_b_matching(g, capacity, approx.selected));
  EXPECT_GE(approx.selected.size(), 3u);  // >= (1 - 1/3) * 4 rounded up
}

TEST(BMatching, ZeroCapacityNodesSelectNothing) {
  const Graph g = gen::path(4);
  std::vector<int> capacity = uniform_capacity(g, 1);
  capacity[1] = 0;  // node 1 cannot be used: only edge 2-3 remains
  EXPECT_EQ(exact_max_b_matching_size(g, capacity), 1u);
}

class BMatchingParam
    : public ::testing::TestWithParam<std::tuple<int, double, int, int>> {};

TEST_P(BMatchingParam, ApproxIsValidAndNearExact) {
  const auto [n, p, cap, seed] = GetParam();
  const Graph g = gen::gnp(n, p, static_cast<std::uint64_t>(seed));
  const auto capacity = uniform_capacity(g, cap);
  const std::size_t exact = exact_max_b_matching_size(g, capacity);

  GeneralMcmOptions options;
  options.k = 3;
  options.seed = static_cast<std::uint64_t>(seed) + 9;
  const BMatchingResult approx = approx_max_b_matching(g, capacity, options);
  EXPECT_TRUE(is_valid_b_matching(g, capacity, approx.selected));
  EXPECT_LE(approx.selected.size(), exact);
  // The (1 - 1/k) factor holds up to the gadget's additive slack; in
  // practice (adaptive matcher) results are near-exact. Assert a generous
  // floor to stay deterministic: the matcher leaves no augmenting path of
  // length <= 5 in the gadget, which empirically lands within ~85%.
  EXPECT_GE(4 * approx.selected.size() + 3, 3 * exact)
      << "n=" << n << " p=" << p << " cap=" << cap << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BMatchingParam,
    ::testing::Combine(::testing::Values(12, 24), ::testing::Values(0.15, 0.3),
                       ::testing::Values(1, 2, 3), ::testing::Values(1, 2)));

TEST(BMatching, ValidityCheckerCatchesViolations) {
  const Graph g = gen::path(4);  // edges 0:0-1, 1:1-2, 2:2-3
  const auto capacity = uniform_capacity(g, 1);
  EXPECT_TRUE(is_valid_b_matching(g, capacity, {0, 2}));
  EXPECT_FALSE(is_valid_b_matching(g, capacity, {0, 1}));   // node 1 twice
  EXPECT_FALSE(is_valid_b_matching(g, capacity, {0, 0}));   // duplicate edge
  EXPECT_FALSE(is_valid_b_matching(g, capacity, {5}));      // out of range
}

TEST(BMatching, BipartiteCoverageShape) {
  // Mobiles (capacity 1) x stations (capacity 3): the cellular-coverage
  // shape of Patt-Shamir, Rawitz & Scalosub.
  const NodeId mobiles = 18;
  const NodeId stations = 4;
  const Graph g = gen::bipartite_gnp(mobiles, stations, 0.5, 5);
  std::vector<int> capacity(static_cast<std::size_t>(g.node_count()), 1);
  for (NodeId s = mobiles; s < mobiles + stations; ++s) {
    capacity[static_cast<std::size_t>(s)] = 3;
  }
  const std::size_t exact = exact_max_b_matching_size(g, capacity);
  EXPECT_LE(exact, static_cast<std::size_t>(stations) * 3);

  GeneralMcmOptions options;
  options.k = 4;
  options.seed = 6;
  const BMatchingResult approx = approx_max_b_matching(g, capacity, options);
  EXPECT_TRUE(is_valid_b_matching(g, capacity, approx.selected));
  EXPECT_GE(4 * approx.selected.size() + 3, 3 * exact);
}

}  // namespace
}  // namespace dmatch
