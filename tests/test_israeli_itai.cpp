#include <gtest/gtest.h>

#include <tuple>

#include "core/api.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"

namespace dmatch {
namespace {

class IsraeliItaiParam
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(IsraeliItaiParam, ProducesMaximalMatching) {
  const auto [n, p, seed] = GetParam();
  const Graph g = gen::gnp(n, p, static_cast<std::uint64_t>(seed));
  const IsraeliItaiResult result =
      maximal_matching(g, static_cast<std::uint64_t>(seed) + 17);
  EXPECT_TRUE(result.stats.completed);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_TRUE(result.matching.is_maximal(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IsraeliItaiParam,
    ::testing::Combine(::testing::Values(10, 60, 250),
                       ::testing::Values(0.02, 0.1, 0.5),
                       ::testing::Values(1, 2, 3)));

TEST(IsraeliItai, HalfApproximationHolds) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = gen::gnp(80, 0.08, seed);
    const IsraeliItaiResult result = maximal_matching(g, seed);
    const std::size_t opt = blossom_mcm(g).size();
    EXPECT_GE(2 * result.matching.size(), opt) << "seed " << seed;
  }
}

TEST(IsraeliItai, StructuredTopologies) {
  for (const Graph& g :
       {gen::cycle(50), gen::grid(8, 8), gen::complete(30),
        gen::random_tree(70, 2), gen::barabasi_albert(100, 2, 3)}) {
    const IsraeliItaiResult result = maximal_matching(g, 5);
    EXPECT_TRUE(result.matching.is_valid(g));
    EXPECT_TRUE(result.matching.is_maximal(g));
  }
}

TEST(IsraeliItai, EmptyAndTinyGraphs) {
  const Graph empty = Graph::from_edges(4, {});
  EXPECT_EQ(maximal_matching(empty, 1).matching.size(), 0u);
  const Graph single = gen::path(2);
  EXPECT_EQ(maximal_matching(single, 1).matching.size(), 1u);
}

TEST(IsraeliItai, RoundsLogarithmicInPractice) {
  const Graph g = gen::gnp(500, 0.02, 11);
  const IsraeliItaiResult result = maximal_matching(g, 11);
  EXPECT_TRUE(result.stats.completed);
  // ~9 = log2(500) iterations of 3 rounds; allow a generous constant.
  EXPECT_LT(result.stats.rounds, 30 * 9u);
}

TEST(IsraeliItai, RespectsCongestCap) {
  const Graph g = gen::gnp(200, 0.05, 12);
  congest::Network net(g, congest::Model::kCongest, 12, 8);
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_LE(result.stats.max_message_bits, net.message_cap_bits());
  EXPECT_LT(result.stats.max_message_bits, 4u);  // 2-bit kind only
}

TEST(IsraeliItai, EligibleEdgesRestrictTheMatching) {
  const Graph g = gen::complete(10);
  congest::Network net(g, congest::Model::kCongest, 3);
  IsraeliItaiOptions options;
  options.eligible_edges.assign(static_cast<std::size_t>(g.edge_count()),
                                false);
  // Allow only edges incident to node 0.
  for (EdgeId e : g.incident_edges(0)) {
    options.eligible_edges[static_cast<std::size_t>(e)] = true;
  }
  const IsraeliItaiResult result = israeli_itai(net, options);
  EXPECT_LE(result.matching.size(), 1u);
  if (result.matching.size() == 1) {
    EXPECT_TRUE(result.matching.is_matched(0));
  }
}

TEST(IsraeliItai, PreMatchedNodesAreRespected) {
  const Graph g = gen::path(6);  // 0-1-2-3-4-5
  congest::Network net(g, congest::Model::kCongest, 4);
  Matching pre(6);
  pre.add(g, 2);  // 2-3 pre-matched
  net.set_matching(pre);
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(result.matching.contains(g, 2));
  EXPECT_TRUE(result.matching.is_maximal(g));
  // 0-1 and 4-5 must both be matched (forced by maximality).
  EXPECT_EQ(result.matching.size(), 3u);
}

TEST(IsraeliItai, SequentialClassRunsAccumulate) {
  // Emulates what the class-greedy black box does: restrict to one edge
  // class, run, then restrict to the next.
  const Graph g = gen::cycle(12);
  congest::Network net(g, congest::Model::kCongest, 6);
  IsraeliItaiOptions first;
  first.eligible_edges.assign(static_cast<std::size_t>(g.edge_count()), false);
  first.eligible_edges[0] = true;
  israeli_itai(net, first);
  IsraeliItaiOptions second;
  second.eligible_edges.assign(static_cast<std::size_t>(g.edge_count()),
                               false);
  for (EdgeId e = 1; e < g.edge_count(); ++e) {
    second.eligible_edges[static_cast<std::size_t>(e)] = true;
  }
  const IsraeliItaiResult result = israeli_itai(net, second);
  EXPECT_TRUE(result.matching.contains(g, 0));  // survived the second run
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_TRUE(result.matching.is_maximal(g));
}

TEST(IsraeliItai, DeterministicUnderSeed) {
  const Graph g = gen::gnp(60, 0.1, 13);
  const IsraeliItaiResult a = maximal_matching(g, 42);
  const IsraeliItaiResult b = maximal_matching(g, 42);
  EXPECT_TRUE(a.matching == b.matching);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

}  // namespace
}  // namespace dmatch
