#include <gtest/gtest.h>

#include <tuple>

#include "core/api.hpp"
#include "graph/exact_small.hpp"
#include "graph/generators.hpp"
#include "graph/hungarian.hpp"
#include "graph/seq_matching.hpp"

namespace dmatch {
namespace {

// ------------------------------------------------------------- wrap & gain

TEST(WrapGain, WrapShapes) {
  // Path 0-1-2-3 with weights and 1-2 matched.
  const Graph g =
      Graph::from_edges(4, {{0, 1, 5.0}, {1, 2, 2.0}, {2, 3, 4.0}});
  Matching m(4);
  m.add(g, 1);
  // wrap(0-1): both endpoints' matched edges... node 0 free, node 1 matched.
  const auto w01 = wrap(g, m, 0);
  EXPECT_EQ(w01, (std::vector<EdgeId>{0, 1}));
  const auto w23 = wrap(g, m, 2);
  EXPECT_EQ(w23, (std::vector<EdgeId>{1, 2}));
}

TEST(WrapGain, WrapOfIsolatedEdgeIsItself) {
  const Graph g = Graph::from_edges(2, {{0, 1, 3.0}});
  const Matching m(2);
  EXPECT_EQ(wrap(g, m, 0), (std::vector<EdgeId>{0}));
}

TEST(WrapGain, WrapRejectsMatchedEdge) {
  const Graph g = Graph::from_edges(2, {{0, 1, 3.0}});
  Matching m(2);
  m.add(g, 0);
  EXPECT_THROW(wrap(g, m, 0), ContractViolation);
}

TEST(WrapGain, GainValues) {
  const Graph g =
      Graph::from_edges(4, {{0, 1, 5.0}, {1, 2, 2.0}, {2, 3, 4.0}});
  Matching m(4);
  m.add(g, 1);
  const auto gains = gain_weights(g, m);
  EXPECT_DOUBLE_EQ(gains[0], 5.0 - 2.0);
  EXPECT_DOUBLE_EQ(gains[1], 0.0);  // matched edge
  EXPECT_DOUBLE_EQ(gains[2], 4.0 - 2.0);
}

TEST(WrapGain, ZeroGainSeriesExample) {
  // The paper's closing note: three unit-weight edges in series with the
  // middle edge matched has all gains 0 -- Algorithm 5 cannot improve it.
  const Graph g =
      Graph::from_edges(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  Matching m(4);
  m.add(g, 1);
  const auto gains = gain_weights(g, m);
  EXPECT_DOUBLE_EQ(gains[0], 0.0);
  EXPECT_DOUBLE_EQ(gains[2], 0.0);
}

TEST(WrapGain, Figure3StyleExample) {
  // A figure-3-like instance: M' edges whose wraps overlap at an M edge.
  //   a - b matched (weight 3), plus M' candidates (x,a) w=6 and (b,y) w=8.
  const Graph g = Graph::from_edges(
      4, {{0, 1, 3.0},    // a-b in M
          {2, 0, 6.0},    // x-a
          {1, 3, 8.0}});  // b-y
  Matching m(4);
  m.add(g, 0);
  const auto gains = gain_weights(g, m);
  EXPECT_DOUBLE_EQ(gains[1], 3.0);  // 6 - 3
  EXPECT_DOUBLE_EQ(gains[2], 5.0);  // 8 - 3
  // Applying both wraps: M'' = {x-a, b-y}, weight 14 >= 3 + 3 + 5 = 11.
  const Matching m2 = apply_wraps(g, m, std::vector<EdgeId>{1, 2});
  EXPECT_TRUE(m2.is_valid(g));
  EXPECT_DOUBLE_EQ(m2.weight(g), 14.0);
  EXPECT_GE(m2.weight(g), m.weight(g) + gains[1] + gains[2]);
}

class Lemma41Property
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(Lemma41Property, WrapApplicationIsMatchingAndGainsAdd) {
  const auto [n, p, seed] = GetParam();
  const Graph g = gen::with_uniform_weights(
      gen::gnp(n, p, static_cast<std::uint64_t>(seed)), 1.0, 10.0,
      static_cast<std::uint64_t>(seed) + 9);
  // M: a greedy matching; M': a matching among positive-gain edges.
  const Matching m = greedy_mwm(g);
  const auto gains = gain_weights(g, m);
  Matching m_prime(g.node_count());
  std::vector<EdgeId> m_prime_edges;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (gains[static_cast<std::size_t>(e)] <= 0) continue;
    const Edge& ed = g.edge(e);
    if (m_prime.is_free(ed.u) && m_prime.is_free(ed.v)) {
      m_prime.add(g, e);
      m_prime_edges.push_back(e);
    }
  }
  const Matching m2 = apply_wraps(g, m, m_prime_edges);
  EXPECT_TRUE(m2.is_valid(g));
  double gain_sum = 0;
  for (EdgeId e : m_prime_edges) {
    gain_sum += gains[static_cast<std::size_t>(e)];
  }
  EXPECT_GE(m2.weight(g) + 1e-9, m.weight(g) + gain_sum);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma41Property,
    ::testing::Combine(::testing::Values(12, 30, 80),
                       ::testing::Values(0.1, 0.3),
                       ::testing::Values(1, 2, 3, 4)));

// --------------------------------------------------------- delta black box

class DeltaBoxParam
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(DeltaBoxParam, ClassGreedyMeetsItsGuarantee) {
  const auto [n, p, seed] = GetParam();
  const Graph g = gen::with_exponential_weights(
      gen::gnp(n, p, static_cast<std::uint64_t>(seed)), 100.0,
      static_cast<std::uint64_t>(seed) + 4);
  if (g.edge_count() == 0) return;
  DeltaMwmOptions options;
  options.seed = static_cast<std::uint64_t>(seed);
  const DeltaMwmResult result = class_greedy_mwm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  const double opt = exact_mwm_value(g);
  EXPECT_GE(result.matching.weight(g) + 1e-9,
            result.delta_guarantee * opt);
}

TEST_P(DeltaBoxParam, LocallyDominantMeetsHalf) {
  const auto [n, p, seed] = GetParam();
  const Graph g = gen::with_uniform_weights(
      gen::gnp(n, p, static_cast<std::uint64_t>(seed)), 1.0, 50.0,
      static_cast<std::uint64_t>(seed) + 5);
  if (g.edge_count() == 0) return;
  DeltaMwmOptions options;
  options.seed = static_cast<std::uint64_t>(seed);
  const DeltaMwmResult result = locally_dominant_mwm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  const double opt = exact_mwm_value(g);
  EXPECT_GE(result.matching.weight(g) + 1e-9, 0.5 * opt);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaBoxParam,
    ::testing::Combine(::testing::Values(8, 12, 18),
                       ::testing::Values(0.2, 0.5),
                       ::testing::Values(1, 2, 3, 4)));

TEST(DeltaBox, LocallyDominantIsGreedyOnDistinctWeights) {
  // With all-distinct weights the locally-dominant matching is exactly the
  // sequential greedy matching.
  const Graph g = gen::with_uniform_weights(gen::gnp(30, 0.2, 6), 1.0, 99.0,
                                            66);
  DeltaMwmOptions options;
  options.seed = 1;
  const DeltaMwmResult result = locally_dominant_mwm(g, options);
  EXPECT_TRUE(result.matching == greedy_mwm(g));
}

TEST(DeltaBox, ClassGreedyHandlesHugeWeightRange) {
  const Graph g = gen::with_exponential_weights(gen::gnp(40, 0.15, 7),
                                                1e6, 8);
  DeltaMwmOptions options;
  options.seed = 2;
  const DeltaMwmResult result = class_greedy_mwm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  // 2 * greedy weight certifies OPT from above.
  const double opt_upper = 2.0 * greedy_mwm(g).weight(g);
  EXPECT_GE(result.matching.weight(g) * (1.0 / result.delta_guarantee) + 1e-6,
            result.matching.weight(g));
  EXPECT_LE(result.matching.weight(g), opt_upper + 1e-6);
}

TEST(DeltaBox, RejectsNonPositiveWeights) {
  const Graph g = Graph::from_edges(2, {{0, 1, 0.0}});
  EXPECT_THROW(class_greedy_mwm(g), ContractViolation);
  EXPECT_THROW(locally_dominant_mwm(g), ContractViolation);
}

// ------------------------------------------------------------- Algorithm 5

TEST(HalfMwm, IterationBudgetFormula) {
  // (3 / (2 * 0.25)) * ln(2 / 0.1) = 6 * 3.0 = 17.97 -> 18.
  EXPECT_EQ(half_mwm_iteration_budget(0.25, 0.1), 18);
  EXPECT_EQ(half_mwm_iteration_budget(0.5, 0.1), 9);
  EXPECT_GT(half_mwm_iteration_budget(0.25, 0.01),
            half_mwm_iteration_budget(0.25, 0.1));
}

class HalfMwmSmall
    : public ::testing::TestWithParam<std::tuple<int, double, int, int>> {};

TEST_P(HalfMwmSmall, MeetsHalfMinusEpsOnGeneralGraphs) {
  const auto [n, p, seed, box] = GetParam();
  const Graph g = gen::with_uniform_weights(
      gen::gnp(n, p, static_cast<std::uint64_t>(seed)), 1.0, 20.0,
      static_cast<std::uint64_t>(seed) + 31);
  if (g.edge_count() == 0) return;
  HalfMwmOptions options;
  options.epsilon = 0.05;
  options.black_box = box == 0 ? HalfMwmOptions::BlackBox::kClassGreedy
                               : HalfMwmOptions::BlackBox::kLocallyDominant;
  options.seed = static_cast<std::uint64_t>(seed);
  const HalfMwmResult result = half_mwm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  const double opt = exact_mwm_value(g);
  EXPECT_GE(result.matching.weight(g) + 1e-9, (0.5 - 0.05) * opt)
      << "n=" << n << " p=" << p << " seed=" << seed << " box=" << box;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HalfMwmSmall,
    ::testing::Combine(::testing::Values(8, 12, 16),
                       ::testing::Values(0.25, 0.5),
                       ::testing::Values(1, 2, 3), ::testing::Values(0, 1)));

TEST(HalfMwm, BipartiteAgainstHungarian) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = gen::with_uniform_weights(
        gen::bipartite_gnp(20, 20, 0.2, seed), 1.0, 30.0, seed + 41);
    if (g.edge_count() == 0) continue;
    HalfMwmOptions options;
    options.epsilon = 0.05;
    options.seed = seed;
    const HalfMwmResult result = half_mwm(g, options);
    const double opt = hungarian_mwm(g).weight(g);
    EXPECT_GE(result.matching.weight(g) + 1e-9, (0.5 - 0.05) * opt)
        << "seed " << seed;
  }
}

TEST(HalfMwm, LargeGraphAgainstGreedyCertificate) {
  // On graphs too large for the exponential oracle: w(M*) <= 2 w(greedy).
  const Graph g = gen::with_exponential_weights(gen::gnp(150, 0.05, 9),
                                                1000.0, 10);
  HalfMwmOptions options;
  options.epsilon = 0.1;
  options.seed = 3;
  const HalfMwmResult result = half_mwm(g, options);
  const double opt_upper = 2.0 * greedy_mwm(g).weight(g);
  EXPECT_GE(result.matching.weight(g) + 1e-6, (0.5 - 0.1) * opt_upper / 2.0);
}

TEST(HalfMwm, SeriesPathStopsAtHalf) {
  // Three unit edges in series: once the middle edge is matched, no gain
  // remains; the algorithm keeps a 1/2-approximate answer (weight 1 vs 2)
  // or finds the optimum, and never errors.
  const Graph g =
      Graph::from_edges(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  HalfMwmOptions options;
  options.epsilon = 0.05;
  options.seed = 8;
  const HalfMwmResult result = half_mwm(g, options);
  EXPECT_GE(result.matching.weight(g), 1.0 - 1e-9);
}

TEST(HalfMwm, MonotoneWeightAcrossIterations) {
  const Graph g = gen::with_uniform_weights(gen::gnp(40, 0.15, 10), 1.0,
                                            10.0, 11);
  HalfMwmOptions a;
  a.epsilon = 0.4;
  a.seed = 4;
  HalfMwmOptions b = a;
  b.epsilon = 0.02;  // more iterations
  const double wa = half_mwm(g, a).matching.weight(g);
  const double wb = half_mwm(g, b).matching.weight(g);
  EXPECT_GE(wb + 1e-9, 0.9 * wa);  // more iterations should not hurt much
}

TEST(HalfMwm, DeterministicUnderSeed) {
  const Graph g = gen::with_uniform_weights(gen::gnp(25, 0.2, 12), 1.0, 9.0,
                                            13);
  HalfMwmOptions options;
  options.seed = 77;
  const HalfMwmResult a = half_mwm(g, options);
  const HalfMwmResult b = half_mwm(g, options);
  EXPECT_TRUE(a.matching == b.matching);
}

TEST(HalfMwm, EmptyGraph) {
  const Graph g = Graph::from_edges(4, {});
  const HalfMwmResult result = half_mwm(g, {});
  EXPECT_EQ(result.matching.size(), 0u);
}

}  // namespace
}  // namespace dmatch
