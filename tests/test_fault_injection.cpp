// Fault-injection subsystem: an inactive FaultPlan must leave the engine
// byte-identical, an active plan must be bit-identical across thread
// counts, every fault class must be observable in the RunStats counters,
// the resilient link layer must mask message faults, and every driver
// must degrade to a valid matching over the surviving nodes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "congest/async.hpp"
#include "congest/fault.hpp"
#include "congest/network.hpp"
#include "congest/resilient.hpp"
#include "core/wrap_gain.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/general_mcm.hpp"
#include "core/half_mwm.hpp"
#include "core/israeli_itai.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "support/wire.hpp"

namespace dmatch {
namespace {

using congest::CrashEvent;
using congest::DegradationReport;
using congest::FaultPlan;
using congest::kRoundNever;
using congest::Model;
using congest::Network;
using congest::RunStats;

const unsigned kThreadCounts[] = {1, 2, 8};

FaultPlan lossy_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.drop_prob = 0.05;
  plan.duplicate_prob = 0.05;
  plan.delay_prob = 0.1;
  plan.max_delay = 3;
  plan.reorder_prob = 0.2;
  plan.seed = seed;
  return plan;
}

FaultPlan harsh_plan(std::uint64_t seed) {
  FaultPlan plan = lossy_plan(seed);
  plan.crash_prob = 0.05;
  plan.restart_prob = 0.5;
  plan.crash_round_bound = 32;
  plan.restart_delay = 6;
  return plan;
}

void expect_same_stats(const RunStats& a, const RunStats& b,
                       unsigned threads) {
  EXPECT_EQ(a.rounds, b.rounds) << "threads=" << threads;
  EXPECT_EQ(a.messages, b.messages) << "threads=" << threads;
  EXPECT_EQ(a.total_bits, b.total_bits) << "threads=" << threads;
  EXPECT_EQ(a.max_message_bits, b.max_message_bits) << "threads=" << threads;
  EXPECT_EQ(a.completed, b.completed) << "threads=" << threads;
  EXPECT_EQ(a.round_messages, b.round_messages) << "threads=" << threads;
  EXPECT_EQ(a.dropped_messages, b.dropped_messages) << "threads=" << threads;
  EXPECT_EQ(a.duplicated_messages, b.duplicated_messages)
      << "threads=" << threads;
  EXPECT_EQ(a.delayed_messages, b.delayed_messages) << "threads=" << threads;
  EXPECT_EQ(a.reordered_inboxes, b.reordered_inboxes)
      << "threads=" << threads;
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes) << "threads=" << threads;
  EXPECT_EQ(a.restarted_nodes, b.restarted_nodes) << "threads=" << threads;
}

void expect_same_degradation(const DegradationReport& a,
                             const DegradationReport& b, unsigned threads) {
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << "threads=" << threads;
  EXPECT_EQ(a.contract_tripped, b.contract_tripped) << "threads=" << threads;
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes) << "threads=" << threads;
  EXPECT_EQ(a.torn_registers_healed, b.torn_registers_healed)
      << "threads=" << threads;
  EXPECT_EQ(a.dead_registers_healed, b.dead_registers_healed)
      << "threads=" << threads;
}

TEST(FaultPlanBasics, DefaultPlanIsInactive) {
  EXPECT_FALSE(FaultPlan{}.any());
  FaultPlan drops;
  drops.drop_prob = 0.01;
  EXPECT_TRUE(drops.any());
  FaultPlan scheduled;
  scheduled.crashes.push_back({0, 3, kRoundNever});
  EXPECT_TRUE(scheduled.any());
}

TEST(FaultPlanBasics, InactivePlanIsByteIdenticalToNoPlan) {
  // Acceptance gate: Options with a default FaultPlan must reproduce the
  // fault-free engine exactly — same stats, same matching, and every
  // fault counter pinned at zero.
  const Graph g = gen::gnp(200, 0.04, 7);
  Network plain(g, Model::kCongest, 7, 48);
  const IsraeliItaiResult expected = israeli_itai(plain);
  for (const unsigned threads : kThreadCounts) {
    Network::Options options;
    options.num_threads = threads;
    options.fault = FaultPlan{};
    Network net(g, Model::kCongest, 7, 48, options);
    EXPECT_FALSE(net.fault_active());
    const IsraeliItaiResult got = israeli_itai(net);
    expect_same_stats(expected.stats, got.stats, threads);
    EXPECT_TRUE(expected.matching == got.matching) << "threads=" << threads;
    EXPECT_EQ(got.stats.dropped_messages, 0u);
    EXPECT_EQ(got.stats.duplicated_messages, 0u);
    EXPECT_EQ(got.stats.delayed_messages, 0u);
    EXPECT_EQ(got.stats.reordered_inboxes, 0u);
    EXPECT_EQ(got.stats.crashed_nodes, 0u);
    EXPECT_EQ(got.stats.restarted_nodes, 0u);
    EXPECT_FALSE(got.degradation.degraded());
  }
}

TEST(FaultDeterminism, IsraeliItaiIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = gen::gnp(250, 0.03, seed);
    Network::Options ref_options;
    ref_options.num_threads = 1;
    ref_options.fault = harsh_plan(seed);
    Network ref(g, Model::kCongest, seed, 48, ref_options);
    const IsraeliItaiResult expected = israeli_itai(ref);
    ASSERT_TRUE(expected.matching.is_valid(g));
    for (const unsigned threads : kThreadCounts) {
      Network::Options options = ref_options;
      options.num_threads = threads;
      Network net(g, Model::kCongest, seed, 48, options);
      const IsraeliItaiResult got = israeli_itai(net);
      expect_same_stats(expected.stats, got.stats, threads);
      expect_same_degradation(expected.degradation, got.degradation, threads);
      EXPECT_TRUE(expected.matching == got.matching)
          << "threads=" << threads << " seed=" << seed;
    }
  }
}

TEST(FaultDeterminism, BipartiteMcmIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = 11;
  const Graph g = gen::bipartite_gnp(40, 40, 0.12, seed);
  const auto side = g.bipartition();
  ASSERT_TRUE(side.has_value());
  BipartiteMcmOptions mcm;
  mcm.k = 2;
  Network::Options ref_options;
  ref_options.num_threads = 1;
  ref_options.fault = lossy_plan(seed);
  ref_options.fault.crash_prob = 0.03;
  Network ref(g, Model::kCongest, seed, 48, ref_options);
  const BipartiteMcmResult expected = bipartite_mcm(ref, *side, mcm);
  ASSERT_TRUE(expected.matching.is_valid(g));
  for (const unsigned threads : kThreadCounts) {
    Network::Options options = ref_options;
    options.num_threads = threads;
    Network net(g, Model::kCongest, seed, 48, options);
    const BipartiteMcmResult got = bipartite_mcm(net, *side, mcm);
    expect_same_stats(expected.stats, got.stats, threads);
    expect_same_degradation(expected.degradation, got.degradation, threads);
    EXPECT_TRUE(expected.matching == got.matching) << "threads=" << threads;
  }
}

TEST(FaultCounters, MessageFaultsAreCounted) {
  // With every message-fault probability cranked up, every counter must
  // fire on a protocol that actually exchanges messages.
  const Graph g = gen::gnp(150, 0.05, 5);
  Network::Options options;
  options.fault = lossy_plan(5);
  options.fault.drop_prob = 0.3;
  options.fault.duplicate_prob = 0.3;
  options.fault.delay_prob = 0.3;
  options.fault.reorder_prob = 0.5;
  Network net(g, Model::kCongest, 5, 48, options);
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_GT(result.stats.dropped_messages, 0u);
  EXPECT_GT(result.stats.duplicated_messages, 0u);
  EXPECT_GT(result.stats.delayed_messages, 0u);
  EXPECT_GT(result.stats.reordered_inboxes, 0u);
  EXPECT_EQ(result.stats.crashed_nodes, 0u);
}

TEST(FaultCounters, TotalDropStillTerminates) {
  // drop_prob = 1: no message ever arrives. The driver must come back
  // with a valid (necessarily empty-ish) matching instead of hanging.
  const Graph g = gen::gnp(80, 0.1, 3);
  Network::Options options;
  options.fault.drop_prob = 1.0;
  options.fault.seed = 3;
  Network net(g, Model::kCongest, 3, 48, options);
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_TRUE(result.degradation.degraded());
  EXPECT_GT(result.stats.dropped_messages, 0u);
}

TEST(FaultCrashes, ScheduledCrashKillsTheNode) {
  // Star graph: crash the hub before it can act; nobody can match.
  const NodeId n = 10;
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({0, v, 1.0});
  const Graph g = Graph::from_edges(n, std::move(edges));
  Network::Options options;
  options.fault.crashes.push_back({0, 0, kRoundNever});
  Network net(g, Model::kCongest, 1, 48, options);
  EXPECT_TRUE(net.fault_active());
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(net.node_dead(0));
  EXPECT_EQ(result.matching.size(), 0u);
  const MatchingInvariantReport check =
      verify_matching_invariants(g, result.matching, &net);
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(FaultCrashes, CrashRestartIsCountedAndRecovers) {
  // A restart-tolerant protocol (stateless chatter with no inter-node
  // expectations): the crash and restart rounds must land in the
  // counters, and both nodes must be alive again at extraction time.
  class Chatter final : public congest::Process {
   public:
    void on_round(congest::Context& ctx,
                  std::span<const congest::Envelope>) override {
      if (ctx.round() < 12) {
        BitWriter w;
        w.write_bool(true);
        const congest::Message msg = congest::Message::from_writer(std::move(w));
        for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
      }
      halted_ = ctx.round() >= 12;
    }
    [[nodiscard]] bool halted() const override { return halted_; }

   private:
    bool halted_ = false;
  };
  const Graph g = gen::gnp(60, 0.1, 9);
  Network::Options options;
  options.fault.crashes.push_back({3, 1, 5});
  options.fault.crashes.push_back({7, 2, 8});
  options.fault.seed = 9;
  Network net(g, Model::kCongest, 9, 48, options);
  const RunStats stats = net.run(
      [](NodeId, const Graph&) -> std::unique_ptr<congest::Process> {
        return std::make_unique<Chatter>();
      },
      256);
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.crashed_nodes, 2u);
  EXPECT_EQ(stats.restarted_nodes, 2u);
  EXPECT_GT(stats.dropped_messages, 0u);  // deliveries into the dead window
  // Both nodes are back up at extraction time.
  EXPECT_FALSE(net.node_dead(3));
  EXPECT_FALSE(net.node_dead(7));
}

TEST(FaultCrashes, DriverSurvivesCrashRestart) {
  // The israeli-itai driver on the same schedule: a restarted node's
  // fresh protocol state can legitimately trip its neighbors' protocol
  // asserts; the driver must degrade to a valid matching either way.
  const Graph g = gen::gnp(60, 0.1, 9);
  Network::Options options;
  options.fault.crashes.push_back({3, 1, 5});
  options.fault.crashes.push_back({7, 2, 8});
  options.fault.seed = 9;
  Network net(g, Model::kCongest, 9, 48, options);
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(result.matching.is_valid(g));
  const MatchingInvariantReport report =
      verify_matching_invariants(g, result.matching, &net);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Resilient, NoFaultWrapIsTransparent) {
  // With no faults the resilient wrapper must not change the computed
  // matching: each virtual round sees exactly the fault-free inboxes.
  for (const std::uint64_t seed : {4u, 5u}) {
    const Graph g = gen::gnp(120, 0.05, seed);
    Network plain(g, Model::kCongest, seed, 48);
    plain.run(israeli_itai_factory(), 1 << 12);
    const Matching expected = plain.extract_matching();

    Network wrapped(g, Model::kCongest, seed, 48);
    const RunStats stats = wrapped.run(
        congest::resilient_factory(israeli_itai_factory()),
        congest::resilient_round_budget(1 << 12));
    EXPECT_TRUE(stats.completed);
    EXPECT_TRUE(expected == wrapped.extract_matching()) << "seed=" << seed;
  }
}

TEST(Resilient, MasksMessageFaults) {
  // Drops, duplicates, delays and reorders — but no crashes: the ARQ layer
  // must deliver every virtual-round message, so the protocol still
  // produces a maximal matching.
  const std::uint64_t seed = 17;
  const Graph g = gen::gnp(100, 0.05, seed);
  Network::Options options;
  options.fault = lossy_plan(seed);
  Network net(g, Model::kCongest, seed, 48, options);
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_TRUE(result.matching.is_maximal(g));
  EXPECT_FALSE(result.degradation.contract_tripped);
}

TEST(Resilient, RoundBudgetFormula) {
  // Selective repeat pipelines one virtual round per real round in the
  // steady state; 2x plus a constant covers retransmissions and tails.
  EXPECT_EQ(congest::resilient_round_budget(0), 256);
  EXPECT_EQ(congest::resilient_round_budget(10), 2 * 10 + 256);
  EXPECT_EQ(congest::resilient_round_budget(1 << 30), 1000000000);
}

TEST(Healing, ResilientExtractionMatchesHealedExtraction) {
  // Run the *unwrapped* protocol under faults (its internal asserts may
  // trip — that is part of the scenario), then check that the non-mutating
  // resilient extraction agrees with heal + strict extraction.
  const std::uint64_t seed = 23;
  const Graph g = gen::gnp(120, 0.05, seed);
  Network::Options options;
  options.fault = harsh_plan(seed);
  Network net(g, Model::kCongest, seed, 48, options);
  try {
    net.run(israeli_itai_factory(), 256);
  } catch (const ContractViolation&) {
  } catch (const congest::MessageTooLarge&) {
  }
  DegradationReport soft;
  const Matching via_resilient = net.extract_matching_resilient(&soft);
  EXPECT_TRUE(via_resilient.is_valid(g));
  DegradationReport healed;
  net.heal_registers(&healed);
  const Matching via_heal = net.extract_matching();
  EXPECT_TRUE(via_resilient == via_heal);
  EXPECT_EQ(soft.crashed_nodes, healed.crashed_nodes);
}

TEST(Verify, FlagsMatchedDeadNodes) {
  const Graph g = gen::cycle(8);
  Network::Options options;
  options.fault.crashes.push_back({2, 0, kRoundNever});
  Network net(g, Model::kCongest, 1, 48, options);
  net.run(israeli_itai_factory(), 64);  // advance lifetime past round 0

  Matching bad(g.node_count());
  bad.add(g, g.incident_edges(2).front());  // matches dead node 2
  const MatchingInvariantReport report =
      verify_matching_invariants(g, bad, &net);
  EXPECT_TRUE(report.valid);
  EXPECT_FALSE(report.respects_crashes);
  EXPECT_EQ(report.matched_dead_nodes, 1u);
  EXPECT_FALSE(report.ok());
}

TEST(Verify, RatioAgainstSurvivingOptimum) {
  const Graph g = gen::bipartite_gnp(30, 30, 0.15, 2);
  Network net(g, Model::kCongest, 2, 48);
  const IsraeliItaiResult result = israeli_itai(net);
  const MatchingInvariantReport report =
      verify_matching_invariants(g, result.matching, &net, true);
  EXPECT_TRUE(report.ok());
  EXPECT_GE(report.optimal_size, report.size);
  EXPECT_GE(report.ratio, 0.5);  // maximal matchings are 1/2-approximate
  EXPECT_LE(report.ratio, 1.0);
}

TEST(Resilient, MasksReorderHeavySchedules) {
  // Reordering at 0.9 with long delays and duplicates: selective repeat
  // reassembles every virtual-round inbox in order, so the protocol must
  // still behave exactly as if the network were reliable.
  const std::uint64_t seed = 21;
  const Graph g = gen::gnp(100, 0.05, seed);
  Network::Options options;
  options.fault.drop_prob = 0.1;
  options.fault.duplicate_prob = 0.3;
  options.fault.delay_prob = 0.4;
  options.fault.max_delay = 5;
  options.fault.reorder_prob = 0.9;
  options.fault.seed = seed;
  Network net(g, Model::kCongest, seed, 48, options);
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_TRUE(result.matching.is_maximal(g));
  EXPECT_FALSE(result.degradation.contract_tripped);
  EXPECT_GT(result.stats.reordered_inboxes, 0u);
}

TEST(Resilient, PipeliningBeatsStopAndWait) {
  // window = 1 degenerates to stop-and-wait; window = 8 pipelines up to a
  // full window per RTT. Under a delay-heavy plan the pipelined run must
  // finish in strictly fewer real rounds — and, because both deliver the
  // identical virtual-round inboxes, with the identical matching.
  const std::uint64_t seed = 13;
  const Graph g = gen::gnp(100, 0.05, seed);
  FaultPlan plan;
  plan.drop_prob = 0.1;
  plan.delay_prob = 0.4;
  plan.max_delay = 4;
  plan.seed = seed;
  const auto run_with = [&](int window) {
    Network::Options options;
    options.num_threads = 1;
    options.fault = plan;
    Network net(g, Model::kCongest, seed, 48, options);
    congest::ResilientOptions ropts;
    ropts.window = window;
    const RunStats stats =
        net.run(congest::resilient_factory(israeli_itai_factory(), ropts),
                congest::resilient_round_budget(1 << 12));
    EXPECT_TRUE(stats.completed) << "window=" << window;
    return std::pair{stats.rounds, net.extract_matching()};
  };
  const auto [rounds_sr, matching_sr] = run_with(8);
  const auto [rounds_sw, matching_sw] = run_with(1);
  EXPECT_LT(rounds_sr, rounds_sw);
  EXPECT_TRUE(matching_sr == matching_sw);
}

TEST(Resilient, LongProtocolSweepsManyWindows) {
  // 300 virtual rounds on every link: the sequence numbers cross the
  // 8-frame window boundary dozens of times (the 20-bit sequence space
  // itself never wraps — ResilientProcess asserts the protocol stays
  // under 2^20 virtual rounds). Every payload must arrive exactly once,
  // in order: each node counts its deliveries.
  constexpr int kRounds = 300;
  class CountingChatter final : public congest::Process {
   public:
    explicit CountingChatter(int* count) : count_(count) {}
    void on_round(congest::Context& ctx,
                  std::span<const congest::Envelope> inbox) override {
      *count_ += static_cast<int>(inbox.size());
      if (ctx.round() < kRounds) {
        BitWriter w;
        w.write_bool(true);
        const congest::Message msg =
            congest::Message::from_writer(std::move(w));
        for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
      }
      halted_ = ctx.round() >= kRounds;
    }
    [[nodiscard]] bool halted() const override { return halted_; }

   private:
    int* count_;
    bool halted_ = false;
  };
  const Graph g = gen::cycle(6);
  std::vector<int> counts(static_cast<std::size_t>(g.node_count()), 0);
  Network::Options options;
  options.fault = lossy_plan(29);
  Network net(g, Model::kCongest, 29, 48, options);
  const RunStats stats = net.run(
      congest::resilient_factory(
          [&counts](NodeId v,
                    const Graph&) -> std::unique_ptr<congest::Process> {
            return std::make_unique<CountingChatter>(
                &counts[static_cast<std::size_t>(v)]);
          }),
      congest::resilient_round_budget(8 * kRounds));
  EXPECT_TRUE(stats.completed);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(counts[static_cast<std::size_t>(v)], 2 * kRounds)
        << "node " << v;
  }
}

TEST(Resilient, WindowedDeterministicAcrossThreadCounts) {
  // The ARQ keeps the engine's bit-identical guarantee for any thread
  // count, including with a non-default window.
  const std::uint64_t seed = 43;
  const Graph g = gen::gnp(150, 0.04, seed);
  congest::ResilientOptions ropts;
  ropts.window = 3;
  Network::Options ref_options;
  ref_options.num_threads = 1;
  ref_options.fault = harsh_plan(seed);
  Network ref(g, Model::kCongest, seed, 48, ref_options);
  const RunStats expected = ref.run(
      congest::resilient_factory(israeli_itai_factory(), ropts),
      congest::resilient_round_budget(1 << 12));
  const Matching expected_m = ref.extract_matching_resilient();
  for (const unsigned threads : kThreadCounts) {
    Network::Options options = ref_options;
    options.num_threads = threads;
    Network net(g, Model::kCongest, seed, 48, options);
    const RunStats got = net.run(
        congest::resilient_factory(israeli_itai_factory(), ropts),
        congest::resilient_round_budget(1 << 12));
    expect_same_stats(expected, got, threads);
    EXPECT_TRUE(expected_m == net.extract_matching_resilient())
        << "threads=" << threads;
  }
}

TEST(AsyncFaults, MessageFaultCountersObservable) {
  // A fault plan handed to the alpha synchronizer must actually fire (no
  // silent no-op path) and be visible in AsyncStats.
  class Chatter final : public congest::Process {
   public:
    void on_round(congest::Context& ctx,
                  std::span<const congest::Envelope>) override {
      if (ctx.round() < 12) {
        BitWriter w;
        w.write_bool(true);
        const congest::Message msg =
            congest::Message::from_writer(std::move(w));
        for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
      }
      halted_ = ctx.round() >= 12;
    }
    [[nodiscard]] bool halted() const override { return halted_; }

   private:
    bool halted_ = false;
  };
  const Graph g = gen::gnp(80, 0.06, 41);
  congest::AsyncOptions aopt;
  aopt.fault = lossy_plan(41);
  const congest::AsyncRunResult result = congest::run_synchronized(
      g,
      [](NodeId, const Graph&) -> std::unique_ptr<congest::Process> {
        return std::make_unique<Chatter>();
      },
      41, 256, aopt);
  EXPECT_TRUE(result.stats.completed);
  EXPECT_GT(result.stats.dropped_messages, 0u);
  EXPECT_GT(result.stats.duplicated_messages, 0u);
  EXPECT_GT(result.stats.delayed_messages, 0u);
  EXPECT_GT(result.stats.reordered_inboxes, 0u);
}

TEST(AsyncFaults, AgreesWithEngineUnderDrops) {
  // The alpha synchronizer draws the identical per-message fault hashes
  // as the round engine, so a drops-only plan produces bit-identical
  // histories: same drop count, same healed matching.
  const Graph g = gen::gnp(120, 0.06, 7);
  FaultPlan plan;
  plan.drop_prob = 0.1;
  plan.seed = 11;
  Network::Options nopt;
  nopt.fault = plan;
  Network net(g, Model::kCongest, 7, 48, nopt);
  const RunStats sync_stats = net.run(israeli_itai_factory(), 4096);
  const Matching sync_m = net.extract_matching_resilient();

  congest::AsyncOptions aopt;
  aopt.fault = plan;
  const congest::AsyncRunResult async_result =
      congest::run_synchronized(g, israeli_itai_factory(), 7, 4096, aopt);
  EXPECT_EQ(sync_stats.dropped_messages, async_result.stats.dropped_messages);
  EXPECT_TRUE(sync_m == async_result.matching);
  const MatchingInvariantReport check = verify_matching_invariants(
      g, async_result.matching, async_result.dead_nodes);
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(AsyncFaults, AgreesWithEngineUnderCrashRestart) {
  // Crash / crash-restart schedules are drawn from the plan seed alone,
  // so both executors agree on who dies when — and on the healed result.
  const Graph g = gen::gnp(120, 0.06, 7);
  FaultPlan plan;
  plan.drop_prob = 0.05;
  plan.crashes.push_back({3, 4, 20});
  plan.crashes.push_back({10, 6, kRoundNever});
  plan.crashes.push_back({55, 2, 12});
  plan.seed = 9;
  Network::Options nopt;
  nopt.fault = plan;
  Network net(g, Model::kCongest, 7, 48, nopt);
  const RunStats sync_stats = net.run(israeli_itai_factory(), 4096);
  net.heal_registers(nullptr);
  const Matching sync_m = net.extract_matching();

  congest::AsyncOptions aopt;
  aopt.fault = plan;
  const congest::AsyncRunResult async_result =
      congest::run_synchronized(g, israeli_itai_factory(), 7, 4096, aopt);
  EXPECT_EQ(sync_stats.dropped_messages, async_result.stats.dropped_messages);
  EXPECT_EQ(sync_stats.restarted_nodes, async_result.stats.restarted_nodes);
  EXPECT_TRUE(sync_m == async_result.matching);
  ASSERT_EQ(async_result.dead_nodes.size(),
            static_cast<std::size_t>(g.node_count()));
  EXPECT_TRUE(async_result.dead_nodes[10]);  // never restarts
  EXPECT_FALSE(async_result.dead_nodes[3]);  // restarted at round 20
  const MatchingInvariantReport check = verify_matching_invariants(
      g, async_result.matching, async_result.dead_nodes);
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(Checkpoint, RetriesTransientContractTrip) {
  // A black box whose internal assert trips on the first attempt only:
  // run_stage_checkpointed must roll the registers back to the stage
  // boundary, replay, and come back with the checkpointed matching
  // intact — no abort reaches the caller.
  class Tripping final : public congest::Process {
   public:
    explicit Tripping(bool trip) : trip_(trip) {}
    void on_round(congest::Context&,
                  std::span<const congest::Envelope>) override {
      DMATCH_ASSERT(!trip_);  // the recoverable black-box contract
      halted_ = true;
    }
    [[nodiscard]] bool halted() const override { return halted_; }

   private:
    const bool trip_;
    bool halted_ = false;
  };
  const Graph g = gen::cycle(8);
  Network::Options options;
  options.num_threads = 1;
  options.fault.drop_prob = 0.05;
  options.fault.seed = 3;
  Network net(g, Model::kCongest, 3, 48, options);
  Matching initial(g.node_count());
  initial.add(g, 0);
  net.set_matching(initial);

  auto runs = std::make_shared<int>(0);
  congest::ProcessFactory factory =
      [runs](NodeId v, const Graph&) -> std::unique_ptr<congest::Process> {
    if (v == 0) ++*runs;
    return std::make_unique<Tripping>(*runs == 1 && v == 0);
  };
  congest::DegradationReport degradation;
  const RunStats stats = run_stage_checkpointed(net, factory, 16,
                                                /*max_attempts=*/3,
                                                degradation);
  EXPECT_EQ(*runs, 2);  // attempt 1 tripped, attempt 2 succeeded
  EXPECT_TRUE(degradation.contract_tripped);
  EXPECT_TRUE(stats.completed);
  EXPECT_TRUE(net.extract_matching() == initial);
}

TEST(Torture, HalfMwmCrashRestartSweep) {
  // Acceptance gate: half_mwm completes with a valid matching under
  // every crash-restart torture schedule with zero assert-aborts — both
  // the main network and the black box run the full fault plan, with
  // checkpoint/restart recovery inside every stage.
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    for (const bool dominant : {false, true}) {
      HalfMwmOptions options;
      options.seed = seed;
      options.max_iterations_override = 5;
      options.black_box = dominant
                              ? HalfMwmOptions::BlackBox::kLocallyDominant
                              : HalfMwmOptions::BlackBox::kClassGreedy;
      options.fault = harsh_plan(seed);
      options.fault.crash_prob = 0.1;
      options.fault.restart_prob = 0.7;
      const Graph g = gen::with_uniform_weights(
          gen::gnp(60, 0.08, seed), 1.0, 9.0, seed);
      const HalfMwmResult result = half_mwm(g, options);
      EXPECT_TRUE(result.matching.is_valid(g))
          << "seed=" << seed << " dominant=" << dominant;
      ASSERT_EQ(result.dead_nodes.size(),
                static_cast<std::size_t>(g.node_count()));
      const MatchingInvariantReport check = verify_matching_invariants(
          g, result.matching, result.dead_nodes, /*compute_ratio=*/true);
      EXPECT_TRUE(check.ok())
          << check.summary() << " seed=" << seed << " dominant=" << dominant;
    }
  }
}

TEST(Drivers, GeneralMcmDegradesGracefully) {
  GeneralMcmOptions options;
  options.k = 2;
  options.seed = 31;
  options.patience = 5;
  options.fault = harsh_plan(31);
  const Graph g = gen::gnp(60, 0.08, 31);
  const GeneralMcmResult result = general_mcm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_GT(result.iterations, 0);
}

TEST(Drivers, HalfMwmDegradesGracefully) {
  HalfMwmOptions options;
  options.seed = 37;
  options.max_iterations_override = 6;
  options.fault = harsh_plan(37);
  const Graph g =
      gen::with_uniform_weights(gen::gnp(60, 0.08, 37), 1.0, 9.0, 37);
  const HalfMwmResult result = half_mwm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_GT(result.iterations, 0);
}

}  // namespace
}  // namespace dmatch
