// Fault-injection subsystem: an inactive FaultPlan must leave the engine
// byte-identical, an active plan must be bit-identical across thread
// counts, every fault class must be observable in the RunStats counters,
// the resilient link layer must mask message faults, and every driver
// must degrade to a valid matching over the surviving nodes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "congest/fault.hpp"
#include "congest/network.hpp"
#include "congest/resilient.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/general_mcm.hpp"
#include "core/half_mwm.hpp"
#include "core/israeli_itai.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "support/wire.hpp"

namespace dmatch {
namespace {

using congest::CrashEvent;
using congest::DegradationReport;
using congest::FaultPlan;
using congest::kRoundNever;
using congest::Model;
using congest::Network;
using congest::RunStats;

const unsigned kThreadCounts[] = {1, 2, 8};

FaultPlan lossy_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.drop_prob = 0.05;
  plan.duplicate_prob = 0.05;
  plan.delay_prob = 0.1;
  plan.max_delay = 3;
  plan.reorder_prob = 0.2;
  plan.seed = seed;
  return plan;
}

FaultPlan harsh_plan(std::uint64_t seed) {
  FaultPlan plan = lossy_plan(seed);
  plan.crash_prob = 0.05;
  plan.restart_prob = 0.5;
  plan.crash_round_bound = 32;
  plan.restart_delay = 6;
  return plan;
}

void expect_same_stats(const RunStats& a, const RunStats& b,
                       unsigned threads) {
  EXPECT_EQ(a.rounds, b.rounds) << "threads=" << threads;
  EXPECT_EQ(a.messages, b.messages) << "threads=" << threads;
  EXPECT_EQ(a.total_bits, b.total_bits) << "threads=" << threads;
  EXPECT_EQ(a.max_message_bits, b.max_message_bits) << "threads=" << threads;
  EXPECT_EQ(a.completed, b.completed) << "threads=" << threads;
  EXPECT_EQ(a.round_messages, b.round_messages) << "threads=" << threads;
  EXPECT_EQ(a.dropped_messages, b.dropped_messages) << "threads=" << threads;
  EXPECT_EQ(a.duplicated_messages, b.duplicated_messages)
      << "threads=" << threads;
  EXPECT_EQ(a.delayed_messages, b.delayed_messages) << "threads=" << threads;
  EXPECT_EQ(a.reordered_inboxes, b.reordered_inboxes)
      << "threads=" << threads;
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes) << "threads=" << threads;
  EXPECT_EQ(a.restarted_nodes, b.restarted_nodes) << "threads=" << threads;
}

void expect_same_degradation(const DegradationReport& a,
                             const DegradationReport& b, unsigned threads) {
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << "threads=" << threads;
  EXPECT_EQ(a.contract_tripped, b.contract_tripped) << "threads=" << threads;
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes) << "threads=" << threads;
  EXPECT_EQ(a.torn_registers_healed, b.torn_registers_healed)
      << "threads=" << threads;
  EXPECT_EQ(a.dead_registers_healed, b.dead_registers_healed)
      << "threads=" << threads;
}

TEST(FaultPlanBasics, DefaultPlanIsInactive) {
  EXPECT_FALSE(FaultPlan{}.any());
  FaultPlan drops;
  drops.drop_prob = 0.01;
  EXPECT_TRUE(drops.any());
  FaultPlan scheduled;
  scheduled.crashes.push_back({0, 3, kRoundNever});
  EXPECT_TRUE(scheduled.any());
}

TEST(FaultPlanBasics, InactivePlanIsByteIdenticalToNoPlan) {
  // Acceptance gate: Options with a default FaultPlan must reproduce the
  // fault-free engine exactly — same stats, same matching, and every
  // fault counter pinned at zero.
  const Graph g = gen::gnp(200, 0.04, 7);
  Network plain(g, Model::kCongest, 7, 48);
  const IsraeliItaiResult expected = israeli_itai(plain);
  for (const unsigned threads : kThreadCounts) {
    Network::Options options;
    options.num_threads = threads;
    options.fault = FaultPlan{};
    Network net(g, Model::kCongest, 7, 48, options);
    EXPECT_FALSE(net.fault_active());
    const IsraeliItaiResult got = israeli_itai(net);
    expect_same_stats(expected.stats, got.stats, threads);
    EXPECT_TRUE(expected.matching == got.matching) << "threads=" << threads;
    EXPECT_EQ(got.stats.dropped_messages, 0u);
    EXPECT_EQ(got.stats.duplicated_messages, 0u);
    EXPECT_EQ(got.stats.delayed_messages, 0u);
    EXPECT_EQ(got.stats.reordered_inboxes, 0u);
    EXPECT_EQ(got.stats.crashed_nodes, 0u);
    EXPECT_EQ(got.stats.restarted_nodes, 0u);
    EXPECT_FALSE(got.degradation.degraded());
  }
}

TEST(FaultDeterminism, IsraeliItaiIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = gen::gnp(250, 0.03, seed);
    Network::Options ref_options;
    ref_options.num_threads = 1;
    ref_options.fault = harsh_plan(seed);
    Network ref(g, Model::kCongest, seed, 48, ref_options);
    const IsraeliItaiResult expected = israeli_itai(ref);
    ASSERT_TRUE(expected.matching.is_valid(g));
    for (const unsigned threads : kThreadCounts) {
      Network::Options options = ref_options;
      options.num_threads = threads;
      Network net(g, Model::kCongest, seed, 48, options);
      const IsraeliItaiResult got = israeli_itai(net);
      expect_same_stats(expected.stats, got.stats, threads);
      expect_same_degradation(expected.degradation, got.degradation, threads);
      EXPECT_TRUE(expected.matching == got.matching)
          << "threads=" << threads << " seed=" << seed;
    }
  }
}

TEST(FaultDeterminism, BipartiteMcmIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = 11;
  const Graph g = gen::bipartite_gnp(40, 40, 0.12, seed);
  const auto side = g.bipartition();
  ASSERT_TRUE(side.has_value());
  BipartiteMcmOptions mcm;
  mcm.k = 2;
  Network::Options ref_options;
  ref_options.num_threads = 1;
  ref_options.fault = lossy_plan(seed);
  ref_options.fault.crash_prob = 0.03;
  Network ref(g, Model::kCongest, seed, 48, ref_options);
  const BipartiteMcmResult expected = bipartite_mcm(ref, *side, mcm);
  ASSERT_TRUE(expected.matching.is_valid(g));
  for (const unsigned threads : kThreadCounts) {
    Network::Options options = ref_options;
    options.num_threads = threads;
    Network net(g, Model::kCongest, seed, 48, options);
    const BipartiteMcmResult got = bipartite_mcm(net, *side, mcm);
    expect_same_stats(expected.stats, got.stats, threads);
    expect_same_degradation(expected.degradation, got.degradation, threads);
    EXPECT_TRUE(expected.matching == got.matching) << "threads=" << threads;
  }
}

TEST(FaultCounters, MessageFaultsAreCounted) {
  // With every message-fault probability cranked up, every counter must
  // fire on a protocol that actually exchanges messages.
  const Graph g = gen::gnp(150, 0.05, 5);
  Network::Options options;
  options.fault = lossy_plan(5);
  options.fault.drop_prob = 0.3;
  options.fault.duplicate_prob = 0.3;
  options.fault.delay_prob = 0.3;
  options.fault.reorder_prob = 0.5;
  Network net(g, Model::kCongest, 5, 48, options);
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_GT(result.stats.dropped_messages, 0u);
  EXPECT_GT(result.stats.duplicated_messages, 0u);
  EXPECT_GT(result.stats.delayed_messages, 0u);
  EXPECT_GT(result.stats.reordered_inboxes, 0u);
  EXPECT_EQ(result.stats.crashed_nodes, 0u);
}

TEST(FaultCounters, TotalDropStillTerminates) {
  // drop_prob = 1: no message ever arrives. The driver must come back
  // with a valid (necessarily empty-ish) matching instead of hanging.
  const Graph g = gen::gnp(80, 0.1, 3);
  Network::Options options;
  options.fault.drop_prob = 1.0;
  options.fault.seed = 3;
  Network net(g, Model::kCongest, 3, 48, options);
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_TRUE(result.degradation.degraded());
  EXPECT_GT(result.stats.dropped_messages, 0u);
}

TEST(FaultCrashes, ScheduledCrashKillsTheNode) {
  // Star graph: crash the hub before it can act; nobody can match.
  const NodeId n = 10;
  std::vector<Edge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({0, v, 1.0});
  const Graph g = Graph::from_edges(n, std::move(edges));
  Network::Options options;
  options.fault.crashes.push_back({0, 0, kRoundNever});
  Network net(g, Model::kCongest, 1, 48, options);
  EXPECT_TRUE(net.fault_active());
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(net.node_dead(0));
  EXPECT_EQ(result.matching.size(), 0u);
  const MatchingInvariantReport check =
      verify_matching_invariants(g, result.matching, &net);
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(FaultCrashes, CrashRestartIsCountedAndRecovers) {
  // A restart-tolerant protocol (stateless chatter with no inter-node
  // expectations): the crash and restart rounds must land in the
  // counters, and both nodes must be alive again at extraction time.
  class Chatter final : public congest::Process {
   public:
    void on_round(congest::Context& ctx,
                  std::span<const congest::Envelope>) override {
      if (ctx.round() < 12) {
        BitWriter w;
        w.write_bool(true);
        const congest::Message msg = congest::Message::from_writer(std::move(w));
        for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
      }
      halted_ = ctx.round() >= 12;
    }
    [[nodiscard]] bool halted() const override { return halted_; }

   private:
    bool halted_ = false;
  };
  const Graph g = gen::gnp(60, 0.1, 9);
  Network::Options options;
  options.fault.crashes.push_back({3, 1, 5});
  options.fault.crashes.push_back({7, 2, 8});
  options.fault.seed = 9;
  Network net(g, Model::kCongest, 9, 48, options);
  const RunStats stats = net.run(
      [](NodeId, const Graph&) -> std::unique_ptr<congest::Process> {
        return std::make_unique<Chatter>();
      },
      256);
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.crashed_nodes, 2u);
  EXPECT_EQ(stats.restarted_nodes, 2u);
  EXPECT_GT(stats.dropped_messages, 0u);  // deliveries into the dead window
  // Both nodes are back up at extraction time.
  EXPECT_FALSE(net.node_dead(3));
  EXPECT_FALSE(net.node_dead(7));
}

TEST(FaultCrashes, DriverSurvivesCrashRestart) {
  // The israeli-itai driver on the same schedule: a restarted node's
  // fresh protocol state can legitimately trip its neighbors' protocol
  // asserts; the driver must degrade to a valid matching either way.
  const Graph g = gen::gnp(60, 0.1, 9);
  Network::Options options;
  options.fault.crashes.push_back({3, 1, 5});
  options.fault.crashes.push_back({7, 2, 8});
  options.fault.seed = 9;
  Network net(g, Model::kCongest, 9, 48, options);
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(result.matching.is_valid(g));
  const MatchingInvariantReport report =
      verify_matching_invariants(g, result.matching, &net);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Resilient, NoFaultWrapIsTransparent) {
  // With no faults the resilient wrapper must not change the computed
  // matching: each virtual round sees exactly the fault-free inboxes.
  for (const std::uint64_t seed : {4u, 5u}) {
    const Graph g = gen::gnp(120, 0.05, seed);
    Network plain(g, Model::kCongest, seed, 48);
    plain.run(israeli_itai_factory(), 1 << 12);
    const Matching expected = plain.extract_matching();

    Network wrapped(g, Model::kCongest, seed, 48);
    const RunStats stats = wrapped.run(
        congest::resilient_factory(israeli_itai_factory()),
        congest::resilient_round_budget(1 << 12));
    EXPECT_TRUE(stats.completed);
    EXPECT_TRUE(expected == wrapped.extract_matching()) << "seed=" << seed;
  }
}

TEST(Resilient, MasksMessageFaults) {
  // Drops, duplicates, delays and reorders — but no crashes: the ARQ layer
  // must deliver every virtual-round message, so the protocol still
  // produces a maximal matching.
  const std::uint64_t seed = 17;
  const Graph g = gen::gnp(100, 0.05, seed);
  Network::Options options;
  options.fault = lossy_plan(seed);
  Network net(g, Model::kCongest, seed, 48, options);
  const IsraeliItaiResult result = israeli_itai(net);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_TRUE(result.matching.is_maximal(g));
  EXPECT_FALSE(result.degradation.contract_tripped);
}

TEST(Resilient, RoundBudgetFormula) {
  EXPECT_EQ(congest::resilient_round_budget(0), 128);
  EXPECT_EQ(congest::resilient_round_budget(10), 8 * 10 + 128);
  EXPECT_EQ(congest::resilient_round_budget(1 << 30), 1000000000);
}

TEST(Healing, ResilientExtractionMatchesHealedExtraction) {
  // Run the *unwrapped* protocol under faults (its internal asserts may
  // trip — that is part of the scenario), then check that the non-mutating
  // resilient extraction agrees with heal + strict extraction.
  const std::uint64_t seed = 23;
  const Graph g = gen::gnp(120, 0.05, seed);
  Network::Options options;
  options.fault = harsh_plan(seed);
  Network net(g, Model::kCongest, seed, 48, options);
  try {
    net.run(israeli_itai_factory(), 256);
  } catch (const ContractViolation&) {
  } catch (const congest::MessageTooLarge&) {
  }
  DegradationReport soft;
  const Matching via_resilient = net.extract_matching_resilient(&soft);
  EXPECT_TRUE(via_resilient.is_valid(g));
  DegradationReport healed;
  net.heal_registers(&healed);
  const Matching via_heal = net.extract_matching();
  EXPECT_TRUE(via_resilient == via_heal);
  EXPECT_EQ(soft.crashed_nodes, healed.crashed_nodes);
}

TEST(Verify, FlagsMatchedDeadNodes) {
  const Graph g = gen::cycle(8);
  Network::Options options;
  options.fault.crashes.push_back({2, 0, kRoundNever});
  Network net(g, Model::kCongest, 1, 48, options);
  net.run(israeli_itai_factory(), 64);  // advance lifetime past round 0

  Matching bad(g.node_count());
  bad.add(g, g.incident_edges(2).front());  // matches dead node 2
  const MatchingInvariantReport report =
      verify_matching_invariants(g, bad, &net);
  EXPECT_TRUE(report.valid);
  EXPECT_FALSE(report.respects_crashes);
  EXPECT_EQ(report.matched_dead_nodes, 1u);
  EXPECT_FALSE(report.ok());
}

TEST(Verify, RatioAgainstSurvivingOptimum) {
  const Graph g = gen::bipartite_gnp(30, 30, 0.15, 2);
  Network net(g, Model::kCongest, 2, 48);
  const IsraeliItaiResult result = israeli_itai(net);
  const MatchingInvariantReport report =
      verify_matching_invariants(g, result.matching, &net, true);
  EXPECT_TRUE(report.ok());
  EXPECT_GE(report.optimal_size, report.size);
  EXPECT_GE(report.ratio, 0.5);  // maximal matchings are 1/2-approximate
  EXPECT_LE(report.ratio, 1.0);
}

TEST(Drivers, GeneralMcmDegradesGracefully) {
  GeneralMcmOptions options;
  options.k = 2;
  options.seed = 31;
  options.patience = 5;
  options.fault = harsh_plan(31);
  const Graph g = gen::gnp(60, 0.08, 31);
  const GeneralMcmResult result = general_mcm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_GT(result.iterations, 0);
}

TEST(Drivers, HalfMwmDegradesGracefully) {
  HalfMwmOptions options;
  options.seed = 37;
  options.max_iterations_override = 6;
  options.fault = harsh_plan(37);
  const Graph g =
      gen::with_uniform_weights(gen::gnp(60, 0.08, 37), 1.0, 9.0, 37);
  const HalfMwmResult result = half_mwm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_GT(result.iterations, 0);
}

}  // namespace
}  // namespace dmatch
