#include <gtest/gtest.h>

#include <tuple>

#include "core/api.hpp"
#include "graph/augmenting.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"

namespace dmatch {
namespace {

// ----------------------------------------------------- augment iterations

TEST(AugmentIteration, LengthOneActsLikeMatchingRound) {
  const Graph g = gen::complete_bipartite(6, 6);
  const auto side = *g.bipartition();
  congest::Network net(g, congest::Model::kCongest, 3);
  const auto stats = run_augment_iteration(net, side, 1);
  EXPECT_TRUE(stats.completed);
  const Matching m = net.extract_matching();
  EXPECT_TRUE(m.is_valid(g));
  EXPECT_GE(m.size(), 1u);  // the largest token always survives
}

TEST(AugmentIteration, PreservesMatchingValidity) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = gen::bipartite_gnp(15, 15, 0.2, seed);
    const auto side = *g.bipartition();
    congest::Network net(g, congest::Model::kCongest, seed + 5);
    for (int ell = 1; ell <= 5; ell += 2) {
      run_augment_iteration(net, side, ell);
      EXPECT_TRUE(net.extract_matching().is_valid(g)) << "seed " << seed;
    }
  }
}

TEST(AugmentIteration, NeverCreatesShorterAugmentingPaths) {
  // Augmenting along shortest paths cannot decrease the shortest
  // augmenting path length (Hopcroft-Karp).
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = gen::bipartite_gnp(12, 12, 0.25, seed);
    const auto side = *g.bipartition();
    congest::Network net(g, congest::Model::kCongest, seed);
    int shortest_before = 1;
    for (int guard = 0; guard < 40; ++guard) {
      const Matching m = net.extract_matching();
      const auto len = bipartite_shortest_augmenting_path_length(g, side, m);
      if (!len.has_value()) break;
      EXPECT_GE(*len, shortest_before) << "seed " << seed;
      shortest_before = *len;
      run_augment_iteration(net, side, *len);
    }
  }
}

TEST(AugmentIteration, RoundCountIsLinearInEll) {
  const Graph g = gen::bipartite_gnp(20, 20, 0.3, 3);
  const auto side = *g.bipartition();
  congest::Network net(g, congest::Model::kCongest, 3);
  for (int ell : {1, 3, 5, 7}) {
    const auto stats = run_augment_iteration(net, side, ell);
    EXPECT_LE(stats.rounds, static_cast<std::uint64_t>(3 * ell + 4));
  }
}

// ------------------------------------------------------------------ phase

class PhaseParam
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(PhaseParam, EliminatesAllShortAugmentingPaths) {
  const auto [nx, ell, p, seed] = GetParam();
  const Graph g = gen::bipartite_gnp(nx, nx, p, static_cast<std::uint64_t>(seed));
  const auto side = *g.bipartition();
  congest::Network net(g, congest::Model::kCongest,
                       static_cast<std::uint64_t>(seed) + 31);
  // Establish the precondition (no path shorter than ell) phase by phase.
  PhaseOptions options;
  for (int l = 1; l <= ell; l += 2) {
    run_phase(net, side, l, options);
    const Matching m = net.extract_matching();
    const auto len = bipartite_shortest_augmenting_path_length(g, side, m);
    EXPECT_TRUE(!len.has_value() || *len > l)
        << "phase " << l << " left a path of length " << *len;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PhaseParam,
    ::testing::Combine(::testing::Values(8, 16, 28), ::testing::Values(1, 3, 5),
                       ::testing::Values(0.1, 0.3),
                       ::testing::Values(1, 2, 3)));

TEST(Phase, FixedBudgetAlsoEliminatesShortPathsWhp) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = gen::bipartite_gnp(14, 14, 0.25, seed);
    const auto side = *g.bipartition();
    congest::Network net(g, congest::Model::kCongest, seed + 77);
    PhaseOptions options;
    options.termination = PhaseOptions::Termination::kFixedBudget;
    options.mis_budget_factor = 3.0;
    for (int l = 1; l <= 3; l += 2) {
      run_phase(net, side, l, options);
      const Matching m = net.extract_matching();
      const auto len = bipartite_shortest_augmenting_path_length(g, side, m);
      EXPECT_TRUE(!len.has_value() || *len > l) << "seed " << seed;
    }
  }
}

// ------------------------------------------------------------ full driver

class BipartiteMcmParam
    : public ::testing::TestWithParam<std::tuple<int, double, int, int>> {};

TEST_P(BipartiteMcmParam, ApproximationBoundHolds) {
  const auto [nx, p, k, seed] = GetParam();
  const Graph g =
      gen::bipartite_gnp(nx, nx, p, static_cast<std::uint64_t>(seed));
  BipartiteMcmOptions options;
  options.k = k;
  const BipartiteMcmResult result =
      approx_mcm_bipartite(g, static_cast<std::uint64_t>(seed) + 7, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  const std::size_t opt = hopcroft_karp(g).size();
  EXPECT_GE(static_cast<double>(result.matching.size()) + 1e-9,
            (1.0 - 1.0 / k) * static_cast<double>(opt))
      << "nx=" << nx << " p=" << p << " k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BipartiteMcmParam,
    ::testing::Combine(::testing::Values(10, 25, 60),
                       ::testing::Values(0.08, 0.2, 0.5),
                       ::testing::Values(2, 3, 5),
                       ::testing::Values(1, 2)));

TEST(BipartiteMcm, ExactOnCompleteBipartite) {
  const Graph g = gen::complete_bipartite(15, 15);
  BipartiteMcmOptions options;
  options.k = 5;
  const auto result = approx_mcm_bipartite(g, 3, options);
  EXPECT_GE(result.matching.size(), 12u);  // >= (1 - 1/5) * 15
}

TEST(BipartiteMcm, StructuredTopologies) {
  for (const Graph& g :
       {gen::grid(6, 8), gen::path(40), gen::cycle(34),
        gen::random_tree(50, 9)}) {
    BipartiteMcmOptions options;
    options.k = 4;
    const auto result = approx_mcm_bipartite(g, 11, options);
    EXPECT_TRUE(result.matching.is_valid(g));
    const std::size_t opt = hopcroft_karp(g).size();
    EXPECT_GE(4 * result.matching.size() + 1, 3 * opt);
  }
}

TEST(BipartiteMcm, MessagesFitWithinCongestCap) {
  const Graph g = gen::bipartite_gnp(40, 40, 0.15, 4);
  const auto result = approx_mcm_bipartite(g, 5);
  // Never throws MessageTooLarge and the recorded max is within the cap.
  congest::Network reference(g, congest::Model::kCongest, 0);
  EXPECT_LE(result.stats.max_message_bits, reference.message_cap_bits());
}

TEST(BipartiteMcm, StatsAccumulateAcrossPhases) {
  const Graph g = gen::bipartite_gnp(20, 20, 0.3, 5);
  BipartiteMcmOptions options;
  options.k = 3;
  const auto result = approx_mcm_bipartite(g, 6, options);
  EXPECT_EQ(result.phases, 3);
  EXPECT_GE(result.iterations, 1);
  EXPECT_GT(result.stats.rounds, 0u);
  EXPECT_GT(result.stats.total_bits, 0u);
}

TEST(BipartiteMcm, DeterministicUnderSeed) {
  const Graph g = gen::bipartite_gnp(25, 25, 0.2, 6);
  const auto a = approx_mcm_bipartite(g, 99);
  const auto b = approx_mcm_bipartite(g, 99);
  EXPECT_TRUE(a.matching == b.matching);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

TEST(BipartiteMcm, EmptyGraph) {
  const Graph g = Graph::from_edges(6, {});
  const auto result = approx_mcm_bipartite(g, 1);
  EXPECT_EQ(result.matching.size(), 0u);
}

TEST(BipartiteMcm, UnbalancedSides) {
  const Graph g = gen::bipartite_gnp(5, 50, 0.3, 8);
  BipartiteMcmOptions options;
  options.k = 5;
  const auto result = approx_mcm_bipartite(g, 9, options);
  const std::size_t opt = hopcroft_karp(g).size();
  EXPECT_GE(5 * result.matching.size() + 1, 4 * opt);
}

}  // namespace
}  // namespace dmatch
