// Direct verification of Lemma 3.8: Algorithm 3's distributed counting
// stage computes, at every first-visited node v, the number of shortest
// half-augmenting paths ending at v, at BFS depth d(v). The oracle below
// recomputes both centrally by layered dynamic programming.
#include <gtest/gtest.h>

#include <queue>
#include <tuple>

#include "core/bipartite_mcm.hpp"
#include "core/israeli_itai.hpp"
#include "graph/augmenting.hpp"
#include "graph/generators.hpp"

namespace dmatch {
namespace {

struct CentralCounts {
  std::vector<int> depth;
  std::vector<double> count;
};

/// Centralized mirror of Algorithm 3 on (g, side, m): BFS from all free X
/// nodes; X nodes relay through their mate, Y nodes receive from all
/// non-matching edges. Counting stops at depth max_depth.
CentralCounts central_counts(const Graph& g,
                             const std::vector<std::uint8_t>& side,
                             const Matching& m, int max_depth) {
  CentralCounts out;
  const auto n = static_cast<std::size_t>(g.node_count());
  out.depth.assign(n, -1);
  out.count.assign(n, 0.0);

  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (side[static_cast<std::size_t>(v)] == 0 && m.is_free(v)) {
      out.depth[static_cast<std::size_t>(v)] = 0;
      out.count[static_cast<std::size_t>(v)] = 1;
      frontier.push_back(v);
    }
  }
  for (int d = 0; d < max_depth && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    if (d % 2 == 0) {
      // X layer -> Y layer over non-matching edges; counts accumulate.
      for (NodeId x : frontier) {
        for (EdgeId e : g.incident_edges(x)) {
          if (m.contains(g, e)) continue;
          const NodeId y = g.other_endpoint(e, x);
          auto& yd = out.depth[static_cast<std::size_t>(y)];
          if (yd != -1 && yd != d + 1) continue;  // visited earlier
          if (yd == -1) {
            yd = d + 1;
            next.push_back(y);
          }
          out.count[static_cast<std::size_t>(y)] +=
              out.count[static_cast<std::size_t>(x)];
        }
      }
    } else {
      // Y layer -> mate (matched Y only); a free Y is a dead end (leader).
      for (NodeId y : frontier) {
        if (m.is_free(y)) continue;
        const NodeId x = m.mate(y);
        auto& xd = out.depth[static_cast<std::size_t>(x)];
        DMATCH_ASSERT(xd == -1);
        xd = d + 1;
        out.count[static_cast<std::size_t>(x)] =
            out.count[static_cast<std::size_t>(y)];
        next.push_back(x);
      }
    }
    frontier = std::move(next);
  }
  // Depths beyond max_depth are unreachable within the window.
  for (std::size_t v = 0; v < n; ++v) {
    if (out.depth[v] > max_depth) {
      out.depth[v] = -1;
      out.count[v] = 0;
    }
  }
  return out;
}

class CountingParam
    : public ::testing::TestWithParam<std::tuple<int, double, int, int>> {};

TEST_P(CountingParam, DistributedCountsMatchLemma38) {
  const auto [nx, p, ell, seed] = GetParam();
  const Graph g =
      gen::bipartite_gnp(nx, nx, p, static_cast<std::uint64_t>(seed));
  const auto side = *g.bipartition();

  // Build a matching state with no augmenting paths shorter than ell by
  // running the earlier phases (the algorithm's own precondition).
  congest::Network net(g, congest::Model::kCongest,
                       static_cast<std::uint64_t>(seed) + 50);
  for (int l = 1; l < ell; l += 2) run_phase(net, side, l, PhaseOptions{});
  const Matching m = net.extract_matching();

  const CountingProbe probe = run_counting_probe(net, side, ell);
  const CentralCounts expected = central_counts(g, side, m, ell);

  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    EXPECT_EQ(probe.depth[vi], expected.depth[vi])
        << "node " << v << " seed " << seed;
    if (expected.depth[vi] >= 0) {
      EXPECT_DOUBLE_EQ(probe.count[vi], expected.count[vi])
          << "node " << v << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountingParam,
    ::testing::Combine(::testing::Values(8, 16, 24),
                       ::testing::Values(0.15, 0.35),
                       ::testing::Values(1, 3, 5),
                       ::testing::Values(1, 2, 3)));

TEST(Counting, FreeYCountsEqualShortestAugmentingPaths) {
  // Lemma 3.8's corollary: after ell steps, a free Y node's count is the
  // number of augmenting paths of its depth ending there.
  const Graph g = gen::complete_bipartite(3, 3);
  const auto side = *g.bipartition();
  congest::Network net(g, congest::Model::kCongest, 1);
  const CountingProbe probe = run_counting_probe(net, side, 1);
  // Empty matching: every Y node has 3 length-1 paths (one per free X).
  for (NodeId y = 3; y < 6; ++y) {
    EXPECT_EQ(probe.depth[static_cast<std::size_t>(y)], 1);
    EXPECT_DOUBLE_EQ(probe.count[static_cast<std::size_t>(y)], 3.0);
  }
}

TEST(Counting, CountsGrowMultiplicativelyOnCompleteBipartite) {
  // K_{b,b} with a partial perfect matching: the number of shortest
  // half-augmenting paths grows like a factorial-style product, which
  // quickly needs the saturating counters on larger b. Verify exact
  // values on a small instance.
  const NodeId b = 4;
  const Graph g = gen::complete_bipartite(b, b);
  const auto side = *g.bipartition();
  // Match x_i -- y_i for i in {0, 1}; x_2, x_3, y_2, y_3 stay free.
  Matching m(2 * b);
  m.add(g, g.find_edge(0, b));
  m.add(g, g.find_edge(1, static_cast<NodeId>(b + 1)));
  congest::Network net(g, congest::Model::kCongest, 2);
  net.set_matching(m);
  const CountingProbe probe = run_counting_probe(net, side, 1);
  // Free Y nodes y_2, y_3: length-1 paths from the two free X nodes.
  EXPECT_DOUBLE_EQ(probe.count[static_cast<std::size_t>(b + 2)], 2.0);
  EXPECT_DOUBLE_EQ(probe.count[static_cast<std::size_t>(b + 3)], 2.0);
}

}  // namespace
}  // namespace dmatch
