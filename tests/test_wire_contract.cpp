// Pins the wire formats documented in docs/PROTOCOLS.md: if a protocol's
// message layout changes, these tests fail and the document must be
// updated alongside.
#include <gtest/gtest.h>

#include "congest/network.hpp"
#include "core/bipartite_mcm.hpp"
#include "core/delta_mwm.hpp"
#include "core/half_mwm.hpp"
#include "core/israeli_itai.hpp"
#include "graph/generators.hpp"
#include "mis/luby.hpp"

namespace dmatch {
namespace {

using congest::Model;
using congest::Network;

TEST(WireContract, IsraeliItaiMessagesAreTwoBits) {
  const Graph g = gen::gnp(40, 0.15, 1);
  Network net(g, Model::kCongest, 2);
  const auto result = israeli_itai(net);
  EXPECT_EQ(result.stats.max_message_bits, 2u);
}

TEST(WireContract, LubyMessagesAreAtMost65Bits) {
  const Graph g = gen::gnp(40, 0.15, 3);
  Network net(g, Model::kCongest, 4);
  const auto result = luby_mis_distributed(net);
  // DRAW = 1 + 64 bits; JOIN = 1 bit.
  EXPECT_EQ(result.stats.max_message_bits, 65u);
}

TEST(WireContract, AugmentIterationMessagesAre130Bits) {
  const Graph g = gen::bipartite_gnp(20, 20, 0.3, 5);
  const auto side = *g.bipartition();
  Network net(g, Model::kCongest, 6);
  const auto stats = run_augment_iteration(net, side, 3);
  // COUNT = 2 + 128; TOKEN = 2 + 64 + 64; AUGMENT = 2.
  EXPECT_EQ(stats.max_message_bits, 130u);
}

TEST(WireContract, GainExchangeIs64BitsAndDropIsOneBit) {
  const Graph g = gen::with_uniform_weights(gen::gnp(30, 0.2, 7), 1.0, 9.0,
                                            8);
  HalfMwmOptions options;
  options.epsilon = 0.3;
  options.black_box = HalfMwmOptions::BlackBox::kLocallyDominant;
  options.seed = 9;
  const auto result = half_mwm(g, options);
  // The largest message in the whole pipeline is the 64-bit weight
  // broadcast of the gain exchange (box messages are 1-2 bits).
  EXPECT_EQ(result.stats.max_message_bits, 64u);
}

TEST(WireContract, DominantBoxMessagesAreOneBit) {
  const Graph g = gen::with_uniform_weights(gen::gnp(30, 0.2, 10), 1.0, 9.0,
                                            11);
  const auto result = locally_dominant_mwm(g, {});
  EXPECT_EQ(result.stats.max_message_bits, 1u);
}

TEST(WireContract, TotalBitsAreConsistentWithCounts) {
  // total_bits must equal messages * 2 for the 2-bit II protocol.
  const Graph g = gen::gnp(50, 0.1, 12);
  Network net(g, Model::kCongest, 13);
  const auto result = israeli_itai(net);
  EXPECT_EQ(result.stats.total_bits, 2 * result.stats.messages);
}

TEST(WireContract, AllCongestMessagesFitFortyEightLogN) {
  // The default cap with factor 48 must accommodate every CONGEST
  // protocol at the smallest supported scale (cap floor = 48 * 4 bits).
  const Graph g = gen::bipartite_gnp(4, 4, 0.9, 14);
  const auto side = *g.bipartition();
  Network net(g, Model::kCongest, 15);
  EXPECT_GE(net.message_cap_bits(), 192u);
  EXPECT_NO_THROW(run_augment_iteration(net, side, 1));
}

}  // namespace
}  // namespace dmatch
