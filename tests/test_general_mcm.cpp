#include <gtest/gtest.h>

#include <tuple>

#include "core/api.hpp"
#include "graph/augmenting.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"

namespace dmatch {
namespace {

TEST(GeneralMcm, PaperBudgetFormula) {
  // 2^(2k+1) (k+1) ln k.
  EXPECT_EQ(general_mcm_paper_budget(3), 563);   // 128 * 4 * ln 3
  EXPECT_GT(general_mcm_paper_budget(4), 2800);
  EXPECT_GT(general_mcm_paper_budget(5), general_mcm_paper_budget(4));
}

class GeneralMcmParam
    : public ::testing::TestWithParam<std::tuple<int, double, int, int>> {};

TEST_P(GeneralMcmParam, ApproximationBoundHolds) {
  const auto [n, p, k, seed] = GetParam();
  const Graph g = gen::gnp(n, p, static_cast<std::uint64_t>(seed));
  GeneralMcmOptions options;
  options.k = k;
  options.seed = static_cast<std::uint64_t>(seed) + 3;
  options.patience = 40;
  const GeneralMcmResult result = general_mcm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  const std::size_t opt = blossom_mcm(g).size();
  EXPECT_GE(static_cast<double>(result.matching.size()) + 1e-9,
            (1.0 - 1.0 / k) * static_cast<double>(opt))
      << "n=" << n << " p=" << p << " k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneralMcmParam,
    ::testing::Combine(::testing::Values(12, 30, 60),
                       ::testing::Values(0.1, 0.3),
                       ::testing::Values(2, 3), ::testing::Values(1, 2)));

TEST(GeneralMcm, OddCycleLowerBoundInstance) {
  // C_2n: the paper's introduction notes an exact MCM needs Omega(n)
  // rounds; the approximation algorithm must still reach (1 - 1/k) n.
  const Graph g = gen::cycle(40);
  GeneralMcmOptions options;
  options.k = 4;
  options.seed = 11;
  const GeneralMcmResult result = general_mcm(g, options);
  EXPECT_GE(result.matching.size(), 15u);  // (1 - 1/4) * 20
}

TEST(GeneralMcm, OddCyclesAndCliques) {
  for (const Graph& g : {gen::cycle(25), gen::complete(21),
                         gen::barabasi_albert(60, 2, 7)}) {
    GeneralMcmOptions options;
    options.k = 3;
    options.seed = 13;
    const GeneralMcmResult result = general_mcm(g, options);
    EXPECT_TRUE(result.matching.is_valid(g));
    const std::size_t opt = blossom_mcm(g).size();
    EXPECT_GE(3 * result.matching.size() + 1, 2 * opt);
  }
}

TEST(GeneralMcm, FixedPaperBudgetOnTinyInstance) {
  const Graph g = gen::gnp(14, 0.3, 21);
  GeneralMcmOptions options;
  options.k = 3;
  options.budget = GeneralMcmOptions::Budget::kFixedPaper;
  options.seed = 5;
  const GeneralMcmResult result = general_mcm(g, options);
  EXPECT_EQ(result.iterations, general_mcm_paper_budget(3));
  const std::size_t opt = blossom_mcm(g).size();
  EXPECT_GE(3 * result.matching.size() + 1, 2 * opt);
}

TEST(GeneralMcm, AdaptiveStopsEarlyOnEasyInstances) {
  const Graph g = gen::path(30);
  GeneralMcmOptions options;
  options.k = 3;
  options.patience = 10;
  options.seed = 6;
  const GeneralMcmResult result = general_mcm(g, options);
  EXPECT_LT(result.iterations, general_mcm_paper_budget(3));
  EXPECT_TRUE(result.matching.is_valid(g));
}

TEST(GeneralMcm, ProductiveIterationsAreCounted) {
  const Graph g = gen::gnp(40, 0.2, 22);
  GeneralMcmOptions options;
  options.k = 3;
  options.seed = 7;
  const GeneralMcmResult result = general_mcm(g, options);
  EXPECT_GE(result.productive_iterations, 1);
  EXPECT_LE(result.productive_iterations, result.iterations);
  EXPECT_EQ(result.productive_iterations == 0, result.matching.size() == 0);
}

TEST(GeneralMcm, EmptyGraph) {
  const Graph g = Graph::from_edges(5, {});
  GeneralMcmOptions options;
  options.k = 3;
  options.patience = 2;
  const GeneralMcmResult result = general_mcm(g, options);
  EXPECT_EQ(result.matching.size(), 0u);
}

TEST(GeneralMcm, DeterministicUnderSeed) {
  const Graph g = gen::gnp(30, 0.2, 23);
  GeneralMcmOptions options;
  options.k = 3;
  options.seed = 42;
  const GeneralMcmResult a = general_mcm(g, options);
  const GeneralMcmResult b = general_mcm(g, options);
  EXPECT_TRUE(a.matching == b.matching);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(GeneralMcm, NoShortAugmentingPathSurvivesInPractice) {
  // After convergence, shortest augmenting paths longer than 2k-1 may
  // remain, but none of length <= 2k-1 should (w.h.p. with patience 40).
  const Graph g = gen::gnp(24, 0.25, 29);
  GeneralMcmOptions options;
  options.k = 3;
  options.patience = 40;
  options.seed = 9;
  const GeneralMcmResult result = general_mcm(g, options);
  const auto remaining =
      enumerate_augmenting_paths(g, result.matching, 2 * options.k - 1, 1);
  EXPECT_TRUE(remaining.empty());
}

}  // namespace
}  // namespace dmatch
