#include <gtest/gtest.h>

#include <tuple>

#include "graph/blossom.hpp"
#include "graph/exact_small.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/hungarian.hpp"
#include "graph/seq_matching.hpp"

namespace dmatch {
namespace {

// ---------------------------------------------------------- exponential DP

TEST(ExactSmall, KnownValues) {
  EXPECT_EQ(exact_mcm_value(gen::path(2)), 1u);
  EXPECT_EQ(exact_mcm_value(gen::path(4)), 2u);
  EXPECT_EQ(exact_mcm_value(gen::cycle(5)), 2u);
  EXPECT_EQ(exact_mcm_value(gen::cycle(6)), 3u);
  EXPECT_EQ(exact_mcm_value(gen::complete(7)), 3u);
  EXPECT_EQ(exact_mcm_value(gen::complete_bipartite(3, 5)), 3u);
}

TEST(ExactSmall, WeightedValues) {
  // Triangle with one heavy edge: take the heavy edge alone.
  const Graph t = Graph::from_edges(3, {{0, 1, 10}, {1, 2, 1}, {0, 2, 1}});
  EXPECT_DOUBLE_EQ(exact_mwm_value(t), 10.0);
  // Path with weights 3,5,3: the two ends beat the middle.
  const Graph p =
      Graph::from_edges(4, {{0, 1, 3}, {1, 2, 5}, {2, 3, 3}});
  EXPECT_DOUBLE_EQ(exact_mwm_value(p), 6.0);
}

TEST(ExactSmall, EmptyAndSingleton) {
  EXPECT_EQ(exact_mcm_value(Graph::from_edges(0, {})), 0u);
  EXPECT_EQ(exact_mcm_value(Graph::from_edges(1, {})), 0u);
  EXPECT_DOUBLE_EQ(exact_mwm_value(Graph::from_edges(3, {})), 0.0);
}

// ------------------------------------------------------------ HopcroftKarp

class HopcroftKarpRandom
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(HopcroftKarpRandom, MatchesExponentialOracle) {
  const auto [nx, ny, p, seed] = GetParam();
  const Graph g = gen::bipartite_gnp(nx, ny, p, static_cast<std::uint64_t>(seed));
  const Matching m = hopcroft_karp(g);
  EXPECT_TRUE(m.is_valid(g));
  EXPECT_EQ(m.size(), exact_mcm_value(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HopcroftKarpRandom,
    ::testing::Combine(::testing::Values(4, 7, 9), ::testing::Values(5, 9),
                       ::testing::Values(0.15, 0.4, 0.8),
                       ::testing::Values(1, 2, 3, 4)));

TEST(HopcroftKarp, PerfectMatchingOnCompleteBipartite) {
  const Matching m = hopcroft_karp(gen::complete_bipartite(20, 20));
  EXPECT_EQ(m.size(), 20u);
}

TEST(HopcroftKarp, LargeSparseInstanceIsValidAndMaximal) {
  const Graph g = gen::bipartite_gnp(300, 300, 0.02, 9);
  const Matching m = hopcroft_karp(g);
  EXPECT_TRUE(m.is_valid(g));
  EXPECT_TRUE(m.is_maximal(g));
}

// ---------------------------------------------------------------- Blossom

class BlossomRandom
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(BlossomRandom, MatchesExponentialOracle) {
  const auto [n, p, seed] = GetParam();
  const Graph g = gen::gnp(n, p, static_cast<std::uint64_t>(seed));
  const Matching m = blossom_mcm(g);
  EXPECT_TRUE(m.is_valid(g));
  EXPECT_EQ(m.size(), exact_mcm_value(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlossomRandom,
    ::testing::Combine(::testing::Values(6, 9, 12, 15),
                       ::testing::Values(0.15, 0.3, 0.6),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(Blossom, OddCyclesNeedBlossoms) {
  EXPECT_EQ(blossom_mcm(gen::cycle(5)).size(), 2u);
  EXPECT_EQ(blossom_mcm(gen::cycle(7)).size(), 3u);
  // Two triangles joined by a bridge: perfect matching exists.
  const Graph g = Graph::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_EQ(blossom_mcm(g).size(), 3u);
}

TEST(Blossom, PetersenGraphHasPerfectMatching) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i < 5; ++i) {
    edges.push_back({i, static_cast<NodeId>((i + 1) % 5)});        // outer
    edges.push_back({static_cast<NodeId>(i + 5),
                     static_cast<NodeId>(5 + (i + 2) % 5)});       // inner
    edges.push_back({i, static_cast<NodeId>(i + 5)});              // spokes
  }
  EXPECT_EQ(blossom_mcm(Graph::from_edges(10, std::move(edges))).size(), 5u);
}

TEST(Blossom, MediumRandomIsMaximal) {
  const Graph g = gen::gnp(120, 0.05, 21);
  const Matching m = blossom_mcm(g);
  EXPECT_TRUE(m.is_valid(g));
  EXPECT_TRUE(m.is_maximal(g));
}

// --------------------------------------------------------------- Hungarian

class HungarianRandom
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(HungarianRandom, MatchesExponentialOracle) {
  const auto [nx, ny, p, seed] = GetParam();
  const Graph g = gen::with_uniform_weights(
      gen::bipartite_gnp(nx, ny, p, static_cast<std::uint64_t>(seed)), 0.5,
      10.0, static_cast<std::uint64_t>(seed) + 100);
  const Matching m = hungarian_mwm(g);
  EXPECT_TRUE(m.is_valid(g));
  EXPECT_NEAR(m.weight(g), exact_mwm_value(g), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HungarianRandom,
    ::testing::Combine(::testing::Values(4, 7, 9), ::testing::Values(5, 9),
                       ::testing::Values(0.2, 0.5, 0.9),
                       ::testing::Values(1, 2, 3, 4)));

TEST(Hungarian, PrefersHeavyOverMany) {
  // One heavy edge vs two light ones sharing no nodes with it.
  const Graph g = Graph::from_edges(
      6, {{0, 3, 10.0}, {0, 4, 1.0}, {1, 3, 1.0}, {2, 5, 1.0}});
  const Matching m = hungarian_mwm(g);
  EXPECT_DOUBLE_EQ(m.weight(g), 11.0);  // 10 + the disjoint 2-5
}

TEST(Hungarian, UnweightedReducesToCardinality) {
  const Graph g = gen::bipartite_gnp(12, 12, 0.3, 17);
  EXPECT_DOUBLE_EQ(hungarian_mwm(g).weight(g),
                   static_cast<double>(hopcroft_karp(g).size()));
}

// ----------------------------------------------------- sequential baselines

class SeqBaselineRandom
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SeqBaselineRandom, GreedyIsHalfOptimal) {
  const auto [n, p, seed] = GetParam();
  const Graph g = gen::with_uniform_weights(
      gen::gnp(n, p, static_cast<std::uint64_t>(seed)), 1.0, 8.0,
      static_cast<std::uint64_t>(seed) + 50);
  const double opt = exact_mwm_value(g);
  EXPECT_GE(greedy_mwm(g).weight(g), 0.5 * opt - 1e-9);
  EXPECT_GE(path_growing_mwm(g).weight(g), 0.5 * opt - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SeqBaselineRandom,
    ::testing::Combine(::testing::Values(8, 12, 16),
                       ::testing::Values(0.2, 0.5),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(SeqBaselines, GreedyIsMaximal) {
  const Graph g = gen::gnp(80, 0.1, 31);
  EXPECT_TRUE(greedy_mwm(g).is_maximal(g));
}

TEST(SeqBaselines, GreedyCertifiesUpperBound) {
  // 2 * w(greedy) >= w(M*): the standard certificate the weighted benches
  // use when no exact solver is feasible.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = gen::with_uniform_weights(gen::gnp(14, 0.4, seed), 1.0,
                                              9.0, seed + 7);
    EXPECT_LE(exact_mwm_value(g), 2.0 * greedy_mwm(g).weight(g) + 1e-9);
  }
}

TEST(SeqBaselines, PathGrowingHandlesEdgeCases) {
  EXPECT_EQ(path_growing_mwm(Graph::from_edges(3, {})).size(), 0u);
  const Graph single = gen::path(2);
  EXPECT_EQ(path_growing_mwm(single).size(), 1u);
}

}  // namespace
}  // namespace dmatch
