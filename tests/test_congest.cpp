#include <gtest/gtest.h>

#include <memory>

#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "support/assert.hpp"

namespace dmatch {
namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::MessageTooLarge;
using congest::Model;
using congest::Network;
using congest::Process;
using congest::RunStats;

/// Sends one fixed-size message to every neighbor for `rounds` rounds.
class Chatter final : public Process {
 public:
  Chatter(int rounds, unsigned bits) : rounds_(rounds), bits_(bits) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    (void)inbox;
    if (ctx.round() < rounds_) {
      BitWriter w;
      for (unsigned b = 0; b < bits_; ++b) w.write_bool(true);
      const Message msg = Message::from_writer(std::move(w));
      for (int p = 0; p < ctx.degree(); ++p) ctx.send(p, msg);
    }
    halted_ = ctx.round() >= rounds_;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  int rounds_;
  unsigned bits_;
  bool halted_ = false;
};

/// Counts hops: node 0 emits a token that is forwarded around a cycle;
/// verifies one-hop-per-round delivery timing.
class RingForwarder final : public Process {
 public:
  explicit RingForwarder(std::vector<int>& arrival) : arrival_(arrival) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    if (ctx.round() == 0 && ctx.id() == 0) {
      BitWriter w;
      w.write(1, 1);
      ctx.send(0, Message::from_writer(std::move(w)));  // one direction
      arrival_[0] = 0;
      return;
    }
    for (const Envelope& env : inbox) {
      (void)env;
      if (arrival_[static_cast<std::size_t>(ctx.id())] < 0) {
        arrival_[static_cast<std::size_t>(ctx.id())] = ctx.round();
        // Forward out the other port.
        const int out = env.port == 0 ? 1 : 0;
        BitWriter w;
        w.write(1, 1);
        ctx.send(out, Message::from_writer(std::move(w)));
      }
      halted_ = true;
    }
    if (ctx.id() == 0 && ctx.round() > 0) halted_ = true;
  }

  [[nodiscard]] bool halted() const override { return halted_; }

 private:
  std::vector<int>& arrival_;
  bool halted_ = false;
};

TEST(Network, CapScalesWithLogN) {
  const Graph small = gen::cycle(8);
  const Graph big = gen::cycle(2048);
  Network net_small(small, Model::kCongest, 1, 10);
  Network net_big(big, Model::kCongest, 1, 10);
  EXPECT_EQ(net_small.message_cap_bits(), 10u * 4u);  // floored at 4 bits
  EXPECT_EQ(net_big.message_cap_bits(), 10u * 11u);
}

TEST(Network, CongestRejectsOversizeMessage) {
  const Graph g = gen::cycle(8);
  Network net(g, Model::kCongest, 1, 1);  // cap = 4 bits
  EXPECT_THROW(net.run(
                   [](NodeId, const Graph&) {
                     return std::make_unique<Chatter>(1, 64);
                   },
                   4),
               MessageTooLarge);
}

TEST(Network, LocalModeAllowsAndRecordsBigMessages) {
  const Graph g = gen::cycle(8);
  Network net(g, Model::kLocal, 1, 1);
  const RunStats stats = net.run(
      [](NodeId, const Graph&) { return std::make_unique<Chatter>(1, 5000); },
      4);
  EXPECT_EQ(stats.max_message_bits, 5000u);
  EXPECT_TRUE(stats.completed);
}

TEST(Network, StatsCountMessagesAndBits) {
  const Graph g = gen::cycle(10);  // 10 nodes, degree 2
  Network net(g, Model::kCongest, 1);
  const RunStats stats = net.run(
      [](NodeId, const Graph&) { return std::make_unique<Chatter>(3, 7); },
      10);
  // 10 nodes * 2 ports * 3 rounds.
  EXPECT_EQ(stats.messages, 60u);
  EXPECT_EQ(stats.total_bits, 60u * 7u);
  EXPECT_EQ(stats.max_message_bits, 7u);
}

TEST(Network, QuiescenceStopsEarly) {
  const Graph g = gen::cycle(10);
  Network net(g, Model::kCongest, 1);
  const RunStats stats = net.run(
      [](NodeId, const Graph&) { return std::make_unique<Chatter>(2, 1); },
      1000);
  EXPECT_TRUE(stats.completed);
  EXPECT_LT(stats.rounds, 6u);
}

TEST(Network, BudgetExhaustionReportsIncomplete) {
  const Graph g = gen::cycle(10);
  Network net(g, Model::kCongest, 1);
  const RunStats stats = net.run(
      [](NodeId, const Graph&) { return std::make_unique<Chatter>(50, 1); },
      5);
  EXPECT_FALSE(stats.completed);
  EXPECT_EQ(stats.rounds, 5u);
}

TEST(Network, OneHopPerRoundTiming) {
  const NodeId n = 12;
  const Graph g = gen::cycle(n);
  Network net(g, Model::kCongest, 3);
  std::vector<int> arrival(static_cast<std::size_t>(n), -1);
  net.run(
      [&arrival](NodeId, const Graph&) {
        return std::make_unique<RingForwarder>(arrival);
      },
      100);
  // The token starts at node 0 and travels one hop per round towards node
  // 1, 2, ... (port 0 of node 0 leads to node 1 by construction).
  EXPECT_EQ(arrival[0], 0);
  for (NodeId v = 1; v < n; ++v) {
    EXPECT_EQ(arrival[static_cast<std::size_t>(v)], v) << "node " << v;
  }
}

TEST(Network, DeterministicUnderSeed) {
  const Graph g = gen::gnp(30, 0.2, 5);
  auto run_once = [&](std::uint64_t seed) {
    Network net(g, Model::kCongest, seed);
    RunStats s = net.run(
        [](NodeId, const Graph&) { return std::make_unique<Chatter>(2, 3); },
        10);
    return s;
  };
  const RunStats a = run_once(7);
  const RunStats b = run_once(7);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_bits, b.total_bits);
}

TEST(Network, MatchingRegistersRoundTrip) {
  const Graph g = gen::cycle(8);
  Network net(g, Model::kCongest, 1);
  Matching m(8);
  m.add(g, 0);
  m.add(g, 4);
  net.set_matching(m);
  const Matching out = net.extract_matching();
  EXPECT_TRUE(out == m);
}

TEST(Network, ExtractValidatesConsistency) {
  // A process that points its register at a neighbor that does not point
  // back must make extract_matching throw.
  class OneSided final : public Process {
   public:
    void on_round(Context& ctx, std::span<const Envelope>) override {
      if (ctx.id() == 0) ctx.set_mate_port(0);
      halted_ = true;
    }
    [[nodiscard]] bool halted() const override { return halted_; }

   private:
    bool halted_ = false;
  };
  const Graph g = gen::cycle(6);
  Network net(g, Model::kCongest, 1);
  net.run([](NodeId, const Graph&) { return std::make_unique<OneSided>(); },
          4);
  EXPECT_THROW(net.extract_matching(), ContractViolation);
}

TEST(RunStats, MergeAndNormalize) {
  RunStats a;
  a.rounds = 10;
  a.messages = 5;
  a.total_bits = 100;
  a.max_message_bits = 64;
  RunStats b;
  b.rounds = 3;
  b.messages = 2;
  b.total_bits = 10;
  b.max_message_bits = 128;
  b.completed = false;
  a.merge(b);
  EXPECT_EQ(a.rounds, 13u);
  EXPECT_EQ(a.messages, 7u);
  EXPECT_EQ(a.total_bits, 110u);
  EXPECT_EQ(a.max_message_bits, 128u);
  EXPECT_FALSE(a.completed);
  EXPECT_EQ(a.normalized_rounds(128), 13u);
  EXPECT_EQ(a.normalized_rounds(64), 26u);
  EXPECT_EQ(a.normalized_rounds(0), 13u);
}

}  // namespace
}  // namespace dmatch
