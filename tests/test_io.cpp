#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/seq_matching.hpp"

namespace dmatch {
namespace {

TEST(GraphIo, RoundTripPreservesEverything) {
  const Graph g = gen::with_uniform_weights(gen::gnp(30, 0.2, 4), 0.5, 9.5, 5);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph back = read_edge_list(ss);
  ASSERT_EQ(back.node_count(), g.node_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(back.edge(e).u, g.edge(e).u);
    EXPECT_EQ(back.edge(e).v, g.edge(e).v);
    EXPECT_DOUBLE_EQ(back.edge(e).w, g.edge(e).w);
  }
}

TEST(GraphIo, ParsesCommentsAndDefaultWeights) {
  std::stringstream ss(
      "c a comment\n"
      "# another comment style\n"
      "p edge 3 2\n"
      "e 0 1\n"
      "\n"
      "e 1 2 4.5\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_DOUBLE_EQ(g.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(g.weight(1), 4.5);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::stringstream ss("e 0 1\n");  // edge before header
    EXPECT_THROW(read_edge_list(ss), ContractViolation);
  }
  {
    std::stringstream ss("p edge 3 2\ne 0 1\n");  // wrong edge count
    EXPECT_THROW(read_edge_list(ss), ContractViolation);
  }
  {
    std::stringstream ss("p edge 2 1\ne 0 5\n");  // out of range endpoint
    EXPECT_THROW(read_edge_list(ss), ContractViolation);
  }
  {
    std::stringstream ss("q edge 2 1\n");  // unknown directive
    EXPECT_THROW(read_edge_list(ss), ContractViolation);
  }
}

TEST(GraphIo, DotExportMarksMatchedEdges) {
  const Graph g = gen::path(3);
  Matching m(3);
  m.add(g, 0);
  const std::string dot = to_dot(g, &m);
  EXPECT_NE(dot.find("graph dmatch"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  // Only one edge is matched.
  EXPECT_EQ(dot.find("color=red"), dot.rfind("color=red"));
}

TEST(GraphIo, DotExportWithoutMatching) {
  const Graph g = gen::cycle(4);
  const std::string dot = to_dot(g);
  EXPECT_EQ(dot.find("color=red"), std::string::npos);
}

TEST(GraphIo, EmptyGraph) {
  std::stringstream ss("p edge 4 0\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 0);
  std::stringstream out;
  write_edge_list(out, g);
  const Graph back = read_edge_list(out);
  EXPECT_EQ(back.node_count(), 4);
}

}  // namespace
}  // namespace dmatch
