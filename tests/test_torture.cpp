// Cross-product stress: every CONGEST algorithm against every graph
// family, asserting the full invariant set each time (validity, the
// approximation bound against an exact oracle, message-cap compliance).
// Families are chosen to hit the structural corner cases: odd cycles
// (blossoms), stars (hub contention), long paths (deep augmenting paths),
// dense cliques, heavy-tailed degrees, disconnected graphs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/api.hpp"
#include "core/verify.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "graph/hungarian.hpp"
#include "graph/seq_matching.hpp"

namespace dmatch {
namespace {

Graph star(NodeId leaves) {
  std::vector<Edge> edges;
  for (NodeId v = 1; v <= leaves; ++v) edges.push_back({0, v, 1.0});
  return Graph::from_edges(leaves + 1, std::move(edges));
}

Graph disjoint_triangles(int count) {
  std::vector<Edge> edges;
  for (int t = 0; t < count; ++t) {
    const NodeId base = static_cast<NodeId>(3 * t);
    edges.push_back({base, static_cast<NodeId>(base + 1), 1.0});
    edges.push_back({static_cast<NodeId>(base + 1),
                     static_cast<NodeId>(base + 2), 1.0});
    edges.push_back({base, static_cast<NodeId>(base + 2), 1.0});
  }
  return Graph::from_edges(static_cast<NodeId>(3 * count), std::move(edges));
}

Graph make_family(int family, std::uint64_t seed) {
  switch (family) {
    case 0:
      return gen::gnp(60, 0.04, seed);            // sparse random
    case 1:
      return gen::gnp(40, 0.4, seed);             // dense random
    case 2:
      return gen::cycle(41);                      // odd cycle
    case 3:
      return gen::path(50);                       // deep augmenting paths
    case 4:
      return star(30);                            // hub contention
    case 5:
      return gen::barabasi_albert(60, 2, seed);   // heavy-tailed
    case 6:
      return disjoint_triangles(12);              // disconnected + odd
    case 7:
      return gen::grid(6, 9);                     // bipartite structure
    case 8:
      return gen::complete(24);                   // clique
    default:
      return gen::random_tree(45, seed);          // tree
  }
}

class TortureParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TortureParam, GeneralMcmInvariants) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, static_cast<std::uint64_t>(seed));
  GeneralMcmOptions options;
  options.k = 3;
  options.seed = static_cast<std::uint64_t>(seed) + 1000;
  const GeneralMcmResult result = general_mcm(g, options);
  ASSERT_TRUE(result.matching.is_valid(g));
  const std::size_t opt = blossom_mcm(g).size();
  EXPECT_GE(3.0 * static_cast<double>(result.matching.size()) + 1e-9,
            2.0 * static_cast<double>(opt))
      << "family " << family;
  EXPECT_LE(result.matching.size(), opt);
}

TEST_P(TortureParam, IsraeliItaiInvariants) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, static_cast<std::uint64_t>(seed));
  const auto result =
      maximal_matching(g, static_cast<std::uint64_t>(seed) + 2000);
  ASSERT_TRUE(result.matching.is_valid(g));
  EXPECT_TRUE(result.matching.is_maximal(g));
  EXPECT_GE(2 * result.matching.size(), blossom_mcm(g).size());
  EXPECT_LE(result.stats.max_message_bits, 2u);
}

TEST_P(TortureParam, WeightedInvariants) {
  const auto [family, seed] = GetParam();
  const Graph g = gen::with_exponential_weights(
      make_family(family, static_cast<std::uint64_t>(seed)), 100.0,
      static_cast<std::uint64_t>(seed) + 3000);
  if (g.edge_count() == 0) return;
  HalfMwmOptions options;
  options.epsilon = 0.1;
  options.seed = static_cast<std::uint64_t>(seed) + 4000;
  const HalfMwmResult result = approx_mwm(g, options);
  ASSERT_TRUE(result.matching.is_valid(g));
  // Certificate bound: w(M*) <= 2 w(greedy).
  const double opt_upper = 2.0 * greedy_mwm(g).weight(g);
  EXPECT_GE(result.matching.weight(g) + 1e-9, (0.5 - 0.1) * opt_upper / 2.0)
      << "family " << family;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, TortureParam,
                         ::testing::Combine(::testing::Range(0, 10),
                                            ::testing::Values(1, 2)));

/// A seed-derived adversary: every (family, seed) cell fights a different
/// mix of drops, duplicates, delays, reorders and crash-restarts.
congest::FaultPlan torture_plan(std::uint64_t cell) {
  congest::FaultPlan plan;
  plan.seed = cell * 0x9e3779b97f4a7c15ULL + 1;
  plan.drop_prob = 0.02 * static_cast<double>(plan.seed % 5);
  plan.duplicate_prob = 0.03 * static_cast<double>((plan.seed >> 8) % 3);
  plan.delay_prob = 0.05 * static_cast<double>((plan.seed >> 16) % 3);
  plan.reorder_prob = 0.1 * static_cast<double>((plan.seed >> 24) % 3);
  plan.crash_prob = 0.02 * static_cast<double>((plan.seed >> 32) % 3);
  plan.restart_prob = 0.5;
  plan.crash_round_bound = 48;
  if (!plan.any()) plan.drop_prob = 0.05;  // never hand back a free pass
  return plan;
}

TEST_P(TortureParam, FaultedIsraeliItaiInvariants) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, static_cast<std::uint64_t>(seed));
  congest::Network::Options net_options;
  net_options.fault =
      torture_plan(static_cast<std::uint64_t>(seed) * 16 + family);
  congest::Network net(g, congest::Model::kCongest,
                       static_cast<std::uint64_t>(seed) + 6000, 48,
                       net_options);
  const IsraeliItaiResult result = israeli_itai(net);
  const MatchingInvariantReport report =
      verify_matching_invariants(g, result.matching, &net, true);
  EXPECT_TRUE(report.ok()) << report.summary() << " family " << family;
  EXPECT_LE(report.ratio, 1.0) << "family " << family;
}

TEST_P(TortureParam, FaultedBipartiteMcmInvariants) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, static_cast<std::uint64_t>(seed));
  const auto side = g.bipartition();
  if (!side.has_value()) return;  // family is not bipartite for this seed
  congest::Network::Options net_options;
  net_options.fault =
      torture_plan(static_cast<std::uint64_t>(seed) * 16 + family + 1);
  congest::Network net(g, congest::Model::kCongest,
                       static_cast<std::uint64_t>(seed) + 7000, 48,
                       net_options);
  BipartiteMcmOptions options;
  options.k = 2;
  const BipartiteMcmResult result = bipartite_mcm(net, *side, options);
  const MatchingInvariantReport report =
      verify_matching_invariants(g, result.matching, &net);
  EXPECT_TRUE(report.ok()) << report.summary() << " family " << family;
}

TEST_P(TortureParam, FaultedGeneralMcmInvariants) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, static_cast<std::uint64_t>(seed));
  GeneralMcmOptions options;
  options.k = 2;
  options.patience = 4;
  options.seed = static_cast<std::uint64_t>(seed) + 8000;
  options.fault = torture_plan(static_cast<std::uint64_t>(seed) * 16 + family + 2);
  const GeneralMcmResult result = general_mcm(g, options);
  // The driver's internal networks are gone, so deadness cannot be
  // re-queried here; the final sweep already guarantees no dead node is
  // matched, and structural validity is what remains checkable.
  const MatchingInvariantReport report =
      verify_matching_invariants(g, result.matching);
  EXPECT_TRUE(report.ok()) << report.summary() << " family " << family;
}

TEST_P(TortureParam, FaultedHalfMwmInvariants) {
  const auto [family, seed] = GetParam();
  const Graph g = gen::with_exponential_weights(
      make_family(family, static_cast<std::uint64_t>(seed)), 100.0,
      static_cast<std::uint64_t>(seed) + 9000);
  if (g.edge_count() == 0) return;
  HalfMwmOptions options;
  options.max_iterations_override = 5;
  options.seed = static_cast<std::uint64_t>(seed) + 9500;
  options.fault = torture_plan(static_cast<std::uint64_t>(seed) * 16 + family + 3);
  const HalfMwmResult result = half_mwm(g, options);
  const MatchingInvariantReport report =
      verify_matching_invariants(g, result.matching);
  EXPECT_TRUE(report.ok()) << report.summary() << " family " << family;
}

TEST(Torture, BipartiteFamiliesAgainstExactWeighted) {
  for (int shape = 0; shape < 4; ++shape) {
    Graph base = shape == 0   ? gen::bipartite_gnp(20, 20, 0.2, 7)
                 : shape == 1 ? gen::complete_bipartite(12, 18)
                 : shape == 2 ? gen::grid(5, 8)
                              : gen::random_tree(35, 8);
    const Graph g = gen::with_uniform_weights(base, 1.0, 40.0,
                                              static_cast<std::uint64_t>(shape));
    HalfMwmOptions options;
    options.epsilon = 0.05;
    options.seed = static_cast<std::uint64_t>(shape) + 5000;
    const HalfMwmResult result = approx_mwm(g, options);
    const double opt = hungarian_mwm(g).weight(g);
    EXPECT_GE(result.matching.weight(g) + 1e-9, (0.5 - 0.05) * opt)
        << "shape " << shape;
  }
}

TEST(Torture, RepeatedRunsNeverCorruptState) {
  // Run many different protocols over the same network object in sequence;
  // the registers must stay a consistent matching throughout.
  const Graph g = gen::gnp(40, 0.15, 9);
  congest::Network net(g, congest::Model::kCongest, 10);
  const auto side_or = g.bipartition();
  for (int round = 0; round < 5; ++round) {
    israeli_itai(net);
    EXPECT_TRUE(net.extract_matching().is_valid(g));
    if (side_or.has_value()) {
      run_phase(net, *side_or, 3, PhaseOptions{});
      EXPECT_TRUE(net.extract_matching().is_valid(g));
    }
    net.set_matching(Matching(g.node_count()));
  }
}

TEST(Torture, ExtremeWeightScales) {
  // 12 orders of magnitude of weight must not break the class machinery.
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < 20; ++v) {
    edges.push_back({v, static_cast<NodeId>(v + 1),
                     std::pow(10.0, (v % 13) - 6.0)});
  }
  const Graph g = Graph::from_edges(20, std::move(edges));
  HalfMwmOptions options;
  options.epsilon = 0.1;
  options.seed = 11;
  const HalfMwmResult result = approx_mwm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  EXPECT_GT(result.matching.weight(g), 0.0);
}

}  // namespace
}  // namespace dmatch
