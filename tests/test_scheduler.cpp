// Scheduler suite (ctest label `sched`): the fork-join dispatcher behind
// both executors, plus the mode-independence contract — static,
// work-stealing and rapid-start dispatch must produce byte-identical
// matchings, stats and observability artifacts for any thread count,
// with and without fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/async.hpp"
#include "congest/fault.hpp"
#include "congest/network.hpp"
#include "core/israeli_itai.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "support/sched.hpp"
#include "support/slab.hpp"

namespace dmatch {
namespace {

using congest::FaultPlan;
using congest::Model;
using congest::Network;
using support::balanced_part_of;
using support::balanced_range;
using support::BalancedRange;
using support::SchedMode;
using support::SchedOptions;
using support::Scheduler;

constexpr SchedMode kModes[] = {SchedMode::kStatic, SchedMode::kWorkSteal,
                                SchedMode::kRapidStart};
constexpr unsigned kThreadCounts[] = {1, 2, 8};

// --- balanced partition ----------------------------------------------

TEST(BalancedRangeTest, TilesAndBalances) {
  for (const std::size_t count : {0u, 1u, 7u, 8u, 9u, 64u, 1000u}) {
    for (const unsigned parts : {1u, 2u, 3u, 7u, 8u, 64u}) {
      std::size_t covered = 0;
      std::size_t min_len = count + 1, max_len = 0;
      for (unsigned p = 0; p < parts; ++p) {
        const BalancedRange r = balanced_range(count, parts, p);
        EXPECT_EQ(r.begin, covered) << "gap/overlap at part " << p;
        EXPECT_LE(r.begin, r.end);
        const std::size_t len = r.end - r.begin;
        min_len = std::min(min_len, len);
        max_len = std::max(max_len, len);
        covered = r.end;
      }
      EXPECT_EQ(covered, count) << "count=" << count << " parts=" << parts;
      // Balanced remainder: no two ranges differ by more than one item.
      EXPECT_LE(max_len - min_len, 1u)
          << "count=" << count << " parts=" << parts;
    }
  }
}

TEST(BalancedRangeTest, PartOfIsInverse) {
  for (const std::size_t count : {1u, 7u, 9u, 64u, 1000u}) {
    for (const unsigned parts : {1u, 2u, 3u, 7u, 8u, 64u}) {
      for (std::size_t i = 0; i < count; ++i) {
        const unsigned p = balanced_part_of(count, parts, i);
        const BalancedRange r = balanced_range(count, parts, p);
        EXPECT_TRUE(r.begin <= i && i < r.end)
            << "count=" << count << " parts=" << parts << " i=" << i;
      }
    }
  }
}

TEST(SchedModeTest, ParseAndPrint) {
  EXPECT_EQ(support::parse_sched_mode("static"), SchedMode::kStatic);
  EXPECT_EQ(support::parse_sched_mode("steal"), SchedMode::kWorkSteal);
  EXPECT_EQ(support::parse_sched_mode("work-steal"), SchedMode::kWorkSteal);
  EXPECT_EQ(support::parse_sched_mode("rapid"), SchedMode::kRapidStart);
  EXPECT_EQ(support::parse_sched_mode("rapid-start"), SchedMode::kRapidStart);
  EXPECT_FALSE(support::parse_sched_mode("greedy").has_value());
  EXPECT_FALSE(support::parse_sched_mode("").has_value());
  for (const SchedMode mode : kModes) {
    EXPECT_EQ(support::parse_sched_mode(support::to_string(mode)), mode);
  }
}

// --- dispatch semantics ----------------------------------------------

TEST(SchedulerTest, PlanTasks) {
  for (const SchedMode mode : kModes) {
    SchedOptions opts;
    opts.mode = mode;
    Scheduler sched(4, opts);
    EXPECT_EQ(sched.workers(), 4u);
    EXPECT_EQ(sched.plan_tasks(0), 1u);  // never zero shards
    EXPECT_EQ(sched.plan_tasks(3), 3u);  // never more tasks than items
    const unsigned many = sched.plan_tasks(1 << 20);
    if (mode == SchedMode::kWorkSteal) {
      EXPECT_EQ(many, 4u * opts.steal_blocks_per_worker);
    } else {
      EXPECT_EQ(many, 4u);
    }
  }
}

TEST(SchedulerTest, RunsEveryTaskExactlyOnce) {
  for (const SchedMode mode : kModes) {
    for (const unsigned threads : kThreadCounts) {
      SchedOptions opts;
      opts.mode = mode;
      Scheduler sched(threads, opts);
      // Odd task counts exercise the remainder split; repeated dispatches
      // exercise generation reuse.
      for (const unsigned tasks : {1u, 5u, 7u, 64u}) {
        std::vector<std::atomic<int>> hits(tasks);
        for (auto& h : hits) h.store(0);
        for (int repeat = 0; repeat < 3; ++repeat) {
          sched.run_tasks(tasks, [&](unsigned t) {
            hits[t].fetch_add(1, std::memory_order_relaxed);
          });
        }
        for (unsigned t = 0; t < tasks; ++t) {
          EXPECT_EQ(hits[t].load(), 3)
              << "mode=" << support::to_string(mode) << " threads=" << threads
              << " tasks=" << tasks << " t=" << t;
        }
      }
    }
  }
}

TEST(SchedulerTest, RethrowsLowestTaskIndex) {
  for (const SchedMode mode : kModes) {
    for (const unsigned threads : {1u, 8u}) {
      SchedOptions opts;
      opts.mode = mode;
      Scheduler sched(threads, opts);
      try {
        sched.run_tasks(16, [](unsigned t) {
          if (t == 5 || t == 11) {
            throw std::runtime_error("task " + std::to_string(t));
          }
        });
        FAIL() << "expected rethrow, mode=" << support::to_string(mode)
               << " threads=" << threads;
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "task 5")
            << "mode=" << support::to_string(mode) << " threads=" << threads;
      }
      // The scheduler must stay usable after a failed dispatch.
      std::atomic<int> ran{0};
      sched.run_tasks(4, [&](unsigned) { ran.fetch_add(1); });
      EXPECT_EQ(ran.load(), 4);
    }
  }
}

TEST(SchedulerTest, PinningSmoke) {
  // Pinning is best-effort; the observable contract is only that work
  // still completes.
  SchedOptions opts;
  opts.pin_threads = true;
  for (const SchedMode mode : kModes) {
    opts.mode = mode;
    Scheduler sched(4, opts);
    std::atomic<int> ran{0};
    sched.run_tasks(8, [&](unsigned) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
  }
#if defined(__linux__)
  EXPECT_TRUE(Scheduler::pinning_supported());
#endif
}

TEST(SchedulerTest, ProfileCountersAccount) {
  SchedOptions opts;
  opts.mode = SchedMode::kWorkSteal;
  opts.profile = true;
  Scheduler sched(4, opts);
  sched.reset_profile();
  constexpr unsigned kTasks = 16;
  constexpr int kRepeats = 5;
  for (int i = 0; i < kRepeats; ++i) {
    sched.run_tasks(kTasks, [](unsigned) {});
  }
  ASSERT_EQ(sched.task_service_ns().size(), kTasks);
  ASSERT_EQ(sched.worker_task_counts().size(), sched.workers());
  const std::uint64_t total =
      std::accumulate(sched.worker_task_counts().begin(),
                      sched.worker_task_counts().end(), std::uint64_t{0});
  EXPECT_EQ(total, static_cast<std::uint64_t>(kTasks) * kRepeats);
  sched.reset_profile();
  const std::uint64_t after =
      std::accumulate(sched.worker_task_counts().begin(),
                      sched.worker_task_counts().end(), std::uint64_t{0});
  EXPECT_EQ(after, 0u);
}

// --- slab layout ------------------------------------------------------

TEST(ShardSlabTest, ViewsTileTheLogicalIndexSpace) {
  support::ShardSlab<int> slab;
  for (const std::size_t count : {1u, 7u, 64u, 129u}) {
    for (const unsigned shards : {1u, 2u, 5u, 8u}) {
      slab.reset(count, shards, -1);
      EXPECT_EQ(slab.count(), count);
      for (unsigned s = 0; s < slab.shards(); ++s) {
        int* view = slab.shard_view(s);
        const BalancedRange r = slab.range(s);
        for (std::size_t i = r.begin; i < r.end; ++i) {
          EXPECT_EQ(view[i], -1);
          view[i] = static_cast<int>(i);
        }
        // Segments are cache-line aligned: no two shards share a line.
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view + r.begin) % 64, 0u);
      }
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(slab.at(i), static_cast<int>(i));
      }
      std::vector<int> out;
      slab.copy_to(out);
      ASSERT_EQ(out.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(out[i], static_cast<int>(i));
      }
    }
  }
}

// --- mode independence of executor results ---------------------------

struct EngineRun {
  Matching matching;
  congest::RunStats stats;
  std::string metrics_json;
  std::string trace_jsonl;
};

EngineRun run_engine(const Graph& g, SchedMode mode, unsigned threads,
                     const FaultPlan& plan) {
  obs::Observer observer;
  Network::Options options;
  options.num_threads = threads;
  options.sched.mode = mode;
  options.fault = plan;
  options.observer = &observer;
  Network net(g, Model::kCongest, 5, 48, options);
  EngineRun out;
  out.stats = net.run(israeli_itai_factory(), 512);
  out.matching =
      plan.any() ? net.extract_matching_resilient() : net.extract_matching();
  std::ostringstream metrics;
  observer.metrics().write_json(metrics);
  out.metrics_json = metrics.str();
  std::ostringstream trace;
  observer.trace_sink().write_jsonl(trace);
  out.trace_jsonl = trace.str();
  return out;
}

TEST(SchedModeDeterminism, EngineIdenticalAcrossModesAndThreads) {
  const Graph g = gen::gnp(96, 5.0 / 96, 2);
  FaultPlan faulty;
  faulty.drop_prob = 0.05;
  faulty.duplicate_prob = 0.03;
  faulty.seed = 7;
  for (const FaultPlan& plan : {FaultPlan{}, faulty}) {
    const EngineRun ref = run_engine(g, SchedMode::kStatic, 1, plan);
    for (const SchedMode mode : kModes) {
      for (const unsigned threads : kThreadCounts) {
        const EngineRun got = run_engine(g, mode, threads, plan);
        SCOPED_TRACE(::testing::Message()
                     << "mode=" << support::to_string(mode)
                     << " threads=" << threads << " faulty=" << plan.any());
        EXPECT_TRUE(got.matching == ref.matching);
        EXPECT_EQ(got.stats.rounds, ref.stats.rounds);
        EXPECT_EQ(got.stats.messages, ref.stats.messages);
        EXPECT_EQ(got.stats.total_bits, ref.stats.total_bits);
        EXPECT_EQ(got.stats.dropped_messages, ref.stats.dropped_messages);
        EXPECT_EQ(got.stats.duplicated_messages,
                  ref.stats.duplicated_messages);
        // Byte-identical observability artifacts — the strongest form of
        // the layout-independence claim.
        EXPECT_EQ(got.metrics_json, ref.metrics_json);
        EXPECT_EQ(got.trace_jsonl, ref.trace_jsonl);
      }
    }
  }
}

TEST(SchedModeDeterminism, AsyncIdenticalAcrossModesAndThreads) {
  const Graph g = gen::gnp(64, 5.0 / 64, 3);
  FaultPlan faulty;
  faulty.drop_prob = 0.05;
  faulty.seed = 9;
  for (const FaultPlan& plan : {FaultPlan{}, faulty}) {
    congest::AsyncOptions ref_options;
    ref_options.num_threads = 1;
    ref_options.fault = plan;
    const congest::AsyncRunResult ref = congest::run_synchronized(
        g, israeli_itai_factory(), 5, 512, ref_options);
    for (const SchedMode mode : kModes) {
      for (const unsigned threads : kThreadCounts) {
        congest::AsyncOptions options;
        options.num_threads = threads;
        options.sched.mode = mode;
        options.fault = plan;
        const congest::AsyncRunResult got = congest::run_synchronized(
            g, israeli_itai_factory(), 5, 512, options);
        SCOPED_TRACE(::testing::Message()
                     << "mode=" << support::to_string(mode)
                     << " threads=" << threads << " faulty=" << plan.any());
        EXPECT_TRUE(got.matching == ref.matching);
        EXPECT_EQ(got.stats.events, ref.stats.events);
        EXPECT_EQ(got.stats.payload_messages, ref.stats.payload_messages);
        EXPECT_EQ(got.stats.virtual_rounds, ref.stats.virtual_rounds);
        EXPECT_EQ(got.dead_nodes, ref.dead_nodes);
      }
    }
  }
}

TEST(SchedModeDeterminism, ProfilingDoesNotPerturbResults) {
  // profile=true records wall-clock service times; with no observer
  // attached it must not change any deterministic output.
  const Graph g = gen::gnp(64, 5.0 / 64, 4);
  const EngineRun ref = run_engine(g, SchedMode::kStatic, 1, FaultPlan{});
  Network::Options options;
  options.num_threads = 8;
  options.sched.mode = SchedMode::kWorkSteal;
  options.sched.profile = true;
  Network net(g, Model::kCongest, 5, 48, options);
  const congest::RunStats stats = net.run(israeli_itai_factory(), 512);
  EXPECT_TRUE(net.extract_matching() == ref.matching);
  EXPECT_EQ(stats.rounds, ref.stats.rounds);
  EXPECT_EQ(stats.messages, ref.stats.messages);
  // The profile itself must be populated (one slot per shard).
  EXPECT_EQ(net.scheduler().task_service_ns().size(), net.num_shards());
}

}  // namespace
}  // namespace dmatch
