#include <gtest/gtest.h>

#include <tuple>

#include "core/api.hpp"
#include "graph/augmenting.hpp"
#include "graph/exact_small.hpp"
#include "graph/generators.hpp"
#include "graph/hungarian.hpp"
#include "graph/seq_matching.hpp"

namespace dmatch {
namespace {

// ------------------------------------------- augmentation enumerator

TEST(AugmentationEnumerator, FindsAugmentingPaths) {
  // 0-1-2-3 with 1-2 matched: the classic length-3 augmenting path plus
  // shorter alternating walks ending on the matched edge.
  const Graph g = gen::path(4);
  Matching m(4);
  m.add(g, 1);
  const auto augs = enumerate_alternating_augmentations(g, m, 3);
  bool found_full_path = false;
  for (const auto& a : augs) {
    EXPECT_FALSE(a.is_cycle);
    if (a.edges.size() == 3) {
      found_full_path = true;
      EXPECT_EQ(a.nodes, (std::vector<NodeId>{0, 1, 2, 3}));
    }
  }
  EXPECT_TRUE(found_full_path);
}

TEST(AugmentationEnumerator, FindsAlternatingCycles) {
  // C4 with opposite edges matched: exactly one alternating 4-cycle.
  const Graph g = gen::cycle(4);
  Matching m(4);
  m.add(g, 0);  // 0-1
  m.add(g, 2);  // 2-3
  const auto augs = enumerate_alternating_augmentations(g, m, 4);
  int cycles = 0;
  for (const auto& a : augs) {
    if (a.is_cycle) {
      ++cycles;
      EXPECT_EQ(a.edges.size(), 4u);
      EXPECT_EQ(a.nodes.front(), a.nodes.back());
    }
  }
  EXPECT_EQ(cycles, 1);
}

TEST(AugmentationEnumerator, EveryAugmentationIsApplicable) {
  // Property: M (+) A is a valid matching for every reported augmentation.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = gen::gnp(14, 0.3, seed);
    const Matching m = greedy_mwm(g);
    for (const auto& a : enumerate_alternating_augmentations(g, m, 5)) {
      Matching copy = m;
      EXPECT_NO_THROW(copy.symmetric_difference(g, a.edges))
          << "seed " << seed;
      EXPECT_TRUE(copy.is_valid(g));
    }
  }
}

TEST(AugmentationEnumerator, SubsumesAugmentingPathEnumerator) {
  // Every classic augmenting path must appear among the augmentations.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = gen::gnp(12, 0.3, seed + 20);
    const Matching m = greedy_mwm(g);
    const auto paths = enumerate_augmenting_paths(g, m, 5);
    const auto augs = enumerate_alternating_augmentations(g, m, 5);
    std::size_t aug_paths = 0;
    for (const auto& a : augs) {
      if (!a.is_cycle && a.edges.size() % 2 == 1 &&
          !m.contains(g, a.edges.front()) && !m.contains(g, a.edges.back())) {
        ++aug_paths;
      }
    }
    EXPECT_GE(aug_paths, paths.size()) << "seed " << seed;
  }
}

TEST(AugmentationEnumerator, SkipsSingleMatchedEdges) {
  const Graph g = gen::path(2);
  Matching m(2);
  m.add(g, 0);
  EXPECT_TRUE(enumerate_alternating_augmentations(g, m, 3).empty());
}

TEST(AugmentationEnumerator, MaxCountTruncates) {
  const Graph g = gen::complete_bipartite(4, 4);
  const Matching m(8);
  EXPECT_EQ(enumerate_alternating_augmentations(g, m, 1, 5).size(), 5u);
}

// ------------------------------------------------- (1 - eps)-MWM (LOCAL)

TEST(LocalMwm, CycleSwapIsFound) {
  // C4 where the current greedy-looking matching is 10x lighter than the
  // optimum; the only improvement is the alternating cycle.
  const Graph g = Graph::from_edges(
      4, {{0, 1, 1.0}, {1, 2, 10.0}, {2, 3, 1.0}, {0, 3, 10.0}});
  LocalMwmOptions options;
  options.epsilon = 0.5;
  options.seed = 3;
  const LocalMwmResult result = local_one_minus_eps_mwm(g, options);
  EXPECT_DOUBLE_EQ(result.matching.weight(g), 20.0);
}

class LocalMwmParam
    : public ::testing::TestWithParam<std::tuple<int, double, double, int>> {};

TEST_P(LocalMwmParam, MeetsGuaranteeAgainstExactOracle) {
  const auto [n, p, eps, seed] = GetParam();
  const Graph g = gen::with_uniform_weights(
      gen::gnp(n, p, static_cast<std::uint64_t>(seed)), 1.0, 20.0,
      static_cast<std::uint64_t>(seed) + 90);
  LocalMwmOptions options;
  options.epsilon = eps;
  options.seed = static_cast<std::uint64_t>(seed);
  const LocalMwmResult result = local_one_minus_eps_mwm(g, options);
  EXPECT_TRUE(result.matching.is_valid(g));
  const double opt = exact_mwm_value(g);
  EXPECT_GE(result.matching.weight(g) + 1e-9, result.guarantee * opt)
      << "n=" << n << " p=" << p << " eps=" << eps << " seed=" << seed;
  EXPECT_GE(result.guarantee, 1.0 - eps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocalMwmParam,
    ::testing::Combine(::testing::Values(10, 14, 18),
                       ::testing::Values(0.2, 0.4),
                       ::testing::Values(0.51, 0.34),
                       ::testing::Values(1, 2)));

TEST(LocalMwm, BipartiteAgainstHungarian) {
  const Graph g = gen::with_uniform_weights(
      gen::bipartite_gnp(10, 10, 0.3, 5), 1.0, 30.0, 6);
  LocalMwmOptions options;
  options.epsilon = 0.34;  // k = 3 -> guarantee 3/4
  options.seed = 7;
  const LocalMwmResult result = local_one_minus_eps_mwm(g, options);
  const double opt = hungarian_mwm(g).weight(g);
  EXPECT_GE(result.matching.weight(g) + 1e-9, 0.75 * opt);
}

TEST(LocalMwm, BeatsTheHalfBarrierOnSeriesPath) {
  // Three unit edges in series defeat Algorithm 5 (all gains 0 once the
  // middle edge is matched); the (1 - eps) algorithm must still find the
  // optimum because the full path is a positive augmentation.
  const Graph g =
      Graph::from_edges(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  LocalMwmOptions options;
  options.epsilon = 0.34;
  options.seed = 8;
  const LocalMwmResult result = local_one_minus_eps_mwm(g, options);
  EXPECT_DOUBLE_EQ(result.matching.weight(g), 2.0);
}

TEST(LocalMwm, MessagesExceedCongestCap) {
  const Graph g = gen::with_uniform_weights(gen::gnp(20, 0.2, 9), 1.0, 9.0,
                                            10);
  LocalMwmOptions options;
  options.epsilon = 0.51;
  options.seed = 11;
  const LocalMwmResult result = local_one_minus_eps_mwm(g, options);
  congest::Network ref(g, congest::Model::kCongest, 0);
  EXPECT_GT(result.stats.max_message_bits, ref.message_cap_bits());
}

TEST(LocalMwm, DeterministicUnderSeed) {
  const Graph g = gen::with_uniform_weights(gen::gnp(14, 0.3, 12), 1.0, 9.0,
                                            13);
  LocalMwmOptions options;
  options.epsilon = 0.51;
  options.seed = 21;
  const LocalMwmResult a = local_one_minus_eps_mwm(g, options);
  const LocalMwmResult b = local_one_minus_eps_mwm(g, options);
  EXPECT_TRUE(a.matching == b.matching);
  EXPECT_EQ(a.sweeps, b.sweeps);
}

TEST(LocalMwm, EmptyGraph) {
  const Graph g = Graph::from_edges(3, {});
  const LocalMwmResult result = local_one_minus_eps_mwm(g, {});
  EXPECT_EQ(result.matching.size(), 0u);
  EXPECT_EQ(result.sweeps, 0);
}

TEST(LocalMwm, FixedSweepScheduleAlsoWorks) {
  const Graph g = gen::with_uniform_weights(gen::gnp(12, 0.3, 14), 1.0, 9.0,
                                            15);
  LocalMwmOptions options;
  options.epsilon = 0.51;
  options.adaptive_sweeps = false;
  options.seed = 16;
  const LocalMwmResult result = local_one_minus_eps_mwm(g, options);
  EXPECT_EQ(result.sweeps, 8);  // ceil(4 / 0.51)
  EXPECT_TRUE(result.matching.is_valid(g));
  const double opt = exact_mwm_value(g);
  // Fixed schedule: w.h.p. rather than certified, so allow slack.
  EXPECT_GE(result.matching.weight(g) + 1e-9, 0.4 * opt);
}

}  // namespace
}  // namespace dmatch
