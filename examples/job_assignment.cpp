// Weighted job/server assignment (the paper's MWM motivation): jobs gain a
// benefit when run on one of a subset of servers, each server takes one
// job; maximizing total benefit is exactly maximum weight matching.
//
//   build/examples/job_assignment [jobs] [servers] [seed]
#include <cstdlib>
#include <iostream>

#include "core/api.hpp"
#include "graph/generators.hpp"
#include "graph/hungarian.hpp"
#include "graph/seq_matching.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main(int argc, char** argv) {
  const NodeId jobs = argc > 1 ? std::atoi(argv[1]) : 60;
  const NodeId servers = argc > 2 ? std::atoi(argv[2]) : 40;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  // Each job is compatible with ~20% of servers; benefits are heavy-tailed
  // (a few very profitable placements), stressing the weight classes.
  const Graph g = gen::with_exponential_weights(
      gen::bipartite_gnp(jobs, servers, 0.2, seed), 1000.0, seed + 1);
  std::cout << "Assignment market: " << jobs << " jobs, " << servers
            << " servers, " << g.edge_count() << " compatible pairs\n\n";

  const double opt = hungarian_mwm(g).weight(g);
  Table table({"algorithm", "benefit", "fraction of optimum", "rounds"});
  table.row()
      .cell("Hungarian (centralized optimum)")
      .cell(opt, 1)
      .cell(1.0, 3)
      .cell(std::uint64_t{0});

  const Matching greedy = greedy_mwm(g);
  table.row()
      .cell("sequential greedy 1/2-MWM")
      .cell(greedy.weight(g), 1)
      .cell(greedy.weight(g) / opt, 3)
      .cell(std::uint64_t{0});

  for (const auto box : {HalfMwmOptions::BlackBox::kClassGreedy,
                         HalfMwmOptions::BlackBox::kLocallyDominant}) {
    HalfMwmOptions options;
    options.epsilon = 0.05;
    options.black_box = box;
    options.seed = seed + 2;
    const HalfMwmResult result = approx_mwm(g, options);
    table.row()
        .cell(box == HalfMwmOptions::BlackBox::kClassGreedy
                  ? "Algorithm 5 + class-greedy box"
                  : "Algorithm 5 + locally-dominant box")
        .cell(result.matching.weight(g), 1)
        .cell(result.matching.weight(g) / opt, 3)
        .cell(result.stats.rounds);
  }
  table.print(std::cout);
  std::cout << "\nAlgorithm 5 guarantees (1/2 - eps) of the optimum but in\n"
               "practice lands well above it; all coordination used only\n"
               "O(log n)-bit messages.\n";
  return 0;
}
