// The even ring C_2n: the paper's introductory lower-bound instance.
//
// C_2n has exactly two maximum matchings (all even edges or all odd edges),
// so computing an *exact* MCM distributively needs Omega(n) rounds -- while
// the approximation algorithms get within (1 - 1/k) in O(log n) rounds.
// This example makes that tradeoff concrete.
//
//   build/examples/ring_lower_bound [max_n]
#include <cstdlib>
#include <iostream>

#include "core/api.hpp"
#include "support/table.hpp"
#include "graph/generators.hpp"

using namespace dmatch;

int main(int argc, char** argv) {
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 256;

  Table table({"ring size", "optimum", "II |M|", "II rounds", "ours |M| (k=4)",
               "ours rounds", "ours ratio"});
  for (int n = 32; n <= max_n; n *= 2) {
    const Graph g = gen::cycle(n);
    const std::size_t opt = static_cast<std::size_t>(n) / 2;

    const auto ii = maximal_matching(g, 3);

    GeneralMcmOptions options;
    options.k = 4;
    options.seed = 5;
    const auto ours = approx_mcm_general(g, options);

    table.row()
        .cell(std::int64_t{n})
        .cell(opt)
        .cell(ii.matching.size())
        .cell(ii.stats.rounds)
        .cell(ours.matching.size())
        .cell(ours.stats.rounds)
        .cell(static_cast<double>(ours.matching.size()) /
                  static_cast<double>(opt),
              3);
  }
  table.print(std::cout);
  std::cout << "\nAn exact answer must pick 'all even' or 'all odd' edges --\n"
               "a global parity decision needing Omega(n) rounds. The\n"
               "approximation sidesteps the lower bound: its deficit stays\n"
               "below 1/k of the optimum at polylogarithmic cost.\n";
  return 0;
}
