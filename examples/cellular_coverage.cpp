// Cellular coverage (Patt-Shamir, Rawitz & Scalosub [2012], which uses
// this paper's matching algorithm as its key component): assign mobile
// clients to base stations, where every mobile needs one station and each
// station serves at most `capacity` mobiles. That is a maximum-cardinality
// b-matching, solved here through the Tutte-gadget reduction plus the
// (1 - 1/k) general-graph matcher.
//
//   build/examples/cellular_coverage [mobiles] [stations] [capacity]
#include <cstdlib>
#include <iostream>

#include "core/api.hpp"
#include "graph/generators.hpp"
#include "support/table.hpp"

using namespace dmatch;

int main(int argc, char** argv) {
  const NodeId mobiles = argc > 1 ? std::atoi(argv[1]) : 60;
  const NodeId stations = argc > 2 ? std::atoi(argv[2]) : 8;
  const int station_capacity = argc > 3 ? std::atoi(argv[3]) : 6;

  // Each mobile hears ~30% of stations (radio reachability).
  const Graph g = gen::bipartite_gnp(mobiles, stations, 0.3, 11);
  std::vector<int> capacity(static_cast<std::size_t>(g.node_count()), 1);
  for (NodeId s = mobiles; s < mobiles + stations; ++s) {
    capacity[static_cast<std::size_t>(s)] = station_capacity;
  }

  std::cout << "Coverage instance: " << mobiles << " mobiles, " << stations
            << " stations (capacity " << station_capacity << " each), "
            << g.edge_count() << " reachable pairs\n\n";

  const std::size_t exact = exact_max_b_matching_size(g, capacity);

  Table table({"k", "assigned mobiles", "fraction of optimum",
               "gadget nodes", "rounds"});
  for (const int k : {2, 3, 4}) {
    GeneralMcmOptions options;
    options.k = k;
    options.seed = 13;
    const BMatchingResult result = approx_max_b_matching(g, capacity, options);
    table.row()
        .cell(std::int64_t{k})
        .cell(result.selected.size())
        .cell(exact == 0
                  ? 1.0
                  : static_cast<double>(result.selected.size()) /
                        static_cast<double>(exact),
              3)
        .cell(std::int64_t{result.gadget_nodes})
        .cell(result.stats.rounds);
  }
  table.print(std::cout);
  std::cout << "\nOptimum (Tutte gadget + Blossom): " << exact
            << " of " << mobiles << " mobiles assigned.\n"
            << "Station capacities are enforced by construction; the\n"
               "distributed matcher closes the gap to the optimum as k "
               "grows.\n";
  return 0;
}
