// Input-queued switch scheduling (the paper's Figure 1 application).
//
// Compares three schedulers on the same traffic:
//   * maximum matching (Hopcroft-Karp) -- the centralized ideal,
//   * Israeli-Itai maximal matching    -- the II/PIM/iSLIP family,
//   * our bipartite (1 - 1/k)-MCM      -- Theorem 3.10.
//
//   build/examples/switch_scheduler [ports] [cycles] [load]
#include <cstdlib>
#include <iostream>

#include "support/table.hpp"
#include "switchsim/switch_sim.hpp"

using namespace dmatch;
using switchsim::SwitchStats;
using switchsim::TrafficConfig;

namespace {

const char* pattern_name(TrafficConfig::Pattern p) {
  switch (p) {
    case TrafficConfig::Pattern::kUniform:
      return "uniform";
    case TrafficConfig::Pattern::kDiagonal:
      return "diagonal";
    case TrafficConfig::Pattern::kBursty:
      return "bursty";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const int ports = argc > 1 ? std::atoi(argv[1]) : 16;
  const int cycles = argc > 2 ? std::atoi(argv[2]) : 2000;
  const double load = argc > 3 ? std::atof(argv[3]) : 0.9;

  std::cout << "Input-queued switch: " << ports << " ports, " << cycles
            << " cycles, offered load " << load << "\n\n";

  Table table({"traffic", "scheduler", "throughput", "mean delay", "backlog"});
  for (const auto pattern :
       {TrafficConfig::Pattern::kUniform, TrafficConfig::Pattern::kDiagonal,
        TrafficConfig::Pattern::kBursty}) {
    TrafficConfig traffic;
    traffic.pattern = pattern;
    traffic.load = load;

    const auto run = [&](const char* name, const switchsim::Scheduler& s) {
      const SwitchStats stats =
          switchsim::simulate_switch(ports, cycles, traffic, s, 42);
      table.row()
          .cell(pattern_name(pattern))
          .cell(name)
          .cell(stats.throughput(), 4)
          .cell(stats.mean_delay(), 2)
          .cell(stats.backlog);
    };

    run("maximum (HK)", switchsim::schedule_maximum);
    run("Israeli-Itai", [](const Graph& g, int cycle) {
      return switchsim::schedule_israeli_itai(g, cycle, 7);
    });
    switchsim::IslipScheduler islip(ports);
    run("iSLIP(3)", [&islip](const Graph& g, int cycle) {
      return islip(g, cycle);
    });
    run("ours k=4", [](const Graph& g, int cycle) {
      return switchsim::schedule_bipartite_mcm(g, cycle, 4, 7);
    });
  }
  table.print(std::cout);
  std::cout << "\nHigher matching quality -> lower backlog and delay at the\n"
               "same offered load; the gap widens under adversarial "
               "(diagonal)\nand bursty traffic.\n";
  return 0;
}
