// Quickstart: run every headline algorithm of the library on small random
// graphs and print what it achieved and what it cost.
//
//   build/examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/api.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/hungarian.hpp"

using namespace dmatch;

namespace {

void print_stats(const char* name, std::size_t got, std::size_t opt,
                 const congest::RunStats& stats) {
  std::cout << "  " << name << ": |M| = " << got << " (optimum " << opt
            << ", ratio " << (opt ? static_cast<double>(got) / opt : 1.0)
            << ")\n    rounds = " << stats.rounds
            << ", messages = " << stats.messages
            << ", max message = " << stats.max_message_bits << " bits\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  std::cout << "== Unweighted bipartite: Theorem 3.10 ==\n";
  const Graph bip = gen::bipartite_gnp(64, 64, 0.08, seed);
  const std::size_t bip_opt = hopcroft_karp(bip).size();
  {
    const auto base = maximal_matching(bip, seed + 1);
    print_stats("Israeli-Itai 1/2-MCM ", base.matching.size(), bip_opt,
                base.stats);
    BipartiteMcmOptions options;
    options.k = 5;
    const auto ours = approx_mcm_bipartite(bip, seed + 2, options);
    print_stats("(1 - 1/5)-MCM (ours) ", ours.matching.size(), bip_opt,
                ours.stats);
  }

  std::cout << "\n== Unweighted general graphs: Theorem 3.15 ==\n";
  const Graph gg = gen::gnp(80, 0.06, seed + 3);
  const std::size_t gg_opt = blossom_mcm(gg).size();
  {
    const auto base = maximal_matching(gg, seed + 4);
    print_stats("Israeli-Itai 1/2-MCM ", base.matching.size(), gg_opt,
                base.stats);
    GeneralMcmOptions options;
    options.k = 3;
    options.seed = seed + 5;
    const auto ours = approx_mcm_general(gg, options);
    print_stats("(1 - 1/3)-MCM (ours) ", ours.matching.size(), gg_opt,
                ours.stats);
    std::cout << "    red/blue sampling iterations: " << ours.iterations
              << " (productive: " << ours.productive_iterations << ")\n";
  }

  std::cout << "\n== Weighted: Theorem 4.5 ==\n";
  const Graph wg = gen::with_uniform_weights(
      gen::bipartite_gnp(40, 40, 0.15, seed + 6), 1.0, 100.0, seed + 7);
  const double w_opt = hungarian_mwm(wg).weight(wg);
  {
    HalfMwmOptions options;
    options.epsilon = 0.05;
    options.seed = seed + 8;
    const auto ours = approx_mwm(wg, options);
    std::cout << "  (1/2 - 0.05)-MWM: w(M) = " << ours.matching.weight(wg)
              << " (optimum " << w_opt << ", ratio "
              << ours.matching.weight(wg) / w_opt << ")\n    iterations = "
              << ours.iterations << ", rounds = " << ours.stats.rounds
              << "\n";
  }

  std::cout << "\n== LOCAL-model generic algorithm: Theorem 3.7 ==\n";
  const Graph lg = gen::gnp(32, 0.15, seed + 9);
  {
    LocalGenericOptions options;
    options.epsilon = 0.34;
    options.seed = seed + 10;
    const auto ours = local_generic_mcm(lg, options);
    const std::size_t opt = blossom_mcm(lg).size();
    print_stats("(1 - 0.34)-MCM LOCAL ", ours.matching.size(), opt,
                ours.stats);
    std::cout << "    (note the message size: LOCAL floods whole views)\n";
  }
  return 0;
}
