#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from fresh bench output.

Usage:
    cmake --build build
    for b in build/bench/*; do $b > /tmp/$(basename $b).out 2>&1; done
    python3 tools/regen_experiments.py [--out EXPERIMENTS.md] [--dir /tmp]

Each experiment entry pairs a prose claim/expectation block with the
verbatim table the corresponding bench binary printed.
"""
import argparse
import json
import pathlib
import sys

HEADER = """# EXPERIMENTS — paper claims vs. measurements

The paper ("Improved Distributed Approximate Matching", JACM 2015; see the
title-collision note in DESIGN.md) is a theory paper with **no measured
tables or figures**. Its evaluation-grade content is the set of theorem
statements. This file therefore defines one experiment per theorem-level
claim (plus the application, ablations, and extension experiments), names
the bench binary that regenerates it, and records what the paper guarantees
next to what the simulator measures. Regenerate everything with:

```sh
cmake -B build -G Ninja && cmake --build build
for b in build/bench/*; do $b > /tmp/$(basename $b).out 2>&1; done
python3 tools/regen_experiments.py
```

All tables below are verbatim bench output (seeds fixed inside each
binary, so reruns reproduce them bit-for-bit on the same toolchain).
Because our substrate is a simulator rather than the authors' model
analysis, the claims to check are *shapes and bounds*: who wins, how
quantities scale, and that no guarantee is ever violated.

---

"""

ENTRIES = [
    ("bench_bipartite_ratio", "E1 — Theorem 3.10 (approximation)",
     "**Paper claim.** In bipartite graphs a `(1 − 1/k)`-MCM is computed w.h.p.\n"
     "(our adaptive phases make the bound deterministic; see DESIGN.md note 3).\n\n"
     "**Expectation.** `min ratio >= 1 − 1/k` in every row; ratios approach 1 as\n"
     "k grows.  **Measured:** holds with large slack everywhere.\n"),
    ("bench_bipartite_rounds", "E2 — Theorem 3.10 (rounds)",
     "**Paper claim.** `O(k^3 log Δ + k^2 log n)` rounds.\n\n"
     "**Expectation.** At fixed k and constant expected degree, rounds/log2(n)\n"
     "stays bounded over a 64x range of n; at fixed n, rounds grow with k and\n"
     "then flatten once `2k − 1` exceeds the longest augmenting path the\n"
     "instance has.  **Measured:** both hold.\n"),
    ("bench_general_ratio", "E3 — Theorem 3.15 (approximation, general graphs)",
     "**Paper claim.** `(1 − 1/k)`-MCM on arbitrary graphs via the red/blue\n"
     "bipartite reduction.\n\n"
     "**Expectation.** Bound respected on odd cycles, cliques, power-law and\n"
     "near-regular graphs — the structures bipartite algorithms cannot touch\n"
     "directly.  **Measured:** every ratio clears its bound; odd cycles (the\n"
     "hardest case for the sampling) land ≈0.96–0.98.\n"),
    ("bench_general_iters", "E4 — Theorem 3.15 (sampling budget)",
     "**Paper claim.** `2^(2k+1)(k+1) ln k` color-sampling iterations suffice\n"
     "w.h.p.\n\n"
     "**Expectation.** The adaptive runs (which stop only after an exact oracle\n"
     "certifies no augmenting path of length ≤ 2k−1 remains) should finish far\n"
     "below the exponential budget, confirming the budget is a worst-case\n"
     "guarantee, not typical behaviour.  **Measured:** 1–2 orders of magnitude\n"
     "below budget; the needed-samples trend still grows with k.\n"),
    ("bench_weighted_ratio", "E5 — Theorem 4.5 (approximation, weighted)",
     "**Paper claim.** `(1/2 − ε)`-MWM for any ε > 0.\n\n"
     "**Expectation.** Measured ratios never fall below `1/2 − ε` against exact\n"
     "optima (Hungarian on bipartite; the exponential oracle on small general\n"
     "graphs), and typically sit far above, since the worst case needs the\n"
     "series-path structure of Section 4's closing remark.\n"
     "**Measured:** min ratios ≈0.88–0.92, bound never violated.\n"),
    ("bench_weighted_rounds", "E6 — Theorem 4.5 (rounds)",
     "**Paper claim.** `O(log(1/ε) · log n)` rounds with the PODC 2007 black\n"
     "box; our class-greedy stand-in costs an extra `log n` factor (DESIGN.md\n"
     "note 5), so the shape under test is: iterations ∝ `ln(2/ε)`, rounds\n"
     "polylog in n.  **Measured:** the fixed schedule matches the `ln(2/ε)`\n"
     "formula exactly and per-n growth is polylogarithmic.\n"),
    ("bench_baseline_ii", "E7 — Israeli–Itai baseline and the improvement over it",
     "**Paper claim (background).** II gives a `1/2`-MCM in `O(log n)` rounds;\n"
     "the paper's contribution is closing most of the remaining gap.\n\n"
     "**Expectation.** II ratios ≈0.85–0.95 (well above its 1/2 guarantee but\n"
     "clearly below 1); our k=4 algorithm shrinks the deficit to below 1/k.\n"
     "**Measured:** deficit shrinks by 13–21×.\n"),
    ("bench_message_bits", "E8 — CONGEST compliance (message sizes)",
     "**Paper claim.** Theorems 3.10/3.15/4.5 use `O(log n)`-bit messages;\n"
     "Theorem 3.7 (LOCAL) needs `O((|V|+|E|) log n)`-bit messages (Lemma 3.4).\n\n"
     "**Expectation.** CONGEST algorithms' max message size is a constant\n"
     "number of machine words independent of n; the LOCAL algorithm blows\n"
     "through the cap.  **Measured:** 2–130 bits vs thousands for LOCAL.\n"),
    ("bench_local_generic", "E9 — Theorem 3.7 (LOCAL generic algorithm)",
     "**Paper claim.** `(1 − ε)`-MCM in `O(ε⁻³ log n)` LOCAL rounds.\n\n"
     "**Expectation.** Same quality as the CONGEST pipeline (both implement\n"
     "Algorithm 1) at much larger message sizes; phase retries (the w.h.p.\n"
     "failure path) should be rare.  **Measured:** bounds met, zero retries.\n"),
    ("bench_switch", "E10 — Figure 1 application (switch scheduling)",
     "**Paper claim (motivation).** Better matchings raise switch throughput;\n"
     "PIM/iSLIP (the production schedulers) are II-family maximal matchings.\n\n"
     "**Expectation.** Near saturation, our scheduler tracks the centralized\n"
     "maximum while II and iSLIP accumulate delay and backlog; the weighted\n"
     "schedulers (Hungarian max-weight and Theorem 4.5's distributed\n"
     "approximation of it) serve the longest queues.\n"
     "**Measured:** at 0.98 uniform load the delay/backlog gap is ≈2×.\n"),
    ("bench_ablation_blackbox", "E11 — Ablation: Algorithm 5 black box",
     "**Design question.** Theorem 4.5 needs a polylog-round constant-factor\n"
     "box; is the extra machinery worth it over the simple locally-dominant\n"
     "rule?\n\n"
     "**Expectation.** Locally-dominant gives better per-iteration quality but\n"
     "Θ(n) rounds on a decreasing-weight chain; class-greedy stays polylog.\n"
     "**Measured:** the chain costs the dominant box hundreds of rounds at\n"
     "n=128 (linear), exactly the failure mode the PODC 2007 box avoids.\n"),
    ("bench_ablation_budget", "E12 — Ablation: fixed w.h.p. budgets vs adaptive oracle",
     "**Design question.** What do the paper's fixed `c log N` (Lemma 3.9) and\n"
     "`2^(2k+1)(k+1) ln k` (Algorithm 4) budgets cost relative to oracle-checked\n"
     "termination?\n\n"
     "**Measured:** identical quality; fixed budgets pay ~45× (phases) and\n"
     "~13× (sampling loop) more rounds.\n"),
    ("bench_micro_solvers", "E13 — Reference-solver and simulator microbenchmarks",
     "**Role.** The centralized oracles must be fast enough to sit inside the\n"
     "sweeps; google-benchmark timings with asymptotic fits, plus end-to-end\n"
     "simulator throughput (one full Israeli–Itai run per iteration).\n"),
    ("bench_local_mwm", "E14 — Section 4 Remark: (1 − ε)-MWM in the LOCAL model",
     "**Paper claim.** A `(1 − ε)`-MWM is computable in `O(ε⁻⁴ log² n)` LOCAL\n"
     "time by adapting Hougardy–Vinkemeier (also Nieberg [2008]).\n\n"
     "**Expectation.** Quality beats Algorithm 5 and meets the k/(k+1)\n"
     "certificate (Lemma 4.2 at the adaptive stopping point); message sizes\n"
     "grow with the view, which is why the paper leaves small-message\n"
     "(1−ε)-MWM open.  **Measured:** ratios ≈1.0, message blow-up visible.\n"),
    ("bench_synchronizer", "E15 — Footnote 2: synchrony is WLOG (α synchronizer)",
     "**Paper claim.** The synchronous assumption costs nothing thanks to\n"
     "Awerbuch's α synchronizer.\n\n"
     "**Expectation.** Protocols executed over the asynchronous event network\n"
     "through the synchronizer produce *identical* results (also asserted\n"
     "bit-for-bit by the test suite), paying one ACK per payload and one SAFE\n"
     "per edge per pulse.  **Measured:** identical results, ~20–30× message\n"
     "overhead, zero extra virtual rounds.\n"),
    ("bench_convergence", "E16 — Convergence curves (Lemmas 3.3 and 3.13)",
     "**Paper claim.** After exhausting augmenting paths of length ≤ ell the\n"
     "matching is a `1 − 2/(ell+3)` approximation (Lemma 3.3); Algorithm 4's\n"
     "deficit contracts geometrically per sampling iteration (Lemma 3.13).\n\n"
     "**Measured:** phase-by-phase ratios run ahead of the certified schedule;\n"
     "the general reduction finds most of the matching in the first few\n"
     "iterations, converging geometrically.\n"),
    ("bench_b_matching", "E17 — Extension: capacitated (c-)matching",
     "**Context.** The related-work section points to the c-matching\n"
     "generalization ([Koufogiannakis & Young 2011]) and the cellular-coverage\n"
     "application built on this paper's algorithm ([Patt-Shamir et al. 2012]).\n"
     "We implement b-matching via the Tutte gadget over the Theorem 3.15\n"
     "matcher.\n\n"
     "**Measured:** validity by construction, ratios tracking the\n"
     "plain-matching experiments, at a constant-factor larger simulated graph.\n"),
    ("bench_round_engine", "E18 — Simulator scaling: the parallel sharded round engine",
     "**Claim (engineering, not the paper's).** A CONGEST round is a BSP\n"
     "superstep, so the sharded round engine should produce bit-identical\n"
     "rounds/messages for any worker-thread count and scale\n"
     "node-steps-per-second with threads up to the core count.\n\n"
     "**Expectation.** `rounds`/`messages` constant down each `n` block;\n"
     "`speedup vs 1T` ≥ 2 at 4 threads on `n = 1e5` on ≥ 4 cores. Also\n"
     "writes `BENCH_round_engine.json` at the repo root.\n"),
    ("bench_fault_ratio", "E19/E20 — Graceful degradation and ARQ round overhead",
     "**Claim (engineering, not the paper's).** E19: under injected drops and\n"
     "crashes the drivers terminate within budget, return valid matchings that\n"
     "match no crashed node, and lose quality only by about the dead fraction.\n"
     "E20: the selective-repeat link layer stays within ~2× real rounds of the\n"
     "fault-free baseline through drop = 0.05 where the window-1\n"
     "stop-and-wait degenerate collapses; the window-16 arm records whether\n"
     "the full 16-bit SACK window closes the drop = 0.1 gap of window 8.\n"
     "Also writes `BENCH_fault_ratio.json` at the repo root.\n"),
    ("bench_obs_overhead", "E21 — Observability overhead (src/obs)",
     "**Claim (engineering, not the paper's).** Full observation (metrics +\n"
     "trace + link profiler) slows the protocol round loop by < 5%; an\n"
     "unattached Observer costs one branch per round; building with\n"
     "`-DDMATCH_OBS_DISABLED` compiles every hook out (0% by construction).\n\n"
     "**Expectation.** `overhead` < 0.05 on the protocol rows; the flood rows\n"
     "bound the hook's raw per-message cost against a near-empty baseline.\n"
     "Also writes `BENCH_obs_overhead.json` at the repo root.\n"),
    ("bench_async_scaling", "E22 — Sharded async executor scaling",
     "**Claim (engineering, not the paper's).** The sharded event executor\n"
     "produces bit-identical events/virtual-rounds/matchings for any thread\n"
     "count and its event throughput scales with threads up to the core\n"
     "count.\n\n"
     "**Expectation.** `events`/`virtual rounds` constant down each `n`\n"
     "block; events/s grows with threads when real cores are available (on a\n"
     "1-core container every speedup is ≤ 1 and the determinism columns are\n"
     "the load-bearing check). Also writes `BENCH_async_scaling.json` at the\n"
     "repo root.\n"),
    ("bench_scheduling", "E23 — Scheduling modes (static / steal / rapid)",
     "**Claim (engineering, not the paper's).** Dispatch mode (static /\n"
     "work-stealing / rapid-start), thread pinning and profiling change only\n"
     "*when* shard tasks run, never results: matchings, RunStats and obs\n"
     "artifacts are byte-identical across every mode × thread-count ×\n"
     "fault-plan cell. Work stealing targets the per-shard service-time skew\n"
     "that power-law graphs create (hub shards run hotter than the\n"
     "balanced-partition average).\n\n"
     "**Expectation.** Every determinism row says `identical=yes`; the\n"
     "balance section shows max/median service-time skew well above 1 on\n"
     "`ba_powerlaw` and ≈ 1 on `gnp`; dispatch-overhead and throughput\n"
     "sections need real cores to rank the modes. Also writes\n"
     "`BENCH_scheduling.json` at the repo root.\n"),
]

SUMMARY = """## Summary

| Experiment | Claim | Verdict |
|---|---|---|
| E1 | bipartite ratio ≥ 1 − 1/k | holds, deterministic, large slack |
| E2 | rounds O(k³ log Δ + k² log n) | log-in-n flat over 64x, poly-in-k then saturates |
| E3 | general ratio ≥ 1 − 1/k | holds on all families incl. odd cycles |
| E4 | 2^(2k) sampling budget | conservative; adaptive ≪ budget |
| E5 | weighted ratio ≥ 1/2 − ε | holds, typically ≥ 0.88 |
| E6 | iterations ∝ ln(2/ε), rounds polylog(n) | matches formula exactly |
| E7 | II = 1/2-MCM in O(log n) | ~0.87 measured; deficit shrunk 13–21× |
| E8 | O(log n)-bit messages | ≤ 130 bits constant; LOCAL blows up |
| E9 | LOCAL (1−ε)-MCM | quality met; message price visible |
| E10 | switch motivation | delay/backlog gap opens at high load |
| E11 | black-box choice | chain exposes Θ(n) rounds of dominant box |
| E12 | fixed vs adaptive budgets | same quality, 13–45× round premium |
| E13 | oracle/simulator speed | fast enough for all sweeps |
| E14 | (1−ε)-MWM LOCAL remark | certificate met, ratios ≈ 1.0 |
| E15 | synchrony WLOG | identical results; measured overhead |
| E16 | convergence schedules | Lemma 3.3/3.13 shapes reproduced |
| E17 | c-matching extension | reduction preserves quality |
| E18 | round-engine scaling | thread-count-invariant results; parallel speedup needs multicore hardware |
| E19 | graceful degradation under faults | drops fully masked by ARQ; crashes cost ≈ the dead fraction; 0 invalid matchings |
| E20 | selective-repeat ARQ overhead | ~1.03× lossless, ≤ 2× through 5 % drops; window 16 does NOT close the 10 %-drop gap (loss-recovery-bound) |
| E21 | observability overhead | < 5 % enabled on the protocol round loop; 0 % compiled out |
| E22 | sharded async executor scaling | thread-count-invariant events/rounds/matchings; multicore speedup needs real cores |
| E23 | scheduling modes (static/steal/rapid) | determinism cells identical across mode × threads × faults; hub-shard skew on power-law graphs = the slack stealing targets; timing needs real cores |

No experiment violated a guarantee. Absolute round counts are simulator
artifacts (constants depend on protocol framing); every *scaling* claim of
the paper reproduces.
"""


def bench_json_section() -> str:
    """Index the machine-readable BENCH_*.json result files at the repo
    root (written by the bench binaries themselves, schema
    {"bench", "commit", "machine", "cells": [...]})."""
    root = pathlib.Path(__file__).resolve().parent.parent
    files = sorted(root.glob("BENCH_*.json"))
    if not files:
        return ""
    section = (
        "\n## Machine-readable results\n\n"
        "Written at the repo root by the bench binaries (schema\n"
        '`{"bench", "commit", "machine", "cells": [...]}` — the `machine`\n'
        "object records `hardware_concurrency`, pinning support and the\n"
        "sched mode, so timing cells are interpretable off-box):\n\n"
        "| file | bench | commit | cells |\n|---|---|---|---|\n"
    )
    for f in files:
        try:
            data = json.loads(f.read_text())
        except (OSError, json.JSONDecodeError):
            section += f"| {f.name} | (unreadable) | | |\n"
            continue
        section += (
            f"| {f.name} | {data.get('bench', '?')} "
            f"| {data.get('commit', '?')} | {len(data.get('cells', []))} |\n"
        )
    return section


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument("--dir", default="/tmp")
    args = parser.parse_args()

    outs = {}
    for f in pathlib.Path(args.dir).glob("bench_*.out"):
        outs[f.stem] = f.read_text()

    doc = HEADER
    missing = []
    for stem, title, blurb in ENTRIES:
        doc += f"## {title}\n\nBinary: `build/bench/{stem}`\n\n{blurb}\n"
        body = outs.get(stem)
        if body is None:
            missing.append(stem)
            body = "(run the binary to regenerate)\n"
        doc += "```\n" + body.strip() + "\n```\n\n---\n\n"
    doc += SUMMARY
    doc += bench_json_section()

    pathlib.Path(args.out).write_text(doc)
    print(f"wrote {args.out} ({len(doc)} bytes)")
    if missing:
        print("missing bench outputs:", ", ".join(missing), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
