// Summarize or diff structured trace logs (the .jsonl files written by
// dmatch_cli --trace-out and obs::TraceSink::write_jsonl).
//
// Usage:
//   trace_summarize A.jsonl            summary: events per type, time span
//   trace_summarize A.jsonl B.jsonl    determinism diff: compares the two
//                                      event multisets and exits 1 if they
//                                      differ (order is ignored -- merged
//                                      traces are event-SET identical
//                                      across thread counts, and the
//                                      writer already sorts canonically)
//
// The diff mode is the check behind the obs test label: run the same
// workload at two thread counts with --trace-out, then diff the logs.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

namespace {

/// Extract the string value of `key` from a flat one-line JSON object
/// ("" if absent). Good enough for the writer's own fixed format; this
/// is not a general JSON parser.
std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return "";
  auto begin = pos + needle.size();
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    const auto end = line.find('"', begin);
    return line.substr(begin, end - begin);
  }
  auto end = begin;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(begin, end - begin);
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "error: cannot open " << path << "\n";
    std::exit(2);
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  if (!lines.empty() && lines.front().rfind("[", 0) == 0) {
    std::cerr << "error: " << path
              << " is a Chrome trace_event JSON (starts with '['); this "
                 "tool reads the structured .jsonl log — dmatch_cli "
                 "--trace-out FILE writes both FILE and FILE.jsonl\n";
    std::exit(2);
  }
  return lines;
}

int summarize(const std::string& path) {
  const std::vector<std::string> lines = read_lines(path);
  std::map<std::string, std::uint64_t> by_type;
  std::uint64_t t_min = UINT64_MAX;
  std::uint64_t t_max = 0;
  for (const std::string& line : lines) {
    ++by_type[json_field(line, "type")];
    const std::string t = json_field(line, "t");
    if (!t.empty()) {
      const std::uint64_t tv = std::stoull(t);
      t_min = std::min(t_min, tv);
      t_max = std::max(t_max, tv);
    }
  }
  std::cout << path << ": " << lines.size() << " events";
  if (!lines.empty()) std::cout << ", rounds " << t_min << ".." << t_max;
  std::cout << "\n";
  for (const auto& [type, count] : by_type) {
    std::cout << "  " << type << ": " << count << "\n";
  }
  return 0;
}

int diff(const std::string& path_a, const std::string& path_b) {
  std::vector<std::string> a = read_lines(path_a);
  std::vector<std::string> b = read_lines(path_b);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  if (a == b) {
    std::cout << "traces agree (" << a.size() << " events)\n";
    return 0;
  }
  // Report the first few events on each side that the other lacks.
  std::vector<std::string> only_a;
  std::vector<std::string> only_b;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(only_a));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(only_b));
  std::cout << "traces DIFFER: " << a.size() << " vs " << b.size()
            << " events, " << only_a.size() << " only in " << path_a << ", "
            << only_b.size() << " only in " << path_b << "\n";
  constexpr std::size_t kShow = 5;
  for (std::size_t i = 0; i < std::min(kShow, only_a.size()); ++i) {
    std::cout << "  < " << only_a[i] << "\n";
  }
  for (std::size_t i = 0; i < std::min(kShow, only_b.size()); ++i) {
    std::cout << "  > " << only_b[i] << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2) return summarize(argv[1]);
  if (argc == 3) return diff(argv[1], argv[2]);
  std::cerr << "usage: trace_summarize A.jsonl [B.jsonl]\n";
  return 2;
}
