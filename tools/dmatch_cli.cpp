// Command-line front end: run any of the library's matchers on an
// edge-list file or a generated instance.
//
// Usage:
//   dmatch_cli <command> [--key value ...]
//
// Commands:
//   maximal        Israeli-Itai maximal matching (1/2-MCM baseline)
//   mcm-bipartite  Theorem 3.10 (requires a bipartite input)
//   mcm-general    Theorem 3.15
//   mwm            Theorem 4.5 ((1/2 - eps)-MWM)
//   mwm-local      Section 4 remark ((1 - eps)-MWM, LOCAL model)
//   exact          centralized optimum (Hopcroft-Karp / Blossom / Hungarian)
//   generate       emit a generated instance as an edge list
//
// Options:
//   --input FILE     read the graph from FILE ("-" = stdin)
//   --gen SPEC       generate instead: gnp:N,P | bip:NX,NY,P | cycle:N |
//                    tree:N | ba:N,M  (combine with --weights LO,HI)
//   --weights LO,HI  overlay uniform random weights
//   --seed S         randomness seed (default 1)
//   --k K            approximation parameter for mcm-* (default 5 / 3)
//   --epsilon E      approximation parameter for mwm* (default 0.1)
//   --dot FILE       also write a Graphviz rendering with the matching
//   --threads N      worker count for the simulated networks and the
//                    async executor (0 = hardware concurrency, default 1;
//                    results are bit-identical for any value)
//   --sched-mode M   dispatcher scheduling mode: static | steal | rapid
//                    (default static; results are bit-identical across
//                    modes — only wall-clock behavior differs)
//   --pin 0|1        pin engine workers to CPUs round-robin (Linux only;
//                    best-effort, default 0)
//
// Fault injection (maximal, mcm-bipartite, mcm-general, mwm):
//   --fault-drop P     per-message drop probability
//   --fault-dup P      per-message duplication probability
//   --fault-delay P    per-message delay probability
//   --fault-reorder P  per-round inbox reordering probability
//   --fault-crash P    per-node crash probability
//   --fault-restart P  probability a crashed node restarts
//   --fault-seed S     seed of the fault stream (default 1)
// With any fault option the run degrades gracefully and a JSON
// degradation report line is printed after the matching.
//
// Observability (maximal, mcm-bipartite, mcm-general, mwm):
//   --trace-out FILE    write a Chrome trace_event JSON to FILE and a
//                       structured event log to FILE.jsonl
//   --metrics-out FILE  write the merged metrics registry as JSON
//   --trace-cap N       bounded-memory tracing: keep only the last N
//                       events per shard buffer (0 = unbounded)
//   --profile-links K   print the top-K hot links + per-round curves as
//                       a JSON congestion report on stdout
//   --arq-window W      resilient-layer ARQ window (1..16; fault mode)
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "obs/obs.hpp"

#include "core/api.hpp"
#include "graph/blossom.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/hungarian.hpp"
#include "graph/io.hpp"

using namespace dmatch;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return std::nullopt;
    args.options[key.substr(2)] = argv[i + 1];
  }
  return args;
}

Graph load_graph(const Args& args) {
  const std::uint64_t seed = std::stoull(args.get("seed", "1"));
  Graph g;
  if (const std::string spec = args.get("gen"); !spec.empty()) {
    const auto colon = spec.find(':');
    DMATCH_EXPECTS(colon != std::string::npos);
    const std::string kind = spec.substr(0, colon);
    std::vector<double> params;
    std::stringstream ss(spec.substr(colon + 1));
    for (std::string item; std::getline(ss, item, ',');) {
      params.push_back(std::stod(item));
    }
    if (kind == "gnp") {
      DMATCH_EXPECTS(params.size() == 2);
      g = gen::gnp(static_cast<NodeId>(params[0]), params[1], seed);
    } else if (kind == "bip") {
      DMATCH_EXPECTS(params.size() == 3);
      g = gen::bipartite_gnp(static_cast<NodeId>(params[0]),
                             static_cast<NodeId>(params[1]), params[2], seed);
    } else if (kind == "cycle") {
      DMATCH_EXPECTS(params.size() == 1);
      g = gen::cycle(static_cast<NodeId>(params[0]));
    } else if (kind == "tree") {
      DMATCH_EXPECTS(params.size() == 1);
      g = gen::random_tree(static_cast<NodeId>(params[0]), seed);
    } else if (kind == "ba") {
      DMATCH_EXPECTS(params.size() == 2);
      g = gen::barabasi_albert(static_cast<NodeId>(params[0]),
                               static_cast<int>(params[1]), seed);
    } else {
      DMATCH_EXPECTS(!"unknown generator spec");
    }
  } else {
    const std::string path = args.get("input");
    DMATCH_EXPECTS(!path.empty());
    if (path == "-") {
      g = read_edge_list(std::cin);
    } else {
      std::ifstream in(path);
      DMATCH_EXPECTS(in.good());
      g = read_edge_list(in);
    }
  }
  if (const std::string w = args.get("weights"); !w.empty()) {
    const auto comma = w.find(',');
    DMATCH_EXPECTS(comma != std::string::npos);
    g = gen::with_uniform_weights(g, std::stod(w.substr(0, comma)),
                                  std::stod(w.substr(comma + 1)), seed + 1);
  }
  return g;
}

congest::FaultPlan parse_fault_plan(const Args& args) {
  congest::FaultPlan plan;
  plan.drop_prob = std::stod(args.get("fault-drop", "0"));
  plan.duplicate_prob = std::stod(args.get("fault-dup", "0"));
  plan.delay_prob = std::stod(args.get("fault-delay", "0"));
  plan.reorder_prob = std::stod(args.get("fault-reorder", "0"));
  plan.crash_prob = std::stod(args.get("fault-crash", "0"));
  plan.restart_prob = std::stod(args.get("fault-restart", "0"));
  plan.seed = std::stoull(args.get("fault-seed", "1"));
  return plan;
}

void report_degradation(const congest::DegradationReport& d) {
  std::cout << "degradation: {\"degraded\": " << (d.degraded() ? "true" : "false")
            << ", \"budget_exhausted\": "
            << (d.budget_exhausted ? "true" : "false")
            << ", \"contract_tripped\": "
            << (d.contract_tripped ? "true" : "false")
            << ", \"crashed_nodes\": " << d.crashed_nodes
            << ", \"torn_registers_healed\": " << d.torn_registers_healed
            << ", \"dead_registers_healed\": " << d.dead_registers_healed
            << "}\n";
}

void report(const Graph& g, const Matching& m, const congest::RunStats* stats,
            const Args& args) {
  std::cout << "graph: n=" << g.node_count() << " m=" << g.edge_count()
            << "\nmatching: size=" << m.size() << " weight=" << m.weight(g)
            << "\n";
  if (stats != nullptr) {
    std::cout << "cost: rounds=" << stats->rounds
              << " messages=" << stats->messages
              << " total_bits=" << stats->total_bits
              << " max_message_bits=" << stats->max_message_bits << "\n";
  }
  std::cout << "edges:";
  for (EdgeId e : m.edges(g)) {
    std::cout << ' ' << g.edge(e).u << '-' << g.edge(e).v;
  }
  std::cout << "\n";
  if (const std::string dot = args.get("dot"); !dot.empty()) {
    std::ofstream out(dot);
    out << to_dot(g, &m);
    std::cout << "wrote " << dot << "\n";
  }
}

int run(const Args& args) {
  const std::uint64_t seed = std::stoull(args.get("seed", "1"));

  if (args.command == "generate") {
    const Graph g = load_graph(args);
    write_edge_list(std::cout, g);
    return 0;
  }

  const Graph g = load_graph(args);
  const congest::FaultPlan fault = parse_fault_plan(args);
  if (fault.any() &&
      (args.command == "mwm-local" || args.command == "exact")) {
    std::cerr << "fault injection is not supported for " << args.command
              << "\n";
    return 2;
  }
  // Observability sinks (shared across every network the run creates).
  const std::string trace_out = args.get("trace-out");
  const std::string metrics_out = args.get("metrics-out");
  const std::size_t profile_links =
      static_cast<std::size_t>(std::stoul(args.get("profile-links", "0")));
  std::unique_ptr<obs::Observer> observer;
  if (!trace_out.empty() || !metrics_out.empty() || profile_links > 0) {
    obs::ObsConfig cfg;
    cfg.trace = !trace_out.empty();
    cfg.metrics = true;
    cfg.profile_links = true;
    if (profile_links > 0) cfg.top_k = profile_links;
    cfg.trace_capacity =
        static_cast<std::size_t>(std::stoul(args.get("trace-cap", "0")));
    observer = std::make_unique<obs::Observer>(cfg);
  }

  const unsigned num_threads =
      static_cast<unsigned>(std::stoul(args.get("threads", "1")));

  support::SchedOptions sched;
  if (const std::string mode = args.get("sched-mode"); !mode.empty()) {
    const auto parsed = support::parse_sched_mode(mode);
    if (!parsed.has_value()) {
      std::cerr << "unknown --sched-mode: " << mode
                << " (expected static | steal | rapid)\n";
      return 2;
    }
    sched.mode = *parsed;
  }
  sched.pin_threads = args.get("pin", "0") != "0";

  congest::ResilientOptions arq;
  arq.window = std::stoi(args.get("arq-window", std::to_string(arq.window)));
  DMATCH_EXPECTS(arq.window >= 1);

  congest::Network::Options net_options;
  net_options.num_threads = num_threads;
  net_options.sched = sched;
  net_options.fault = fault;
  net_options.observer = observer.get();
  if (args.command == "maximal") {
    IsraeliItaiOptions options;
    options.arq = arq;
    const auto result = maximal_matching(g, seed, 48, net_options, options);
    report(g, result.matching, &result.stats, args);
    if (fault.any()) report_degradation(result.degradation);
  } else if (args.command == "mcm-bipartite") {
    BipartiteMcmOptions options;
    options.k = std::stoi(args.get("k", "5"));
    options.phase.arq = arq;
    const auto result = approx_mcm_bipartite(g, seed, options, 48, net_options);
    report(g, result.matching, &result.stats, args);
    if (fault.any()) report_degradation(result.degradation);
  } else if (args.command == "mcm-general") {
    GeneralMcmOptions options;
    options.k = std::stoi(args.get("k", "3"));
    options.seed = seed;
    options.num_threads = num_threads;
    options.sched = sched;
    options.fault = fault;
    options.arq = arq;
    options.observer = observer.get();
    const auto result = approx_mcm_general(g, options);
    report(g, result.matching, &result.stats, args);
    if (fault.any()) report_degradation(result.degradation);
  } else if (args.command == "mwm") {
    HalfMwmOptions options;
    options.epsilon = std::stod(args.get("epsilon", "0.1"));
    options.seed = seed;
    options.num_threads = num_threads;
    options.sched = sched;
    options.fault = fault;
    options.arq = arq;
    options.observer = observer.get();
    const auto result = approx_mwm(g, options);
    report(g, result.matching, &result.stats, args);
    if (fault.any()) report_degradation(result.degradation);
  } else if (args.command == "mwm-local") {
    LocalMwmOptions options;
    options.epsilon = std::stod(args.get("epsilon", "0.34"));
    options.seed = seed;
    const auto result = local_one_minus_eps_mwm(g, options);
    report(g, result.matching, &result.stats, args);
  } else if (args.command == "exact") {
    const auto side = g.bipartition();
    bool weighted = false;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      weighted = weighted || g.weight(e) != 1.0;
    }
    Matching m;
    if (side.has_value() && weighted) {
      m = hungarian_mwm(g, *side);
    } else if (side.has_value()) {
      m = hopcroft_karp(g, *side);
    } else {
      DMATCH_EXPECTS(!weighted);  // exact general MWM is not provided
      m = blossom_mcm(g);
    }
    report(g, m, nullptr, args);
  } else {
    std::cerr << "unknown command: " << args.command << "\n";
    return 2;
  }

  if (observer != nullptr) {
    if (!trace_out.empty()) {
      std::ofstream chrome(trace_out);
      DMATCH_EXPECTS(chrome.good());
      observer->trace_sink().write_chrome_json(chrome);
      std::ofstream jsonl(trace_out + ".jsonl");
      DMATCH_EXPECTS(jsonl.good());
      observer->trace_sink().write_jsonl(jsonl);
      std::cout << "wrote " << trace_out << " and " << trace_out << ".jsonl ("
                << observer->trace_sink().event_count() << " events)\n";
    }
    if (!metrics_out.empty()) {
      std::ofstream metrics(metrics_out);
      DMATCH_EXPECTS(metrics.good());
      observer->metrics().write_json(metrics);
      std::cout << "wrote " << metrics_out << "\n";
    }
    if (profile_links > 0) {
      std::cout << "congestion: ";
      observer->profiler().write_json(std::cout, profile_links);
      std::cout << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args.has_value()) {
    std::cerr << "usage: dmatch_cli <maximal|mcm-bipartite|mcm-general|mwm|"
                 "mwm-local|exact|generate> [--key value ...]\n"
                 "see the header of tools/dmatch_cli.cpp for details\n";
    return 2;
  }
  try {
    return run(*args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
